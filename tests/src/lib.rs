//! Shared fixtures for the integration tests.

use timber::TimberDb;
use xmlstore::StoreOptions;

/// The sample database of Figure 6: three articles, overlapping authors.
pub const FIG6_DB: &str = "<bib>\
    <article><author>Jack</author><author>John</author><title>Querying XML</title></article>\
    <article><author>Jill</author><author>Jack</author><title>XML and the Web</title></article>\
    <article><author>John</author><title>Hack HTML</title></article>\
</bib>";

/// Query 1 of the paper.
pub const QUERY1: &str = r#"
    FOR $a IN distinct-values(document("bib.xml")//author)
    RETURN <authorpubs>
      {$a}
      { FOR $b IN document("bib.xml")//article
        WHERE $a = $b/author
        RETURN $b/title }
    </authorpubs>
"#;

/// Query 2 (the unnested LET formulation of Sec. 4.2).
pub const QUERY2: &str = r#"
    FOR $a IN distinct-values(document("bib.xml")//author)
    LET $t := document("bib.xml")//article[author = $a]/title
    RETURN <authorpubs> {$a} {$t} </authorpubs>
"#;

/// The Sec. 6 count variant.
pub const QUERY_COUNT: &str = r#"
    FOR $a IN distinct-values(document("bib.xml")//author)
    LET $t := document("bib.xml")//article[author = $a]/title
    RETURN <authorpubs> {$a} {count($t)} </authorpubs>
"#;

/// Load the Figure 6 database.
pub fn fig6_db() -> TimberDb {
    TimberDb::load_xml(FIG6_DB, &StoreOptions::in_memory()).expect("load fig6")
}
