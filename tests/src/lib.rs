//! Shared fixtures for the integration tests.

use timber::TimberDb;
use xmlstore::StoreOptions;

/// The sample database of Figure 6: three articles, overlapping authors.
pub const FIG6_DB: &str = "<bib>\
    <article><author>Jack</author><author>John</author><title>Querying XML</title></article>\
    <article><author>Jill</author><author>Jack</author><title>XML and the Web</title></article>\
    <article><author>John</author><title>Hack HTML</title></article>\
</bib>";

/// Query 1 of the paper.
pub const QUERY1: &str = r#"
    FOR $a IN distinct-values(document("bib.xml")//author)
    RETURN <authorpubs>
      {$a}
      { FOR $b IN document("bib.xml")//article
        WHERE $a = $b/author
        RETURN $b/title }
    </authorpubs>
"#;

/// Query 2 (the unnested LET formulation of Sec. 4.2).
pub const QUERY2: &str = r#"
    FOR $a IN distinct-values(document("bib.xml")//author)
    LET $t := document("bib.xml")//article[author = $a]/title
    RETURN <authorpubs> {$a} {$t} </authorpubs>
"#;

/// The Sec. 6 count variant.
pub const QUERY_COUNT: &str = r#"
    FOR $a IN distinct-values(document("bib.xml")//author)
    LET $t := document("bib.xml")//article[author = $a]/title
    RETURN <authorpubs> {$a} {count($t)} </authorpubs>
"#;

/// Load the Figure 6 database.
pub fn fig6_db() -> TimberDb {
    TimberDb::load_xml(FIG6_DB, &StoreOptions::in_memory()).expect("load fig6")
}

/// Parse a comma-separated list of positive integers from `var`, falling
/// back to `default` when the variable is unset, empty, or malformed.
/// This is how CI plumbs its `{threads} × {batch}` matrix into the
/// differential suite without recompiling.
fn env_matrix(var: &str, default: &[usize]) -> Vec<usize> {
    match std::env::var(var) {
        Ok(s) if !s.trim().is_empty() => {
            let parsed: Option<Vec<usize>> = s
                .split(',')
                .map(|p| p.trim().parse::<usize>().ok().filter(|&n| n > 0))
                .collect();
            match parsed {
                Some(v) if !v.is_empty() => v,
                _ => default.to_vec(),
            }
        }
        _ => default.to_vec(),
    }
}

/// Thread counts the differential tests sweep: `TIMBER_TEST_THREADS`
/// (e.g. `"1,4"`) or the given default.
pub fn thread_matrix(default: &[usize]) -> Vec<usize> {
    env_matrix("TIMBER_TEST_THREADS", default)
}

/// Batch sizes the differential tests sweep: `TIMBER_TEST_BATCH`
/// (e.g. `"16,256"`) or the given default.
pub fn batch_matrix(default: &[usize]) -> Vec<usize> {
    env_matrix("TIMBER_TEST_BATCH", default)
}
