//! Differential suite for the grouping lattice: under
//! `PlanMode::GroupByRewrite` a `CUBE BY` query fuses into the one-scan
//! `Plan::Cube`, and its serialized output — minus the per-level
//! `TAX_cube_level` markers — must be byte-identical to the composed
//! per-level rollup plans the materialized mode keeps
//! (`PlanMode::GroupByMaterialized`) — for every aggregate function,
//! across the thread/batch CI matrix (`TIMBER_TEST_THREADS` /
//! `TIMBER_TEST_BATCH`), on random ragged bibliographies where an
//! author's name sits at varying depths, and under seeded fault
//! schedules (correct-or-typed-error).

use datagen::{DblpConfig, DblpGenerator};
use smallrand::prop::{check, Gen};
use tax::ops::cube::strip_level_markers;
use timber::{ExecMode, PlanMode, TimberDb};
use timber_integration_tests::{batch_matrix, thread_matrix};
use xmlstore::{FaultConfig, StoreOptions};

/// The lattice query: all prefix levels of journal → year → author,
/// aggregating the articles' `<pages>` values with `func`.
fn cube_query(func: &str) -> String {
    format!(
        r#"
        FOR $b IN document("bib.xml")//article
        CUBE BY $b/journal, $b/year, $b/author
        RETURN <pubs> {{{func}($b/pages)}} </pubs>
    "#
    )
}

/// Every aggregate the lattice accumulator folds.
const FUNCS: [&str; 5] = ["count", "sum", "min", "max", "avg"];

/// Articles with full dimension columns and numeric `<pages>`; the
/// two-author article exercises the multi-valued basis at the author
/// level, and the article without `<pages>` leaves one (journal, year)
/// group's Min/Max/Avg undefined while its parent stays defined.
const CUBE_DB: &str = "<bib>\
    <article><journal>TODS</journal><year>1999</year><author>Jack</author><pages>30</pages><title>A</title></article>\
    <article><journal>TODS</journal><year>2001</year><author>Jill</author><author>Jack</author><title>B</title></article>\
    <article><journal>WebDB</journal><year>2001</year><author>John</author><pages>7.5</pages><title>C</title></article>\
    <article><journal>TODS</journal><year>1999</year><author>John</author><pages>19</pages><title>D</title></article>\
</bib>";

fn run(db: &mut TimberDb, query: &str, mode: PlanMode, exec: ExecMode, batch: usize) -> String {
    db.set_exec_mode(exec);
    db.set_batch_size(batch);
    let r = db.query(query, mode).expect("query evaluates");
    r.to_xml_on(db.store()).expect("result serializes")
}

#[test]
fn every_cube_query_fuses_to_one_scan() {
    let db = TimberDb::load_xml(CUBE_DB, &StoreOptions::in_memory()).unwrap();
    for func in FUNCS {
        let query = cube_query(func);
        let (plan, _, trace) = db.compile_traced(&query, PlanMode::GroupByRewrite).unwrap();
        assert!(trace.fired("cube-fuse"), "{func}: {}", trace.render());
        let text = plan.explain();
        assert!(text.contains("Cube"), "{text}");
        assert!(!text.contains("Union"), "{text}");
        assert!(!text.contains("GroupBy"), "{text}");
        // The materialized mode keeps the composed per-level union.
        let (plan, _, trace) = db
            .compile_traced(&query, PlanMode::GroupByMaterialized)
            .unwrap();
        assert!(!trace.fired("cube-fuse"), "{func}");
        let text = plan.explain();
        assert!(text.contains("Union (3 branches)"), "{text}");
        assert!(!text.contains("Cube"), "{text}");
    }
}

#[test]
fn cube_matches_composed_across_threads_and_batches() {
    let mut db = TimberDb::load_xml(CUBE_DB, &StoreOptions::in_memory()).unwrap();
    for threads in thread_matrix(&[1, 4]) {
        db.set_threads(threads);
        for func in FUNCS {
            let query = cube_query(func);
            let reference = run(
                &mut db,
                &query,
                PlanMode::GroupByMaterialized,
                ExecMode::Physical,
                256,
            );
            for batch in batch_matrix(&[16, 256]) {
                let fused = run(
                    &mut db,
                    &query,
                    PlanMode::GroupByRewrite,
                    ExecMode::Physical,
                    batch,
                );
                assert!(fused.contains("TAX_cube_level"), "{fused}");
                assert_eq!(
                    strip_level_markers(&fused),
                    reference,
                    "threads={threads} batch={batch} func={func}"
                );
            }
        }
    }
}

#[test]
fn legacy_interpreter_agrees_with_physical_cube() {
    let mut db = TimberDb::load_xml(CUBE_DB, &StoreOptions::in_memory()).unwrap();
    for func in FUNCS {
        let query = cube_query(func);
        let legacy = run(
            &mut db,
            &query,
            PlanMode::GroupByRewrite,
            ExecMode::Legacy,
            256,
        );
        for batch in batch_matrix(&[1, 3, 256]) {
            let phys = run(
                &mut db,
                &query,
                PlanMode::GroupByRewrite,
                ExecMode::Physical,
                batch,
            );
            assert_eq!(legacy, phys, "batch={batch} func={func}");
        }
    }
}

#[test]
fn single_dimension_cube_rides_the_fused_rollup_path() {
    // A one-dimension lattice is a plain rollup: the translator emits a
    // union of one branch, cube-fuse declines it, and rollup-fuse fuses
    // the branch — so `CUBE BY $b/journal` exercises the existing fused
    // path and needs no level markers to agree with the composed plan.
    let mut db = TimberDb::load_xml(CUBE_DB, &StoreOptions::in_memory()).unwrap();
    let query = r#"
        FOR $b IN document("bib.xml")//article
        CUBE BY $b/journal
        RETURN <pubs> {count($b/pages)} </pubs>
    "#;
    let (plan, _, trace) = db.compile_traced(query, PlanMode::GroupByRewrite).unwrap();
    assert!(!trace.fired("cube-fuse"), "{}", trace.render());
    assert!(trace.fired("rollup-fuse"), "{}", trace.render());
    assert!(plan.explain().contains("Rollup"), "{}", plan.explain());
    let reference = run(
        &mut db,
        query,
        PlanMode::GroupByMaterialized,
        ExecMode::Physical,
        256,
    );
    let fused = run(
        &mut db,
        query,
        PlanMode::GroupByRewrite,
        ExecMode::Physical,
        16,
    );
    assert!(!fused.contains("TAX_cube_level"), "{fused}");
    assert_eq!(fused, reference);
}

/// Random ragged bibliographies: journals/years/authors drawn from small
/// pools so levels collide, authors sometimes nested (`<name>`, or
/// `<name><full>`) so the basis key node varies in shape, and `<pages>`
/// sometimes missing, fractional, or non-numeric so per-level aggregate
/// definedness varies.
fn ragged_bibliography(g: &mut Gen) -> String {
    const JOURNALS: [&str; 3] = ["TODS", "WebDB", "SIGMOD"];
    const AUTHORS: [&str; 4] = ["Jack", "Jill", "John", "Jane"];
    let articles = g.usize_in(0, 9);
    let mut s = String::from("<bib>");
    for n in 0..articles {
        s.push_str("<article>");
        s.push_str(&format!(
            "<journal>{}</journal>",
            JOURNALS[g.usize_in(0, JOURNALS.len() - 1)]
        ));
        s.push_str(&format!("<year>{}</year>", 1999 + g.usize_in(0, 2)));
        let k = g.usize_in(1, 2);
        let mut picked = Vec::new();
        while picked.len() < k {
            let i = g.usize_in(0, AUTHORS.len() - 1);
            if !picked.contains(&i) {
                picked.push(i);
            }
        }
        picked.sort_unstable();
        for &i in &picked {
            match g.usize_in(0, 3) {
                0 => s.push_str(&format!("<author><name>{}</name></author>", AUTHORS[i])),
                1 => s.push_str(&format!(
                    "<author><name><full>{}</full></name></author>",
                    AUTHORS[i]
                )),
                _ => s.push_str(&format!("<author>{}</author>", AUTHORS[i])),
            }
        }
        match g.usize_in(0, 4) {
            0 => {} // no pages at all
            1 => s.push_str(&format!(
                "<pages>{}.{}</pages>",
                g.usize_in(1, 40),
                g.usize_in(0, 99)
            )),
            2 => s.push_str("<pages>not-a-number</pages>"),
            _ => s.push_str(&format!("<pages>{}</pages>", g.usize_in(1, 900))),
        }
        s.push_str(&format!("<title>Title {n}</title>"));
        s.push_str("</article>");
    }
    s.push_str("</bib>");
    s
}

#[test]
fn cube_matches_composed_on_random_ragged_bibliographies() {
    check(
        "cube_matches_composed_on_random_ragged_bibliographies",
        20,
        |g| {
            let xml = ragged_bibliography(g);
            let mut db = TimberDb::load_xml(&xml, &StoreOptions::in_memory()).unwrap();
            db.set_threads([1, 4][g.usize_in(0, 1)]);
            let batch = [1, 16, 256][g.usize_in(0, 2)];
            for func in FUNCS {
                let query = cube_query(func);
                let reference = run(
                    &mut db,
                    &query,
                    PlanMode::GroupByMaterialized,
                    ExecMode::Physical,
                    256,
                );
                let fused = run(
                    &mut db,
                    &query,
                    PlanMode::GroupByRewrite,
                    ExecMode::Physical,
                    batch,
                );
                assert_eq!(
                    strip_level_markers(&fused),
                    reference,
                    "batch={batch} func={func} on {xml}"
                );
            }
        },
    );
}

fn fault_seeds() -> Vec<u64> {
    match std::env::var("CRASH_SEEDS") {
        Ok(s) => s.split(',').filter_map(|t| t.trim().parse().ok()).collect(),
        Err(_) => vec![1, 2, 3],
    }
}

#[test]
fn cube_under_fault_schedules_is_correct_or_typed_error() {
    // On-disk ragged bibliography with a tiny pool so the lattice scan
    // does real physical I/O the schedules can hit. Contract: the
    // byte-identical fault-free answer, or a clean typed error — never a
    // panic, never a silently wrong level.
    let xml = DblpGenerator::new(DblpConfig::sized(80).with_ragged_authors()).generate_xml();
    let opts = StoreOptions {
        on_disk: true,
        pool_pages: 2,
        ..StoreOptions::in_memory()
    };
    let db = TimberDb::load_xml(&xml, &opts).unwrap();
    let query = cube_query("count");
    let reference = {
        let r = db.query(&query, PlanMode::GroupByRewrite).unwrap();
        r.to_xml_on(db.store()).unwrap()
    };
    let mut injected = 0u64;
    for seed in fault_seeds() {
        for schedule in [
            FaultConfig::seeded(seed).with_read_error(0.02),
            FaultConfig::seeded(seed).with_read_flip(0.02),
        ] {
            db.set_faults(Some(schedule)).unwrap();
            match db.query(&query, PlanMode::GroupByRewrite) {
                Ok(result) => match result.to_xml_on(db.store()) {
                    Ok(out) => assert_eq!(out, reference, "seed={seed}: silent corruption"),
                    Err(e) => {
                        let _ = e.to_string();
                    }
                },
                Err(e) => {
                    let _ = e.to_string();
                }
            }
            injected += db.fault_stats().unwrap().total();
            db.set_faults(None).unwrap();
        }
    }
    assert!(injected > 0, "schedules must actually inject faults");
    // Disarmed, the lattice answers perfectly again.
    let r = db.query(&query, PlanMode::GroupByRewrite).unwrap();
    assert_eq!(r.to_xml_on(db.store()).unwrap(), reference);
}
