//! Parallel operator evaluation must be byte-identical to sequential.
//!
//! The execution knob (`tax::ExecOptions { threads }`) fans the per-tree
//! work of SELECT / GROUPBY / DUPELIM / AGGREGATE out over worker
//! threads, but every merge step runs sequentially in input order, so a
//! run with N threads is required to produce exactly the output of a
//! single-threaded run — same trees, same group order, same bytes.

use datagen::{DblpConfig, DblpGenerator};
use tax::ops::groupby::{groupby_opts, BasisItem, Direction, GroupOrder};
use tax::ops::select::select_db_opts;
use tax::pattern::{Axis, PatternTree, Pred};
use tax::ExecOptions;
use timber::{PlanMode, TimberDb};
use xmlstore::{DocumentStore, StoreOptions};

const THREAD_COUNTS: [usize; 3] = [2, 4, 7];

fn dblp_store(articles: usize) -> DocumentStore {
    let xml = DblpGenerator::new(DblpConfig::sized(articles)).generate_xml();
    DocumentStore::from_xml(&xml, &StoreOptions::in_memory()).unwrap()
}

#[test]
fn select_db_parallel_is_identical_to_sequential() {
    let s = dblp_store(200);
    let mut p = PatternTree::with_root(Pred::tag("doc_root"));
    let art = p.add_child(p.root(), Axis::Descendant, Pred::tag("article"));
    let author = p.add_child(art, Axis::Child, Pred::tag("author"));
    let sequential = select_db_opts(&s, &p, &[art, author], &ExecOptions::sequential()).unwrap();
    assert!(!sequential.is_empty());
    for threads in THREAD_COUNTS {
        let parallel =
            select_db_opts(&s, &p, &[art, author], &ExecOptions::with_threads(threads)).unwrap();
        assert_eq!(sequential, parallel, "threads={threads}");
    }
}

#[test]
fn groupby_parallel_is_identical_to_sequential() {
    let s = dblp_store(300);
    let mut sp = PatternTree::with_root(Pred::tag("doc_root"));
    let art = sp.add_child(sp.root(), Axis::Descendant, Pred::tag("article"));
    let input = select_db_opts(&s, &sp, &[art], &ExecOptions::sequential()).unwrap();

    let mut gp = PatternTree::with_root(Pred::tag("article"));
    let title = gp.add_child(gp.root(), Axis::Child, Pred::tag("title"));
    let author = gp.add_child(gp.root(), Axis::Child, Pred::tag("author"));
    let basis = [BasisItem::content(author)];
    let ordering = [GroupOrder {
        label: title,
        direction: Direction::Descending,
    }];

    let sequential = groupby_opts(
        &s,
        &input,
        &gp,
        &basis,
        &ordering,
        &ExecOptions::sequential(),
    )
    .unwrap();
    assert!(sequential.len() > 1);
    for threads in THREAD_COUNTS {
        let parallel = groupby_opts(
            &s,
            &input,
            &gp,
            &basis,
            &ordering,
            &ExecOptions::with_threads(threads),
        )
        .unwrap();
        // Same groups, in the same first-arrival order, with the same
        // members — structural equality over the whole collection.
        assert_eq!(sequential, parallel, "threads={threads}");
        // And the materialized form is byte-identical too.
        for (a, b) in sequential.iter().zip(&parallel) {
            assert_eq!(
                format!("{:?}", a.materialize(&s).unwrap()),
                format!("{:?}", b.materialize(&s).unwrap()),
            );
        }
    }
}

/// The full Figure 1–3 pipeline (Query 1 over the Fig. 6 database and a
/// synthetic DBLP): parse → optional rewrite → evaluate, under both plan
/// modes. Thread count must not change a single output byte.
#[test]
fn query_pipeline_parallel_is_byte_identical() {
    for xml in [
        timber_integration_tests::FIG6_DB.to_owned(),
        DblpGenerator::new(DblpConfig::sized(250)).generate_xml(),
    ] {
        let mut db = TimberDb::load_xml(&xml, &StoreOptions::in_memory()).unwrap();
        for query in [
            timber_integration_tests::QUERY1,
            timber_integration_tests::QUERY2,
            timber_integration_tests::QUERY_COUNT,
        ] {
            for mode in [PlanMode::Direct, PlanMode::GroupByRewrite] {
                db.set_threads(1);
                let sequential = db.query(query, mode).unwrap();
                let sequential_xml = sequential.to_xml_on(db.store()).unwrap();
                for threads in THREAD_COUNTS {
                    db.set_threads(threads);
                    let parallel = db.query(query, mode).unwrap();
                    assert_eq!(sequential.rewritten, parallel.rewritten);
                    assert_eq!(
                        sequential_xml,
                        parallel.to_xml_on(db.store()).unwrap(),
                        "threads={threads} mode={mode:?}"
                    );
                }
            }
        }
    }
}

/// Concurrency smoke: many threads hammering one shared store while the
/// parallel operators run must still agree with the sequential answer.
#[test]
fn parallel_run_on_shared_store_is_stable_across_repeats() {
    let xml = DblpGenerator::new(DblpConfig::sized(150)).generate_xml();
    let mut db = TimberDb::load_xml(&xml, &StoreOptions::in_memory()).unwrap();
    db.set_threads(1);
    let expected = db
        .query(timber_integration_tests::QUERY1, PlanMode::GroupByRewrite)
        .unwrap()
        .to_xml_on(db.store())
        .unwrap();
    db.set_threads(4);
    for _ in 0..5 {
        let got = db
            .query(timber_integration_tests::QUERY1, PlanMode::GroupByRewrite)
            .unwrap()
            .to_xml_on(db.store())
            .unwrap();
        assert_eq!(expected, got);
    }
}
