//! Property-based equivalence: on randomly generated bibliographic
//! databases, the naive join plan and the rewritten GROUPBY plan must
//! produce identical output, for all three query forms. This is the
//! correctness core of the rewrite (Sec. 4.1/4.2).
//!
//! Ported from proptest to the in-tree `smallrand::prop` harness.

use smallrand::prop::{check, Gen};
use timber::{PlanMode, TimberDb};
use timber_integration_tests::{QUERY1, QUERY2, QUERY_COUNT};
use xmlstore::StoreOptions;

/// A random bibliography: articles pick 1–3 authors from a tiny pool (so
/// shared authorship and repeated names are frequent); every article has
/// exactly one title (both plans require it, mirroring the DBLP schema).
fn bibliography(g: &mut Gen) -> String {
    const POOL: [&str; 5] = ["Jack", "Jill", "John", "Jane", "Joan"];
    let articles = g.usize_in(0, 11);
    let mut s = String::from("<bib>");
    for _ in 0..articles {
        s.push_str("<article>");
        // An ordered subsequence of 1–3 names from the pool.
        let k = g.usize_in(1, 3);
        let mut picked = Vec::new();
        while picked.len() < k {
            let i = g.usize_in(0, POOL.len() - 1);
            if !picked.contains(&i) {
                picked.push(i);
            }
        }
        picked.sort_unstable();
        for &i in &picked {
            s.push_str(&format!("<author>{}</author>", POOL[i]));
        }
        s.push_str(&format!("<title>Title {}</title>", g.usize_in(0, 999)));
        s.push_str("</article>");
    }
    s.push_str("</bib>");
    s
}

#[test]
fn direct_equals_groupby_on_random_bibliographies() {
    check("direct_equals_groupby_on_random_bibliographies", 48, |g| {
        let xml = bibliography(g);
        let db = TimberDb::load_xml(&xml, &StoreOptions::in_memory()).unwrap();
        for query in [QUERY1, QUERY2, QUERY_COUNT] {
            let direct = db.query(query, PlanMode::Direct).unwrap();
            let grouped = db.query(query, PlanMode::GroupByRewrite).unwrap();
            assert_eq!(
                direct.to_xml_on(db.store()).unwrap(),
                grouped.to_xml_on(db.store()).unwrap(),
                "query: {query} on {xml}"
            );
        }
    });
}

#[test]
fn nested_and_let_forms_agree() {
    check("nested_and_let_forms_agree", 48, |g| {
        // Sec. 4.2: the nested and unnested formulations are equivalent.
        let xml = bibliography(g);
        let db = TimberDb::load_xml(&xml, &StoreOptions::in_memory()).unwrap();
        for mode in [PlanMode::Direct, PlanMode::GroupByRewrite] {
            let nested = db.query(QUERY1, mode).unwrap();
            let let_form = db.query(QUERY2, mode).unwrap();
            assert_eq!(
                nested.to_xml_on(db.store()).unwrap(),
                let_form.to_xml_on(db.store()).unwrap()
            );
        }
    });
}

#[test]
fn counts_match_title_multiplicity() {
    check("counts_match_title_multiplicity", 48, |g| {
        // count($t) must equal the number of titles the titles-query
        // returns for the same author.
        let xml = bibliography(g);
        let db = TimberDb::load_xml(&xml, &StoreOptions::in_memory()).unwrap();
        let titles = db.query(QUERY1, PlanMode::GroupByRewrite).unwrap();
        let counts = db.query(QUERY_COUNT, PlanMode::GroupByRewrite).unwrap();
        let t_xml = titles.to_xml_on(db.store()).unwrap();
        let c_xml = counts.to_xml_on(db.store()).unwrap();
        let mut title_counts = std::collections::HashMap::new();
        for line in t_xml.lines() {
            let author = extract(line, "author");
            title_counts.insert(author, line.matches("<title>").count());
        }
        for line in c_xml.lines() {
            let author = extract(line, "author");
            let count: usize = extract(line, "count").parse().unwrap();
            assert_eq!(
                title_counts.get(&author).copied().unwrap_or(0),
                count,
                "author {author}"
            );
        }
    });
}

fn extract(line: &str, tag: &str) -> String {
    let open = format!("<{tag}>");
    let close = format!("</{tag}>");
    let a = line.find(&open).map(|i| i + open.len()).unwrap_or(0);
    let b = line.find(&close).unwrap_or(line.len());
    line[a..b].to_owned()
}
