//! Property-based equivalence: on randomly generated bibliographic
//! databases, the naive join plan and the rewritten GROUPBY plan must
//! produce identical output, for all three query forms. This is the
//! correctness core of the rewrite (Sec. 4.1/4.2).

use proptest::prelude::*;
use timber::{PlanMode, TimberDb};
use timber_integration_tests::{QUERY1, QUERY2, QUERY_COUNT};
use xmlstore::StoreOptions;

/// A random bibliography: articles pick 1–3 authors from a tiny pool (so
/// shared authorship and repeated names are frequent) and may lack
/// titles only never — every article has one title (both plans require
/// it, mirroring the DBLP schema).
fn bibliography_strategy() -> impl Strategy<Value = String> {
    let authors = prop::sample::subsequence(
        vec!["Jack", "Jill", "John", "Jane", "Joan"],
        1..=3,
    );
    let article = (authors, 0..1000u32).prop_map(|(authors, n)| {
        let mut s = String::from("<article>");
        for a in authors {
            s.push_str(&format!("<author>{a}</author>"));
        }
        s.push_str(&format!("<title>Title {n}</title>"));
        s.push_str("</article>");
        s
    });
    prop::collection::vec(article, 0..12).prop_map(|articles| {
        let mut s = String::from("<bib>");
        for a in articles {
            s.push_str(&a);
        }
        s.push_str("</bib>");
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn direct_equals_groupby_on_random_bibliographies(xml in bibliography_strategy()) {
        let db = TimberDb::load_xml(&xml, &StoreOptions::in_memory()).unwrap();
        for query in [QUERY1, QUERY2, QUERY_COUNT] {
            let direct = db.query(query, PlanMode::Direct).unwrap();
            let grouped = db.query(query, PlanMode::GroupByRewrite).unwrap();
            prop_assert_eq!(
                direct.to_xml_on(db.store()).unwrap(),
                grouped.to_xml_on(db.store()).unwrap(),
                "query: {}", query
            );
        }
    }

    #[test]
    fn nested_and_let_forms_agree(xml in bibliography_strategy()) {
        // Sec. 4.2: the nested and unnested formulations are equivalent.
        let db = TimberDb::load_xml(&xml, &StoreOptions::in_memory()).unwrap();
        for mode in [PlanMode::Direct, PlanMode::GroupByRewrite] {
            let nested = db.query(QUERY1, mode).unwrap();
            let let_form = db.query(QUERY2, mode).unwrap();
            prop_assert_eq!(
                nested.to_xml_on(db.store()).unwrap(),
                let_form.to_xml_on(db.store()).unwrap()
            );
        }
    }

    #[test]
    fn counts_match_title_multiplicity(xml in bibliography_strategy()) {
        // count($t) must equal the number of titles the titles-query
        // returns for the same author.
        let db = TimberDb::load_xml(&xml, &StoreOptions::in_memory()).unwrap();
        let titles = db.query(QUERY1, PlanMode::GroupByRewrite).unwrap();
        let counts = db.query(QUERY_COUNT, PlanMode::GroupByRewrite).unwrap();
        let t_xml = titles.to_xml_on(db.store()).unwrap();
        let c_xml = counts.to_xml_on(db.store()).unwrap();
        let mut title_counts = std::collections::HashMap::new();
        for line in t_xml.lines() {
            let author = extract(line, "author");
            title_counts.insert(author, line.matches("<title>").count());
        }
        for line in c_xml.lines() {
            let author = extract(line, "author");
            let count: usize = extract(line, "count").parse().unwrap();
            prop_assert_eq!(title_counts.get(&author).copied().unwrap_or(0), count,
                "author {}", author);
        }
    }
}

fn extract(line: &str, tag: &str) -> String {
    let open = format!("<{tag}>");
    let close = format!("</{tag}>");
    let a = line.find(&open).map(|i| i + open.len()).unwrap_or(0);
    let b = line.find(&close).unwrap_or(line.len());
    line[a..b].to_owned()
}
