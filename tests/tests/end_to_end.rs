//! End-to-end runs over the synthetic DBLP generator: load, query under
//! both plans, verify invariants and the I/O ordering the paper's
//! experiments rely on.

use datagen::{DblpConfig, DblpGenerator};
use timber::{PlanMode, TimberDb};
use timber_integration_tests::{QUERY1, QUERY_COUNT};
use xmlstore::StoreOptions;

fn load(articles: usize) -> TimberDb {
    let xml = DblpGenerator::new(DblpConfig::sized(articles)).generate_xml();
    TimberDb::load_xml(&xml, &StoreOptions::in_memory()).unwrap()
}

#[test]
fn titles_output_covers_every_author_occurrence() {
    let db = load(300);
    let r = db.query(QUERY1, PlanMode::GroupByRewrite).unwrap();
    let xml = r.to_xml_on(db.store()).unwrap();

    // Author count in the database equals the distinct authors in output.
    let store = db.store();
    let author_tag = store.tag_id("author").unwrap();
    let mut names = std::collections::HashSet::new();
    for e in store.nodes_with_tag(author_tag) {
        names.insert(store.content(e.id).unwrap().unwrap());
    }
    assert_eq!(r.len(), names.len());

    // Every title in the database appears in the output at least once.
    let title_tag = store.tag_id("title").unwrap();
    assert!(store.nodes_with_tag(title_tag).len() <= xml.matches("<title>").count());

    // Total titles in output = total (article, author) memberships.
    let article_tag = store.tag_id("article").unwrap();
    let memberships: usize = store
        .nodes_with_tag(article_tag)
        .iter()
        .map(|a| {
            store
                .nodes_with_tag(author_tag)
                .iter()
                .filter(|au| a.is_ancestor_of(au))
                .count()
        })
        .sum();
    assert_eq!(xml.matches("<title>").count(), memberships);
}

#[test]
fn count_sums_to_memberships() {
    let db = load(250);
    let r = db.query(QUERY_COUNT, PlanMode::GroupByRewrite).unwrap();
    let xml = r.to_xml_on(db.store()).unwrap();
    let total: usize = xml
        .lines()
        .filter_map(|l| {
            let a = l.find("<count>")? + "<count>".len();
            let b = l.find("</count>")?;
            l[a..b].parse::<usize>().ok()
        })
        .sum();
    let store = db.store();
    let author_tag = store.tag_id("author").unwrap();
    assert_eq!(total, store.nodes_with_tag(author_tag).len());
}

#[test]
fn groupby_plan_io_wins_grow_with_scale() {
    // The page-request advantage of the GROUPBY plan must not shrink as
    // the database grows (the paper's central performance claim).
    let mut prev_ratio = 0.0f64;
    for articles in [200usize, 800] {
        let db = load(articles);
        let direct = db.query(QUERY_COUNT, PlanMode::Direct).unwrap();
        db.reset_io_stats();
        let grouped = db.query(QUERY_COUNT, PlanMode::GroupByRewrite).unwrap();
        let ratio = direct.io.page_requests() as f64 / grouped.io.page_requests().max(1) as f64;
        assert!(
            ratio > 1.5,
            "at {articles} articles the direct plan must touch ≥1.5× the pages (got {ratio:.2})"
        );
        assert!(
            ratio >= prev_ratio * 0.8,
            "advantage must not collapse with scale: {prev_ratio:.2} → {ratio:.2}"
        );
        prev_ratio = ratio;
    }
}

#[test]
fn rewrite_fires_on_dblp_queries() {
    let db = load(50);
    for q in [QUERY1, QUERY_COUNT] {
        let r = db.query(q, PlanMode::GroupByRewrite).unwrap();
        assert!(r.rewritten, "rewrite must fire for {q}");
    }
}

#[test]
fn institutions_workload_end_to_end() {
    let cfg = DblpConfig::sized(200).with_institutions();
    let xml = DblpGenerator::new(cfg).generate_xml();
    let db = TimberDb::load_xml(&xml, &StoreOptions::in_memory()).unwrap();
    let q = r#"
        FOR $i IN distinct-values(document("bib.xml")//institution)
        RETURN <instpubs>
          {$i}
          { FOR $b IN document("bib.xml")//article
            WHERE $i = $b/author/institution
            RETURN $b/title }
        </instpubs>
    "#;
    let direct = db.query(q, PlanMode::Direct).unwrap();
    let grouped = db.query(q, PlanMode::GroupByRewrite).unwrap();
    assert!(grouped.rewritten);
    assert_eq!(
        direct.to_xml_on(db.store()).unwrap(),
        grouped.to_xml_on(db.store()).unwrap()
    );
    assert!(!grouped.is_empty());
}

#[test]
fn loading_through_parse_and_store_is_lossless() {
    let cfg = DblpConfig::sized(100);
    let xml = DblpGenerator::new(cfg).generate_xml();
    let doc = xmlparse::parse_document(&xml).unwrap();
    let db = TimberDb::load_document(&doc, &StoreOptions::in_memory()).unwrap();
    // Re-materialize the first article and compare against the DOM.
    let store = db.store();
    let article_tag = store.tag_id("article").unwrap();
    let first = store.nodes_with_tag(article_tag)[0];
    let rebuilt = store.materialize(first.id).unwrap();
    let original = doc.root().child("article").unwrap();
    assert_eq!(&rebuilt, original);
}
