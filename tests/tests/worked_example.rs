//! The paper's worked example (Sec. 4.1, Figs. 6–10): Query 1 executed
//! step by step over the Figure 6 sample database, checking each
//! intermediate collection against the figures.

use tax::ops::groupby::{groupby, BasisItem};
use tax::ops::project::ProjectItem;
use tax::ops::{dup_elim, left_outer_join_db, project, select_db};
use tax::pattern::{Axis, PatternTree, Pred};
use tax::tags;
use timber::PlanMode;
use timber_integration_tests::{fig6_db, QUERY1};

/// Fig. 4a: the outer pattern tree (doc_root -ad-> author).
fn outer_pattern() -> PatternTree {
    let mut p = PatternTree::with_root(Pred::tag("doc_root"));
    p.add_child(p.root(), Axis::Descendant, Pred::tag("author"));
    p
}

#[test]
fn fig7_outer_selection_projection_dupelim() {
    let db = fig6_db();
    let store = db.store();
    let p = outer_pattern();
    // Selection (SL = $2), projection ($1, $2*), dup-elim on $2.content.
    let sel = select_db(store, &p, &[1]).unwrap();
    assert_eq!(sel.len(), 5, "five author occurrences");
    let proj = project(
        store,
        &sel,
        &p,
        &[ProjectItem::shallow(0), ProjectItem::deep(1)],
        true,
    )
    .unwrap();
    let distinct = dup_elim(store, proj, &p, 1).unwrap();
    // Fig. 7: three doc_root/author trees: Jack, John, Jill.
    assert_eq!(distinct.len(), 3);
    let names: Vec<String> = distinct
        .iter()
        .map(|t| {
            t.materialize(store)
                .unwrap()
                .child("author")
                .unwrap()
                .text()
        })
        .collect();
    assert_eq!(names, ["Jack", "John", "Jill"]);
}

#[test]
fn fig8_left_outer_join_produces_five_prod_trees() {
    let db = fig6_db();
    let store = db.store();
    let p = outer_pattern();
    let sel = select_db(store, &p, &[1]).unwrap();
    let distinct = dup_elim(store, sel, &p, 1).unwrap();

    // Fig. 4b inner pattern: doc_root -ad-> article -pc-> author.
    let mut right = PatternTree::with_root(Pred::tag("doc_root"));
    let art = right.add_child(right.root(), Axis::Descendant, Pred::tag("article"));
    let auth = right.add_child(art, Axis::Child, Pred::tag("author"));

    let joined = left_outer_join_db(store, &distinct, &p, 1, &right, auth, &[art]).unwrap();
    // Fig. 8: Jack×2, John×2, Jill×1.
    assert_eq!(joined.len(), 5);
    for t in &joined {
        let e = t.materialize(store).unwrap();
        assert_eq!(e.name, tags::PROD_ROOT);
    }
}

#[test]
fn fig9_article_collection() {
    let db = fig6_db();
    let store = db.store();
    // Phase 2 step 1: selection+projection with the Fig. 5a pattern.
    let mut p = PatternTree::with_root(Pred::tag("doc_root"));
    let art = p.add_child(p.root(), Axis::Descendant, Pred::tag("article"));
    let sel = select_db(store, &p, &[art]).unwrap();
    let arts = project(store, &sel, &p, &[ProjectItem::deep(art)], true).unwrap();
    assert_eq!(arts.len(), 3);
    let titles: Vec<String> = arts
        .iter()
        .map(|t| t.materialize(store).unwrap().child("title").unwrap().text())
        .collect();
    assert_eq!(titles, ["Querying XML", "XML and the Web", "Hack HTML"]);
}

#[test]
fn fig10_intermediate_group_trees() {
    let db = fig6_db();
    let store = db.store();
    let mut p = PatternTree::with_root(Pred::tag("doc_root"));
    let art = p.add_child(p.root(), Axis::Descendant, Pred::tag("article"));
    let sel = select_db(store, &p, &[art]).unwrap();
    let arts = project(store, &sel, &p, &[ProjectItem::deep(art)], true).unwrap();

    // Fig. 5b: article -pc-> author; grouping basis $2.content.
    let mut gp = PatternTree::with_root(Pred::tag("article"));
    let author = gp.add_child(gp.root(), Axis::Child, Pred::tag("author"));
    let groups = groupby(store, &arts, &gp, &[BasisItem::content(author)], &[]).unwrap();

    // Fig. 10: three groups — Jack (2 articles), John (2), Jill (1).
    assert_eq!(groups.len(), 3);
    let summary: Vec<(String, usize)> = groups
        .iter()
        .map(|g| {
            let e = g.materialize(store).unwrap();
            let who = e
                .child(tags::GROUPING_BASIS)
                .unwrap()
                .child("author")
                .unwrap()
                .text();
            let n = e
                .child(tags::GROUP_SUBROOT)
                .unwrap()
                .children_named("article")
                .count();
            (who, n)
        })
        .collect();
    assert_eq!(
        summary,
        [
            ("Jack".to_owned(), 2),
            ("John".to_owned(), 2),
            ("Jill".to_owned(), 1)
        ]
    );

    // The two-author articles appear in two groups (non-partitioning).
    let total_members: usize = summary.iter().map(|(_, n)| n).sum();
    assert_eq!(total_members, 5, "3 articles yield 5 group memberships");
}

#[test]
fn full_pipeline_matches_figures_end_to_end() {
    let db = fig6_db();
    let expected = "\
<authorpubs><author>Jack</author><title>Querying XML</title><title>XML and the Web</title></authorpubs>\n\
<authorpubs><author>John</author><title>Querying XML</title><title>Hack HTML</title></authorpubs>\n\
<authorpubs><author>Jill</author><title>XML and the Web</title></authorpubs>\n";
    for mode in [PlanMode::Direct, PlanMode::GroupByRewrite] {
        let r = db.query(QUERY1, mode).unwrap();
        assert_eq!(r.to_xml_on(db.store()).unwrap(), expected, "mode {mode:?}");
    }
}
