//! ARIES crash-recovery harness over the durable write path.
//!
//! For every seed in `CRASH_SEEDS` (default `{1, 2, 3}`): run a scripted
//! mutation workload (inserts, deletes, replaces, checkpoints) against a
//! durable store — first fault-free to learn how many write-class
//! operations (`W`) the script performs, then again with a `crash=N`
//! schedule (N drawn from `1..=W`) that kills the store mid-write.
//! Reopen the page file, let recovery replay the log, and assert the
//! store holds exactly the documents whose commit records reached the
//! log. "Exactly" is checked the strong way: the paper's full grouping
//! query suite (Q1, Q2, Q-count under both plans, across the thread
//! matrix) runs against the recovered store and is byte-diffed against
//! a never-crashed oracle built from the same committed operations.
//!
//! Recovery itself must be idempotent: replaying the crashed log twice
//! over the crashed page file leaves the same bytes as replaying once.

use datagen::{DblpConfig, DblpGenerator};
use smallrand::{RngExt, SeedableRng, StdRng};
use timber::{PlanMode, TimberDb, TimberError};
use timber_integration_tests::{thread_matrix, QUERY1, QUERY2, QUERY_COUNT};
use xmlstore::storage::DiskManager;
use xmlstore::{wal, wal_path_for, FaultConfig, StoreError, StoreOptions};

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

fn seeds() -> Vec<u64> {
    match std::env::var("CRASH_SEEDS") {
        Ok(s) => s.split(',').filter_map(|t| t.trim().parse().ok()).collect(),
        Err(_) => vec![1, 2, 3],
    }
}

/// Fresh page/log paths in the system temp dir.
fn temp_paths(tag: &str) -> (PathBuf, PathBuf) {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let page = std::env::temp_dir().join(format!(
        "timber_recovery_{}_{tag}_{n}.pages",
        std::process::id()
    ));
    let wal = wal_path_for(&page);
    let _ = std::fs::remove_file(&page);
    let _ = std::fs::remove_file(&wal);
    (page, wal)
}

fn durable_opts(page: &Path) -> StoreOptions {
    StoreOptions {
        pool_pages: 32,
        ..StoreOptions::in_memory()
    }
    .with_path(page)
    .with_durable()
}

/// One scripted mutation. Document payloads are synthetic DBLP sized by
/// `articles`, so different steps insert genuinely different documents.
#[derive(Clone, Copy, Debug)]
enum Step {
    Insert {
        articles: usize,
    },
    /// Delete the `k`-th live document (mod the live count).
    Delete {
        k: usize,
    },
    /// Replace the `k`-th live document with a fresh one.
    Replace {
        k: usize,
        articles: usize,
    },
    Checkpoint,
}

/// The fixed workload every seed runs: grows, shrinks, reuses freed
/// pages, and checkpoints mid-stream so the crash can land in any phase.
const SCRIPT: &[Step] = &[
    Step::Insert { articles: 10 },
    Step::Insert { articles: 6 },
    Step::Checkpoint,
    Step::Delete { k: 0 },
    Step::Insert { articles: 8 },
    Step::Replace { k: 0, articles: 5 },
    Step::Insert { articles: 4 },
    Step::Checkpoint,
    Step::Delete { k: 1 },
    Step::Insert { articles: 7 },
];

fn doc_xml(articles: usize) -> String {
    DblpGenerator::new(DblpConfig::sized(articles)).generate_xml()
}

/// Apply the script until done or the injected crash fires. Returns the
/// committed model: the XML of every live document, in insertion order —
/// exactly what must survive a reopen. A step only enters the model if
/// its operation returned `Ok` (commit durable).
fn run_script(db: &mut TimberDb) -> Vec<String> {
    let mut alive: Vec<String> = Vec::new();
    for step in SCRIPT {
        let r: Result<(), TimberError> = match *step {
            Step::Insert { articles } => {
                let xml = doc_xml(articles);
                db.insert_xml(&xml).map(|_| alive.push(xml))
            }
            Step::Delete { k } if !alive.is_empty() => {
                let k = k % alive.len();
                let doc = db.documents()[k].0;
                db.delete_document(doc).map(|()| {
                    alive.remove(k);
                })
            }
            Step::Replace { k, articles } if !alive.is_empty() => {
                let k = k % alive.len();
                let doc = db.documents()[k].0;
                let xml = doc_xml(articles);
                db.replace_xml(doc, &xml).map(|_| {
                    // Replace = delete + insert: the fresh document goes
                    // to the end of insertion order.
                    alive.remove(k);
                    alive.push(xml);
                })
            }
            Step::Delete { .. } | Step::Replace { .. } => continue,
            Step::Checkpoint => db.checkpoint(),
        };
        match r {
            Ok(()) => {}
            Err(TimberError::Store(StoreError::SimulatedCrash)) => break,
            Err(e) => panic!("unexpected workload error: {e}"),
        }
    }
    alive
}

/// The query suite both stores answer: Q1/Q2/Q-count under both plans.
fn suite(db: &mut TimberDb) -> Vec<String> {
    let mut out = Vec::new();
    for threads in thread_matrix(&[1, 4]) {
        db.set_threads(threads);
        for q in [QUERY1, QUERY2, QUERY_COUNT] {
            for mode in [PlanMode::Direct, PlanMode::GroupByRewrite] {
                let r = db.query(q, mode).unwrap();
                out.push(r.to_xml_on(db.store()).unwrap());
            }
        }
    }
    out
}

/// Never-crashed oracle: a fresh store holding exactly `alive`, inserted
/// in the same order. Labels, index and query answers depend only on the
/// live documents, so this is the ground truth for the recovered store.
fn oracle(alive: &[String]) -> TimberDb {
    let mut db = TimberDb::create(&StoreOptions::in_memory()).unwrap();
    for xml in alive {
        db.insert_xml(xml).unwrap();
    }
    db
}

/// Size the crash schedule: run the script fault-free (injector armed
/// but firing nothing) and count write-class operations.
fn count_write_ops(seed: u64) -> u64 {
    let (page, wal_p) = temp_paths("dryrun");
    let mut db = TimberDb::create(&durable_opts(&page)).unwrap();
    db.set_faults(Some(FaultConfig::seeded(seed))).unwrap();
    let alive = run_script(&mut db);
    assert_eq!(alive.len(), 3, "fault-free script must complete");
    let w = db.fault_stats().unwrap().write_ops;
    drop(db);
    let _ = std::fs::remove_file(&page);
    let _ = std::fs::remove_file(&wal_p);
    w
}

/// The full cycle for one `(seed, crash point)`: crash mid-script,
/// check replay idempotence on the torn log, reopen, byte-diff the
/// grouping suite against the oracle, and keep mutating afterwards.
fn crash_recover_verify(seed: u64, crash_at: u64) {
    let label = format!("seed={seed},crash={crash_at}");
    let (page, wal_p) = temp_paths("crash");
    let opts = durable_opts(&page);

    let mut db = TimberDb::create(&opts).unwrap();
    db.set_faults(Some(FaultConfig::seeded(seed).with_crash_after(crash_at)))
        .unwrap();
    let alive = run_script(&mut db);
    let crashed = db.fault_stats().unwrap().crashes == 1;
    assert!(crashed, "{label}: the schedule must actually crash");
    drop(db);

    // Idempotence: replaying the crashed log twice over the crashed
    // page image must leave the same bytes as replaying once.
    let log = std::fs::read(&wal_p).unwrap_or_default();
    let once_p = page.with_extension("pages.once");
    std::fs::copy(&page, &once_p).unwrap();
    let mut disk = DiskManager::open_existing(&once_p).unwrap();
    let first = wal::replay(&mut disk, &log).unwrap();
    drop(disk);
    let after_once = std::fs::read(&once_p).unwrap();
    let mut disk = DiskManager::open_existing(&once_p).unwrap();
    let second = wal::replay(&mut disk, &log).unwrap();
    drop(disk);
    let after_twice = std::fs::read(&once_p).unwrap();
    assert_eq!(
        after_once, after_twice,
        "{label}: replay must be idempotent"
    );
    assert_eq!(first.committed, second.committed, "{label}");
    let _ = std::fs::remove_file(&once_p);

    // Recovery: exactly the committed documents survive.
    let mut recovered = TimberDb::open(&opts).unwrap();
    let info = recovered.recovery_info().unwrap();
    assert_eq!(
        recovered.documents().len(),
        alive.len(),
        "{label}: recovered {info:?}, expected docs {:?}",
        alive.iter().map(String::len).collect::<Vec<_>>(),
    );
    let mut reference = oracle(&alive);
    assert_eq!(
        recovered
            .documents()
            .iter()
            .map(|&(_, n)| n)
            .collect::<Vec<_>>(),
        reference
            .documents()
            .iter()
            .map(|&(_, n)| n)
            .collect::<Vec<_>>(),
        "{label}: node counts per document diverge"
    );
    assert_eq!(
        suite(&mut recovered),
        suite(&mut reference),
        "{label}: grouping suite diverges from the never-crashed oracle"
    );

    // The recovered store accepts new transactions.
    recovered.insert_xml(&doc_xml(3)).unwrap();
    assert_eq!(recovered.documents().len(), alive.len() + 1);
    drop(recovered);

    // A second reopen (recovery over the post-recovery checkpoint) sees
    // the same state — recovery is stable under repetition.
    let again = TimberDb::open(&opts).unwrap();
    assert_eq!(again.documents().len(), alive.len() + 1);
    drop(again);
    let _ = std::fs::remove_file(&page);
    let _ = std::fs::remove_file(&wal_p);
}

#[test]
fn fault_free_workload_survives_reopen_byte_identically() {
    let (page, wal_p) = temp_paths("clean");
    let opts = durable_opts(&page);
    let mut db = TimberDb::create(&opts).unwrap();
    let alive = run_script(&mut db);
    assert_eq!(alive.len(), 3);
    drop(db);
    let mut reopened = TimberDb::open(&opts).unwrap();
    assert_eq!(reopened.recovery_info().unwrap().losers, 0);
    assert_eq!(reopened.documents().len(), 3);
    assert_eq!(suite(&mut reopened), suite(&mut oracle(&alive)));
    drop(reopened);
    let _ = std::fs::remove_file(&page);
    let _ = std::fs::remove_file(&wal_p);
}

#[test]
fn crash_at_first_write_recovers_to_empty_store() {
    for seed in seeds() {
        let (page, wal_p) = temp_paths("first");
        let opts = durable_opts(&page);
        let mut db = TimberDb::create(&opts).unwrap();
        db.set_faults(Some(FaultConfig::seeded(seed).with_crash_after(1)))
            .unwrap();
        let alive = run_script(&mut db);
        assert!(
            alive.is_empty(),
            "nothing can commit before the first write"
        );
        drop(db);
        let recovered = TimberDb::open(&opts).unwrap();
        assert!(recovered.documents().is_empty(), "seed={seed}");
        drop(recovered);
        let _ = std::fs::remove_file(&page);
        let _ = std::fs::remove_file(&wal_p);
    }
}

#[test]
fn seeded_crash_points_recover_exactly_the_committed_documents() {
    for seed in seeds() {
        let w = count_write_ops(seed);
        assert!(w > 4, "the script must do real write work, saw {w}");
        // Three crash points per seed: the middle of the script (drawn
        // seeded, so CI reruns are identical), the very last write, and
        // one drawn from the first half.
        let mut rng = StdRng::seed_from_u64(seed);
        let mid = rng.random_range(2..w);
        let early = rng.random_range(1..=w / 2);
        for crash_at in [early, mid, w] {
            crash_recover_verify(seed, crash_at);
        }
    }
}
