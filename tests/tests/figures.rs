//! Figure-level semantics tests: Figs. 1–5 and 11 of the paper
//! reproduced as assertions.

use tax::matching::match_db;
use tax::ops::groupby::{groupby, BasisItem, Direction, GroupOrder};
use tax::pattern::{Axis, PatternTree, Pred};
use tax::tags;
use timber::{PlanMode, TimberDb};
use xmlstore::{DocumentStore, StoreOptions};
use xquery::opt::{GroupByRewriteRule, Optimizer};
use xquery::{parse_query, translate, Plan};

/// The Sec. 4.1 grouping rewrite alone (the figures pin the un-pruned,
/// un-fused plan shape), via the optimizer's single entry point.
fn grouping_rewrite(plan: Plan) -> (Plan, bool) {
    let (plan, trace) = Optimizer::with_rules(vec![Box::new(GroupByRewriteRule)]).optimize(plan);
    let fired = trace.fired("groupby-rewrite");
    (plan, fired)
}

/// The DBLP fragment behind Figures 1–3.
const FIG1_DB: &str = "<dblp>\
    <article><title>Transaction Mng ...</title><author>Silberschatz</author></article>\
    <article><title>Overview of Transaction Mng</title><author>Silberschatz</author><author>Garcia-Molina</author></article>\
    <article><title>Transaction Mng ...</title><author>Thompson</author></article>\
</dblp>";

fn fig1_store() -> DocumentStore {
    DocumentStore::from_xml(FIG1_DB, &StoreOptions::in_memory()).unwrap()
}

/// Figure 1: `$1.tag = article & $2.tag = title &
/// $2.content = "*Transaction*" & $3.tag = author`, pc edges.
fn fig1_pattern() -> PatternTree {
    let mut p = PatternTree::with_root(Pred::tag("article"));
    p.add_child(
        p.root(),
        Axis::Child,
        Pred::tag("title").and(Pred::content_contains("Transaction")),
    );
    p.add_child(p.root(), Axis::Child, Pred::tag("author"));
    p
}

#[test]
fn fig1_fig2_pattern_match_yields_four_witness_trees() {
    let s = fig1_store();
    let bindings = match_db(&s, &fig1_pattern()).unwrap();
    // Figure 2 shows four witness trees: one per (article, author) pair.
    assert_eq!(bindings.len(), 4);
}

#[test]
fn fig3_grouping_with_descending_title_order() {
    let s = fig1_store();
    let _p = fig1_pattern();
    // Input: the witness trees of Fig. 2 (whole articles).
    let article_tag = s.tag_id("article").unwrap();
    let arts: Vec<tax::Tree> = s
        .nodes_with_tag(article_tag)
        .iter()
        .map(|e| tax::Tree::new_ref(*e, true))
        .collect();
    let mut gp = PatternTree::with_root(Pred::tag("article"));
    let title = gp.add_child(gp.root(), Axis::Child, Pred::tag("title"));
    let author = gp.add_child(gp.root(), Axis::Child, Pred::tag("author"));
    let groups = groupby(
        &s,
        &arts,
        &gp,
        &[BasisItem::content(author)],
        &[GroupOrder {
            label: title,
            direction: Direction::Descending,
        }],
    )
    .unwrap();
    // Fig. 3: three groups (Silberschatz, Garcia-Molina, Thompson).
    assert_eq!(groups.len(), 3);
    let g0 = groups[0].materialize(&s).unwrap();
    assert_eq!(g0.name, tags::GROUP_ROOT);
    assert_eq!(
        g0.child(tags::GROUPING_BASIS)
            .unwrap()
            .child("author")
            .unwrap()
            .text(),
        "Silberschatz"
    );
    // Two-author article appears in both the Silberschatz and the
    // Garcia-Molina groups.
    let titles_of = |g: &tax::Tree| -> Vec<String> {
        g.materialize(&s)
            .unwrap()
            .child(tags::GROUP_SUBROOT)
            .unwrap()
            .children_named("article")
            .map(|a| a.child("title").unwrap().text())
            .collect()
    };
    assert_eq!(titles_of(&groups[0]).len(), 2);
    assert!(titles_of(&groups[1]).contains(&"Overview of Transaction Mng".to_owned()));
    // Descending title order within the Silberschatz group.
    let t = titles_of(&groups[0]);
    assert!(t[0] > t[1], "{t:?}");
}

#[test]
fn fig4_naive_parse_pattern_trees() {
    let q = parse_query(timber_integration_tests::QUERY1).unwrap();
    let plan = translate(&q).unwrap();
    let text = plan.explain();
    // Fig. 4a: outer pattern doc_root -ad-> author.
    assert!(text.contains("[$1:doc_root, $1-ad->$2:author]"), "{text}");
    // Fig. 4b: join between the outer author and the article's author.
    assert!(
        text.contains("LeftOuterJoinDb on left.$2 = right.$3"),
        "{text}"
    );
}

#[test]
fn fig5_rewritten_plan_structure() {
    let q = parse_query(timber_integration_tests::QUERY1).unwrap();
    let (plan, fired) = grouping_rewrite(translate(&q).unwrap());
    assert!(fired);
    let text = plan.explain();
    // Fig. 5a: initial pattern doc_root -ad-> article.
    assert!(text.contains("[$1:doc_root, $1-ad->$2:article]"), "{text}");
    // Fig. 5b: grouping pattern article -pc-> author, basis $2.content.
    assert!(
        text.contains("GroupBy pattern=[$1:article, $1-pc->$2:author]"),
        "{text}"
    );
    assert!(text.contains("basis=[\"$2.content\"]"), "{text}");
    // Fig. 5d: the final projection over the group tree.
    assert!(text.contains("TAX_group_root"), "{text}");
    assert!(text.contains("TAX_group_subroot"), "{text}");
}

#[test]
fn fig11_let_form_produces_identical_groupby() {
    let q1 = parse_query(timber_integration_tests::QUERY1).unwrap();
    let q2 = parse_query(timber_integration_tests::QUERY2).unwrap();
    let (p1, f1) = grouping_rewrite(translate(&q1).unwrap());
    let (p2, f2) = grouping_rewrite(translate(&q2).unwrap());
    assert!(f1 && f2);
    assert_eq!(p1.explain(), p2.explain());
}

#[test]
fn fig12_architecture_pipeline_runs() {
    // Parser → optimizer → evaluator → output, over the Fig. 6 DB.
    let db = TimberDb::load_xml(
        timber_integration_tests::FIG6_DB,
        &StoreOptions::in_memory(),
    )
    .unwrap();
    let r = db
        .query(timber_integration_tests::QUERY1, PlanMode::GroupByRewrite)
        .unwrap();
    assert!(r.rewritten);
    assert_eq!(r.len(), 3);
}
