//! Differential suite for the fused rollup path: under
//! `PlanMode::GroupByRewrite` grouped aggregates run the streaming
//! `Rollup` kernel, and its serialized output must be byte-identical to
//! the materialized `GroupBy → Aggregate` pipeline
//! (`PlanMode::GroupByMaterialized`) and to the direct plan — for every
//! aggregate function, across thread counts and batch sizes (CI sweeps
//! `{threads 1,4} × {batch 16,256}` via `TIMBER_TEST_THREADS` /
//! `TIMBER_TEST_BATCH`), on random multi-author bibliographies, for
//! fractional Avg/Sum values, and under seeded fault schedules
//! (correct-or-typed-error).

use datagen::{DblpConfig, DblpGenerator};
use smallrand::prop::{check, Gen};
use timber::{ExecMode, PlanMode, TimberDb};
use timber_integration_tests::{batch_matrix, fig6_db, thread_matrix, QUERY_COUNT};
use xmlstore::{FaultConfig, StoreOptions};

/// A per-author aggregate query over the articles' `<year>` values.
fn agg_query(func: &str) -> String {
    format!(
        r#"
        FOR $a IN distinct-values(document("bib.xml")//author)
        LET $y := document("bib.xml")//article[author = $a]/year
        RETURN <authorpubs> {{$a}} {{{func}($y)}} </authorpubs>
    "#
    )
}

/// Every aggregate the rollup kernel accumulates.
const FUNCS: [&str; 5] = ["count", "sum", "min", "max", "avg"];

fn corpus() -> Vec<String> {
    let mut qs = vec![QUERY_COUNT.to_owned()];
    qs.extend(FUNCS.iter().map(|f| agg_query(f)));
    qs
}

fn run(db: &mut TimberDb, query: &str, mode: PlanMode, exec: ExecMode, batch: usize) -> String {
    db.set_exec_mode(exec);
    db.set_batch_size(batch);
    let r = db.query(query, mode).expect("query evaluates");
    r.to_xml_on(db.store()).expect("result serializes")
}

#[test]
fn every_corpus_aggregate_fuses_to_a_rollup() {
    let db = fig6_db();
    for query in corpus() {
        let (plan, _, trace) = db.compile_traced(&query, PlanMode::GroupByRewrite).unwrap();
        assert!(trace.fired("rollup-fuse"), "{query}: {}", trace.render());
        let text = plan.explain();
        assert!(text.contains("Rollup"), "{text}");
        assert!(!text.contains("GroupBy"), "{text}");
        // The materialized mode keeps the unfused pair.
        let (plan, _, trace) = db
            .compile_traced(&query, PlanMode::GroupByMaterialized)
            .unwrap();
        assert!(!trace.fired("rollup-fuse"), "{query}");
        assert!(plan.explain().contains("GroupBy"), "{}", plan.explain());
    }
}

/// Every article carries the `<year>` the LET path selects, so the
/// direct (outer-join) plan and both grouped plans agree; Alpha's two
/// authors exercise the multi-valued grouping basis.
const YEARS_DB: &str = "<bib>\
    <article><author>Jack</author><title>Zeta</title><year>2001</year></article>\
    <article><author>Jack</author><author>Jill</author><title>Alpha</title><year>1999</year></article>\
    <article><author>Jack</author><title>Midway</title><year>1995</year></article>\
    <article><author>Jill</author><title>Beta</title><year>2002</year></article>\
    <article><author>John</author><title>Gamma</title><year>1984</year></article>\
</bib>";

#[test]
fn rollup_matches_materialized_across_threads_and_batches() {
    let mut db = TimberDb::load_xml(YEARS_DB, &StoreOptions::in_memory()).unwrap();
    for threads in thread_matrix(&[1, 4]) {
        db.set_threads(threads);
        for query in corpus() {
            let reference = run(
                &mut db,
                &query,
                PlanMode::GroupByMaterialized,
                ExecMode::Physical,
                256,
            );
            let direct = run(&mut db, &query, PlanMode::Direct, ExecMode::Physical, 256);
            assert_eq!(reference, direct, "threads={threads} query: {query}");
            for batch in batch_matrix(&[16, 256]) {
                let rollup = run(
                    &mut db,
                    &query,
                    PlanMode::GroupByRewrite,
                    ExecMode::Physical,
                    batch,
                );
                assert_eq!(
                    reference, rollup,
                    "threads={threads} batch={batch} query: {query}"
                );
            }
        }
    }
}

#[test]
fn legacy_interpreter_agrees_with_physical_rollup() {
    let mut db = fig6_db();
    for query in corpus() {
        let legacy = run(
            &mut db,
            &query,
            PlanMode::GroupByRewrite,
            ExecMode::Legacy,
            256,
        );
        for batch in batch_matrix(&[1, 3, 256]) {
            let phys = run(
                &mut db,
                &query,
                PlanMode::GroupByRewrite,
                ExecMode::Physical,
                batch,
            );
            assert_eq!(legacy, phys, "batch={batch} query: {query}");
        }
    }
}

#[test]
fn avg_keeps_its_fraction_formatting_through_the_rollup() {
    // Jack's years 2001/1999/1995 average to a repeating fraction; the
    // rollup's sum+count accumulator must render it exactly as the
    // materialized kernel's compute() does.
    let xml = "<bib>\
        <article><author>Jack</author><title>Zeta</title><year>2001</year></article>\
        <article><author>Jack</author><title>Alpha</title><year>1999</year></article>\
        <article><author>Jack</author><title>Midway</title><year>1995</year></article>\
        <article><author>Jill</author><title>Beta</title><year>2002</year></article>\
    </bib>";
    let db = TimberDb::load_xml(xml, &StoreOptions::in_memory()).unwrap();
    let q = agg_query("avg");
    let rollup = db.query(&q, PlanMode::GroupByRewrite).unwrap();
    let materialized = db.query(&q, PlanMode::GroupByMaterialized).unwrap();
    let rx = rollup.to_xml_on(db.store()).unwrap();
    assert_eq!(rx, materialized.to_xml_on(db.store()).unwrap());
    assert!(rx.contains("<avg>1998.3333333333333</avg>"), "{rx}");
    // Whole-number averages render as integers (2002, not 2002.0).
    assert!(rx.contains("<avg>2002</avg>"), "{rx}");
}

#[test]
fn fractional_values_fold_identically() {
    // Fractional years force real floating-point accumulation: the
    // running Sum/Avg folds must replay the materialized kernel's value
    // order bit for bit, at every thread count.
    let xml = "<bib>\
        <article><author>Jack</author><title>A</title><year>0.1</year></article>\
        <article><author>Jack</author><title>B</title><year>0.2</year></article>\
        <article><author>Jack</author><author>Jill</author><title>C</title><year>0.30000000000000004</year></article>\
        <article><author>Jill</author><title>D</title><year>12.5</year></article>\
        <article><author>Jill</author><title>E</title><year>not-a-number</year></article>\
    </bib>";
    let mut db = TimberDb::load_xml(xml, &StoreOptions::in_memory()).unwrap();
    for threads in thread_matrix(&[1, 4]) {
        db.set_threads(threads);
        for func in ["sum", "avg", "min", "max"] {
            let q = agg_query(func);
            let reference = run(
                &mut db,
                &q,
                PlanMode::GroupByMaterialized,
                ExecMode::Physical,
                256,
            );
            let rollup = run(
                &mut db,
                &q,
                PlanMode::GroupByRewrite,
                ExecMode::Physical,
                16,
            );
            assert_eq!(reference, rollup, "threads={threads} func={func}");
        }
    }
}

/// Random multi-author bibliographies: the multi-valued grouping basis
/// (an article with k authors contributes to k accumulators) and group
/// sizes vary per case.
fn bibliography(g: &mut Gen) -> String {
    const POOL: [&str; 5] = ["Jack", "Jill", "John", "Jane", "Joan"];
    let articles = g.usize_in(0, 11);
    let mut s = String::from("<bib>");
    for n in 0..articles {
        s.push_str("<article>");
        let k = g.usize_in(1, 3);
        let mut picked = Vec::new();
        while picked.len() < k {
            let i = g.usize_in(0, POOL.len() - 1);
            if !picked.contains(&i) {
                picked.push(i);
            }
        }
        picked.sort_unstable();
        for &i in &picked {
            s.push_str(&format!("<author>{}</author>", POOL[i]));
        }
        s.push_str(&format!("<title>Title {n}</title>"));
        s.push_str(&format!(
            "<year>{}.{}</year>",
            1970 + g.usize_in(0, 32),
            g.usize_in(0, 99)
        ));
        s.push_str("</article>");
    }
    s.push_str("</bib>");
    s
}

#[test]
fn rollup_matches_materialized_on_random_bibliographies() {
    check(
        "rollup_matches_materialized_on_random_bibliographies",
        24,
        |g| {
            let xml = bibliography(g);
            let mut db = TimberDb::load_xml(&xml, &StoreOptions::in_memory()).unwrap();
            db.set_threads([1, 4][g.usize_in(0, 1)]);
            let batch = [1, 16, 256][g.usize_in(0, 2)];
            for query in corpus() {
                let reference = run(
                    &mut db,
                    &query,
                    PlanMode::GroupByMaterialized,
                    ExecMode::Physical,
                    256,
                );
                let rollup = run(
                    &mut db,
                    &query,
                    PlanMode::GroupByRewrite,
                    ExecMode::Physical,
                    batch,
                );
                assert_eq!(reference, rollup, "batch={batch} on {xml}");
            }
        },
    );
}

fn fault_seeds() -> Vec<u64> {
    match std::env::var("CRASH_SEEDS") {
        Ok(s) => s.split(',').filter_map(|t| t.trim().parse().ok()).collect(),
        Err(_) => vec![1, 2, 3],
    }
}

#[test]
fn rollup_under_fault_schedules_is_correct_or_typed_error() {
    // On-disk database with a tiny pool so the rollup scan does real
    // physical I/O the schedules can hit. Contract: the byte-identical
    // fault-free answer, or a clean typed error — never a panic, never
    // a silently wrong aggregate.
    let xml = DblpGenerator::new(DblpConfig::sized(80)).generate_xml();
    let opts = StoreOptions {
        on_disk: true,
        pool_pages: 2,
        ..StoreOptions::in_memory()
    };
    let db = TimberDb::load_xml(&xml, &opts).unwrap();
    let queries: Vec<String> = vec![QUERY_COUNT.to_owned(), agg_query("avg")];
    let reference: Vec<String> = queries
        .iter()
        .map(|q| {
            let r = db.query(q, PlanMode::GroupByRewrite).unwrap();
            r.to_xml_on(db.store()).unwrap()
        })
        .collect();
    let mut injected = 0u64;
    for seed in fault_seeds() {
        for schedule in [
            FaultConfig::seeded(seed).with_read_error(0.02),
            FaultConfig::seeded(seed).with_read_flip(0.02),
        ] {
            db.set_faults(Some(schedule)).unwrap();
            for (qi, q) in queries.iter().enumerate() {
                match db.query(q, PlanMode::GroupByRewrite) {
                    Ok(result) => match result.to_xml_on(db.store()) {
                        Ok(out) => {
                            assert_eq!(out, reference[qi], "seed={seed}: silent corruption")
                        }
                        Err(e) => {
                            let _ = e.to_string();
                        }
                    },
                    Err(e) => {
                        let _ = e.to_string();
                    }
                }
            }
            injected += db.fault_stats().unwrap().total();
            db.set_faults(None).unwrap();
        }
    }
    assert!(injected > 0, "schedules must actually inject faults");
    // Disarmed, the store answers perfectly again.
    for (qi, q) in queries.iter().enumerate() {
        let r = db.query(q, PlanMode::GroupByRewrite).unwrap();
        assert_eq!(r.to_xml_on(db.store()).unwrap(), reference[qi]);
    }
}
