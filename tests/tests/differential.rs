//! Differential testing of the two executors: the batched physical
//! pipeline must produce byte-identical serialized output to the legacy
//! recursive interpreter — for every query of the E1/E2 corpus, in both
//! plan modes, across thread counts and batch sizes, and on randomly
//! generated bibliographies.

use smallrand::prop::{check, Gen};
use timber::{ExecMode, PlanMode, TimberDb};
use timber_integration_tests::{
    batch_matrix, fig6_db, thread_matrix, FIG6_DB, QUERY1, QUERY2, QUERY_COUNT,
};
use xmlstore::StoreOptions;

/// A projection-only query: no grouping, no join — exercises the
/// optimizer's select→project fusion and the streaming leaf.
const QUERY_PROJECT: &str = r#"
    FOR $a IN distinct-values(document("bib.xml")//author)
    RETURN <row> {$a} </row>
"#;

const CORPUS: [&str; 4] = [QUERY1, QUERY2, QUERY_COUNT, QUERY_PROJECT];

/// Serialized output of `query` under the given executor configuration.
fn run(db: &mut TimberDb, query: &str, mode: PlanMode, exec: ExecMode, batch: usize) -> String {
    db.set_exec_mode(exec);
    db.set_batch_size(batch);
    let r = db.query(query, mode).expect("query evaluates");
    r.to_xml_on(db.store()).expect("result serializes")
}

#[test]
fn physical_equals_legacy_on_corpus() {
    let mut db = fig6_db();
    for query in CORPUS {
        for mode in [PlanMode::Direct, PlanMode::GroupByRewrite] {
            let legacy = run(&mut db, query, mode, ExecMode::Legacy, 256);
            for batch in batch_matrix(&[1, 2, 3, 256]) {
                let phys = run(&mut db, query, mode, ExecMode::Physical, batch);
                assert_eq!(legacy, phys, "{mode:?} batch={batch} query: {query}");
            }
        }
    }
}

#[test]
fn physical_equals_legacy_across_thread_counts() {
    let mut db = fig6_db();
    for threads in thread_matrix(&[1, 2, 4]) {
        db.set_threads(threads);
        for query in CORPUS {
            for mode in [PlanMode::Direct, PlanMode::GroupByRewrite] {
                let legacy = run(&mut db, query, mode, ExecMode::Legacy, 256);
                for batch in batch_matrix(&[2]) {
                    let phys = run(&mut db, query, mode, ExecMode::Physical, batch);
                    assert_eq!(
                        legacy, phys,
                        "threads={threads} batch={batch} {mode:?} query: {query}"
                    );
                }
            }
        }
    }
}

#[test]
fn physical_run_records_metrics_consistent_with_result() {
    let mut db = fig6_db();
    db.set_exec_mode(ExecMode::Physical);
    for query in CORPUS {
        for mode in [PlanMode::Direct, PlanMode::GroupByRewrite] {
            let r = db.query(query, mode).unwrap();
            let m = r.metrics.as_ref().expect("physical run records metrics");
            assert_eq!(m.trees_out, r.len(), "{mode:?} query: {query}");
            assert!(m.node_count() >= 1);
        }
    }
}

/// The random-bibliography generator of the plan-equivalence suite.
fn bibliography(g: &mut Gen) -> String {
    const POOL: [&str; 5] = ["Jack", "Jill", "John", "Jane", "Joan"];
    let articles = g.usize_in(0, 11);
    let mut s = String::from("<bib>");
    for _ in 0..articles {
        s.push_str("<article>");
        let k = g.usize_in(1, 3);
        let mut picked = Vec::new();
        while picked.len() < k {
            let i = g.usize_in(0, POOL.len() - 1);
            if !picked.contains(&i) {
                picked.push(i);
            }
        }
        picked.sort_unstable();
        for &i in &picked {
            s.push_str(&format!("<author>{}</author>", POOL[i]));
        }
        s.push_str(&format!("<title>Title {}</title>", g.usize_in(0, 999)));
        s.push_str("</article>");
    }
    s.push_str("</bib>");
    s
}

#[test]
fn physical_equals_legacy_on_random_bibliographies() {
    check("physical_equals_legacy_on_random_bibliographies", 32, |g| {
        let xml = bibliography(g);
        let mut db = TimberDb::load_xml(&xml, &StoreOptions::in_memory()).unwrap();
        let batch = [1, 3, 256][g.usize_in(0, 2)];
        for query in CORPUS {
            for mode in [PlanMode::Direct, PlanMode::GroupByRewrite] {
                let legacy = run(&mut db, query, mode, ExecMode::Legacy, 256);
                let phys = run(&mut db, query, mode, ExecMode::Physical, batch);
                assert_eq!(legacy, phys, "{mode:?} batch={batch} on {xml}");
            }
        }
    });
}

#[test]
fn executors_agree_on_empty_database() {
    let mut db = TimberDb::load_xml("<bib/>", &StoreOptions::in_memory()).unwrap();
    for query in CORPUS {
        for mode in [PlanMode::Direct, PlanMode::GroupByRewrite] {
            let legacy = run(&mut db, query, mode, ExecMode::Legacy, 256);
            let phys = run(&mut db, query, mode, ExecMode::Physical, 1);
            assert_eq!(legacy, phys, "{mode:?} query: {query}");
            assert!(phys.is_empty());
        }
    }
}

#[test]
fn explain_analyze_output_matches_plain_query() {
    // The analyzed execution is the same physical pipeline; its result
    // must match a plain physical run byte for byte.
    let db = TimberDb::load_xml(FIG6_DB, &StoreOptions::in_memory()).unwrap();
    for query in CORPUS {
        for mode in [PlanMode::Direct, PlanMode::GroupByRewrite] {
            let plain = db.query(query, mode).unwrap();
            let analyzed = db.explain_analyze(query, mode).unwrap();
            assert_eq!(
                plain.to_xml_on(db.store()).unwrap(),
                analyzed.result.to_xml_on(db.store()).unwrap(),
                "{mode:?} query: {query}"
            );
        }
    }
}
