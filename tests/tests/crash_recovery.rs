//! Crash-recovery suite: GROUPBY and aggregate queries under injected
//! storage faults.
//!
//! The contract this suite enforces, for every fault schedule: a query
//! returns either (a) the byte-identical answer of a fault-free run —
//! transient faults absorbed by the retry path — or (b) a clean typed
//! [`timber::TimberError`]. Never a panic, never a silently wrong
//! answer.
//!
//! Query evaluation itself never writes pages (loads are the only
//! writers), so write-path faults are driven end-to-end here through
//! [`DiskManager`] page churn, with the query-level tests asserting the
//! complementary invariant: a write-fault schedule cannot perturb a
//! read-only workload.
//!
//! Schedules are deterministic (seeded via the in-tree `smallrand`), so
//! CI runs are reproducible. The seed set defaults to {1, 2, 3} and can
//! be overridden with the `CRASH_SEEDS` environment variable
//! (comma-separated), which is how the CI fault-injection job pins its
//! matrix.

use datagen::{DblpConfig, DblpGenerator};
use timber::{PlanMode, TimberDb};
use xmlstore::storage::DiskManager;
use xmlstore::{
    FaultConfig, FaultInjector, FaultStats, PageId, StoreError, StoreOptions, PAGE_HEADER_SIZE,
    PAGE_SIZE,
};

/// The paper's grouping query: authors with the titles they wrote.
const QUERY_TITLES: &str = r#"
    FOR $a IN distinct-values(document("bib.xml")//author)
    RETURN <authorpubs>
      {$a}
      { FOR $b IN document("bib.xml")//article
        WHERE $a = $b/author
        RETURN $b/title }
    </authorpubs>
"#;

/// An aggregate query (COUNT per group).
const QUERY_COUNT: &str = r#"
    FOR $a IN distinct-values(document("bib.xml")//author)
    LET $t := document("bib.xml")//article[author = $a]/title
    RETURN <authorpubs> {$a} {count($t)} </authorpubs>
"#;

fn seeds() -> Vec<u64> {
    match std::env::var("CRASH_SEEDS") {
        Ok(s) => s.split(',').filter_map(|t| t.trim().parse().ok()).collect(),
        Err(_) => vec![1, 2, 3],
    }
}

/// Every (query, plan) combination the suite drives, in a fixed order
/// shared with [`reference`].
fn workload() -> Vec<(&'static str, PlanMode)> {
    [QUERY_TITLES, QUERY_COUNT]
        .iter()
        .flat_map(|&q| [PlanMode::Direct, PlanMode::GroupByRewrite].map(|m| (q, m)))
        .collect()
}

/// A small on-disk database with a pool far smaller than the data, so
/// queries do real physical I/O that fault schedules can corrupt.
fn db(articles: usize, pool_pages: usize) -> TimberDb {
    let xml = DblpGenerator::new(DblpConfig::sized(articles)).generate_xml();
    let opts = StoreOptions {
        on_disk: true,
        pool_pages,
        ..StoreOptions::in_memory()
    };
    TimberDb::load_xml(&xml, &opts).unwrap()
}

/// Fault-free reference answers for the whole workload.
fn reference(db: &TimberDb) -> Vec<String> {
    workload()
        .iter()
        .map(|&(q, m)| {
            let r = db.query(q, m).unwrap();
            r.to_xml_on(db.store()).unwrap()
        })
        .collect()
}

/// Run the workload with `schedule` armed; every outcome must be the
/// reference answer or a typed error, and once the schedule is disarmed
/// the database must answer perfectly again (queries never write, so no
/// schedule can inflict permanent damage on a read-only workload).
/// Returns the injector's counters as observed just before disarming.
fn drive(db: &TimberDb, reference: &[String], schedule: FaultConfig, label: &str) -> FaultStats {
    db.set_faults(Some(schedule)).unwrap();
    let mut ok = 0usize;
    let mut failed = 0usize;
    for (qi, (query, mode)) in workload().into_iter().enumerate() {
        match db.query(query, mode) {
            Ok(result) => {
                // A result that survived injected faults must be the
                // right one — anything else is silent corruption.
                match result.to_xml_on(db.store()) {
                    Ok(xml) => {
                        assert_eq!(xml, reference[qi], "{label}: silent corruption");
                        ok += 1;
                    }
                    Err(e) => {
                        let _ = e.to_string();
                        failed += 1;
                    }
                }
            }
            Err(e) => {
                // Typed error: fine. Force the Display path too, so a
                // panicking formatter would be caught here.
                let _ = e.to_string();
                failed += 1;
            }
        }
    }
    assert_eq!(ok + failed, 4, "{label}: every query must finish");
    let stats = db.fault_stats().unwrap();
    db.set_faults(None).unwrap();
    for (qi, (query, mode)) in workload().into_iter().enumerate() {
        let r = db.query(query, mode).unwrap();
        assert_eq!(
            r.to_xml_on(db.store()).unwrap(),
            reference[qi],
            "{label}: store must recover after disarming"
        );
    }
    stats
}

#[test]
fn transient_read_errors_are_absorbed_or_typed() {
    // A two-page pool: almost every access is a physical read the
    // schedule can hit.
    let db = db(80, 2);
    let reference = reference(&db);
    let mut injected = 0u64;
    let retries_before = db.store().io_stats().buffer.retries;
    for seed in seeds() {
        // Low error rate: the retry path absorbs almost everything.
        let schedule = FaultConfig::seeded(seed).with_read_error(0.02);
        injected += drive(&db, &reference, schedule, &format!("read_err seed={seed}")).total();
    }
    assert!(injected > 0, "schedules must actually inject read errors");
    assert!(
        db.store().io_stats().buffer.retries > retries_before,
        "absorbed transients must show up in the retry counter"
    );
}

#[test]
fn read_bit_flips_are_caught_or_healed() {
    let db = db(80, 2);
    let reference = reference(&db);
    let mut injected = 0u64;
    for seed in seeds() {
        let schedule = FaultConfig::seeded(seed).with_read_flip(0.02);
        injected += drive(&db, &reference, schedule, &format!("read_flip seed={seed}")).total();
    }
    assert!(injected > 0, "schedules must actually inject bit flips");
}

#[test]
fn mixed_schedule_with_predicates() {
    for seed in seeds() {
        let db = db(60, 6);
        let reference = reference(&db);
        // Everything at once, starting after the first 50 operations,
        // parsed from a CLI-style spec string (the same syntax
        // `reproduce --faults` takes).
        let spec = format!("seed={seed},read_err=0.01,flip=0.01,write_err=0.01,after=50");
        let schedule: FaultConfig = spec.parse().unwrap();
        drive(&db, &reference, schedule, &format!("mixed seed={seed}"));
    }
}

#[test]
fn write_fault_schedules_cannot_perturb_queries() {
    // Query evaluation never writes a page, so a pure write-fault
    // schedule must leave the whole workload byte-identical.
    let db = db(40, 4);
    let reference = reference(&db);
    for seed in seeds() {
        let schedule = FaultConfig::seeded(seed)
            .with_write_flip(0.5)
            .with_torn_write(0.5)
            .with_write_error(0.5);
        let stats = drive(
            &db,
            &reference,
            schedule,
            &format!("write-only seed={seed}"),
        );
        assert_eq!(
            stats.total(),
            0,
            "read-only workload must never trip write faults"
        );
    }
}

/// Deterministic page image: generation `tag` of page `p` under `seed`.
fn fill(image: &mut [u8; PAGE_SIZE], seed: u64, p: u32, tag: u8) {
    for (i, b) in image.iter_mut().enumerate() {
        *b = (seed as u8) ^ (p as u8) ^ tag ^ (i as u8);
    }
}

/// Drive write faults end-to-end through the disk layer: seed pages with
/// generation A, rewrite them as generation B under `schedule`, then
/// verify every page reads back as exactly one generation or fails
/// typed. A torn or bit-flipped write must never read back as a silent
/// blend. Returns how many pages were caught corrupted.
fn write_churn(seed: u64, schedule: FaultConfig, label: &str) -> usize {
    const NPAGES: u32 = 32;
    let mut dm = DiskManager::temp_file().unwrap();
    let mut image = [0u8; PAGE_SIZE];
    for p in 0..NPAGES {
        let pid = dm.allocate().unwrap();
        fill(&mut image, seed, p, 0xA5);
        dm.write_page(pid, &image).unwrap();
    }
    dm.set_fault_injector(Some(FaultInjector::new(schedule)));
    let mut write_failed = vec![false; NPAGES as usize];
    for p in 0..NPAGES {
        fill(&mut image, seed, p, 0x5A);
        match dm.write_page(PageId(p), &image) {
            Ok(()) => {}
            Err(StoreError::Io(_)) => write_failed[p as usize] = true,
            Err(other) => panic!("{label}: write fault must surface as I/O error, got {other:?}"),
        }
    }
    dm.set_fault_injector(None);
    let mut caught = 0usize;
    let mut out = [0u8; PAGE_SIZE];
    let mut expected = [0u8; PAGE_SIZE];
    for p in 0..NPAGES {
        match dm.read_page(PageId(p), &mut out) {
            Ok(()) => {
                // The page verified, so it must be exactly one
                // generation: the old one if its rewrite failed cleanly,
                // the new one otherwise.
                let tag = if write_failed[p as usize] { 0xA5 } else { 0x5A };
                fill(&mut expected, seed, p, tag);
                assert_eq!(
                    out[PAGE_HEADER_SIZE..],
                    expected[PAGE_HEADER_SIZE..],
                    "{label}: page {p} verified but holds a blended image"
                );
            }
            Err(StoreError::Corruption { page, .. }) => {
                assert_eq!(page, p, "{label}: corruption reported on the wrong page");
                caught += 1;
            }
            Err(other) => panic!("{label}: unexpected error reading page {p}: {other:?}"),
        }
    }
    caught
}

#[test]
fn persistent_write_flips_never_corrupt_silently() {
    let mut caught = 0usize;
    for seed in seeds() {
        let schedule = FaultConfig::seeded(seed).with_write_flip(0.2);
        caught += write_churn(seed, schedule, &format!("write_flip seed={seed}"));
    }
    assert!(
        caught > 0,
        "write flips must be caught by read-back verification"
    );
}

#[test]
fn torn_writes_never_corrupt_silently() {
    let mut caught = 0usize;
    for seed in seeds() {
        let schedule = FaultConfig::seeded(seed).with_torn_write(0.2);
        caught += write_churn(seed, schedule, &format!("torn seed={seed}"));
    }
    assert!(
        caught > 0,
        "torn writes must be caught by read-back verification"
    );
}

#[test]
fn poked_corruption_is_typed_then_recoverable() {
    let db = db(40, 4);
    let reference = reference(&db);
    // Physically corrupt one byte of page 0 (a heap page) behind the
    // store's back.
    db.clear_buffer_pool().unwrap();
    db.store().poke_page_byte(0, 100, 0x40).unwrap();
    let mut saw_error = false;
    for (query, mode) in workload() {
        match db.query(query, mode) {
            Ok(_) => {}
            Err(e) => {
                saw_error = true;
                assert!(
                    e.to_string().contains("checksum"),
                    "expected a corruption error, got: {e}"
                );
            }
        }
    }
    assert!(saw_error, "queries touching page 0 must fail typed");
    // Undo the damage: everything works again.
    db.store().poke_page_byte(0, 100, 0x40).unwrap();
    db.clear_buffer_pool().unwrap();
    for (qi, (query, mode)) in workload().into_iter().enumerate() {
        let r = db.query(query, mode).unwrap();
        assert_eq!(r.to_xml_on(db.store()).unwrap(), reference[qi]);
    }
}

#[test]
fn worker_panic_is_contained_and_store_survives() {
    use tax::ops::select::select_db_opts;
    use tax::pattern::{Axis, PatternTree, Pred};
    use tax::ExecOptions;

    let db = db(60, 8);
    let s = db.store();
    let mut p = PatternTree::with_root(Pred::tag("doc_root"));
    let art = p.add_child(p.root(), Axis::Descendant, Pred::tag("article"));
    let healthy = select_db_opts(s, &p, &[art], &ExecOptions::with_threads(4)).unwrap();
    assert!(!healthy.is_empty());

    // A per-tree computation that panics on one input must surface as
    // tax::Error::Panic, not tear down the thread pool or the process.
    let items: Vec<usize> = (0..healthy.len()).collect();
    let err = tax::exec::par_map(&ExecOptions::with_threads(4), &items, |_, &i| {
        if i == items.len() / 2 {
            panic!("poisoned tree");
        }
        Ok(i)
    })
    .unwrap_err();
    assert!(
        matches!(err, tax::Error::Panic { .. }),
        "expected contained panic, got {err:?}"
    );

    // The store (whose pool shards the panicking workers shared) still
    // answers queries correctly afterwards.
    let again = select_db_opts(s, &p, &[art], &ExecOptions::with_threads(4)).unwrap();
    assert_eq!(healthy, again);
}

#[test]
fn schedules_are_deterministic_across_runs() {
    for seed in seeds() {
        let outcome = || -> (Vec<bool>, u64) {
            // Working set well above the pool: the workload thrashes, so
            // the schedule sees a long stream of physical reads.
            let db = db(60, 2);
            let schedule = FaultConfig::seeded(seed)
                .with_read_error(0.25)
                .with_read_flip(0.25);
            db.set_faults(Some(schedule)).unwrap();
            let oks: Vec<bool> = [PlanMode::Direct, PlanMode::GroupByRewrite]
                .map(|m| db.query(QUERY_TITLES, m).is_ok())
                .to_vec();
            let injected = db.fault_stats().unwrap().total();
            (oks, injected)
        };
        let a = outcome();
        let b = outcome();
        assert_eq!(a, b, "seed {seed} must replay identically");
        assert!(a.1 > 0, "seed {seed}: schedule must actually inject");
    }
}
