//! Golden EXPLAIN snapshots: the full `TimberDb::explain` text — direct
//! plan, optimized plan, and the optimizer's rule-firing trace — pinned
//! for the corpus queries. Any change to the translator, a rewrite
//! rule, or plan rendering shows up as a readable diff here.

use timber::PlanMode;
use timber_integration_tests::{fig6_db, QUERY1, QUERY_COUNT};

const QUERY_PROJECT: &str = r#"
    FOR $a IN distinct-values(document("bib.xml")//author)
    RETURN <row> {$a} </row>
"#;

#[test]
fn query1_explain_snapshot() {
    let expected = "\
== direct plan ==
StitchConstruct <authorpubs> key: outer.$2 = inner.$3 extract=[\"$6*\"]
  DupElim pattern=[$1:doc_root, $1-ad->$2:author] by=$2
    Project pattern=[$1:doc_root, $1-ad->$2:author] PL=[\"$1\", \"$2*\"] anchor_root=true
      SelectDb pattern=[$1:doc_root, $1-ad->$2:author] SL=[\"$2\"]
  LeftOuterJoinDb on left.$2 = right.$3 right=[$1:doc_root, $1-ad->$2:article, $2-pc->$3:author, $2-pc->$4:title] SL=[\"$2\"]
    DupElim pattern=[$1:doc_root, $1-ad->$2:author] by=$2
      Project pattern=[$1:doc_root, $1-ad->$2:author] PL=[\"$1\", \"$2*\"] anchor_root=true
        SelectDb pattern=[$1:doc_root, $1-ad->$2:author] SL=[\"$2\"]

== optimized plan ==
Rename to <authorpubs>
  Project pattern=[$1:TAX_group_root, $1-pc->$2:TAX_grouping_basis, $2-pc->$3:author, $1-pc->$4:TAX_group_subroot, $4-pc->$5:article, $5-pc->$6:title] PL=[\"$1\", \"$3*\", \"$6*\"] anchor_root=true
    GroupBy pattern=[$1:article, $1-pc->$2:author] basis=[\"$2.content\"] ordering=[]
      SelectProject pattern=[$1:article] SL=[\"$1\"] PL=[\"$1*\"]

== rewrite trace ==
pass 1: groupby-rewrite
pass 1: projection-prune
pass 1: select-project-fuse
";
    assert_eq!(fig6_db().explain(QUERY1).unwrap(), expected);
}

#[test]
fn count_query_explain_snapshot() {
    let expected = "\
== direct plan ==
StitchConstruct <authorpubs> key: outer.$2 = inner.$3 extract=[\"$6*\"] agg=Count<count>
  DupElim pattern=[$1:doc_root, $1-ad->$2:author] by=$2
    Project pattern=[$1:doc_root, $1-ad->$2:author] PL=[\"$1\", \"$2*\"] anchor_root=true
      SelectDb pattern=[$1:doc_root, $1-ad->$2:author] SL=[\"$2\"]
  LeftOuterJoinDb on left.$2 = right.$3 right=[$1:doc_root, $1-ad->$2:article, $2-pc->$3:author, $2-pc->$4:title] SL=[\"$2\"]
    DupElim pattern=[$1:doc_root, $1-ad->$2:author] by=$2
      Project pattern=[$1:doc_root, $1-ad->$2:author] PL=[\"$1\", \"$2*\"] anchor_root=true
        SelectDb pattern=[$1:doc_root, $1-ad->$2:author] SL=[\"$2\"]

== optimized plan ==
Rename to <authorpubs>
  Rollup Count(member $2) as <count> flat pattern=[$1:article, $1-pc->$2:author] basis=[\"$2.content\"] member=[$1:article, $1-pc->$2:title]
    SelectProject pattern=[$1:article] SL=[\"$1\"] PL=[\"$1*\"]

== rewrite trace ==
pass 1: groupby-rewrite
pass 1: rollup-fuse
pass 1: projection-prune
pass 1: select-project-fuse
";
    assert_eq!(fig6_db().explain(QUERY_COUNT).unwrap(), expected);
}

#[test]
fn projection_only_explain_snapshot() {
    // No grouping, no join: only the select→project fusion fires (the
    // root-pruning rule refuses because the projection list keeps the
    // doc_root node).
    let expected = "\
== direct plan ==
StitchConstruct <row> key: outer.$2 = inner.$1 extract=[]
  DupElim pattern=[$1:doc_root, $1-ad->$2:author] by=$2
    Project pattern=[$1:doc_root, $1-ad->$2:author] PL=[\"$1\", \"$2*\"] anchor_root=true
      SelectDb pattern=[$1:doc_root, $1-ad->$2:author] SL=[\"$2\"]

== optimized plan ==
StitchConstruct <row> key: outer.$2 = inner.$1 extract=[]
  DupElim pattern=[$1:doc_root, $1-ad->$2:author] by=$2
    SelectProject pattern=[$1:doc_root, $1-ad->$2:author] SL=[\"$2\"] PL=[\"$1\", \"$2*\"]

== rewrite trace ==
pass 1: select-project-fuse
";
    assert_eq!(fig6_db().explain(QUERY_PROJECT).unwrap(), expected);
}

#[test]
fn explain_analyze_structural_snapshot() {
    // Timings and I/O counts vary run to run; pin the structure: section
    // headers, one metrics line per plan operator, and the counters each
    // line must carry.
    let db = fig6_db();
    let a = db
        .explain_analyze(QUERY1, PlanMode::GroupByRewrite)
        .unwrap();
    let text = a.render();
    assert!(text.starts_with("== plan (GroupByRewrite mode, groupby rewrite fired) ==\n"));
    assert!(text.contains("== rewrite trace ==\npass 1: groupby-rewrite\n"));
    assert!(text.contains("== execution (physical, batch=256) ==\n"));
    let metric_lines: Vec<&str> = text.lines().filter(|l| l.contains(" | in=")).collect();
    assert_eq!(metric_lines.len(), 4, "{text}");
    for line in &metric_lines {
        for field in ["out=", "batches=", "time=", "pages=", "disk_reads=", "clones="] {
            assert!(line.contains(field), "{line}");
        }
    }
    assert!(text.trim_end().ends_with("disk reads"), "{text}");
    assert!(text.contains("3 trees in "), "{text}");
}

#[test]
fn grouped_plans_stay_inside_clone_and_io_budget() {
    // The clone budget of the symbol-clean data path: the grouped plans
    // answer tag tests, grouping keys, and counts from the columnar
    // label region (zero buffer-pool page requests) and move trees by
    // reference (zero deep `Tree` clones). Any regression — a stray
    // `.clone()` on a batch, or a kernel falling back to record reads —
    // shows up here as a nonzero counter.
    let db = fig6_db();
    for (query, mode) in [
        (QUERY1, PlanMode::GroupByRewrite),
        (QUERY_COUNT, PlanMode::GroupByRewrite),
    ] {
        let a = db.explain_analyze(query, mode).unwrap();
        let m = &a.metrics;
        assert_eq!(
            m.total_page_requests(),
            0,
            "grouped plan touched data pages for {query:?}:\n{}",
            m.render()
        );
        assert_eq!(
            m.total_tree_clones(),
            0,
            "grouped plan deep-cloned trees for {query:?}:\n{}",
            m.render()
        );
    }
}

#[test]
fn explain_analyze_rollup_operator_line() {
    // The fused count plan runs a Rollup blocking sink; its metrics line
    // must report trees in (articles scanned), groups out, and the
    // shard statistics, like the other sinks.
    let mut db = fig6_db();
    db.set_threads(4);
    let a = db
        .explain_analyze(QUERY_COUNT, PlanMode::GroupByRewrite)
        .unwrap();
    let text = a.render();
    assert!(text.contains("pass 1: rollup-fuse"), "{text}");
    let rollup_line = text
        .lines()
        .find(|l| l.trim_start().starts_with("Rollup Count") && l.contains(" | in="))
        .unwrap_or_else(|| panic!("no Rollup metrics line in:\n{text}"));
    // Figure 6: 3 articles in, 3 author groups out.
    assert!(rollup_line.contains("in=3"), "{rollup_line}");
    assert!(rollup_line.contains("out=3"), "{rollup_line}");
    assert!(rollup_line.contains("parts="), "{rollup_line}");
    assert!(rollup_line.contains("skew="), "{rollup_line}");
    // No GroupBy or Aggregate operator executed.
    assert!(!text.contains("\n  GroupBy"), "{text}");
    assert!(!text.contains("Aggregate Count"), "{text}");
}
