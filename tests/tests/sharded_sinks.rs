//! Property tests for the hash-partitioned blocking sinks: GroupBy,
//! the left outer join, and the RETURN stitch running over worker
//! threads must stay **byte-identical** to the `threads=1` kernels —
//! including the paper's non-partitioning grouping semantics (a
//! two-author article belongs to both authors' groups even when those
//! groups hash to different shards) — and must stay correct-or-typed
//! under fault-injection schedules.

use datagen::{DblpConfig, DblpGenerator};
use smallrand::prop::{check, Gen};
use timber::{ExecMode, PlanMode, TimberDb};
use timber_integration_tests::{thread_matrix, QUERY1, QUERY2, QUERY_COUNT};
use xmlstore::{FaultConfig, StoreOptions};

const CORPUS: [&str; 3] = [QUERY1, QUERY2, QUERY_COUNT];

/// Serialized output under the physical executor at a given
/// thread count and batch size.
fn run_physical(
    db: &mut TimberDb,
    query: &str,
    mode: PlanMode,
    threads: usize,
    batch: usize,
) -> String {
    db.set_exec_mode(ExecMode::Physical);
    db.set_threads(threads);
    db.set_batch_size(batch);
    let r = db.query(query, mode).expect("query evaluates");
    r.to_xml_on(db.store()).expect("result serializes")
}

/// A random bibliography with heavy author overlap, so grouping bases
/// are multi-valued and articles duplicate across groups.
fn bibliography(g: &mut Gen) -> String {
    const POOL: [&str; 5] = ["Jack", "Jill", "John", "Jane", "Joan"];
    let articles = g.usize_in(0, 14);
    let mut s = String::from("<bib>");
    for _ in 0..articles {
        s.push_str("<article>");
        let k = g.usize_in(1, 3);
        let mut picked = Vec::new();
        while picked.len() < k {
            let i = g.usize_in(0, POOL.len() - 1);
            if !picked.contains(&i) {
                picked.push(i);
            }
        }
        picked.sort_unstable();
        for &i in &picked {
            s.push_str(&format!("<author>{}</author>", POOL[i]));
        }
        s.push_str(&format!("<title>Title {}</title>", g.usize_in(0, 999)));
        s.push_str("</article>");
    }
    s.push_str("</bib>");
    s
}

#[test]
fn sharded_sinks_byte_identical_on_random_bibliographies() {
    check(
        "sharded_sinks_byte_identical_on_random_bibliographies",
        24,
        |g| {
            let xml = bibliography(g);
            let mut db = TimberDb::load_xml(&xml, &StoreOptions::in_memory()).unwrap();
            let batch = [1, 3, 16, 256][g.usize_in(0, 3)];
            for query in CORPUS {
                for mode in [PlanMode::Direct, PlanMode::GroupByRewrite] {
                    let serial = run_physical(&mut db, query, mode, 1, batch);
                    for threads in thread_matrix(&[2, 4, 8]) {
                        let sharded = run_physical(&mut db, query, mode, threads, batch);
                        assert_eq!(
                            serial, sharded,
                            "threads={threads} batch={batch} {mode:?} on {xml}"
                        );
                    }
                }
            }
        },
    );
}

#[test]
fn multivalued_basis_duplicates_across_shards() {
    // Two authors of one article hash wherever they hash — the article
    // must land in BOTH author groups, exactly as serially (Fig. 3's
    // non-partitioning semantics). With many threads and few keys, the
    // authors of some article provably straddle shards.
    let xml = "<bib>\
        <article><author>Jack</author><author>John</author><title>T1</title></article>\
        <article><author>Jill</author><author>Jack</author><title>T2</title></article>\
        <article><author>John</author><author>Jill</author><title>T3</title></article>\
    </bib>";
    let mut db = TimberDb::load_xml(xml, &StoreOptions::in_memory()).unwrap();
    let serial = run_physical(&mut db, QUERY1, PlanMode::GroupByRewrite, 1, 256);
    // Each title appears under both of its authors.
    for t in [
        "<title>T1</title>",
        "<title>T2</title>",
        "<title>T3</title>",
    ] {
        assert_eq!(serial.matches(t).count(), 2, "{t} in {serial}");
    }
    for threads in [2, 3, 8] {
        let sharded = run_physical(&mut db, QUERY1, PlanMode::GroupByRewrite, threads, 256);
        assert_eq!(serial, sharded, "threads={threads}");
    }
}

#[test]
fn sharded_sinks_correct_or_typed_error_under_faults() {
    // An on-disk store with a tiny pool, so sharded kernels do real
    // page I/O that the armed schedule can fail: every outcome must be
    // the fault-free serial answer or a typed error, never a panic or
    // a silently wrong result.
    let xml = DblpGenerator::new(DblpConfig::sized(60)).generate_xml();
    let opts = StoreOptions {
        on_disk: true,
        pool_pages: 2,
        ..StoreOptions::in_memory()
    };
    let mut db = TimberDb::load_xml(&xml, &opts).unwrap();
    let reference: Vec<String> = CORPUS
        .iter()
        .map(|q| run_physical(&mut db, q, PlanMode::GroupByRewrite, 1, 64))
        .collect();
    let mut injected = 0u64;
    for seed in [7u64, 11, 13] {
        let schedule = FaultConfig::seeded(seed)
            .with_read_error(0.02)
            .with_read_flip(0.01);
        db.set_faults(Some(schedule)).unwrap();
        db.set_exec_mode(ExecMode::Physical);
        db.set_threads(4);
        db.set_batch_size(64);
        for (qi, query) in CORPUS.iter().enumerate() {
            // A typed error is acceptable under faults; an Ok result must
            // match the fault-free reference (serialization itself may
            // also hit a fault, hence the inner `if let`).
            if let Ok(r) = db.query(query, PlanMode::GroupByRewrite) {
                if let Ok(xml) = r.to_xml_on(db.store()) {
                    assert_eq!(xml, reference[qi], "seed={seed} query #{qi}");
                }
            }
        }
        injected += db.fault_stats().unwrap().total();
        db.set_faults(None).unwrap();
        // Disarmed, the sharded pipeline answers perfectly again.
        for (qi, query) in CORPUS.iter().enumerate() {
            assert_eq!(
                run_physical(&mut db, query, PlanMode::GroupByRewrite, 4, 64),
                reference[qi],
                "post-disarm seed={seed} query #{qi}"
            );
        }
    }
    assert!(injected > 0, "schedules must actually inject faults");
}

#[test]
fn explain_analyze_reports_partition_counts() {
    let mut db = timber_integration_tests::fig6_db();
    for threads in thread_matrix(&[1, 4]) {
        db.set_threads(threads);
        for (query, mode) in [
            (QUERY1, PlanMode::GroupByRewrite),
            (QUERY2, PlanMode::Direct),
        ] {
            let text = db.explain_analyze(query, mode).unwrap().render();
            let parts: Vec<&str> = text.lines().filter(|l| l.contains("parts=")).collect();
            assert!(
                !parts.is_empty(),
                "threads={threads} {mode:?}: no sink reported partitions in {text}"
            );
            assert!(
                parts.iter().all(|l| l.contains("skew=")),
                "threads={threads}: {text}"
            );
        }
    }
}
