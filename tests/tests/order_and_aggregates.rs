//! ORDER BY (the GROUPBY ordering list, Sec. 3 / Sec. 4.1 "only if
//! sorting was requested by the user") and the full aggregate set of
//! Sec. 4.3 (`count`, `sum`, `min`, `max`, `avg`), under both plans.

use timber::{PlanMode, TimberDb};
use xmlstore::StoreOptions;

const DB: &str = "<bib>\
    <article><author>Jack</author><title>Zeta</title><year>2001</year></article>\
    <article><author>Jack</author><title>Alpha</title><year>1999</year></article>\
    <article><author>Jack</author><title>Midway</title><year>1995</year></article>\
    <article><author>Jill</author><title>Beta</title><year>2002</year></article>\
</bib>";

fn db() -> TimberDb {
    TimberDb::load_xml(DB, &StoreOptions::in_memory()).unwrap()
}

fn q_order(direction: &str) -> String {
    format!(
        r#"
        FOR $a IN distinct-values(document("bib.xml")//author)
        RETURN <authorpubs>
          {{$a}}
          {{ FOR $b IN document("bib.xml")//article
             WHERE $a = $b/author
             ORDER BY $b/title {direction}
             RETURN $b/title }}
        </authorpubs>
    "#
    )
}

#[test]
fn order_by_ascending_title() {
    let db = db();
    for mode in [PlanMode::Direct, PlanMode::GroupByRewrite] {
        let r = db.query(&q_order("ASCENDING"), mode).unwrap();
        let xml = r.to_xml_on(db.store()).unwrap();
        let jack = xml.lines().next().unwrap();
        let titles = ["Alpha", "Midway", "Zeta"];
        let positions: Vec<usize> = titles.iter().map(|t| jack.find(t).unwrap()).collect();
        assert!(
            positions.windows(2).all(|w| w[0] < w[1]),
            "{mode:?}: {jack}"
        );
    }
}

#[test]
fn order_by_descending_title() {
    let db = db();
    for mode in [PlanMode::Direct, PlanMode::GroupByRewrite] {
        let r = db.query(&q_order("DESCENDING"), mode).unwrap();
        let xml = r.to_xml_on(db.store()).unwrap();
        let jack = xml.lines().next().unwrap();
        let z = jack.find("Zeta").unwrap();
        let m = jack.find("Midway").unwrap();
        let a = jack.find("Alpha").unwrap();
        assert!(z < m && m < a, "{mode:?}: {jack}");
    }
}

#[test]
fn order_by_different_path_than_return() {
    // Sort by year, emit titles: 1995 Midway, 1999 Alpha, 2001 Zeta.
    let db = db();
    let q = r#"
        FOR $a IN distinct-values(document("bib.xml")//author)
        RETURN <authorpubs>
          {$a}
          { FOR $b IN document("bib.xml")//article
            WHERE $a = $b/author
            ORDER BY $b/year ASCENDING
            RETURN $b/title }
        </authorpubs>
    "#;
    let mut outputs = Vec::new();
    for mode in [PlanMode::Direct, PlanMode::GroupByRewrite] {
        let r = db.query(q, mode).unwrap();
        let xml = r.to_xml_on(db.store()).unwrap();
        let jack = xml.lines().next().unwrap().to_owned();
        let m = jack.find("Midway").unwrap();
        let a = jack.find("Alpha").unwrap();
        let z = jack.find("Zeta").unwrap();
        assert!(m < a && a < z, "{mode:?}: {jack}");
        // The year values themselves are not emitted.
        assert!(!jack.contains("1999"), "{mode:?}: {jack}");
        outputs.push(xml);
    }
    assert_eq!(outputs[0], outputs[1]);
}

#[test]
fn ordered_query_still_rewrites_to_groupby() {
    let db = db();
    let r = db
        .query(&q_order("DESCENDING"), PlanMode::GroupByRewrite)
        .unwrap();
    assert!(r.rewritten, "ORDER BY must not block the rewrite");
    // The plan carries an ordering list.
    let (plan, _) = db
        .compile(&q_order("DESCENDING"), PlanMode::GroupByRewrite)
        .unwrap();
    assert!(plan.explain().contains("Descending"), "{}", plan.explain());
}

fn agg_query(func: &str) -> String {
    format!(
        r#"
        FOR $a IN distinct-values(document("bib.xml")//author)
        LET $y := document("bib.xml")//article[author = $a]/year
        RETURN <authorpubs> {{$a}} {{{func}($y)}} </authorpubs>
    "#
    )
}

#[test]
fn numeric_aggregates_match_across_plans() {
    let db = db();
    for (func, jack_expected) in [
        ("count", "3"),
        ("sum", "5995"),
        ("min", "1995"),
        ("max", "2001"),
        ("avg", "1998.3333333333333"),
    ] {
        let q = agg_query(func);
        let direct = db.query(&q, PlanMode::Direct).unwrap();
        let grouped = db.query(&q, PlanMode::GroupByRewrite).unwrap();
        assert!(grouped.rewritten, "{func}");
        let dx = direct.to_xml_on(db.store()).unwrap();
        let gx = grouped.to_xml_on(db.store()).unwrap();
        assert_eq!(dx, gx, "{func}");
        let jack = dx.lines().next().unwrap();
        assert!(
            jack.contains(&format!("<{func}>{jack_expected}</{func}>")),
            "{func}: {jack}"
        );
    }
}

#[test]
fn aggregate_over_single_member_group() {
    let db = db();
    let q = agg_query("avg");
    let xml = db
        .query(&q, PlanMode::GroupByRewrite)
        .unwrap()
        .to_xml_on(db.store())
        .unwrap();
    let jill = xml.lines().nth(1).unwrap();
    assert!(jill.contains("<avg>2002</avg>"), "{jill}");
}

#[test]
fn order_by_with_let_form_is_rejected() {
    let db = db();
    let q = r#"
        FOR $a IN distinct-values(document("bib.xml")//author)
        LET $t := document("bib.xml")//article[author = $a]/title
        ORDER BY $t/title
        RETURN <x> {$a} {$t} </x>
    "#;
    assert!(db.query(q, PlanMode::Direct).is_err());
}
