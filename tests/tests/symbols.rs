//! The symbol-clean data path, end to end.
//!
//! Two properties hold the dictionary refactor together. First, the
//! dictionary itself: `intern`/`resolve` must round-trip — including
//! across a WAL reopen, because every numeric tag and content symbol
//! sitting on a page is only meaningful under the exact `name → Sym`
//! assignment of the session that wrote it. Second, the queries: moving
//! grouping keys, tag tests, and constructed values from strings to
//! symbols must not change a single serialized output byte, under any
//! plan mode, worker-thread count, or batch size in the CI matrix.

use datagen::{DblpConfig, DblpGenerator};
use smallrand::prop::{check, Gen};
use timber::{PlanMode, TimberDb};
use timber_integration_tests::{
    batch_matrix, fig6_db, thread_matrix, QUERY1, QUERY2, QUERY_COUNT,
};
use xmlstore::{wal_path_for, Dictionary, StoreOptions};

/// A mixed bag of names the dictionary must handle: element-ish
/// identifiers, attribute tags, free-form printable values (content
/// strings are interned too), and the empty string.
fn random_names(g: &mut Gen) -> Vec<String> {
    g.vec(1, 60, |g| match g.usize_in(0, 3) {
        0 => g.ident(8),
        1 => format!("@{}", g.ident(6)),
        2 => g.printable_string(0, 24),
        _ => g.pick(&["article", "author", "title", "1999", ""]).to_string(),
    })
}

#[test]
fn dictionary_intern_resolve_roundtrips() {
    check("dictionary_intern_resolve_roundtrips", 256, |g| {
        let names = random_names(g);
        let d = Dictionary::new();
        let syms: Vec<_> = names.iter().map(|n| d.intern(n)).collect();
        for (name, &sym) in names.iter().zip(&syms) {
            // Round-trip, idempotence, and lookup agreement.
            assert_eq!(&*d.resolve(sym), name.as_str());
            assert_eq!(d.intern(name), sym);
            assert_eq!(d.get(name), Some(sym));
        }
        // Distinct names got distinct symbols; duplicates shared one.
        let distinct: std::collections::HashSet<&str> =
            names.iter().map(String::as_str).collect();
        assert_eq!(d.len(), distinct.len());
        // The snapshot reproduces the exact assignment and the restored
        // dictionary continues the symbol sequence where it left off.
        let snap = d.snapshot();
        let d2 = Dictionary::from_names(&snap);
        for (name, &sym) in names.iter().zip(&syms) {
            assert_eq!(d2.get(name), Some(sym));
            assert_eq!(&*d2.resolve(sym), name.as_str());
        }
        assert_eq!(d2.intern("\u{1}never-seen").0 as usize, snap.len());
    });
}

#[test]
fn dictionary_roundtrips_across_wal_recovery_reopen() {
    // The durable leg of the same property: symbols interned by a
    // session — document tags and values, plus query-interned strings
    // that never touched a page — must resolve to the same strings with
    // the same numbering after the page file is reopened and the WAL is
    // replayed. The name table travels in commit and checkpoint records,
    // so both paths are exercised.
    check("dictionary_roundtrips_across_wal_recovery_reopen", 12, |g| {
        static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = N.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let page = std::env::temp_dir().join(format!(
            "timber_symbols_{}_{n}.pages",
            std::process::id()
        ));
        let wal = wal_path_for(&page);
        let _ = std::fs::remove_file(&page);
        let _ = std::fs::remove_file(&wal);
        let opts = StoreOptions::in_memory().with_path(&page).with_durable();

        let names = random_names(g);
        let pairs: Vec<(String, xmlstore::Sym)> = {
            let mut db = TimberDb::create(&opts).unwrap();
            // A committed document puts real tags and values through the
            // parser's interning path…
            let articles = g.usize_in(1, 8);
            db.insert_xml(&DblpGenerator::new(DblpConfig::sized(articles)).generate_xml())
                .unwrap();
            // …and the random names model query-constructed symbols.
            let pairs = names
                .iter()
                .map(|name| (name.clone(), db.store().dict().intern(name)))
                .collect();
            if g.bool() {
                // Snapshot via an explicit checkpoint record…
                db.checkpoint().unwrap();
            } else {
                // …or via the commit record of a later transaction.
                db.insert_xml("<bib><article><title>t</title></article></bib>")
                    .unwrap();
            }
            pairs
        };

        let db = TimberDb::open(&opts).unwrap();
        assert!(db.recovery_info().is_some(), "reopen must run recovery");
        let dict = db.store().dict();
        let before = dict.len();
        for (name, sym) in &pairs {
            assert_eq!(dict.get(name), Some(*sym), "assignment moved for {name:?}");
            assert_eq!(&*dict.resolve(*sym), name.as_str());
        }
        // Recovery re-interned, never extended: the table is exactly the
        // crashed session's, and fresh interning continues its sequence.
        assert_eq!(dict.len(), before);
        assert_eq!(dict.intern("\u{1}fresh-after-reopen").0 as usize, before);

        drop(db);
        let _ = std::fs::remove_file(&page);
        let _ = std::fs::remove_file(&wal);
    });
}

/// Every corpus query, on the Fig. 6 database and a seeded synthetic
/// DBLP, serialized under every plan mode × thread count × batch size in
/// the CI matrix: all runs must produce the bytes of the sequential
/// Direct-plan reference. This is the refactor's differential harness —
/// the reference plan still resolves strings through the same dictionary
/// the symbol path uses, so a wrong symbol anywhere (a grouping key, a
/// constructed tag, a stitched value) breaks byte equality here.
#[test]
fn serialized_output_byte_identical_across_matrix() {
    let dblp = DblpGenerator::new(DblpConfig::sized(120)).generate_xml();
    for xml in [timber_integration_tests::FIG6_DB.to_owned(), dblp] {
        let mut db = TimberDb::load_xml(&xml, &StoreOptions::in_memory()).unwrap();
        for query in [QUERY1, QUERY2, QUERY_COUNT] {
            db.set_threads(1);
            db.set_batch_size(256);
            let reference = db
                .query(query, PlanMode::Direct)
                .unwrap()
                .to_xml_on(db.store())
                .unwrap();
            assert!(!reference.is_empty());
            for mode in [
                PlanMode::Direct,
                PlanMode::GroupByRewrite,
                PlanMode::GroupByMaterialized,
            ] {
                for threads in thread_matrix(&[1, 2, 4]) {
                    for batch in batch_matrix(&[1, 3, 256]) {
                        db.set_threads(threads);
                        db.set_batch_size(batch);
                        let got = db
                            .query(query, mode)
                            .unwrap()
                            .to_xml_on(db.store())
                            .unwrap();
                        assert_eq!(
                            reference, got,
                            "diverged: mode={mode:?} threads={threads} batch={batch}"
                        );
                    }
                }
            }
        }
    }
}

/// The Fig. 6 output bytes, pinned. The matrix test proves every
/// configuration agrees with the reference; this pins what the reference
/// *is*, so a refactor that changed serialization uniformly across all
/// configurations (and so slipped past the differential) still fails.
#[test]
fn fig6_query1_bytes_are_pinned() {
    let db = fig6_db();
    let xml = db
        .query(QUERY1, PlanMode::GroupByRewrite)
        .unwrap()
        .to_xml_on(db.store())
        .unwrap();
    let expected = "\
<authorpubs><author>Jack</author><title>Querying XML</title><title>XML and the Web</title></authorpubs>\n\
<authorpubs><author>John</author><title>Querying XML</title><title>Hack HTML</title></authorpubs>\n\
<authorpubs><author>Jill</author><title>XML and the Web</title></authorpubs>\n";
    assert_eq!(xml, expected);
}
