//! The paper's running workload at realistic scale: a synthetic DBLP
//! bibliography, the group-by-author query in its three forms (nested,
//! LET, count), timings, and I/O counters for both plans.
//!
//! ```text
//! cargo run --release -p timber-examples --bin author_pubs -- [articles]
//! ```

use datagen::{DblpConfig, DblpGenerator};
use timber::{PlanMode, TimberDb};
use xmlstore::StoreOptions;

const QUERIES: &[(&str, &str)] = &[
    (
        "Query 1 (nested FLWR)",
        r#"
        FOR $a IN distinct-values(document("bib.xml")//author)
        RETURN <authorpubs>
          {$a}
          { FOR $b IN document("bib.xml")//article
            WHERE $a = $b/author
            RETURN $b/title }
        </authorpubs>
    "#,
    ),
    (
        "Query 2 (LET form)",
        r#"
        FOR $a IN distinct-values(document("bib.xml")//author)
        LET $t := document("bib.xml")//article[author = $a]/title
        RETURN <authorpubs> {$a} {$t} </authorpubs>
    "#,
    ),
    (
        "count variant",
        r#"
        FOR $a IN distinct-values(document("bib.xml")//author)
        LET $t := document("bib.xml")//article[author = $a]/title
        RETURN <authorpubs> {$a} {count($t)} </authorpubs>
    "#,
    ),
];

fn main() {
    let articles: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000);

    println!("generating synthetic DBLP with {articles} articles…");
    let xml = DblpGenerator::new(DblpConfig::sized(articles)).generate_xml();
    let db = TimberDb::load_xml(&xml, &StoreOptions::default()).expect("load");
    println!(
        "loaded: {} stored nodes, {:.1} MB on disk, 32 MB buffer pool\n",
        db.store().node_count(),
        db.store().size_bytes() as f64 / (1024.0 * 1024.0)
    );

    for (name, query) in QUERIES {
        println!("-- {name} --");
        let mut sample = String::new();
        for (mode_name, mode) in [
            ("direct ", PlanMode::Direct),
            ("groupby", PlanMode::GroupByRewrite),
        ] {
            db.clear_buffer_pool().expect("clear");
            db.reset_io_stats();
            let t0 = std::time::Instant::now();
            let result = db.query(query, mode).expect("query");
            let xml_out = result.to_xml_on(db.store()).expect("serialize");
            let dt = t0.elapsed();
            let io = db.io_stats(); // evaluation + output population
            println!(
                "  {mode_name}: {:>8.3}s  {:>9} page requests  {:>8} disk reads  {} authors",
                dt.as_secs_f64(),
                io.page_requests(),
                io.disk.reads,
                result.len()
            );
            sample = xml_out.lines().next().unwrap_or("").to_owned();
        }
        println!("  first row: {sample}\n");
    }
}
