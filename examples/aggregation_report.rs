//! Grouping composed with aggregation (Sec. 4.3): per-author publication
//! counts and year ranges, computed with the TAX `groupby` and
//! `aggregate` operators directly — grouping restructures, aggregation
//! summarizes, and the two stay separate logical operators.
//!
//! ```text
//! cargo run --release -p timber-examples --bin aggregation_report -- [articles]
//! ```

use datagen::{DblpConfig, DblpGenerator};
use tax::ops::aggregate::{aggregate, AggFunc, UpdateSpec};
use tax::ops::groupby::{groupby, BasisItem, Direction, GroupOrder};
use tax::ops::project::ProjectItem;
use tax::ops::{project, select_db};
use tax::pattern::{Axis, PatternTree, Pred};
use tax::tags;
use timber::TimberDb;
use xmlstore::StoreOptions;

fn main() {
    let articles: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3_000);

    let xml = DblpGenerator::new(DblpConfig::sized(articles)).generate_xml();
    let db = TimberDb::load_xml(&xml, &StoreOptions::in_memory()).expect("load");
    let store = db.store();
    println!(
        "synthetic DBLP: {} stored nodes, {} articles\n",
        store.node_count(),
        articles
    );

    // 1. The article collection (Fig. 9 shape).
    let mut sp = PatternTree::with_root(Pred::tag("doc_root"));
    let art = sp.add_child(sp.root(), Axis::Descendant, Pred::tag("article"));
    let sel = select_db(store, &sp, &[art]).expect("select");
    let input = project(store, &sel, &sp, &[ProjectItem::deep(art)], true).expect("project");

    // 2. Group by author, members ordered by ascending year.
    let mut gp = PatternTree::with_root(Pred::tag("article"));
    let author = gp.add_child(gp.root(), Axis::Child, Pred::tag("author"));
    let year = gp.add_child(gp.root(), Axis::Child, Pred::tag("year"));
    let groups = groupby(
        store,
        &input,
        &gp,
        &[BasisItem::content(author)],
        &[GroupOrder {
            label: year,
            direction: Direction::Ascending,
        }],
    )
    .expect("groupby");
    println!("{} author groups", groups.len());

    // 3. Aggregations over each group: COUNT of member articles, MIN and
    //    MAX of the member years, appended after the group root's last
    //    child.
    let mut count_p = PatternTree::with_root(Pred::tag(tags::GROUP_ROOT));
    let sub = count_p.add_child(count_p.root(), Axis::Child, Pred::tag(tags::GROUP_SUBROOT));
    let member = count_p.add_child(sub, Axis::Child, Pred::tag("article"));
    let with_counts = aggregate(
        store,
        groups,
        &count_p,
        AggFunc::Count,
        member,
        "pubcount",
        UpdateSpec::AfterLastChild(0),
    )
    .expect("count");

    let mut year_p = PatternTree::with_root(Pred::tag(tags::GROUP_ROOT));
    let sub = year_p.add_child(year_p.root(), Axis::Child, Pred::tag(tags::GROUP_SUBROOT));
    let m = year_p.add_child(sub, Axis::Child, Pred::tag("article"));
    let y = year_p.add_child(m, Axis::Child, Pred::tag("year"));
    let with_min = aggregate(
        store,
        with_counts,
        &year_p,
        AggFunc::Min,
        y,
        "first_year",
        UpdateSpec::AfterLastChild(0),
    )
    .expect("min");
    let with_max = aggregate(
        store,
        with_min,
        &year_p,
        AggFunc::Max,
        y,
        "last_year",
        UpdateSpec::AfterLastChild(0),
    )
    .expect("max");

    // 4. Report the most prolific authors.
    let mut rows: Vec<(String, u64, String, String)> = Vec::new();
    for g in &with_max {
        let e = g.materialize(store).expect("materialize");
        let author = e
            .child(tags::GROUPING_BASIS)
            .and_then(|b| b.child("author"))
            .map(|a| a.text())
            .unwrap_or_default();
        let count: u64 = e
            .child("pubcount")
            .map(|c| c.text().parse().unwrap_or(0))
            .unwrap_or(0);
        let first = e.child("first_year").map(|c| c.text()).unwrap_or_default();
        let last = e.child("last_year").map(|c| c.text()).unwrap_or_default();
        rows.push((author, count, first, last));
    }
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    println!("\ntop authors by publication count:");
    println!(
        "{:<28} {:>6} {:>11} {:>10}",
        "author", "pubs", "first year", "last year"
    );
    for (author, count, first, last) in rows.iter().take(15) {
        println!("{author:<28} {count:>6} {first:>11} {last:>10}");
    }

    // Sanity: counts add up to the number of (article, author) pairs.
    let total: u64 = rows.iter().map(|r| r.1).sum();
    println!("\nsum of per-author counts = {total} (author occurrences, not articles — grouping does not partition)");
}
