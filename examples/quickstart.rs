//! Quickstart: load a small bibliography, run the paper's Query 1 under
//! both evaluation plans, and show that the GROUPBY rewrite produces the
//! same answer from a very different plan.
//!
//! ```text
//! cargo run -p timber-examples --bin quickstart
//! ```

use timber::{PlanMode, TimberDb};
use xmlstore::StoreOptions;

const BIB: &str = r#"<bib>
    <article>
        <title>Querying XML</title>
        <author>Jack</author>
        <author>John</author>
        <year>1999</year>
    </article>
    <article>
        <title>XML and the Web</title>
        <author>Jill</author>
        <author>Jack</author>
        <year>2001</year>
    </article>
    <article>
        <title>Hack HTML</title>
        <author>John</author>
        <year>1998</year>
    </article>
</bib>"#;

/// Query 1 of the paper (after XQuery use case 1.1.9.4 Q4): for each
/// author, the titles of their articles.
const QUERY1: &str = r#"
    FOR $a IN distinct-values(document("bib.xml")//author)
    RETURN <authorpubs>
      {$a}
      { FOR $b IN document("bib.xml")//article
        WHERE $a = $b/author
        RETURN $b/title }
    </authorpubs>
"#;

fn main() {
    let db = TimberDb::load_xml(BIB, &StoreOptions::in_memory()).expect("load");
    println!(
        "loaded {} stored nodes on {} pages\n",
        db.store().node_count(),
        db.store().total_pages()
    );

    println!("{}", db.explain(QUERY1).expect("explain"));

    for (name, mode) in [
        ("direct (naive join plan)", PlanMode::Direct),
        ("GROUPBY (rewritten plan)", PlanMode::GroupByRewrite),
    ] {
        db.reset_io_stats();
        let result = db.query(QUERY1, mode).expect("query");
        println!(
            "== {name}: {} result trees, {} page requests ==",
            result.len(),
            result.io.page_requests()
        );
        print!("{}", result.to_xml_on(db.store()).expect("serialize"));
        println!();
    }
}
