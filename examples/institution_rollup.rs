//! The richer grouping specifications of Sec. 1: group articles by the
//! authors' *institution*, and then two-level grouping — institution
//! outer, author inner — built directly with the TAX `groupby` operator
//! (the third introductory query of the paper).
//!
//! ```text
//! cargo run --release -p timber-examples --bin institution_rollup -- [articles]
//! ```

use datagen::{DblpConfig, DblpGenerator};
use tax::ops::groupby::{groupby, BasisItem, Direction, GroupOrder};
use tax::ops::project::ProjectItem;
use tax::ops::{project, select_db};
use tax::pattern::{Axis, PatternTree, Pred};
use tax::tags;
use timber::{PlanMode, TimberDb};
use xmlstore::StoreOptions;

/// The group-by-institution query from the introduction.
const INST_QUERY: &str = r#"
    FOR $i IN distinct-values(document("bib.xml")//institution)
    RETURN <instpubs>
      {$i}
      { FOR $b IN document("bib.xml")//article
        WHERE $i = $b/author/institution
        RETURN $b/title }
    </instpubs>
"#;

fn main() {
    let articles: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);

    let cfg = DblpConfig::sized(articles).with_institutions();
    let xml = DblpGenerator::new(cfg).generate_xml();
    let db = TimberDb::load_xml(&xml, &StoreOptions::in_memory()).expect("load");
    println!(
        "synthetic DBLP with institutions: {} stored nodes\n",
        db.store().node_count()
    );

    // Part 1: the XQuery formulation, both plans.
    println!("-- group-by-institution (XQuery, both plans) --");
    for (name, mode) in [
        ("direct ", PlanMode::Direct),
        ("groupby", PlanMode::GroupByRewrite),
    ] {
        let t0 = std::time::Instant::now();
        let result = db.query(INST_QUERY, mode).expect("query");
        println!(
            "  {name}: {:>7.3}s, {} institutions, rewritten={}",
            t0.elapsed().as_secs_f64(),
            result.len(),
            result.rewritten
        );
    }
    let sample = db
        .query(INST_QUERY, PlanMode::GroupByRewrite)
        .unwrap()
        .to_xml_on(db.store())
        .unwrap();
    println!(
        "  first row: {}\n",
        truncate(sample.lines().next().unwrap_or(""), 160)
    );

    // Part 2: two-level grouping with the algebra directly —
    // institution outer, author inner, articles ordered by title.
    println!("-- two-level grouping (TAX operators) --");
    let store = db.store();

    // Collection of article subtrees.
    let mut sp = PatternTree::with_root(Pred::tag("doc_root"));
    let art = sp.add_child(sp.root(), Axis::Descendant, Pred::tag("article"));
    let sel = select_db(store, &sp, &[art]).expect("select");
    let input = project(store, &sel, &sp, &[ProjectItem::deep(art)], true).expect("project");

    // Outer grouping: by institution (through author), members ordered by
    // descending title — the Fig. 3 ordering list.
    let mut gp = PatternTree::with_root(Pred::tag("article"));
    let title = gp.add_child(gp.root(), Axis::Child, Pred::tag("title"));
    let author = gp.add_child(gp.root(), Axis::Child, Pred::tag("author"));
    let inst = gp.add_child(author, Axis::Child, Pred::tag("institution"));
    let outer_groups = groupby(
        store,
        &input,
        &gp,
        &[BasisItem::content(inst)],
        &[GroupOrder {
            label: title,
            direction: Direction::Descending,
        }],
    )
    .expect("outer groupby");
    println!("  {} institution groups", outer_groups.len());

    // Inner grouping: within each institution group, group that group's
    // member articles by author.
    let mut total_author_groups = 0usize;
    for group in outer_groups.iter().take(3) {
        let e = group.materialize(store).expect("materialize");
        let inst_name = e
            .child(tags::GROUPING_BASIS)
            .and_then(|b| b.child("institution"))
            .map(|i| i.text())
            .unwrap_or_default();

        // Re-wrap the member articles as a collection.
        let members: Vec<tax::Tree> = {
            let subroot_sym = store.dict().intern(tags::GROUP_SUBROOT);
            let subroot = group
                .node(group.root())
                .children
                .iter()
                .copied()
                .find(|&c| {
                    matches!(
                        &group.node(c).kind,
                        tax::TreeNodeKind::Elem { tag, .. } if *tag == subroot_sym
                    )
                })
                .expect("subroot");
            group
                .node(subroot)
                .children
                .iter()
                .map(|&c| {
                    let mut t = tax::Tree::new_elem(store.dict(), "tmp");
                    let copied = t.append_subtree(t.root(), group, c);
                    extract_subtree(&t, copied)
                })
                .collect()
        };

        let mut ap = PatternTree::with_root(Pred::tag("article"));
        let author = ap.add_child(ap.root(), Axis::Child, Pred::tag("author"));
        let name = ap.add_child(author, Axis::Child, Pred::tag("name"));
        let inner =
            groupby(store, &members, &ap, &[BasisItem::content(name)], &[]).expect("inner groupby");
        total_author_groups += inner.len();
        println!(
            "  {:<40} {:>4} articles, {:>3} author groups",
            truncate(&inst_name, 40),
            members.len(),
            inner.len()
        );
    }
    println!("  (author groups across first three institutions: {total_author_groups})");
}

/// Copy the subtree rooted at `n` of `t` into its own tree.
fn extract_subtree(t: &tax::Tree, n: usize) -> tax::Tree {
    let mut out = match &t.node(n).kind {
        tax::TreeNodeKind::Elem { tag, content } => {
            let mut o = tax::Tree::new_elem_sym(*tag);
            if let Some(c) = content {
                if let tax::TreeNodeKind::Elem { content, .. } = &mut o.node_mut(0).kind {
                    *content = Some(*c);
                }
            }
            o
        }
        tax::TreeNodeKind::Ref { node, deep } => tax::Tree::new_ref(*node, *deep),
    };
    for &c in &t.node(n).children {
        let root = out.root();
        out.append_subtree(root, t, c);
    }
    out
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_owned()
    } else {
        format!("{}…", &s[..n])
    }
}
