//! Model-based property test for the buffer pool: against any sequence
//! of page reads and writes, the pool must behave like a plain array of
//! pages (now of data regions, with the checksum header invisible), and
//! its statistics must add up.
//!
//! Ported from proptest to the in-tree `smallrand::prop` harness.

use smallrand::prop::{check, Gen};
use xmlstore::buffer::BufferPool;
use xmlstore::storage::DiskManager;
use xmlstore::{PageId, PAGE_DATA_SIZE, PAGE_HEADER_SIZE, PAGE_SIZE};

#[derive(Debug, Clone)]
enum Op {
    Read { page: u8, offset: u16 },
    Write { page: u8, offset: u16, value: u8 },
    Flush,
    Clear,
}

fn gen_op(g: &mut Gen, npages: u8) -> Op {
    // Same weights as the old proptest strategy: 4 read : 4 write :
    // 1 flush : 1 clear.
    match g.usize_in(0, 9) {
        0..=3 => Op::Read {
            page: g.usize_in(0, npages as usize - 1) as u8,
            offset: g.usize_in(0, PAGE_DATA_SIZE - 1) as u16,
        },
        4..=7 => Op::Write {
            page: g.usize_in(0, npages as usize - 1) as u8,
            offset: g.usize_in(0, PAGE_DATA_SIZE - 1) as u16,
            value: g.usize_in(0, 255) as u8,
        },
        8 => Op::Flush,
        _ => Op::Clear,
    }
}

#[test]
fn pool_behaves_like_flat_memory() {
    check("pool_behaves_like_flat_memory", 64, |g| {
        let capacity = g.usize_in(1, 5);
        let npages = g.usize_in(1, 7) as u8;
        let ops: Vec<Op> = {
            let n = g.usize_in(1, 119);
            (0..n).map(|_| gen_op(g, npages)).collect()
        };

        let mut disk = DiskManager::in_memory();
        for _ in 0..npages {
            disk.allocate().unwrap();
        }
        let mut pool = BufferPool::new(disk, capacity).unwrap();
        let mut model = vec![vec![0u8; PAGE_DATA_SIZE]; npages as usize];
        let mut requests = 0u64;

        for op in &ops {
            match *op {
                Op::Read { page, offset } => {
                    let page = page % npages;
                    requests += 1;
                    let got = pool
                        .with_page(PageId(page as u32), |p| p[offset as usize])
                        .unwrap();
                    assert_eq!(got, model[page as usize][offset as usize]);
                }
                Op::Write {
                    page,
                    offset,
                    value,
                } => {
                    let page = page % npages;
                    requests += 1;
                    pool.with_page_mut(PageId(page as u32), |p| p[offset as usize] = value)
                        .unwrap();
                    model[page as usize][offset as usize] = value;
                }
                Op::Flush => pool.flush_all().unwrap(),
                Op::Clear => pool.clear().unwrap(),
            }
        }

        // Statistics add up.
        let stats = pool.stats();
        assert_eq!(stats.hits + stats.misses, requests);
        assert_eq!(pool.disk_stats().reads, stats.misses);

        // After a final flush, the disk agrees with the model everywhere.
        pool.flush_all().unwrap();
        for (i, page) in model.iter().enumerate() {
            let mut buf = [0u8; PAGE_SIZE];
            pool.disk_mut()
                .read_page(PageId(i as u32), &mut buf)
                .unwrap();
            // The raw image agrees with the model on the data region and
            // carries a header that verifies (checked by read_page).
            assert_eq!(&buf[PAGE_HEADER_SIZE..], &page[..]);
        }
    });
}
