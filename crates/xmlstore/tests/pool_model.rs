//! Model-based property test for the buffer pool: against any sequence
//! of page reads and writes, the pool must behave like a plain array of
//! pages, and its statistics must add up.

use proptest::prelude::*;
use xmlstore::buffer::BufferPool;
use xmlstore::storage::DiskManager;
use xmlstore::{PageId, PAGE_SIZE};

#[derive(Debug, Clone)]
enum Op {
    Read { page: u8, offset: u16 },
    Write { page: u8, offset: u16, value: u8 },
    Flush,
    Clear,
}

fn op_strategy(npages: u8) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..npages, 0..PAGE_SIZE as u16).prop_map(|(page, offset)| Op::Read { page, offset }),
        4 => (0..npages, 0..PAGE_SIZE as u16, any::<u8>())
            .prop_map(|(page, offset, value)| Op::Write { page, offset, value }),
        1 => Just(Op::Flush),
        1 => Just(Op::Clear),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pool_behaves_like_flat_memory(
        capacity in 1usize..6,
        npages in 1u8..8,
        ops in prop::collection::vec(op_strategy(8), 1..120),
    ) {
        let mut disk = DiskManager::in_memory();
        for _ in 0..npages {
            disk.allocate().unwrap();
        }
        let mut pool = BufferPool::new(disk, capacity).unwrap();
        let mut model = vec![vec![0u8; PAGE_SIZE]; npages as usize];
        let mut requests = 0u64;

        for op in &ops {
            match *op {
                Op::Read { page, offset } => {
                    let page = page % npages;
                    requests += 1;
                    let got = pool
                        .with_page(PageId(page as u32), |p| p[offset as usize])
                        .unwrap();
                    prop_assert_eq!(got, model[page as usize][offset as usize]);
                }
                Op::Write { page, offset, value } => {
                    let page = page % npages;
                    requests += 1;
                    pool.with_page_mut(PageId(page as u32), |p| p[offset as usize] = value)
                        .unwrap();
                    model[page as usize][offset as usize] = value;
                }
                Op::Flush => pool.flush_all().unwrap(),
                Op::Clear => pool.clear().unwrap(),
            }
        }

        // Statistics add up.
        let stats = pool.stats();
        prop_assert_eq!(stats.hits + stats.misses, requests);
        prop_assert_eq!(pool.disk_stats().reads, stats.misses);

        // After a final flush, the disk agrees with the model everywhere.
        pool.flush_all().unwrap();
        for (i, page) in model.iter().enumerate() {
            let mut buf = [0u8; PAGE_SIZE];
            pool.disk_mut().read_page(PageId(i as u32), &mut buf).unwrap();
            prop_assert_eq!(&buf[..], &page[..]);
        }
    }
}
