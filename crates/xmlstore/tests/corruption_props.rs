//! Property tests for the checksum layer, on the in-tree `smallrand`
//! harness:
//!
//! * any single corrupted byte in a stored page — header or data — is
//!   caught by checksum verification on the next read;
//! * fault-free operation is differentially identical to a plain
//!   in-memory evaluation: checksums change no observable byte.

use smallrand::prop::check;
use xmlstore::storage::DiskManager;
use xmlstore::{
    DocumentStore, PageId, StoreError, StoreOptions, PAGE_DATA_SIZE, PAGE_HEADER_SIZE, PAGE_SIZE,
};

/// Any single-byte XOR anywhere in a stored page image fails
/// verification on the next read, and undoing it restores the page.
#[test]
fn any_single_corrupted_byte_is_caught() {
    check("any_single_corrupted_byte_is_caught", 256, |g| {
        let mut dm = if g.bool() {
            DiskManager::in_memory()
        } else {
            DiskManager::temp_file().unwrap()
        };
        let npages = g.usize_in(1, 4) as u32;
        for _ in 0..npages {
            dm.allocate().unwrap();
        }
        let pid = PageId(g.usize_in(0, npages as usize - 1) as u32);
        let mut image = [0u8; PAGE_SIZE];
        for b in image[PAGE_HEADER_SIZE..].iter_mut() {
            *b = g.usize_in(0, 255) as u8;
        }
        dm.write_page(pid, &image).unwrap();

        // Corrupt one byte anywhere in the physical page, including the
        // header: the id echo and the stored checksum are protected too.
        let offset = g.usize_in(0, PAGE_SIZE - 1);
        let xor = g.usize_in(1, 255) as u8;
        dm.poke_byte(pid, offset, xor).unwrap();

        let mut out = [0u8; PAGE_SIZE];
        match dm.read_page(pid, &mut out) {
            Err(StoreError::Corruption { page, .. }) => assert_eq!(page, pid.0),
            other => panic!(
                "single-byte corruption at offset {offset} (xor {xor:#04x}) \
                 escaped verification: {other:?}"
            ),
        }

        // Undo: the page verifies again and the data survived.
        dm.poke_byte(pid, offset, xor).unwrap();
        dm.read_page(pid, &mut out).unwrap();
        assert_eq!(out[PAGE_HEADER_SIZE..], image[PAGE_HEADER_SIZE..]);
    });
}

/// Reference evaluation straight off the parsed DOM: every text-only
/// element's (tag, content) in document order.
fn dom_reference(elem: &xmlparse::Element, out: &mut Vec<(String, String)>) {
    let text_only = !elem
        .children
        .iter()
        .any(|c| matches!(c, xmlparse::XmlNode::Element(_)));
    if text_only {
        let text = elem.text();
        if !text.trim().is_empty() {
            out.push((elem.name.clone(), text));
        }
    }
    for child in &elem.children {
        if let xmlparse::XmlNode::Element(e) = child {
            dom_reference(e, out);
        }
    }
}

/// Fault-free differential run: reading every stored content back
/// through the checksummed page stack yields byte-identical strings to a
/// plain DOM walk, on both backends, for arbitrary generated documents.
#[test]
fn fault_free_runs_match_unchecksummed_reference() {
    check("fault_free_runs_match_reference", 48, |g| {
        // A generated two-level document with arbitrary printable text,
        // occasionally long enough to span heap pages.
        let mut xml = String::from("<bib>");
        let narticles = g.usize_in(1, 12);
        for _ in 0..narticles {
            let title = if g.ratio(1, 10) {
                g.printable_string(PAGE_DATA_SIZE, PAGE_DATA_SIZE + 300)
            } else {
                g.printable_string(1, 40)
            };
            let author = g.printable_string(1, 20);
            xml.push_str(&format!(
                "<article><title>{}</title><author>{}</author></article>",
                xml_escape(&title),
                xml_escape(&author)
            ));
        }
        xml.push_str("</bib>");

        let doc = xmlparse::parse_document(&xml).unwrap();
        let mut expected = Vec::new();
        dom_reference(doc.root(), &mut expected);

        for on_disk in [false, true] {
            let opts = StoreOptions {
                on_disk,
                // A tiny pool forces real evictions and re-reads, so the
                // comparison exercises writeback + verify, not just the
                // first fill.
                pool_pages: 3,
                ..StoreOptions::in_memory()
            };
            let store = DocumentStore::from_xml(&xml, &opts).unwrap();
            let mut got = Vec::new();
            for tag in ["title", "author"] {
                let id = store.tag_id(tag).unwrap();
                for e in store.nodes_with_tag(id) {
                    // Whitespace-only text is stripped at load, so such
                    // elements have no stored content — the DOM
                    // reference skips them the same way.
                    if let Some(content) = store.content(e.id).unwrap() {
                        got.push((tag.to_owned(), content));
                    }
                }
            }
            got.sort();
            let mut want = expected.clone();
            want.sort();
            assert_eq!(got, want, "on_disk={on_disk}");
        }
    });
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}
