//! Property tests for the write-ahead-log encoding, on the in-tree
//! `smallrand` harness:
//!
//! * any single corrupted byte in a stored log truncates the readable
//!   prefix at exactly the frame holding the corruption — no record
//!   beyond it survives, no record before it is lost, and no garbage
//!   record is ever decoded;
//! * a duplicated tail (the same bytes appended twice, as a retried
//!   append would) is self-identifying: the reader stops where the
//!   duplication starts, and replay over the duplicated log leaves page
//!   bytes identical to replay over the clean log.

use smallrand::prop::{check, Gen};
use xmlstore::storage::{DiskManager, SharedDisk};
use xmlstore::wal::{self, BeforeImage};
use xmlstore::{Lsn, PageId, Wal, WalRecord, PAGE_SIZE};

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn temp_log_path() -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("xmlstore_wal_props_{}_{n}.wal", std::process::id()))
}

/// Append a random multi-transaction history (begins, page images over
/// a handful of pages, commits, aborts, interleaved group flushes) and
/// return the durable log bytes plus the records as written.
fn build_log(g: &mut Gen) -> (Vec<u8>, Vec<(Lsn, WalRecord)>) {
    let path = temp_log_path();
    let disk = SharedDisk::new(DiskManager::in_memory());
    let mut w = Wal::create(Some(&path), false, disk, vec![0xCC; 9]).unwrap();
    for t in 1..=g.usize_in(1, 4) as u64 {
        w.append(WalRecord::Begin { txn: t });
        for _ in 0..g.usize_in(0, 3) {
            let mut after = Box::new([0u8; PAGE_SIZE]);
            for b in after.iter_mut().take(96) {
                *b = g.usize_in(0, 255) as u8;
            }
            w.append(WalRecord::PageImage {
                txn: t,
                pid: PageId(g.usize_in(0, 3) as u32),
                before: BeforeImage::Zero,
                after,
            });
        }
        if g.bool() {
            w.append(WalRecord::Commit {
                txn: t,
                meta: vec![t as u8; g.usize_in(1, 16)],
            });
        } else if g.bool() {
            w.append(WalRecord::Abort { txn: t });
        }
        if g.ratio(1, 3) {
            w.flush().unwrap();
        }
    }
    w.flush().unwrap();
    drop(w);
    let bytes = std::fs::read(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    let contents = wal::read_log(&bytes);
    assert_eq!(
        contents.valid_len,
        bytes.len() as u64,
        "clean log reads whole"
    );
    (bytes, contents.records)
}

/// Replay `log` onto a fresh in-memory page file and return every
/// resulting page image.
fn replay_pages(log: &[u8]) -> Vec<[u8; PAGE_SIZE]> {
    let mut disk = DiskManager::in_memory();
    wal::replay(&mut disk, log).unwrap();
    let mut pages = Vec::new();
    let mut buf = [0u8; PAGE_SIZE];
    for p in 0..disk.num_pages() {
        disk.read_page(PageId(p), &mut buf).unwrap();
        pages.push(buf);
    }
    pages
}

#[test]
fn any_single_corrupted_byte_truncates_at_its_frame() {
    check(
        "any_single_corrupted_byte_truncates_at_its_frame",
        192,
        |g| {
            let (mut bytes, records) = build_log(g);
            let offset = g.usize_in(0, bytes.len() - 1);
            let xor = g.usize_in(1, 255) as u8;
            bytes[offset] ^= xor;

            // The frame holding the corrupted byte: record boundaries are
            // exactly the LSNs (a record's LSN is its byte offset).
            let victim = records
                .iter()
                .rposition(|&(lsn, _)| lsn <= offset as u64)
                .unwrap();
            let parsed = wal::read_log(&bytes);
            assert_eq!(
                parsed.records,
                records[..victim],
                "corrupt byte at {offset} (xor {xor:#04x}): reader must \
             keep exactly the records before the damaged frame"
            );
            assert_eq!(parsed.valid_len, records[victim].0);
        },
    );
}

#[test]
fn duplicated_tail_is_ignored_and_replay_stays_idempotent() {
    check(
        "duplicated_tail_is_ignored_and_replay_stays_idempotent",
        96,
        |g| {
            let (bytes, records) = build_log(g);
            // Duplicate everything from a random record boundary onward —
            // the shape a retried append produces.
            let j = g.usize_in(0, records.len() - 1);
            let mut doubled = bytes.clone();
            doubled.extend_from_slice(&bytes[records[j].0 as usize..]);

            let parsed = wal::read_log(&doubled);
            assert_eq!(parsed.records, records, "duplicate tail must be dropped");
            assert_eq!(parsed.valid_len, bytes.len() as u64);

            // Replay sees through the duplication: page bytes match a clean
            // replay, and replaying the doubled log twice changes nothing.
            let clean = replay_pages(&bytes);
            assert_eq!(replay_pages(&doubled), clean);
            let mut disk = DiskManager::in_memory();
            wal::replay(&mut disk, &doubled).unwrap();
            wal::replay(&mut disk, &doubled).unwrap();
            let mut buf = [0u8; PAGE_SIZE];
            for (p, expect) in clean.iter().enumerate() {
                disk.read_page(PageId(p as u32), &mut buf).unwrap();
                assert_eq!(&buf[..], &expect[..], "page {p} after double replay");
            }
        },
    );
}
