//! CRC32 (IEEE 802.3) page checksums.
//!
//! The workspace builds offline, so this is a self-contained table-driven
//! implementation rather than an external crate. CRC32 detects every
//! single-bit and single-byte error and all burst errors up to 32 bits —
//! exactly the corruption classes the fault injector produces (bit flips,
//! torn writes) — at a cost of about one table lookup per byte.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// Feed `bytes` into a running (pre-inverted) CRC state.
fn update(mut state: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        state = (state >> 8) ^ TABLE[((state ^ b as u32) & 0xFF) as usize];
    }
    state
}

/// CRC32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    !update(!0, bytes)
}

/// Checksum of one page: CRC32 over the page id followed by the page's
/// data region. Folding the id in catches *misdirected* writes (a page
/// image persisted at the wrong slot) as well as payload corruption.
pub fn page_checksum(page_id: u32, data: &[u8]) -> u32 {
    !update(update(!0, &page_id.to_le_bytes()), data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let data = vec![0xA5u8; 4096];
        let base = page_checksum(7, &data);
        for byte in [0usize, 1, 100, 4095] {
            for bit in 0..8 {
                let mut corrupt = data.clone();
                corrupt[byte] ^= 1 << bit;
                assert_ne!(page_checksum(7, &corrupt), base, "byte {byte} bit {bit}");
            }
        }
    }

    #[test]
    fn page_id_is_part_of_the_checksum() {
        let data = vec![3u8; 64];
        assert_ne!(page_checksum(0, &data), page_checksum(1, &data));
    }
}
