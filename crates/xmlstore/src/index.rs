//! The tag-name index (the Index Manager).
//!
//! For every tag, the index holds the document-order list of
//! [`NodeEntry`] values — node id plus the `(start, end, level)` label.
//! Because the label travels with the index entry, pattern-tree node
//! candidates and all structural (containment) joins run **entirely on
//! index data**, with no data-page access; this is the property Sec. 5.2
//! of the paper relies on ("these node bindings can be found, in most
//! cases, using indices alone, without access to the actual data").

use crate::catalog::TagId;
use crate::node::NodeId;

/// An index entry: a node id together with its containment label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeEntry {
    /// The node.
    pub id: NodeId,
    /// Pre-order region start.
    pub start: u32,
    /// Region end.
    pub end: u32,
    /// Depth (root = 0).
    pub level: u16,
}

impl NodeEntry {
    /// Is `self` a proper ancestor of `d`?
    pub fn is_ancestor_of(&self, d: &NodeEntry) -> bool {
        self.start < d.start && d.end < self.end
    }

    /// Is `self` the parent of `d`?
    pub fn is_parent_of(&self, d: &NodeEntry) -> bool {
        self.is_ancestor_of(d) && d.level == self.level + 1
    }

    /// Does `self` contain-or-equal `d` (reflexive ancestor test)?
    pub fn contains(&self, d: &NodeEntry) -> bool {
        self.start <= d.start && d.end <= self.end
    }
}

/// Value index: `(TagId, content) → sorted-by-start Vec<NodeEntry>`.
///
/// The paper's footnote 8 discusses why value indices help less in XML
/// than in relational systems: the index is built over a *domain*, so
/// many element types roll into one index (here keyed by tag to keep the
/// type confusion explicit), and it returns the node *with the value* —
/// e.g. the author — whereas the query usually wants a related node —
/// the article — so navigation or a structural join must follow.
/// TIMBER's experiments used only the tag index; this one is optional
/// (`StoreOptions::value_index`) and exercised by selection predicates.
#[derive(Debug, Default, Clone)]
pub struct ValueIndex {
    map: std::collections::HashMap<(TagId, String), Vec<NodeEntry>>,
}

impl ValueIndex {
    /// An empty index.
    pub fn new() -> Self {
        ValueIndex::default()
    }

    /// Record `entry` (with tag `tag`) as carrying `value`. Entries must
    /// arrive in document order per key.
    pub fn insert(&mut self, tag: TagId, value: &str, entry: NodeEntry) {
        let list = self.map.entry((tag, value.to_owned())).or_default();
        debug_assert!(
            list.last().map(|p| p.start < entry.start).unwrap_or(true),
            "value-index entries must arrive in document order"
        );
        list.push(entry);
    }

    /// The document-order nodes of tag `tag` whose content equals
    /// `value`.
    pub fn nodes(&self, tag: TagId, value: &str) -> &[NodeEntry] {
        self.map
            .get(&(tag, value.to_owned()))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of distinct `(tag, value)` keys.
    pub fn key_count(&self) -> usize {
        self.map.len()
    }

    /// Total entries.
    pub fn total_entries(&self) -> usize {
        self.map.values().map(Vec::len).sum()
    }
}

/// Tag-name index: `TagId → sorted-by-start Vec<NodeEntry>`.
#[derive(Debug, Default, Clone)]
pub struct TagIndex {
    lists: Vec<Vec<NodeEntry>>,
}

impl TagIndex {
    /// An empty index.
    pub fn new() -> Self {
        TagIndex::default()
    }

    /// Record that `entry` has tag `tag`. Entries must be inserted in
    /// document order (which load naturally does), keeping lists sorted
    /// by `start`.
    pub fn insert(&mut self, tag: TagId, entry: NodeEntry) {
        let idx = tag.0 as usize;
        if idx >= self.lists.len() {
            self.lists.resize_with(idx + 1, Vec::new);
        }
        debug_assert!(
            self.lists[idx]
                .last()
                .map(|prev| prev.start < entry.start)
                .unwrap_or(true),
            "index entries must arrive in document order"
        );
        self.lists[idx].push(entry);
    }

    /// The document-order node list for `tag` (empty if the tag has no
    /// nodes).
    pub fn nodes(&self, tag: TagId) -> &[NodeEntry] {
        self.lists
            .get(tag.0 as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of entries for `tag`.
    pub fn cardinality(&self, tag: TagId) -> usize {
        self.nodes(tag).len()
    }

    /// Total entries across all tags.
    pub fn total_entries(&self) -> usize {
        self.lists.iter().map(Vec::len).sum()
    }

    /// Iterate the tags that actually index nodes, with their lists.
    /// Value symbols share the tag id space but have no entries, so
    /// they are skipped here.
    pub fn tags_with_nodes(&self) -> impl Iterator<Item = (TagId, &[NodeEntry])> {
        self.lists
            .iter()
            .enumerate()
            .filter(|(_, l)| !l.is_empty())
            .map(|(i, l)| (TagId(i as u32), l.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u32, start: u32, end: u32, level: u16) -> NodeEntry {
        NodeEntry {
            id: NodeId(id),
            start,
            end,
            level,
        }
    }

    #[test]
    fn insert_and_lookup() {
        let mut ix = TagIndex::new();
        ix.insert(TagId(2), entry(1, 10, 20, 1));
        ix.insert(TagId(2), entry(5, 30, 40, 1));
        ix.insert(TagId(0), entry(0, 0, 100, 0));
        assert_eq!(ix.nodes(TagId(2)).len(), 2);
        assert_eq!(ix.nodes(TagId(0)).len(), 1);
        assert_eq!(ix.nodes(TagId(1)).len(), 0);
        assert_eq!(ix.nodes(TagId(9)).len(), 0);
        assert_eq!(ix.total_entries(), 3);
    }

    #[test]
    fn lists_stay_sorted_by_start() {
        let mut ix = TagIndex::new();
        ix.insert(TagId(0), entry(0, 1, 2, 3));
        ix.insert(TagId(0), entry(1, 5, 6, 3));
        let starts: Vec<_> = ix.nodes(TagId(0)).iter().map(|e| e.start).collect();
        assert!(starts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn value_index_roundtrip() {
        let mut ix = ValueIndex::new();
        ix.insert(TagId(1), "Jack", entry(1, 5, 6, 2));
        ix.insert(TagId(1), "Jack", entry(2, 9, 10, 2));
        ix.insert(TagId(1), "Jill", entry(3, 13, 14, 2));
        ix.insert(TagId(2), "Jack", entry(4, 17, 18, 2));
        assert_eq!(ix.nodes(TagId(1), "Jack").len(), 2);
        assert_eq!(ix.nodes(TagId(1), "Jill").len(), 1);
        // Type separation: author "Jack" vs editor "Jack" do not mix.
        assert_eq!(ix.nodes(TagId(2), "Jack").len(), 1);
        assert_eq!(ix.nodes(TagId(9), "Jack").len(), 0);
        assert_eq!(ix.key_count(), 3);
        assert_eq!(ix.total_entries(), 4);
    }

    #[test]
    fn entry_containment() {
        let a = entry(0, 0, 100, 0);
        let b = entry(1, 10, 20, 1);
        let c = entry(2, 12, 15, 2);
        assert!(a.is_ancestor_of(&b));
        assert!(a.is_ancestor_of(&c));
        assert!(a.is_parent_of(&b));
        assert!(!a.is_parent_of(&c));
        assert!(b.is_parent_of(&c));
        assert!(a.contains(&a));
        assert!(!a.is_ancestor_of(&a));
    }
}
