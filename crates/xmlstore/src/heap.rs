//! The content heap: element text and attribute values, packed into pages.
//!
//! Content is appended during load. A value is stored contiguously
//! starting at `(page, off)`; if it does not fit in the remainder of a
//! page it simply continues on the next page, so readers walk consecutive
//! pages. Values never leave gaps except when a writer chooses to start a
//! fresh page. All offsets are relative to the page *data region* — the
//! checksum header is invisible at this layer.

use crate::buffer::BufferPool;
use crate::error::{Result, StoreError};
use crate::node::ContentPtr;
use crate::page::{PageId, PAGE_DATA_SIZE, PAGE_SIZE};

/// Maximum content length (addressable by `ContentPtr::len`).
pub const MAX_CONTENT_LEN: usize = u32::MAX as usize;

/// Accumulates content values into page images during document load.
#[derive(Debug, Default)]
pub struct HeapBuilder {
    /// Full page images; content lives in the data region, the header
    /// bytes stay zero until the disk manager seals them.
    pages: Vec<Box<[u8; PAGE_SIZE]>>,
    /// Fill level of the last page's data region.
    cur_off: usize,
}

impl HeapBuilder {
    /// A fresh, empty heap.
    pub fn new() -> Self {
        HeapBuilder::default()
    }

    /// Append `value`, returning its pointer.
    pub fn append(&mut self, value: &str) -> Result<ContentPtr> {
        let bytes = value.as_bytes();
        if bytes.len() > MAX_CONTENT_LEN {
            return Err(StoreError::ContentTooLong(bytes.len()));
        }
        if bytes.is_empty() {
            return Ok(ContentPtr::NULL);
        }
        if self.pages.is_empty() || self.cur_off == PAGE_DATA_SIZE {
            self.pages.push(Box::new([0u8; PAGE_SIZE]));
            self.cur_off = 0;
        }
        let start_page = self.pages.len() - 1;
        let start_off = self.cur_off;

        let mut remaining = bytes;
        loop {
            let last = self.pages.len() - 1;
            let page = &mut self.pages[last];
            let room = PAGE_DATA_SIZE - self.cur_off;
            let take = remaining.len().min(room);
            let at = PAGE_SIZE - PAGE_DATA_SIZE + self.cur_off;
            page[at..at + take].copy_from_slice(&remaining[..take]);
            self.cur_off += take;
            remaining = &remaining[take..];
            if remaining.is_empty() {
                break;
            }
            self.pages.push(Box::new([0u8; PAGE_SIZE]));
            self.cur_off = 0;
        }
        Ok(ContentPtr {
            page: start_page as u32,
            off: start_off as u16,
            len: bytes.len() as u32,
        })
    }

    /// Number of pages the heap occupies.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// Consume the builder, yielding the full page images (headers still
    /// zero; the disk manager seals them on write).
    pub fn into_pages(self) -> Vec<Box<[u8; PAGE_SIZE]>> {
        self.pages
    }
}

/// Read the content at `ptr`, fetching each page through `with_page`.
/// `heap_base` is the page id where heap page 0 was placed in the store
/// file. Generic over the page accessor so a sharded store can route
/// each page to the pool shard that owns it.
pub fn read_content_via<F>(mut with_page: F, heap_base: u32, ptr: ContentPtr) -> Result<String>
where
    F: FnMut(PageId, &mut dyn FnMut(&[u8; PAGE_DATA_SIZE])) -> Result<()>,
{
    if !ptr.is_some() {
        return Ok(String::new());
    }
    let mut out = Vec::with_capacity(ptr.len as usize);
    let first_page = heap_base + ptr.page;
    let mut page = first_page;
    let mut off = ptr.off as usize;
    let mut remaining = ptr.len as usize;
    while remaining > 0 {
        let take = remaining.min(PAGE_DATA_SIZE - off);
        with_page(PageId(page), &mut |p| {
            out.extend_from_slice(&p[off..off + take]);
        })?;
        remaining -= take;
        page += 1;
        off = 0;
    }
    // The loader only stores valid UTF-8, so a decode failure means the
    // pointer is stale or the page was damaged in a way the checksum
    // could not see (e.g. corrupted in memory after verification).
    String::from_utf8(out).map_err(|_| StoreError::CorruptContent { page: first_page })
}

/// Read the content at `ptr` through a single buffer pool.
pub fn read_content(pool: &mut BufferPool, heap_base: u32, ptr: ContentPtr) -> Result<String> {
    read_content_via(|pid, f| pool.with_page(pid, |p| f(p)), heap_base, ptr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::DiskManager;

    fn pool_from_heap(builder: HeapBuilder) -> (BufferPool, u32) {
        let mut disk = DiskManager::in_memory();
        for page in builder.into_pages() {
            let pid = disk.allocate().unwrap();
            disk.write_page(pid, &page).unwrap();
        }
        (BufferPool::new(disk, 6).unwrap(), 0)
    }

    #[test]
    fn empty_value_is_null_ptr() {
        let mut h = HeapBuilder::new();
        let ptr = h.append("").unwrap();
        assert!(!ptr.is_some());
        assert_eq!(h.num_pages(), 0);
    }

    #[test]
    fn small_values_roundtrip() {
        let mut h = HeapBuilder::new();
        let a = h.append("hello").unwrap();
        let b = h.append("world!").unwrap();
        assert_eq!(h.num_pages(), 1);
        let (mut pool, base) = pool_from_heap(h);
        assert_eq!(read_content(&mut pool, base, a).unwrap(), "hello");
        assert_eq!(read_content(&mut pool, base, b).unwrap(), "world!");
    }

    #[test]
    fn value_spanning_pages_roundtrips() {
        let mut h = HeapBuilder::new();
        let filler = "x".repeat(PAGE_DATA_SIZE - 10);
        let _ = h.append(&filler).unwrap();
        let long = "ab".repeat(PAGE_DATA_SIZE); // 2 pages worth
        let ptr = h.append(&long).unwrap();
        assert!(h.num_pages() >= 3);
        let (mut pool, base) = pool_from_heap(h);
        assert_eq!(read_content(&mut pool, base, ptr).unwrap(), long);
    }

    #[test]
    fn exactly_page_sized_value() {
        let mut h = HeapBuilder::new();
        let v = "y".repeat(PAGE_DATA_SIZE);
        let ptr = h.append(&v).unwrap();
        let w = h.append("tail").unwrap();
        let (mut pool, base) = pool_from_heap(h);
        assert_eq!(read_content(&mut pool, base, ptr).unwrap(), v);
        assert_eq!(read_content(&mut pool, base, w).unwrap(), "tail");
    }

    #[test]
    fn multibyte_utf8_roundtrips() {
        let mut h = HeapBuilder::new();
        let v = "Données ↦ schön 東京".to_owned();
        let ptr = h.append(&v).unwrap();
        let (mut pool, base) = pool_from_heap(h);
        assert_eq!(read_content(&mut pool, base, ptr).unwrap(), v);
    }

    #[test]
    fn heap_base_offset_respected() {
        // Place the heap after two unrelated pages.
        let mut h = HeapBuilder::new();
        let ptr = h.append("offset test").unwrap();
        let mut disk = DiskManager::in_memory();
        disk.allocate().unwrap();
        disk.allocate().unwrap();
        for page in h.into_pages() {
            let pid = disk.allocate().unwrap();
            disk.write_page(pid, &page).unwrap();
        }
        let mut pool = BufferPool::new(disk, 4).unwrap();
        assert_eq!(read_content(&mut pool, 2, ptr).unwrap(), "offset test");
    }

    #[test]
    fn invalid_utf8_is_a_typed_error() {
        // A stale pointer into non-text bytes must not panic.
        let mut disk = DiskManager::in_memory();
        let pid = disk.allocate().unwrap();
        let mut raw = [0u8; PAGE_SIZE];
        raw[PAGE_SIZE - PAGE_DATA_SIZE] = 0xFF; // lone continuation byte
        raw[PAGE_SIZE - PAGE_DATA_SIZE + 1] = 0xFE;
        disk.write_page(pid, &raw).unwrap();
        let mut pool = BufferPool::new(disk, 2).unwrap();
        let ptr = ContentPtr {
            page: 0,
            off: 0,
            len: 2,
        };
        match read_content(&mut pool, 0, ptr) {
            Err(StoreError::CorruptContent { page: 0 }) => {}
            other => panic!("expected CorruptContent, got {other:?}"),
        }
    }
}
