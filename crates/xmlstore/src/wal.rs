//! The write-ahead log and ARIES-style crash recovery.
//!
//! ## Log format
//!
//! The log is a linear file of checksummed, length-prefixed records:
//!
//! ```text
//! [len: u32 LE] [crc: u32 LE over payload] [payload: len bytes]
//! payload = [lsn: u64 LE] [kind: u8] [body]
//! ```
//!
//! A record's **LSN is the byte offset of its frame in the log file**.
//! That convention buys two properties for free: LSNs are totally
//! ordered and dense, and a *duplicated tail* (the same bytes appended
//! twice, e.g. by a retried append) is self-identifying — the duplicate
//! records carry LSNs that disagree with their actual offset, so the
//! reader truncates exactly where the duplication starts and replay
//! stays idempotent.
//!
//! Record kinds: `Begin`, `PageImage` (full before/after page images —
//! physical logging; the before image is a flag when the page was free
//! or fresh, which after zero-on-reuse is always the case in practice),
//! `Commit` (carrying a full serialized metadata snapshot: tag catalog,
//! document directory, counters), `Abort`, and `Checkpoint` (the same
//! snapshot; always the first record of a log).
//!
//! ## Durability rules
//!
//! * **Steal**: a dirty page may be written back before its transaction
//!   commits — the buffer pool calls [`Wal::flush_to`] with the frame's
//!   LSN first, so the page's images are durable before the page is.
//! * **No-force**: commit does not flush data pages; it flushes the log
//!   (group fsync: one `flush` call pushes every buffered record).
//! * A transaction is committed iff its `Commit` record is fully
//!   durable. The simulated-crash injector persists only a *strict
//!   prefix* of any pending flush, so an operation that returned an
//!   error can never have a durable commit record.
//!
//! Checkpoints truncate: a checkpoint writes a brand-new log containing
//! one `Checkpoint` record (after flushing all dirty pages) and
//! atomically renames it over the old log.
//!
//! ## Recovery
//!
//! [`recover`] reads the log tail (truncating at the first checksum or
//! LSN mismatch — a torn final record), then runs three phases:
//!
//! 1. **Analysis** — find the committed set and the last committed
//!    metadata snapshot;
//! 2. **Redo** — repeat history: every page image is rewritten in log
//!    order, stamping the record's LSN into the page header (full
//!    images make this idempotent, and it also repairs pages torn by a
//!    crash mid-writeback);
//! 3. **Undo** — loser transactions' images are rolled back in reverse
//!    log order, restoring the before image, but only where the loser's
//!    write is still the newest on that page (last-image check), so a
//!    later committed reuse of the page survives.
//!
//! Replaying recovery twice leaves the same bytes as replaying it once.

use crate::checksum::crc32;
use crate::error::{Result, StoreError};
use crate::fault::LogFault;
use crate::page::{self, PageId, PAGE_SIZE};
use crate::storage::{DiskManager, SharedDisk};
use std::collections::{HashMap, HashSet};
use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};

/// Log sequence number: the byte offset of a record in the log file.
pub type Lsn = u64;

/// Transaction identifier.
pub type TxnId = u64;

/// Bytes of frame header (length + checksum) preceding each payload.
const FRAME_HEADER: usize = 8;

const KIND_BEGIN: u8 = 1;
const KIND_PAGE_IMAGE: u8 = 2;
const KIND_COMMIT: u8 = 3;
const KIND_ABORT: u8 = 4;
const KIND_CHECKPOINT: u8 = 5;

/// The before image of a logged page write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BeforeImage {
    /// The page was free or freshly allocated: its logical before state
    /// is all-zero (pages are zeroed on reuse), so no bytes are logged.
    Zero,
    /// An explicit prior image (kept for format generality; the current
    /// write path never overwrites a live page in place).
    Bytes(Box<[u8; PAGE_SIZE]>),
}

/// One log record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A transaction started.
    Begin {
        /// The transaction.
        txn: TxnId,
    },
    /// A full physical page image written by `txn`.
    PageImage {
        /// The writing transaction.
        txn: TxnId,
        /// The page written.
        pid: PageId,
        /// State to restore if `txn` loses.
        before: BeforeImage,
        /// State to reinstall if `txn` wins.
        after: Box<[u8; PAGE_SIZE]>,
    },
    /// `txn` committed; `meta` is the full serialized store metadata
    /// snapshot as of this commit.
    Commit {
        /// The committing transaction.
        txn: TxnId,
        /// Serialized [`StoreMeta`](crate::document::StoreMeta) bytes.
        meta: Vec<u8>,
    },
    /// `txn` rolled back in-process (recovery also treats any
    /// unfinished transaction as aborted).
    Abort {
        /// The aborted transaction.
        txn: TxnId,
    },
    /// A metadata snapshot; always the first record of a log file.
    Checkpoint {
        /// Serialized metadata bytes.
        meta: Vec<u8>,
    },
}

impl WalRecord {
    fn kind(&self) -> u8 {
        match self {
            WalRecord::Begin { .. } => KIND_BEGIN,
            WalRecord::PageImage { .. } => KIND_PAGE_IMAGE,
            WalRecord::Commit { .. } => KIND_COMMIT,
            WalRecord::Abort { .. } => KIND_ABORT,
            WalRecord::Checkpoint { .. } => KIND_CHECKPOINT,
        }
    }
}

/// Encode one record (with its frame header) at LSN `lsn` into `out`.
pub fn encode_record(lsn: Lsn, rec: &WalRecord, out: &mut Vec<u8>) {
    let mut payload = Vec::with_capacity(32);
    payload.extend_from_slice(&lsn.to_le_bytes());
    payload.push(rec.kind());
    match rec {
        WalRecord::Begin { txn } | WalRecord::Abort { txn } => {
            payload.extend_from_slice(&txn.to_le_bytes());
        }
        WalRecord::PageImage {
            txn,
            pid,
            before,
            after,
        } => {
            payload.extend_from_slice(&txn.to_le_bytes());
            payload.extend_from_slice(&pid.0.to_le_bytes());
            match before {
                BeforeImage::Zero => payload.push(0),
                BeforeImage::Bytes(b) => {
                    payload.push(1);
                    payload.extend_from_slice(&b[..]);
                }
            }
            payload.extend_from_slice(&after[..]);
        }
        WalRecord::Commit { txn, meta } => {
            payload.extend_from_slice(&txn.to_le_bytes());
            payload.extend_from_slice(&(meta.len() as u32).to_le_bytes());
            payload.extend_from_slice(meta);
        }
        WalRecord::Checkpoint { meta } => {
            payload.extend_from_slice(&(meta.len() as u32).to_le_bytes());
            payload.extend_from_slice(meta);
        }
    }
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
}

fn rd_u32(b: &[u8], at: usize) -> Option<u32> {
    Some(u32::from_le_bytes(b.get(at..at + 4)?.try_into().ok()?))
}

fn rd_u64(b: &[u8], at: usize) -> Option<u64> {
    Some(u64::from_le_bytes(b.get(at..at + 8)?.try_into().ok()?))
}

fn rd_page(b: &[u8], at: usize) -> Option<Box<[u8; PAGE_SIZE]>> {
    let slice = b.get(at..at + PAGE_SIZE)?;
    let mut boxed = Box::new([0u8; PAGE_SIZE]);
    boxed.copy_from_slice(slice);
    Some(boxed)
}

/// Decode one payload. Returns `None` on any structural problem (the
/// reader treats that as a torn tail and truncates).
fn decode_payload(payload: &[u8]) -> Option<(Lsn, WalRecord)> {
    let lsn = rd_u64(payload, 0)?;
    let kind = *payload.get(8)?;
    let rec = match kind {
        KIND_BEGIN => WalRecord::Begin {
            txn: rd_u64(payload, 9)?,
        },
        KIND_ABORT => WalRecord::Abort {
            txn: rd_u64(payload, 9)?,
        },
        KIND_PAGE_IMAGE => {
            let txn = rd_u64(payload, 9)?;
            let pid = PageId(rd_u32(payload, 17)?);
            let flag = *payload.get(21)?;
            let (before, after_at) = match flag {
                0 => (BeforeImage::Zero, 22),
                1 => (BeforeImage::Bytes(rd_page(payload, 22)?), 22 + PAGE_SIZE),
                _ => return None,
            };
            let after = rd_page(payload, after_at)?;
            if payload.len() != after_at + PAGE_SIZE {
                return None;
            }
            WalRecord::PageImage {
                txn,
                pid,
                before,
                after,
            }
        }
        KIND_COMMIT => {
            let txn = rd_u64(payload, 9)?;
            let len = rd_u32(payload, 17)? as usize;
            let meta = payload.get(21..21 + len)?.to_vec();
            if payload.len() != 21 + len {
                return None;
            }
            WalRecord::Commit { txn, meta }
        }
        KIND_CHECKPOINT => {
            let len = rd_u32(payload, 9)? as usize;
            let meta = payload.get(13..13 + len)?.to_vec();
            if payload.len() != 13 + len {
                return None;
            }
            WalRecord::Checkpoint { meta }
        }
        _ => return None,
    };
    Some((lsn, rec))
}

/// The readable prefix of a log image.
#[derive(Debug)]
pub struct LogContents {
    /// Records in log order with their LSNs.
    pub records: Vec<(Lsn, WalRecord)>,
    /// Bytes of the valid prefix (everything past this is a torn tail,
    /// a duplicated tail, or garbage, and is ignored).
    pub valid_len: u64,
}

/// Parse `bytes` as a log, truncating at the first frame whose length
/// field overruns the file, whose checksum mismatches, or whose payload
/// LSN disagrees with its offset.
pub fn read_log(bytes: &[u8]) -> LogContents {
    let mut records = Vec::new();
    let mut off = 0usize;
    while off + FRAME_HEADER <= bytes.len() {
        let len = match rd_u32(bytes, off) {
            Some(l) => l as usize,
            None => break,
        };
        let crc = match rd_u32(bytes, off + 4) {
            Some(c) => c,
            None => break,
        };
        let start = off + FRAME_HEADER;
        if len == 0 || start + len > bytes.len() {
            break; // torn final record
        }
        let payload = &bytes[start..start + len];
        if crc32(payload) != crc {
            break; // torn or corrupted final record
        }
        match decode_payload(payload) {
            Some((lsn, rec)) if lsn == off as u64 => records.push((lsn, rec)),
            // An intact frame at the wrong offset is a duplicated tail
            // (or a misplaced append): replay must stop before it.
            _ => break,
        }
        off = start + len;
    }
    LogContents {
        records,
        valid_len: off as u64,
    }
}

/// Counters of write-ahead-log activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended (buffered; not necessarily durable yet).
    pub records: u64,
    /// Bytes appended to the in-memory tail buffer.
    pub appended_bytes: u64,
    /// Flush (group-fsync) calls that actually pushed bytes.
    pub flushes: u64,
    /// Bytes made durable by flushes.
    pub synced_bytes: u64,
    /// Checkpoints taken (log truncations).
    pub checkpoints: u64,
}

enum WalBackend {
    File {
        file: std::fs::File,
        path: PathBuf,
        temp: bool,
    },
    /// In-memory log for `on_disk: false` stores: the write path runs
    /// (and is measurable) but nothing survives the process.
    Mem(Vec<u8>),
}

/// The append side of the log.
///
/// Appends go to a volatile tail buffer; [`Wal::flush`] /
/// [`Wal::flush_to`] persist and fsync it. The simulated-crash injector
/// is shared with the page file's [`DiskManager`] (via [`SharedDisk`])
/// so one `crash=N` schedule counts page writes and log flushes on a
/// single clock — and a crash mid-flush loses the unflushed tail, just
/// like a real kill would.
pub struct Wal {
    backend: WalBackend,
    disk: SharedDisk,
    buf: Vec<u8>,
    durable: u64,
    stats: WalStats,
}

impl Wal {
    /// Create a fresh log (truncating `path` if given, in-memory
    /// otherwise) whose first record is `Checkpoint { meta }`.
    pub fn create(
        path: Option<&Path>,
        temp: bool,
        disk: SharedDisk,
        meta: Vec<u8>,
    ) -> Result<Self> {
        let backend = match path {
            Some(p) => WalBackend::File {
                file: OpenOptions::new()
                    .read(true)
                    .write(true)
                    .create(true)
                    .truncate(true)
                    .open(p)?,
                path: p.to_owned(),
                temp,
            },
            None => WalBackend::Mem(Vec::new()),
        };
        let mut wal = Wal {
            backend,
            disk,
            buf: Vec::new(),
            durable: 0,
            stats: WalStats::default(),
        };
        wal.append(WalRecord::Checkpoint { meta });
        wal.flush()?;
        Ok(wal)
    }

    /// Reopen an existing on-disk log for appending. `durable` must be
    /// the valid length reported by [`read_log`] — a torn tail beyond it
    /// is truncated away so new records land at consistent offsets.
    pub fn open(path: &Path, temp: bool, disk: SharedDisk, durable: u64) -> Result<Self> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(durable)?;
        file.seek_to_end()?;
        Ok(Wal {
            backend: WalBackend::File {
                file,
                path: path.to_owned(),
                temp,
            },
            disk,
            buf: Vec::new(),
            durable,
            stats: WalStats::default(),
        })
    }

    /// Activity counters.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// LSN the next appended record will get.
    pub fn next_lsn(&self) -> Lsn {
        self.durable + self.buf.len() as u64
    }

    /// Bytes known durable (flushed and fsynced).
    pub fn durable_lsn(&self) -> Lsn {
        self.durable
    }

    /// Append `rec` to the volatile tail, returning its LSN. Nothing is
    /// durable until the next flush.
    pub fn append(&mut self, rec: WalRecord) -> Lsn {
        let lsn = self.next_lsn();
        let before = self.buf.len();
        encode_record(lsn, &rec, &mut self.buf);
        self.stats.records += 1;
        self.stats.appended_bytes += (self.buf.len() - before) as u64;
        lsn
    }

    /// Drop every *buffered* (not yet durable) record at or after
    /// `from_lsn`. This is the commit-path rollback: when a commit flush
    /// fails without a crash, the commit record must not linger in the
    /// buffer where a later group flush would silently make it durable
    /// after the operation already reported failure. Durable bytes are
    /// never touched — a transaction whose earlier images reached the
    /// disk stays in the log and is rolled back as a loser at recovery.
    pub fn truncate_pending(&mut self, from_lsn: Lsn) {
        if from_lsn >= self.durable {
            let keep = (from_lsn - self.durable) as usize;
            if keep < self.buf.len() {
                self.buf.truncate(keep);
            }
        }
    }

    /// Make every record up to and including `lsn` durable. A no-op if
    /// `lsn` is already durable; otherwise the *entire* tail buffer is
    /// flushed in one write + fsync (group commit).
    pub fn flush_to(&mut self, lsn: Lsn) -> Result<()> {
        if lsn < self.durable || self.buf.is_empty() {
            return Ok(());
        }
        self.flush()
    }

    /// Flush and fsync the whole tail buffer.
    pub fn flush(&mut self) -> Result<()> {
        if self.buf.is_empty() {
            if self.disk.crashed() {
                return Err(StoreError::SimulatedCrash);
            }
            return Ok(());
        }
        let fault = self.disk.lock().on_log_write(self.buf.len());
        match fault {
            LogFault::Error => Err(StoreError::Io(std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                "injected transient log write error",
            ))),
            LogFault::Crash { persist } => {
                // The machine dies mid-flush: a strict prefix of the
                // pending bytes lands; the rest of the tail is lost.
                let prefix = self.buf[..persist].to_vec();
                self.write_durable(&prefix)?;
                self.durable += persist as u64;
                self.buf.clear();
                Err(StoreError::SimulatedCrash)
            }
            LogFault::None => {
                let pending = std::mem::take(&mut self.buf);
                self.write_durable(&pending)?;
                self.durable += pending.len() as u64;
                self.stats.flushes += 1;
                self.stats.synced_bytes += pending.len() as u64;
                Ok(())
            }
        }
    }

    fn write_durable(&mut self, bytes: &[u8]) -> Result<()> {
        match &mut self.backend {
            WalBackend::Mem(log) => log.extend_from_slice(bytes),
            WalBackend::File { file, .. } => {
                if !bytes.is_empty() {
                    file.write_all(bytes)?;
                }
                // fdatasync: the appended bytes and the length needed to
                // read them are persisted; the inode metadata `sync_all`
                // additionally flushes buys nothing for a pure append.
                file.sync_data()?;
            }
        }
        Ok(())
    }

    /// Truncate the log: write a brand-new log containing only
    /// `Checkpoint { meta }` and atomically swap it in. The caller must
    /// have flushed all dirty pages (and synced the page file) first —
    /// after this, the old page images are gone.
    pub fn checkpoint(&mut self, meta: Vec<u8>) -> Result<()> {
        let mut content = Vec::new();
        encode_record(0, &WalRecord::Checkpoint { meta }, &mut content);

        let fault = self.disk.lock().on_log_write(content.len());
        match fault {
            LogFault::Error => {
                return Err(StoreError::Io(std::io::Error::new(
                    std::io::ErrorKind::Interrupted,
                    "injected transient log write error during checkpoint",
                )))
            }
            LogFault::Crash { persist } => {
                // Die before the atomic rename: the old log stays
                // authoritative, torn temp bytes are ignored.
                if let WalBackend::File { path, .. } = &self.backend {
                    let tmp = tmp_path(path);
                    let _ = std::fs::write(&tmp, &content[..persist]);
                }
                self.buf.clear();
                return Err(StoreError::SimulatedCrash);
            }
            LogFault::None => {}
        }

        match &mut self.backend {
            WalBackend::Mem(log) => {
                log.clear();
                log.extend_from_slice(&content);
            }
            WalBackend::File { file, path, .. } => {
                let tmp = tmp_path(path);
                {
                    let mut f = OpenOptions::new()
                        .write(true)
                        .create(true)
                        .truncate(true)
                        .open(&tmp)?;
                    f.write_all(&content)?;
                    f.sync_all()?;
                }
                std::fs::rename(&tmp, &*path)?;
                *file = OpenOptions::new().read(true).write(true).open(&*path)?;
                file.seek_to_end()?;
            }
        }
        self.buf.clear();
        self.durable = content.len() as u64;
        self.stats.checkpoints += 1;
        Ok(())
    }

    /// The full durable log image (for tests and recovery of in-memory
    /// stores within one process).
    pub fn durable_bytes(&mut self) -> Result<Vec<u8>> {
        match &mut self.backend {
            WalBackend::Mem(log) => Ok(log.clone()),
            WalBackend::File { path, .. } => Ok(std::fs::read(&*path)?),
        }
    }
}

/// A shared, lockable handle to a [`Wal`]. Buffer-pool shards hold a
/// clone so that evicting a stolen dirty frame can flush the log first.
/// Lock order is pool → wal → disk, everywhere.
#[derive(Clone)]
pub struct WalHandle(Arc<Mutex<Wal>>);

impl WalHandle {
    /// Wrap a log in a shareable handle.
    pub fn new(wal: Wal) -> Self {
        WalHandle(Arc::new(Mutex::new(wal)))
    }

    /// Lock the log. Poisoning is ignored for the same reason as in
    /// [`SharedDisk`]: the log's buffer holds no cross-call invariants a
    /// panicked append could break mid-flight.
    pub fn lock(&self) -> MutexGuard<'_, Wal> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(".tmp");
    PathBuf::from(os)
}

trait SeekToEnd {
    fn seek_to_end(&mut self) -> std::io::Result<()>;
}

impl SeekToEnd for std::fs::File {
    fn seek_to_end(&mut self) -> std::io::Result<()> {
        use std::io::Seek;
        self.seek(std::io::SeekFrom::End(0)).map(|_| ())
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        if let WalBackend::File {
            path, temp: true, ..
        } = &self.backend
        {
            let _ = std::fs::remove_file(path);
            let _ = std::fs::remove_file(tmp_path(path));
        }
    }
}

/// What [`recover`] reconstructed.
#[derive(Debug)]
pub struct RecoveredState {
    /// The last durably committed metadata snapshot bytes.
    pub meta: Vec<u8>,
    /// One past the highest transaction id seen in the log.
    pub next_txn: TxnId,
    /// Valid log length (offset where the next record would go).
    pub log_len: u64,
    /// Page images rewritten during redo.
    pub redone: usize,
    /// Loser images rolled back during undo.
    pub undone: usize,
    /// Committed transactions found by analysis.
    pub committed: usize,
    /// Loser (unfinished or aborted) transactions rolled back.
    pub losers: usize,
}

/// Run analysis/redo/undo over `log_bytes` against the open page file in
/// `disk`. Pure function of its inputs: replaying it twice leaves the
/// same page bytes as replaying it once.
pub fn replay(disk: &mut DiskManager, log_bytes: &[u8]) -> Result<RecoveredState> {
    let contents = read_log(log_bytes);
    let first_is_checkpoint = matches!(
        contents.records.first(),
        Some((0, WalRecord::Checkpoint { .. }))
    );
    if !first_is_checkpoint {
        return Err(StoreError::WalCorrupt {
            offset: 0,
            reason: "log does not start with a checkpoint record",
        });
    }

    // ---- analysis ----------------------------------------------------
    let mut meta: Vec<u8> = Vec::new();
    let mut committed: HashSet<TxnId> = HashSet::new();
    let mut seen: HashSet<TxnId> = HashSet::new();
    let mut aborted: HashSet<TxnId> = HashSet::new();
    let mut next_txn: TxnId = 1;
    let mut last_image: HashMap<u32, Lsn> = HashMap::new();
    for (lsn, rec) in &contents.records {
        match rec {
            WalRecord::Checkpoint { meta: m } => meta = m.clone(),
            WalRecord::Begin { txn } => {
                seen.insert(*txn);
                next_txn = next_txn.max(txn + 1);
            }
            WalRecord::PageImage { txn, pid, .. } => {
                seen.insert(*txn);
                next_txn = next_txn.max(txn + 1);
                last_image.insert(pid.0, *lsn);
            }
            WalRecord::Commit { txn, meta: m } => {
                committed.insert(*txn);
                next_txn = next_txn.max(txn + 1);
                meta = m.clone();
            }
            WalRecord::Abort { txn } => {
                aborted.insert(*txn);
                next_txn = next_txn.max(txn + 1);
            }
        }
    }
    let losers: HashSet<TxnId> = seen
        .iter()
        .filter(|t| !committed.contains(t))
        .copied()
        .collect();

    // ---- redo: repeat history ----------------------------------------
    let mut redone = 0usize;
    for (lsn, rec) in &contents.records {
        if let WalRecord::PageImage { pid, after, .. } = rec {
            ensure_allocated(disk, *pid)?;
            let mut image = **after;
            page::set_lsn(&mut image, *lsn);
            disk.write_page(*pid, &image)?;
            redone += 1;
        }
    }

    // ---- undo: roll back losers in reverse log order -----------------
    // Only where the loser's write is still the newest on the page: a
    // later transaction (committed or not) that reused the page owns its
    // final state, and redo already installed it.
    let mut undone = 0usize;
    for (lsn, rec) in contents.records.iter().rev() {
        if let WalRecord::PageImage {
            txn, pid, before, ..
        } = rec
        {
            if !losers.contains(txn) || last_image.get(&pid.0) != Some(lsn) {
                continue;
            }
            ensure_allocated(disk, *pid)?;
            let mut image = match before {
                BeforeImage::Zero => [0u8; PAGE_SIZE],
                BeforeImage::Bytes(b) => **b,
            };
            page::set_lsn(&mut image, *lsn);
            disk.write_page(*pid, &image)?;
            undone += 1;
        }
    }
    disk.sync()?;

    Ok(RecoveredState {
        meta,
        next_txn,
        log_len: contents.valid_len,
        redone,
        undone,
        committed: committed.len(),
        losers: losers.len(),
    })
}

/// Open the page file at `page_path`, replay the log at `wal_path`, and
/// return the recovered state (the caller rebuilds its in-memory
/// projection from the metadata and reopens the [`Wal`] for appending).
pub fn recover(page_path: &Path, wal_path: &Path) -> Result<(DiskManager, RecoveredState)> {
    let log_bytes = std::fs::read(wal_path)?;
    let mut disk = DiskManager::open_existing(page_path)?;
    let state = replay(&mut disk, &log_bytes)?;
    Ok((disk, state))
}

fn ensure_allocated(disk: &mut DiskManager, pid: PageId) -> Result<()> {
    while disk.num_pages() <= pid.0 {
        disk.allocate()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PAGE_HEADER_SIZE;

    fn image(fill: u8) -> Box<[u8; PAGE_SIZE]> {
        let mut b = Box::new([0u8; PAGE_SIZE]);
        for x in b[PAGE_HEADER_SIZE..].iter_mut() {
            *x = fill;
        }
        b
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Checkpoint {
                meta: vec![1, 2, 3],
            },
            WalRecord::Begin { txn: 1 },
            WalRecord::PageImage {
                txn: 1,
                pid: PageId(0),
                before: BeforeImage::Zero,
                after: image(0xAA),
            },
            WalRecord::PageImage {
                txn: 1,
                pid: PageId(1),
                before: BeforeImage::Bytes(image(0x11)),
                after: image(0xBB),
            },
            WalRecord::Commit {
                txn: 1,
                meta: vec![9, 9],
            },
            WalRecord::Abort { txn: 2 },
        ]
    }

    fn encode_all(records: &[WalRecord]) -> Vec<u8> {
        let mut out = Vec::new();
        for rec in records {
            let lsn = out.len() as u64;
            encode_record(lsn, rec, &mut out);
        }
        out
    }

    #[test]
    fn records_round_trip() {
        let records = sample_records();
        let bytes = encode_all(&records);
        let parsed = read_log(&bytes);
        assert_eq!(parsed.valid_len, bytes.len() as u64);
        let got: Vec<WalRecord> = parsed.records.into_iter().map(|(_, r)| r).collect();
        assert_eq!(got, records);
    }

    #[test]
    fn torn_tail_truncates_cleanly() {
        let records = sample_records();
        let bytes = encode_all(&records);
        // Chop the file anywhere: the reader returns a valid prefix and
        // never panics.
        for cut in 0..bytes.len() {
            let parsed = read_log(&bytes[..cut]);
            assert!(parsed.valid_len <= cut as u64);
            let reparsed = read_log(&bytes[..parsed.valid_len as usize]);
            assert_eq!(reparsed.records.len(), parsed.records.len());
        }
    }

    #[test]
    fn duplicated_tail_is_ignored() {
        let records = sample_records();
        let bytes = encode_all(&records);
        // Append a stale copy of the last frame (e.g. a retried append
        // after a partially-acknowledged write).
        let mut doubled = bytes.clone();
        let mut tail = Vec::new();
        encode_record(0, &WalRecord::Begin { txn: 7 }, &mut tail);
        doubled.extend_from_slice(&tail);
        let parsed = read_log(&doubled);
        assert_eq!(parsed.valid_len, bytes.len() as u64);
        assert_eq!(parsed.records.len(), records.len());
    }

    #[test]
    fn replay_redoes_winners_and_undoes_losers() {
        let mut disk = DiskManager::in_memory();
        disk.allocate().unwrap();
        disk.allocate().unwrap();
        let log = encode_all(&[
            WalRecord::Checkpoint { meta: vec![0] },
            WalRecord::Begin { txn: 1 },
            WalRecord::PageImage {
                txn: 1,
                pid: PageId(0),
                before: BeforeImage::Zero,
                after: image(0xAA),
            },
            WalRecord::Commit {
                txn: 1,
                meta: vec![1],
            },
            WalRecord::Begin { txn: 2 },
            WalRecord::PageImage {
                txn: 2,
                pid: PageId(1),
                before: BeforeImage::Zero,
                after: image(0xBB),
            },
            // no commit for txn 2: loser
        ]);
        let state = replay(&mut disk, &log).unwrap();
        assert_eq!(state.meta, vec![1]);
        assert_eq!(state.committed, 1);
        assert_eq!(state.losers, 1);
        assert_eq!(state.next_txn, 3);
        let mut buf = [0u8; PAGE_SIZE];
        disk.read_page(PageId(0), &mut buf).unwrap();
        assert_eq!(buf[PAGE_HEADER_SIZE], 0xAA, "winner redone");
        disk.read_page(PageId(1), &mut buf).unwrap();
        assert_eq!(buf[PAGE_HEADER_SIZE], 0x00, "loser undone to zero");
    }

    #[test]
    fn undo_skips_pages_reused_by_later_transactions() {
        let mut disk = DiskManager::in_memory();
        disk.allocate().unwrap();
        let log = encode_all(&[
            WalRecord::Checkpoint { meta: vec![0] },
            // Loser writes page 0...
            WalRecord::Begin { txn: 1 },
            WalRecord::PageImage {
                txn: 1,
                pid: PageId(0),
                before: BeforeImage::Zero,
                after: image(0x11),
            },
            WalRecord::Abort { txn: 1 },
            // ...then a committed transaction reuses it.
            WalRecord::Begin { txn: 2 },
            WalRecord::PageImage {
                txn: 2,
                pid: PageId(0),
                before: BeforeImage::Zero,
                after: image(0x22),
            },
            WalRecord::Commit {
                txn: 2,
                meta: vec![2],
            },
        ]);
        let state = replay(&mut disk, &log).unwrap();
        assert_eq!(state.undone, 0, "loser image is not newest; undo skips");
        let mut buf = [0u8; PAGE_SIZE];
        disk.read_page(PageId(0), &mut buf).unwrap();
        assert_eq!(buf[PAGE_HEADER_SIZE], 0x22);
    }

    #[test]
    fn replay_twice_is_idempotent() {
        let mut disk = DiskManager::in_memory();
        let log = encode_all(&[
            WalRecord::Checkpoint { meta: vec![0] },
            WalRecord::Begin { txn: 1 },
            WalRecord::PageImage {
                txn: 1,
                pid: PageId(0),
                before: BeforeImage::Zero,
                after: image(0xCC),
            },
            WalRecord::Commit {
                txn: 1,
                meta: vec![1],
            },
            WalRecord::Begin { txn: 2 },
            WalRecord::PageImage {
                txn: 2,
                pid: PageId(1),
                before: BeforeImage::Zero,
                after: image(0xDD),
            },
        ]);
        replay(&mut disk, &log).unwrap();
        let snapshot: Vec<[u8; PAGE_SIZE]> = (0..disk.num_pages())
            .map(|i| {
                let mut b = [0u8; PAGE_SIZE];
                disk.read_page(PageId(i), &mut b).unwrap();
                b
            })
            .collect();
        replay(&mut disk, &log).unwrap();
        for (i, before) in snapshot.iter().enumerate() {
            let mut after = [0u8; PAGE_SIZE];
            disk.read_page(PageId(i as u32), &mut after).unwrap();
            assert_eq!(&after[..], &before[..], "page {i} changed on replay");
        }
    }

    #[test]
    fn log_without_checkpoint_is_typed_corruption() {
        let mut disk = DiskManager::in_memory();
        let log = encode_all(&[WalRecord::Begin { txn: 1 }]);
        match replay(&mut disk, &log) {
            Err(StoreError::WalCorrupt { offset: 0, .. }) => {}
            other => panic!("expected WalCorrupt, got {other:?}"),
        }
    }

    #[test]
    fn wal_append_flush_reopen_cycle() {
        let dir = std::env::temp_dir().join(format!("xmlstore-waltest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let wal_path = dir.join("cycle.wal");
        let disk = SharedDisk::new(DiskManager::in_memory());
        {
            let mut wal = Wal::create(Some(&wal_path), false, disk.clone(), vec![7]).unwrap();
            wal.append(WalRecord::Begin { txn: 1 });
            wal.append(WalRecord::Commit {
                txn: 1,
                meta: vec![8],
            });
            wal.flush().unwrap();
            assert_eq!(wal.stats().records, 3);
        }
        let bytes = std::fs::read(&wal_path).unwrap();
        let parsed = read_log(&bytes);
        assert_eq!(parsed.records.len(), 3);
        // Reopen and append more; offsets continue where the log ended.
        let mut wal = Wal::open(&wal_path, false, disk, parsed.valid_len).unwrap();
        let lsn = wal.append(WalRecord::Abort { txn: 2 });
        assert_eq!(lsn, parsed.valid_len);
        wal.flush().unwrap();
        let parsed = read_log(&std::fs::read(&wal_path).unwrap());
        assert_eq!(parsed.records.len(), 4);
        std::fs::remove_file(&wal_path).unwrap();
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn checkpoint_truncates_log() {
        let disk = SharedDisk::new(DiskManager::in_memory());
        let mut wal = Wal::create(None, false, disk, vec![1]).unwrap();
        for i in 0..10 {
            wal.append(WalRecord::Begin { txn: i });
        }
        wal.flush().unwrap();
        let before = wal.durable_bytes().unwrap().len();
        wal.checkpoint(vec![2]).unwrap();
        let bytes = wal.durable_bytes().unwrap();
        assert!(bytes.len() < before);
        let parsed = read_log(&bytes);
        assert_eq!(parsed.records.len(), 1);
        match &parsed.records[0].1 {
            WalRecord::Checkpoint { meta } => assert_eq!(meta, &vec![2]),
            other => panic!("expected checkpoint, got {other:?}"),
        }
        assert_eq!(wal.stats().checkpoints, 1);
    }
}
