//! Storage-layer errors.

use std::fmt;

/// Result alias for store operations.
pub type Result<T> = std::result::Result<T, StoreError>;

/// An error raised by the storage layer.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// A page id beyond the allocated file was requested.
    PageOutOfBounds { page: u32, num_pages: u32 },
    /// A node id beyond the document was requested.
    NodeOutOfBounds { node: u32, node_count: u32 },
    /// The XML input failed to parse during load.
    Parse(xmlparse::ParseError),
    /// Content longer than the addressable limit.
    ContentTooLong(usize),
    /// The buffer pool cannot hold even one page.
    PoolTooSmall,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "I/O error: {e}"),
            StoreError::PageOutOfBounds { page, num_pages } => {
                write!(f, "page {page} out of bounds (file has {num_pages} pages)")
            }
            StoreError::NodeOutOfBounds { node, node_count } => {
                write!(f, "node {node} out of bounds (document has {node_count} nodes)")
            }
            StoreError::Parse(e) => write!(f, "load failed: {e}"),
            StoreError::ContentTooLong(n) => write!(f, "content of {n} bytes exceeds limit"),
            StoreError::PoolTooSmall => write!(f, "buffer pool must hold at least one page"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<xmlparse::ParseError> for StoreError {
    fn from(e: xmlparse::ParseError) -> Self {
        StoreError::Parse(e)
    }
}
