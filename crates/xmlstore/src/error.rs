//! Storage-layer errors.

use std::fmt;

/// Result alias for store operations.
pub type Result<T> = std::result::Result<T, StoreError>;

/// An error raised by the storage layer.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// A page id beyond the allocated file was requested.
    PageOutOfBounds { page: u32, num_pages: u32 },
    /// A node id beyond the document was requested.
    NodeOutOfBounds { node: u32, node_count: u32 },
    /// The XML input failed to parse during load.
    Parse(xmlparse::ParseError),
    /// Content longer than the addressable limit.
    ContentTooLong(usize),
    /// The buffer pool cannot hold even one page.
    PoolTooSmall,
    /// A page failed checksum verification on read.
    Corruption {
        /// The page whose image failed verification.
        page: u32,
        /// Checksum recomputed from the bytes actually read.
        expected: u32,
        /// Checksum stored in the page header.
        actual: u32,
    },
    /// Stored content bytes are not valid UTF-8 (undetected page damage
    /// or a stale content pointer).
    CorruptContent {
        /// The heap page the content was read from.
        page: u32,
    },
    /// The fault injector's `crash=N` schedule fired: the simulated
    /// machine is dead and every subsequent I/O fails with this error
    /// until the store is reopened (which runs recovery). Deliberately
    /// *not* transient — a retry loop must not absorb a crash.
    SimulatedCrash,
    /// A write-ahead-log operation found the log structurally invalid in
    /// a way torn-tail truncation cannot explain (e.g. a missing
    /// checkpoint record at the head).
    WalCorrupt {
        /// Byte offset of the damage within the log file.
        offset: u64,
        /// What was wrong there.
        reason: &'static str,
    },
    /// A mutation was attempted on a store in a state that cannot accept
    /// it (e.g. deleting a document id that does not exist).
    NoSuchDocument {
        /// The offending document id.
        doc: u64,
    },
}

impl StoreError {
    /// Is this error worth retrying? Transient faults — interrupted I/O
    /// and checksum mismatches, which on the read path can come from an
    /// in-flight bit flip that a re-read clears — may succeed on the next
    /// attempt; everything else is permanent.
    pub fn is_transient(&self) -> bool {
        match self {
            StoreError::Io(e) => matches!(
                e.kind(),
                std::io::ErrorKind::Interrupted
                    | std::io::ErrorKind::TimedOut
                    | std::io::ErrorKind::WouldBlock
            ),
            StoreError::Corruption { .. } => true,
            _ => false,
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "I/O error: {e}"),
            StoreError::PageOutOfBounds { page, num_pages } => {
                write!(f, "page {page} out of bounds (file has {num_pages} pages)")
            }
            StoreError::NodeOutOfBounds { node, node_count } => {
                write!(
                    f,
                    "node {node} out of bounds (document has {node_count} nodes)"
                )
            }
            StoreError::Parse(e) => write!(f, "load failed: {e}"),
            StoreError::ContentTooLong(n) => write!(f, "content of {n} bytes exceeds limit"),
            StoreError::PoolTooSmall => write!(f, "buffer pool must hold at least one page"),
            StoreError::Corruption {
                page,
                expected,
                actual,
            } => write!(
                f,
                "page {page} failed checksum verification \
                 (computed {expected:#010x}, header says {actual:#010x})"
            ),
            StoreError::CorruptContent { page } => {
                write!(f, "content on page {page} is not valid UTF-8")
            }
            StoreError::SimulatedCrash => {
                write!(f, "simulated crash: the injected kill point was reached")
            }
            StoreError::WalCorrupt { offset, reason } => {
                write!(f, "write-ahead log corrupt at offset {offset}: {reason}")
            }
            StoreError::NoSuchDocument { doc } => {
                write!(f, "no document with id {doc}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<xmlparse::ParseError> for StoreError {
    fn from(e: xmlparse::ParseError) -> Self {
        StoreError::Parse(e)
    }
}
