//! Fixed-size pages, the unit of I/O.

/// Page size in bytes. The paper's experiments use 8 KB pages (Sec. 6).
pub const PAGE_SIZE: usize = 8192;

/// Identifier of a page within the store file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

impl PageId {
    /// Byte offset of this page in the store file.
    pub fn byte_offset(self) -> u64 {
        self.0 as u64 * PAGE_SIZE as u64
    }
}

/// An in-memory page image.
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
}

impl Page {
    /// A zeroed page.
    pub fn zeroed() -> Self {
        Page {
            data: vec![0u8; PAGE_SIZE].into_boxed_slice().try_into().unwrap(),
        }
    }

    /// Read access to the page bytes.
    pub fn bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.data
    }

    /// Write access to the page bytes.
    pub fn bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.data
    }
}

impl Default for Page {
    fn default() -> Self {
        Page::zeroed()
    }
}

impl Clone for Page {
    fn clone(&self) -> Self {
        Page {
            data: self.data.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_is_zeroed() {
        let p = Page::zeroed();
        assert!(p.bytes().iter().all(|&b| b == 0));
    }

    #[test]
    fn byte_offset() {
        assert_eq!(PageId(0).byte_offset(), 0);
        assert_eq!(PageId(3).byte_offset(), 3 * PAGE_SIZE as u64);
    }

    #[test]
    fn mutation_roundtrip() {
        let mut p = Page::zeroed();
        p.bytes_mut()[42] = 7;
        assert_eq!(p.bytes()[42], 7);
        let q = p.clone();
        assert_eq!(q.bytes()[42], 7);
    }
}
