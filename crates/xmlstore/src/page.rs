//! Fixed-size pages, the unit of I/O.
//!
//! Every page carries a small header owned by the storage layer:
//!
//! ```text
//! byte 0..4   CRC32 over (page id ‖ bytes 4..8 ‖ data region), LE
//! byte 4..8   page LSN (low 32 bits of the WAL offset that last wrote
//!             this page), little-endian
//! byte 8..    data region (PAGE_DATA_SIZE bytes), owned by callers
//! ```
//!
//! [`DiskManager`](crate::storage::DiskManager) seals the header on every
//! write and verifies it on every read; layers above the buffer pool only
//! ever see the data region, so slot/offset arithmetic in the node and
//! heap layers stays zero-based.
//!
//! The expected page id participates in the checksum (it used to be
//! echoed in bytes 4..8), so a page sealed for slot A still fails
//! verification at slot B — misdirected writes stay detectable — while
//! bytes 4..8 are free to carry the page LSN the recovery protocol
//! needs. `seal` preserves whatever the caller put in bytes 4..8;
//! writers that don't log (the bulk-load path) leave an LSN of zero.

use crate::checksum::page_checksum;

/// Page size in bytes. The paper's experiments use 8 KB pages (Sec. 6).
pub const PAGE_SIZE: usize = 8192;

/// Bytes reserved at the front of each page for the checksum header.
pub const PAGE_HEADER_SIZE: usize = 8;

/// Bytes of each page available to callers (node records, heap content).
pub const PAGE_DATA_SIZE: usize = PAGE_SIZE - PAGE_HEADER_SIZE;

/// Identifier of a page within the store file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

impl PageId {
    /// Byte offset of this page in the store file.
    pub fn byte_offset(self) -> u64 {
        self.0 as u64 * PAGE_SIZE as u64
    }
}

/// The data region of a full page image.
pub fn data(page: &[u8; PAGE_SIZE]) -> &[u8; PAGE_DATA_SIZE] {
    match page[PAGE_HEADER_SIZE..].try_into() {
        Ok(region) => region,
        // PAGE_SIZE - PAGE_HEADER_SIZE == PAGE_DATA_SIZE by construction.
        Err(_) => unreachable!(),
    }
}

/// Mutable data region of a full page image.
pub fn data_mut(page: &mut [u8; PAGE_SIZE]) -> &mut [u8; PAGE_DATA_SIZE] {
    match (&mut page[PAGE_HEADER_SIZE..]).try_into() {
        Ok(region) => region,
        Err(_) => unreachable!(),
    }
}

/// Write a fresh header checksum into `page`, preserving the caller's
/// LSN bytes (4..8). The page id is folded into the checksum rather than
/// stored.
pub fn seal(pid: PageId, page: &mut [u8; PAGE_SIZE]) {
    let crc = page_checksum(pid.0, &page[4..]);
    page[0..4].copy_from_slice(&crc.to_le_bytes());
}

/// Stamp an LSN into the header of `page` (bytes 4..8, low 32 bits).
/// The page must be re-`seal`ed afterwards for the checksum to hold.
pub fn set_lsn(page: &mut [u8; PAGE_SIZE], lsn: u64) {
    page[4..8].copy_from_slice(&(lsn as u32).to_le_bytes());
}

/// The LSN stored in the header of `page` (low 32 bits of the full LSN).
pub fn lsn(page: &[u8; PAGE_SIZE]) -> u32 {
    u32::from_le_bytes([page[4], page[5], page[6], page[7]])
}

/// Check the header of `page` against its contents.
///
/// Returns `Err((expected, actual))` when the stored checksum does not
/// match the recomputed one — which also catches a misdirected write,
/// since the expected page id participates in the checksum.
pub fn verify(pid: PageId, page: &[u8; PAGE_SIZE]) -> Result<(), (u32, u32)> {
    let stored = u32::from_le_bytes([page[0], page[1], page[2], page[3]]);
    let computed = page_checksum(pid.0, &page[4..]);
    if stored != computed {
        return Err((computed, stored));
    }
    Ok(())
}

/// An in-memory page image.
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
}

impl Page {
    /// A zeroed page.
    pub fn zeroed() -> Self {
        Page {
            data: Box::new([0u8; PAGE_SIZE]),
        }
    }

    /// Read access to the page bytes.
    pub fn bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.data
    }

    /// Write access to the page bytes.
    pub fn bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.data
    }
}

impl Default for Page {
    fn default() -> Self {
        Page::zeroed()
    }
}

impl Clone for Page {
    fn clone(&self) -> Self {
        Page {
            data: self.data.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_is_zeroed() {
        let p = Page::zeroed();
        assert!(p.bytes().iter().all(|&b| b == 0));
    }

    #[test]
    fn byte_offset() {
        assert_eq!(PageId(0).byte_offset(), 0);
        assert_eq!(PageId(3).byte_offset(), 3 * PAGE_SIZE as u64);
    }

    #[test]
    fn mutation_roundtrip() {
        let mut p = Page::zeroed();
        p.bytes_mut()[42] = 7;
        assert_eq!(p.bytes()[42], 7);
        let q = p.clone();
        assert_eq!(q.bytes()[42], 7);
    }

    #[test]
    fn data_region_layout() {
        let mut p = Page::zeroed();
        data_mut(p.bytes_mut())[0] = 0xAB;
        assert_eq!(p.bytes()[PAGE_HEADER_SIZE], 0xAB);
        assert_eq!(data(p.bytes()).len(), PAGE_DATA_SIZE);
    }

    #[test]
    fn seal_then_verify() {
        let mut p = Page::zeroed();
        data_mut(p.bytes_mut())[17] = 99;
        seal(PageId(4), p.bytes_mut());
        assert_eq!(verify(PageId(4), p.bytes()), Ok(()));
    }

    #[test]
    fn verify_catches_data_corruption() {
        let mut p = Page::zeroed();
        seal(PageId(4), p.bytes_mut());
        p.bytes_mut()[PAGE_HEADER_SIZE + 100] ^= 0x01;
        let err = verify(PageId(4), p.bytes()).unwrap_err();
        assert_ne!(err.0, err.1);
    }

    #[test]
    fn verify_catches_header_corruption() {
        let mut p = Page::zeroed();
        seal(PageId(4), p.bytes_mut());
        p.bytes_mut()[2] ^= 0x80;
        assert!(verify(PageId(4), p.bytes()).is_err());
    }

    #[test]
    fn verify_catches_misdirected_page() {
        // A page sealed for slot 4 must not verify at slot 5.
        let mut p = Page::zeroed();
        seal(PageId(4), p.bytes_mut());
        assert!(verify(PageId(5), p.bytes()).is_err());
        assert_eq!(verify(PageId(4), p.bytes()), Ok(()));
    }

    #[test]
    fn seal_preserves_lsn_bytes() {
        let mut p = Page::zeroed();
        set_lsn(p.bytes_mut(), 0xDEAD_BEEF_0042);
        seal(PageId(7), p.bytes_mut());
        assert_eq!(lsn(p.bytes()), 0xBEEF_0042);
        assert_eq!(verify(PageId(7), p.bytes()), Ok(()));
    }

    #[test]
    fn verify_catches_lsn_corruption() {
        // The LSN is covered by the checksum like everything else.
        let mut p = Page::zeroed();
        set_lsn(p.bytes_mut(), 99);
        seal(PageId(4), p.bytes_mut());
        p.bytes_mut()[5] ^= 0x10;
        assert!(verify(PageId(4), p.bytes()).is_err());
    }
}
