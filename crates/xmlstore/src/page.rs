//! Fixed-size pages, the unit of I/O.
//!
//! Every page carries a small header owned by the storage layer:
//!
//! ```text
//! byte 0..4   CRC32 over (page id ‖ data region), little-endian
//! byte 4..8   page id echo, little-endian (misdirected-write detection)
//! byte 8..    data region (PAGE_DATA_SIZE bytes), owned by callers
//! ```
//!
//! [`DiskManager`](crate::storage::DiskManager) seals the header on every
//! write and verifies it on every read; layers above the buffer pool only
//! ever see the data region, so slot/offset arithmetic in the node and
//! heap layers stays zero-based.

use crate::checksum::page_checksum;

/// Page size in bytes. The paper's experiments use 8 KB pages (Sec. 6).
pub const PAGE_SIZE: usize = 8192;

/// Bytes reserved at the front of each page for the checksum header.
pub const PAGE_HEADER_SIZE: usize = 8;

/// Bytes of each page available to callers (node records, heap content).
pub const PAGE_DATA_SIZE: usize = PAGE_SIZE - PAGE_HEADER_SIZE;

/// Identifier of a page within the store file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

impl PageId {
    /// Byte offset of this page in the store file.
    pub fn byte_offset(self) -> u64 {
        self.0 as u64 * PAGE_SIZE as u64
    }
}

/// The data region of a full page image.
pub fn data(page: &[u8; PAGE_SIZE]) -> &[u8; PAGE_DATA_SIZE] {
    match page[PAGE_HEADER_SIZE..].try_into() {
        Ok(region) => region,
        // PAGE_SIZE - PAGE_HEADER_SIZE == PAGE_DATA_SIZE by construction.
        Err(_) => unreachable!(),
    }
}

/// Mutable data region of a full page image.
pub fn data_mut(page: &mut [u8; PAGE_SIZE]) -> &mut [u8; PAGE_DATA_SIZE] {
    match (&mut page[PAGE_HEADER_SIZE..]).try_into() {
        Ok(region) => region,
        Err(_) => unreachable!(),
    }
}

/// Write a fresh header (checksum + id echo) into `page`.
pub fn seal(pid: PageId, page: &mut [u8; PAGE_SIZE]) {
    let crc = page_checksum(pid.0, &page[PAGE_HEADER_SIZE..]);
    page[0..4].copy_from_slice(&crc.to_le_bytes());
    page[4..8].copy_from_slice(&pid.0.to_le_bytes());
}

/// Check the header of `page` against its contents.
///
/// Returns `Err((expected, actual))` when the stored checksum does not
/// match the recomputed one — which also catches a wrong page-id echo,
/// since the id participates in the checksum.
pub fn verify(pid: PageId, page: &[u8; PAGE_SIZE]) -> Result<(), (u32, u32)> {
    let stored = u32::from_le_bytes([page[0], page[1], page[2], page[3]]);
    let echoed = u32::from_le_bytes([page[4], page[5], page[6], page[7]]);
    let computed = page_checksum(echoed, &page[PAGE_HEADER_SIZE..]);
    if stored != computed || echoed != pid.0 {
        let expected = page_checksum(pid.0, &page[PAGE_HEADER_SIZE..]);
        return Err((expected, stored));
    }
    Ok(())
}

/// An in-memory page image.
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
}

impl Page {
    /// A zeroed page.
    pub fn zeroed() -> Self {
        Page {
            data: Box::new([0u8; PAGE_SIZE]),
        }
    }

    /// Read access to the page bytes.
    pub fn bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.data
    }

    /// Write access to the page bytes.
    pub fn bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.data
    }
}

impl Default for Page {
    fn default() -> Self {
        Page::zeroed()
    }
}

impl Clone for Page {
    fn clone(&self) -> Self {
        Page {
            data: self.data.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_is_zeroed() {
        let p = Page::zeroed();
        assert!(p.bytes().iter().all(|&b| b == 0));
    }

    #[test]
    fn byte_offset() {
        assert_eq!(PageId(0).byte_offset(), 0);
        assert_eq!(PageId(3).byte_offset(), 3 * PAGE_SIZE as u64);
    }

    #[test]
    fn mutation_roundtrip() {
        let mut p = Page::zeroed();
        p.bytes_mut()[42] = 7;
        assert_eq!(p.bytes()[42], 7);
        let q = p.clone();
        assert_eq!(q.bytes()[42], 7);
    }

    #[test]
    fn data_region_layout() {
        let mut p = Page::zeroed();
        data_mut(p.bytes_mut())[0] = 0xAB;
        assert_eq!(p.bytes()[PAGE_HEADER_SIZE], 0xAB);
        assert_eq!(data(p.bytes()).len(), PAGE_DATA_SIZE);
    }

    #[test]
    fn seal_then_verify() {
        let mut p = Page::zeroed();
        data_mut(p.bytes_mut())[17] = 99;
        seal(PageId(4), p.bytes_mut());
        assert_eq!(verify(PageId(4), p.bytes()), Ok(()));
    }

    #[test]
    fn verify_catches_data_corruption() {
        let mut p = Page::zeroed();
        seal(PageId(4), p.bytes_mut());
        p.bytes_mut()[PAGE_HEADER_SIZE + 100] ^= 0x01;
        let err = verify(PageId(4), p.bytes()).unwrap_err();
        assert_ne!(err.0, err.1);
    }

    #[test]
    fn verify_catches_header_corruption() {
        let mut p = Page::zeroed();
        seal(PageId(4), p.bytes_mut());
        p.bytes_mut()[2] ^= 0x80;
        assert!(verify(PageId(4), p.bytes()).is_err());
    }

    #[test]
    fn verify_catches_misdirected_page() {
        // A page sealed for slot 4 must not verify at slot 5.
        let mut p = Page::zeroed();
        seal(PageId(4), p.bytes_mut());
        assert!(verify(PageId(5), p.bytes()).is_err());
        assert_eq!(verify(PageId(4), p.bytes()), Ok(()));
    }
}
