//! Deterministic fault injection for the disk manager.
//!
//! TIMBER ran on Shore, which assumed a disk that mostly works; this
//! reproduction wants the opposite guarantee — that a query over rotting
//! pages finishes with either a correct answer or a *typed* error, never
//! a panic and never silently wrong output. The [`FaultInjector`] wraps
//! the physical backend of a [`DiskManager`](crate::storage::DiskManager)
//! and injects, per I/O operation:
//!
//! * **transient read/write errors** — `ErrorKind::Interrupted` I/O
//!   failures that a bounded retry can absorb;
//! * **read-path bit flips** — the returned page image is corrupted but
//!   the persisted page is fine, so a re-read recovers;
//! * **write-path bit flips** — the persisted image is corrupted:
//!   permanent damage a later read must *detect* via checksum;
//! * **torn writes** — only a prefix of the sealed page is persisted,
//!   modelling a crash mid-write;
//! * **crash points** (`crash=N`) — a hard stop after N write-class
//!   operations (page writes *and* write-ahead-log flushes): the Nth
//!   write persists only a prefix, and every operation after it fails
//!   with [`StoreError::SimulatedCrash`](crate::StoreError::SimulatedCrash)
//!   until the store is reopened. This is the kill switch the
//!   crash-recovery harness drives.
//!
//! Every decision comes from a seeded in-tree
//! [`smallrand::StdRng`], so a fault schedule is identified completely by
//! its [`FaultConfig`] (printable/parsable as a `key=value,…` spec) and
//! replays identically on every platform.

use crate::page::{PageId, PAGE_SIZE};
use smallrand::{RngExt, SeedableRng, StdRng};
use std::fmt;

/// What a read operation should suffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadFault {
    /// No fault: the read proceeds untouched.
    None,
    /// The read fails with a transient I/O error.
    Error,
    /// The read succeeds but bit `bit` of the returned image is flipped.
    FlipBit {
        /// Bit index within the page (`0..PAGE_SIZE * 8`).
        bit: usize,
    },
    /// The machine already crashed (`crash=N` fired earlier): the read
    /// fails with `StoreError::SimulatedCrash` and touches nothing.
    Crash,
}

/// What a write operation should suffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// No fault: the write proceeds untouched.
    None,
    /// The write fails with a transient I/O error (nothing persisted).
    Error,
    /// The persisted image has bit `bit` flipped — permanent corruption.
    FlipBit {
        /// Bit index within the page (`0..PAGE_SIZE * 8`).
        bit: usize,
    },
    /// Only the first `len` bytes of the sealed image are persisted; the
    /// tail keeps its previous contents (a torn write).
    Torn {
        /// Persisted prefix length (`1..PAGE_SIZE`).
        len: usize,
    },
    /// The `crash=N` kill point fired on (or before) this write: the
    /// first `len` bytes are persisted (0 for writes after the crash),
    /// and the operation fails with `StoreError::SimulatedCrash`.
    Crash {
        /// Persisted prefix length (`0..PAGE_SIZE`).
        len: usize,
    },
}

/// What a write-ahead-log flush should suffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogFault {
    /// No fault: the whole pending buffer is persisted and synced.
    None,
    /// The flush fails with a transient I/O error (nothing persisted).
    Error,
    /// The `crash=N` kill point fired: only the first `persist` bytes of
    /// the pending buffer reach the log (a *strict* prefix, so a commit
    /// record pending in this flush can never become durable), and the
    /// flush fails with `StoreError::SimulatedCrash`.
    Crash {
        /// Persisted prefix length (`0..pending`).
        persist: usize,
    },
}

/// A reproducible fault schedule: probabilities per operation class plus
/// predicates restricting *which* operations are eligible.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// RNG seed; the whole schedule derives from it.
    pub seed: u64,
    /// Probability a read fails with a transient I/O error.
    pub read_error: f64,
    /// Probability a write fails with a transient I/O error.
    pub write_error: f64,
    /// Probability a read returns a bit-flipped image (transient).
    pub read_flip: f64,
    /// Probability a write persists a bit-flipped image (permanent).
    pub write_flip: f64,
    /// Probability a write is torn (prefix-only persisted; permanent).
    pub torn_write: f64,
    /// Injection starts only after this many eligible operations.
    pub after_ops: u64,
    /// Restrict injection to page ids in `lo..=hi` when set.
    pub pages: Option<(u32, u32)>,
    /// Hard-stop after this many write-class operations (page writes and
    /// log flushes): the Nth write is torn and everything after it fails
    /// with `SimulatedCrash`. The op-count and page predicates do not
    /// apply — a crash point is absolute.
    pub crash: Option<u64>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            read_error: 0.0,
            write_error: 0.0,
            read_flip: 0.0,
            write_flip: 0.0,
            torn_write: 0.0,
            after_ops: 0,
            pages: None,
            crash: None,
        }
    }
}

impl FaultConfig {
    /// A schedule with the given seed and no faults enabled.
    pub fn seeded(seed: u64) -> Self {
        FaultConfig {
            seed,
            ..FaultConfig::default()
        }
    }

    /// Set the transient read-error probability.
    pub fn with_read_error(mut self, p: f64) -> Self {
        self.read_error = p;
        self
    }

    /// Set the transient write-error probability.
    pub fn with_write_error(mut self, p: f64) -> Self {
        self.write_error = p;
        self
    }

    /// Set the read-path bit-flip probability.
    pub fn with_read_flip(mut self, p: f64) -> Self {
        self.read_flip = p;
        self
    }

    /// Set the write-path (persisted) bit-flip probability.
    pub fn with_write_flip(mut self, p: f64) -> Self {
        self.write_flip = p;
        self
    }

    /// Set the torn-write probability.
    pub fn with_torn_write(mut self, p: f64) -> Self {
        self.torn_write = p;
        self
    }

    /// Start injecting only after `n` eligible operations.
    pub fn with_after_ops(mut self, n: u64) -> Self {
        self.after_ops = n;
        self
    }

    /// Restrict injection to pages `lo..=hi`.
    pub fn with_pages(mut self, lo: u32, hi: u32) -> Self {
        self.pages = Some((lo, hi));
        self
    }

    /// Hard-stop (simulated crash) after `n` write-class operations.
    pub fn with_crash_after(mut self, n: u64) -> Self {
        self.crash = Some(n);
        self
    }
}

/// Error parsing a fault-schedule spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpecError(String);

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault spec: {}", self.0)
    }
}

impl std::error::Error for FaultSpecError {}

/// Parse a `key=value,…` schedule spec, e.g.
/// `seed=3,read_err=0.01,flip=0.005,torn=0.02,after=100,pages=0-499`
/// or `seed=7,crash=25`.
///
/// Keys: `seed`, `read_err`, `write_err`, `flip` (read-path bit flips),
/// `write_flip`, `torn`, `after`, `pages=LO-HI`, `crash` (kill after N
/// write-class operations).
impl std::str::FromStr for FaultConfig {
    type Err = FaultSpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut cfg = FaultConfig::default();
        for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| FaultSpecError(format!("'{part}' is not key=value")))?;
            let bad = |what: &str| FaultSpecError(format!("'{value}' is not a valid {what}"));
            match key.trim() {
                "seed" => cfg.seed = value.parse().map_err(|_| bad("seed"))?,
                "read_err" => cfg.read_error = parse_prob(value)?,
                "write_err" => cfg.write_error = parse_prob(value)?,
                "flip" | "read_flip" => cfg.read_flip = parse_prob(value)?,
                "write_flip" => cfg.write_flip = parse_prob(value)?,
                "torn" => cfg.torn_write = parse_prob(value)?,
                "after" => cfg.after_ops = value.parse().map_err(|_| bad("op count"))?,
                "crash" => {
                    let n: u64 = value.parse().map_err(|_| bad("crash point"))?;
                    if n == 0 {
                        return Err(FaultSpecError(
                            "crash point must be at least 1 (crash=0 would forbid all writes)"
                                .to_owned(),
                        ));
                    }
                    cfg.crash = Some(n);
                }
                "pages" => {
                    let (lo, hi) = value
                        .split_once('-')
                        .ok_or_else(|| bad("page range (LO-HI)"))?;
                    let lo: u32 = lo.trim().parse().map_err(|_| bad("page range"))?;
                    let hi: u32 = hi.trim().parse().map_err(|_| bad("page range"))?;
                    if lo > hi {
                        return Err(FaultSpecError(format!("empty page range {lo}-{hi}")));
                    }
                    cfg.pages = Some((lo, hi));
                }
                other => return Err(FaultSpecError(format!("unknown key '{other}'"))),
            }
        }
        Ok(cfg)
    }
}

fn parse_prob(value: &str) -> Result<f64, FaultSpecError> {
    let p: f64 = value
        .parse()
        .map_err(|_| FaultSpecError(format!("'{value}' is not a probability")))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(FaultSpecError(format!("probability {p} outside [0, 1]")));
    }
    Ok(p)
}

/// Canonical spec rendering; `cfg.to_string().parse()` round-trips.
impl fmt::Display for FaultConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed={}", self.seed)?;
        for (key, p) in [
            ("read_err", self.read_error),
            ("write_err", self.write_error),
            ("flip", self.read_flip),
            ("write_flip", self.write_flip),
            ("torn", self.torn_write),
        ] {
            if p > 0.0 {
                write!(f, ",{key}={p}")?;
            }
        }
        if self.after_ops > 0 {
            write!(f, ",after={}", self.after_ops)?;
        }
        if let Some((lo, hi)) = self.pages {
            write!(f, ",pages={lo}-{hi}")?;
        }
        if let Some(n) = self.crash {
            write!(f, ",crash={n}")?;
        }
        Ok(())
    }
}

/// Counters of what the injector actually did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Eligible operations seen (reads + writes past the predicates).
    pub ops: u64,
    /// Injected transient read errors.
    pub read_errors: u64,
    /// Injected transient write errors.
    pub write_errors: u64,
    /// Injected read-path bit flips.
    pub read_flips: u64,
    /// Injected persisted bit flips.
    pub write_flips: u64,
    /// Injected torn writes.
    pub torn_writes: u64,
    /// Write-class operations seen (page writes + log flushes), counted
    /// regardless of predicates. The crash harness sizes `crash=N`
    /// schedules from this.
    pub write_ops: u64,
    /// Simulated crashes fired (0 or 1 per injector).
    pub crashes: u64,
}

impl FaultStats {
    /// Total injected faults of any kind.
    pub fn total(&self) -> u64 {
        self.read_errors
            + self.write_errors
            + self.read_flips
            + self.write_flips
            + self.torn_writes
            + self.crashes
    }
}

/// The seeded fault source a [`DiskManager`](crate::storage::DiskManager)
/// consults on every page transfer.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    cfg: FaultConfig,
    rng: StdRng,
    stats: FaultStats,
    crashed: bool,
}

impl FaultInjector {
    /// Build an injector for `cfg`.
    pub fn new(cfg: FaultConfig) -> Self {
        FaultInjector {
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
            stats: FaultStats::default(),
            crashed: false,
        }
    }

    /// The schedule this injector replays.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// What the injector has done so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Has the `crash=N` kill point fired?
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// Count a write-class operation against the crash schedule.
    /// Returns `true` when this very operation is the kill point.
    fn crash_due(&mut self) -> bool {
        self.stats.write_ops += 1;
        match self.cfg.crash {
            Some(n) if !self.crashed && self.stats.write_ops >= n => {
                self.crashed = true;
                self.stats.crashes += 1;
                true
            }
            _ => false,
        }
    }

    /// Is this operation past the op-count and page predicates?
    fn eligible(&mut self, pid: PageId) -> bool {
        if let Some((lo, hi)) = self.cfg.pages {
            if pid.0 < lo || pid.0 > hi {
                return false;
            }
        }
        self.stats.ops += 1;
        self.stats.ops > self.cfg.after_ops
    }

    fn hit(&mut self, p: f64) -> bool {
        p > 0.0 && self.rng.random_bool(p)
    }

    fn bit(&mut self) -> usize {
        self.rng.random_range(0..PAGE_SIZE * 8)
    }

    /// Decide the fate of a read of `pid`.
    pub fn on_read(&mut self, pid: PageId) -> ReadFault {
        if self.crashed {
            return ReadFault::Crash;
        }
        if !self.eligible(pid) {
            return ReadFault::None;
        }
        if self.hit(self.cfg.read_error) {
            self.stats.read_errors += 1;
            return ReadFault::Error;
        }
        if self.hit(self.cfg.read_flip) {
            self.stats.read_flips += 1;
            return ReadFault::FlipBit { bit: self.bit() };
        }
        ReadFault::None
    }

    /// Decide the fate of a write of `pid`.
    pub fn on_write(&mut self, pid: PageId) -> WriteFault {
        if self.crashed {
            return WriteFault::Crash { len: 0 };
        }
        if self.crash_due() {
            // The kill point itself: persist a (possibly empty) strict
            // prefix of the page, like a power cut mid-write.
            return WriteFault::Crash {
                len: self.rng.random_range(0..PAGE_SIZE),
            };
        }
        if !self.eligible(pid) {
            return WriteFault::None;
        }
        if self.hit(self.cfg.write_error) {
            self.stats.write_errors += 1;
            return WriteFault::Error;
        }
        if self.hit(self.cfg.write_flip) {
            self.stats.write_flips += 1;
            return WriteFault::FlipBit { bit: self.bit() };
        }
        if self.hit(self.cfg.torn_write) {
            self.stats.torn_writes += 1;
            // Never a zero-length tear (that is a lost write, invisible to
            // a checksum) and never the full page (not torn at all).
            return WriteFault::Torn {
                len: self.rng.random_range(1..PAGE_SIZE),
            };
        }
        WriteFault::None
    }

    /// Decide the fate of a write-ahead-log flush of `pending` bytes.
    /// The page predicate does not apply (the log is not a page), but log
    /// flushes count as write-class operations for the crash schedule,
    /// and transient write errors fire with the configured probability.
    pub fn on_log_write(&mut self, pending: usize) -> LogFault {
        if self.crashed {
            return LogFault::Crash { persist: 0 };
        }
        if self.crash_due() {
            // Strict prefix: whatever record is last in the pending
            // buffer (a commit, in every caller) can never fully land.
            let persist = if pending == 0 {
                0
            } else {
                self.rng.random_range(0..pending)
            };
            return LogFault::Crash { persist };
        }
        self.stats.ops += 1;
        if self.stats.ops <= self.cfg.after_ops {
            return LogFault::None;
        }
        if self.hit(self.cfg.write_error) {
            self.stats.write_errors += 1;
            return LogFault::Error;
        }
        LogFault::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips() {
        let cfg = FaultConfig::seeded(42)
            .with_read_error(0.01)
            .with_torn_write(0.5)
            .with_after_ops(100)
            .with_pages(3, 9);
        let parsed: FaultConfig = cfg.to_string().parse().unwrap();
        assert_eq!(parsed, cfg);
    }

    #[test]
    fn spec_rejects_garbage() {
        assert!("frobnicate=1".parse::<FaultConfig>().is_err());
        assert!("read_err=2.0".parse::<FaultConfig>().is_err());
        assert!("read_err".parse::<FaultConfig>().is_err());
        assert!("pages=9-3".parse::<FaultConfig>().is_err());
        assert!("seed=notanumber".parse::<FaultConfig>().is_err());
        assert!("crash=0".parse::<FaultConfig>().is_err());
        assert!("crash=soon".parse::<FaultConfig>().is_err());
    }

    #[test]
    fn crash_spec_round_trips() {
        let cfg = FaultConfig::seeded(7).with_crash_after(25);
        assert_eq!(cfg.to_string(), "seed=7,crash=25");
        let parsed: FaultConfig = cfg.to_string().parse().unwrap();
        assert_eq!(parsed, cfg);
    }

    #[test]
    fn crash_fires_on_nth_write_and_sticks() {
        let mut inj = FaultInjector::new(FaultConfig::seeded(9).with_crash_after(3));
        // Reads never advance the crash schedule.
        for _ in 0..10 {
            assert_eq!(inj.on_read(PageId(0)), ReadFault::None);
        }
        assert_eq!(inj.on_write(PageId(0)), WriteFault::None);
        assert_eq!(inj.on_write(PageId(1)), WriteFault::None);
        match inj.on_write(PageId(2)) {
            WriteFault::Crash { len } => assert!(len < PAGE_SIZE),
            other => panic!("expected crash on write 3, got {other:?}"),
        }
        assert!(inj.crashed());
        assert_eq!(inj.stats().crashes, 1);
        // Everything after the kill point is dead, reads included.
        assert_eq!(inj.on_write(PageId(0)), WriteFault::Crash { len: 0 });
        assert_eq!(inj.on_read(PageId(0)), ReadFault::Crash);
        assert_eq!(inj.on_log_write(128), LogFault::Crash { persist: 0 });
        assert_eq!(inj.stats().crashes, 1, "the crash fires exactly once");
    }

    #[test]
    fn log_flush_counts_toward_crash_and_tears_strictly() {
        let mut inj = FaultInjector::new(FaultConfig::seeded(4).with_crash_after(2));
        assert_eq!(inj.on_log_write(64), LogFault::None);
        match inj.on_log_write(64) {
            LogFault::Crash { persist } => assert!(persist < 64, "must be a strict prefix"),
            other => panic!("expected crash on flush 2, got {other:?}"),
        }
        assert_eq!(inj.stats().write_ops, 2);
    }

    #[test]
    fn crash_ignores_page_predicate() {
        let mut inj = FaultInjector::new(
            FaultConfig::seeded(1)
                .with_pages(100, 200)
                .with_crash_after(1),
        );
        match inj.on_write(PageId(0)) {
            WriteFault::Crash { .. } => {}
            other => panic!("crash must bypass the page predicate, got {other:?}"),
        }
    }

    #[test]
    fn empty_spec_is_no_faults() {
        let cfg: FaultConfig = "".parse().unwrap();
        assert_eq!(cfg, FaultConfig::default());
    }

    #[test]
    fn same_seed_same_schedule() {
        let cfg = FaultConfig::seeded(7)
            .with_read_error(0.3)
            .with_read_flip(0.3);
        let mut a = FaultInjector::new(cfg.clone());
        let mut b = FaultInjector::new(cfg);
        for i in 0..500 {
            assert_eq!(a.on_read(PageId(i % 13)), b.on_read(PageId(i % 13)));
            assert_eq!(a.on_write(PageId(i % 13)), b.on_write(PageId(i % 13)));
        }
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().total() > 0, "schedule must actually fire");
    }

    #[test]
    fn page_predicate_restricts_injection() {
        let cfg = FaultConfig::seeded(1).with_read_error(1.0).with_pages(5, 5);
        let mut inj = FaultInjector::new(cfg);
        assert_eq!(inj.on_read(PageId(4)), ReadFault::None);
        assert_eq!(inj.on_read(PageId(5)), ReadFault::Error);
        assert_eq!(inj.on_read(PageId(6)), ReadFault::None);
    }

    #[test]
    fn after_ops_delays_injection() {
        let cfg = FaultConfig::seeded(1)
            .with_read_error(1.0)
            .with_after_ops(3);
        let mut inj = FaultInjector::new(cfg);
        for _ in 0..3 {
            assert_eq!(inj.on_read(PageId(0)), ReadFault::None);
        }
        assert_eq!(inj.on_read(PageId(0)), ReadFault::Error);
    }

    #[test]
    fn torn_lengths_stay_in_bounds() {
        let cfg = FaultConfig::seeded(5).with_torn_write(1.0);
        let mut inj = FaultInjector::new(cfg);
        for _ in 0..1000 {
            match inj.on_write(PageId(0)) {
                WriteFault::Torn { len } => assert!((1..PAGE_SIZE).contains(&len)),
                other => panic!("expected torn write, got {other:?}"),
            }
        }
    }
}
