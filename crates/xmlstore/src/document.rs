//! A loaded XML document: records + heap on pages behind a buffer pool,
//! plus the in-memory tag dictionary and tag index.
//!
//! Loading wraps the document's root element under a synthetic `doc_root`
//! node (node id 0), matching the paper's convention that "the database is
//! a single tree document" whose pattern trees start at `$1.tag =
//! doc_root` (Sec. 4.1, Figs. 4–6).
//!
//! Text handling follows TIMBER's model: an element whose children are
//! text-only stores that text as its *content* (`$i.content` in pattern
//! predicates); text inside mixed content becomes `#text` nodes;
//! attributes become `@name` nodes whose content is the value.

use crate::buffer::{BufferPool, BufferStats};
use crate::catalog::{attr_tag_name, TagDict, TagId, TEXT_TAG};
use crate::error::{Result, StoreError};
use crate::heap::{read_content, HeapBuilder};
use crate::index::{NodeEntry, TagIndex, ValueIndex};
use crate::node::{
    node_location, ContentPtr, NodeId, NodeKind, NodeRecord, NO_PARENT, RECORDS_PER_PAGE,
    RECORD_SIZE,
};
use crate::page::{PageId, PAGE_SIZE};
use crate::storage::{DiskManager, DiskStats};
use std::cell::RefCell;
use std::path::PathBuf;

/// The reserved tag of the synthetic document root.
pub const DOC_ROOT_TAG: &str = "doc_root";

/// Configuration for loading a document into the store.
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Buffer pool capacity in pages. The paper uses a 32 MB pool of 8 KB
    /// pages, i.e. 4096 pages; that is the default.
    pub pool_pages: usize,
    /// Back the store with a real temporary file (true) or an in-memory
    /// page vector (false).
    pub on_disk: bool,
    /// If the store is on disk, put the page file here instead of a
    /// temporary path (the file is then kept after drop).
    pub path: Option<PathBuf>,
    /// Drop whitespace-only text between elements (bibliographic data is
    /// data-centric, so this is the default).
    pub strip_whitespace: bool,
    /// Also build a content value index (`(tag, value) → nodes`). The
    /// paper's experiments used only the tag index (its footnote 8
    /// explains the limits of value indices in XML), so this is off by
    /// default.
    pub value_index: bool,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            pool_pages: 32 * 1024 * 1024 / PAGE_SIZE,
            on_disk: true,
            path: None,
            strip_whitespace: true,
            value_index: false,
        }
    }
}

impl StoreOptions {
    /// Small, in-memory configuration for tests and examples.
    pub fn in_memory() -> Self {
        StoreOptions {
            pool_pages: 1024,
            on_disk: false,
            path: None,
            strip_whitespace: true,
            value_index: false,
        }
    }

    /// Enable the content value index.
    pub fn with_value_index(mut self) -> Self {
        self.value_index = true;
        self
    }

    /// Set the buffer pool size in bytes (rounded down to whole pages,
    /// minimum one page).
    pub fn with_pool_bytes(mut self, bytes: usize) -> Self {
        self.pool_pages = (bytes / PAGE_SIZE).max(1);
        self
    }

    /// Set the buffer pool size in pages.
    pub fn with_pool_pages(mut self, pages: usize) -> Self {
        self.pool_pages = pages.max(1);
        self
    }
}

/// Combined I/O counters for one store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Buffer pool counters.
    pub buffer: BufferStats,
    /// Physical disk counters.
    pub disk: DiskStats,
}

impl IoStats {
    /// Total page requests (hits + misses).
    pub fn page_requests(&self) -> u64 {
        self.buffer.hits + self.buffer.misses
    }
}

/// A document loaded into the paged store.
pub struct DocumentStore {
    tags: TagDict,
    index: TagIndex,
    value_index: Option<ValueIndex>,
    heap_base: u32,
    node_base: u32,
    node_count: u32,
    pool: RefCell<BufferPool>,
}

impl DocumentStore {
    /// Parse `xml` and load it.
    pub fn from_xml(xml: &str, opts: &StoreOptions) -> Result<Self> {
        let doc = xmlparse::parse_document(xml)?;
        Self::load(&doc, opts)
    }

    /// Load a parsed document.
    pub fn load(doc: &xmlparse::Document, opts: &StoreOptions) -> Result<Self> {
        let mut tags = TagDict::new();
        let mut heap = HeapBuilder::new();
        let mut records: Vec<NodeRecord> = Vec::new();
        let mut counter: u32 = 0;

        // Synthetic doc_root wrapping the document's root element.
        let doc_root_tag = tags.intern(DOC_ROOT_TAG);
        records.push(NodeRecord {
            tag: doc_root_tag,
            start: counter,
            end: 0, // patched below
            parent: NO_PARENT,
            level: 0,
            kind: NodeKind::Element,
            content: ContentPtr::NULL,
        });
        counter += 1;

        let mut values: Vec<(usize, String)> = Vec::new();
        let mut loader = Loader {
            tags: &mut tags,
            heap: &mut heap,
            records: &mut records,
            counter: &mut counter,
            strip_whitespace: opts.strip_whitespace,
            values: if opts.value_index {
                Some(&mut values)
            } else {
                None
            },
        };
        loader.load_element(doc.root(), 0, 1)?;
        let end = counter;
        records[0].end = end;

        // Build the tag index (and, if requested, the value index) in
        // document order. Content strings were collected during loading,
        // so the value index costs no page I/O to build.
        let mut index = TagIndex::new();
        for (i, rec) in records.iter().enumerate() {
            index.insert(
                rec.tag,
                NodeEntry {
                    id: NodeId(i as u32),
                    start: rec.start,
                    end: rec.end,
                    level: rec.level,
                },
            );
        }
        let value_index = if opts.value_index {
            let mut vi = ValueIndex::new();
            for (i, value) in &values {
                let rec = &records[*i];
                vi.insert(
                    rec.tag,
                    value,
                    NodeEntry {
                        id: NodeId(*i as u32),
                        start: rec.start,
                        end: rec.end,
                        level: rec.level,
                    },
                );
            }
            Some(vi)
        } else {
            None
        };

        // Lay out pages: heap first, then node records.
        let mut disk = if opts.on_disk {
            match &opts.path {
                Some(p) => DiskManager::create_at(p)?,
                None => DiskManager::temp_file()?,
            }
        } else {
            DiskManager::in_memory()
        };
        let heap_pages = heap.into_pages();
        let heap_base = 0u32;
        for page in &heap_pages {
            let pid = disk.allocate()?;
            let arr: &[u8; PAGE_SIZE] = page.as_slice().try_into().expect("heap page size");
            disk.write_page(pid, arr)?;
        }
        let node_base = heap_pages.len() as u32;
        let node_count = records.len() as u32;
        let mut page_buf = [0u8; PAGE_SIZE];
        for chunk in records.chunks(RECORDS_PER_PAGE) {
            page_buf.fill(0);
            for (slot, rec) in chunk.iter().enumerate() {
                rec.encode(&mut page_buf[slot * RECORD_SIZE..(slot + 1) * RECORD_SIZE]);
            }
            let pid = disk.allocate()?;
            disk.write_page(pid, &page_buf)?;
        }
        disk.reset_stats();

        let pool = BufferPool::new(disk, opts.pool_pages)?;
        Ok(DocumentStore {
            tags,
            index,
            value_index,
            heap_base,
            node_base,
            node_count,
            pool: RefCell::new(pool),
        })
    }

    // ---- metadata ----------------------------------------------------

    /// Number of stored nodes (elements + attributes + text nodes,
    /// including the synthetic `doc_root`).
    pub fn node_count(&self) -> u32 {
        self.node_count
    }

    /// Total pages in the store file.
    pub fn total_pages(&self) -> u32 {
        self.node_base + self.node_count.div_ceil(RECORDS_PER_PAGE as u32)
    }

    /// Store size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.total_pages() as u64 * PAGE_SIZE as u64
    }

    /// The tag dictionary.
    pub fn tags(&self) -> &TagDict {
        &self.tags
    }

    /// Id of an element tag name, if present in the document.
    pub fn tag_id(&self, name: &str) -> Option<TagId> {
        self.tags.get(name)
    }

    /// Id of an attribute `name` (stored as `@name`), if present.
    pub fn attr_tag_id(&self, name: &str) -> Option<TagId> {
        self.tags.get(&attr_tag_name(name))
    }

    /// Name of a tag id.
    pub fn tag_name(&self, id: TagId) -> &str {
        self.tags.name(id)
    }

    // ---- index access (no data pages touched) -------------------------

    /// Document-order index entries for a tag.
    pub fn nodes_with_tag(&self, tag: TagId) -> &[NodeEntry] {
        self.index.nodes(tag)
    }

    /// The synthetic root's index entry.
    pub fn root(&self) -> NodeEntry {
        NodeEntry {
            id: NodeId(0),
            start: 0,
            end: self.index.nodes(self.tags.get(DOC_ROOT_TAG).expect("root tag"))[0].end,
            level: 0,
        }
    }

    /// The tag index itself.
    pub fn index(&self) -> &TagIndex {
        &self.index
    }

    /// The content value index, if it was built
    /// (`StoreOptions::value_index`).
    pub fn value_index(&self) -> Option<&ValueIndex> {
        self.value_index.as_ref()
    }

    /// Document-order nodes of `tag` whose content equals `value`, from
    /// the value index (no data-page access). `None` when the index was
    /// not built.
    pub fn nodes_with_tag_and_content(&self, tag: TagId, value: &str) -> Option<&[NodeEntry]> {
        self.value_index.as_ref().map(|vi| vi.nodes(tag, value))
    }

    // ---- record / content access (goes through the buffer pool) -------

    /// Fetch the full record of `id` (one node-page access).
    pub fn record(&self, id: NodeId) -> Result<NodeRecord> {
        if id.0 >= self.node_count {
            return Err(StoreError::NodeOutOfBounds {
                node: id.0,
                node_count: self.node_count,
            });
        }
        let (page, slot) = node_location(self.node_base, id);
        self.pool
            .borrow_mut()
            .with_page(PageId(page), |p| NodeRecord::decode(&p[slot..slot + RECORD_SIZE]))
    }

    /// The index-style entry of `id` (via its record).
    pub fn entry(&self, id: NodeId) -> Result<NodeEntry> {
        let rec = self.record(id)?;
        Ok(NodeEntry {
            id,
            start: rec.start,
            end: rec.end,
            level: rec.level,
        })
    }

    /// Character content of `id`: `Some` for attributes, text nodes, and
    /// text-only elements; `None` otherwise. This is the "data value
    /// look-up" of Sec. 5.3 and touches heap pages.
    pub fn content(&self, id: NodeId) -> Result<Option<String>> {
        let rec = self.record(id)?;
        if !rec.content.is_some() {
            return Ok(None);
        }
        let mut pool = self.pool.borrow_mut();
        Ok(Some(read_content(&mut pool, self.heap_base, rec.content)?))
    }

    /// Parent node id (None for the root).
    pub fn parent(&self, id: NodeId) -> Result<Option<NodeId>> {
        let rec = self.record(id)?;
        Ok(if rec.parent == NO_PARENT {
            None
        } else {
            Some(NodeId(rec.parent))
        })
    }

    /// All child node ids of `id` (elements, attributes, and text nodes),
    /// in document order.
    pub fn children(&self, id: NodeId) -> Result<Vec<NodeId>> {
        let rec = self.record(id)?;
        let mut out = Vec::new();
        let mut j = id.0 + 1;
        while j < self.node_count {
            let r = self.record(NodeId(j))?;
            if r.start >= rec.end {
                break;
            }
            if r.level == rec.level + 1 {
                out.push(NodeId(j));
            }
            j += 1;
        }
        Ok(out)
    }

    /// All node ids in the subtree of `id`, `id` included, in document
    /// order.
    pub fn subtree(&self, id: NodeId) -> Result<Vec<NodeId>> {
        let rec = self.record(id)?;
        let mut out = vec![id];
        let mut j = id.0 + 1;
        while j < self.node_count {
            let r = self.record(NodeId(j))?;
            if r.start >= rec.end {
                break;
            }
            out.push(NodeId(j));
            j += 1;
        }
        Ok(out)
    }

    /// Rebuild the DOM element for the subtree rooted at `id` — the "data
    /// population" step of Sec. 5.3. Attribute children become attributes,
    /// `#text` children become text nodes, merged content becomes a text
    /// child.
    pub fn materialize(&self, id: NodeId) -> Result<xmlparse::Element> {
        let rec = self.record(id)?;
        let mut elem = xmlparse::Element::new(self.tags.name(rec.tag));
        if rec.content.is_some() {
            let mut pool = self.pool.borrow_mut();
            let text = read_content(&mut pool, self.heap_base, rec.content)?;
            drop(pool);
            if rec.kind == NodeKind::Element {
                elem.children.push(xmlparse::XmlNode::Text(text));
            } else {
                // For attribute/text nodes materialized directly.
                elem.children.push(xmlparse::XmlNode::Text(text));
            }
        }
        for child in self.children(id)? {
            let crec = self.record(child)?;
            match crec.kind {
                NodeKind::Attribute => {
                    let name = self.tags.name(crec.tag).trim_start_matches('@').to_owned();
                    let value = self.content(child)?.unwrap_or_default();
                    elem.attributes.push((name, value));
                }
                NodeKind::Text => {
                    let value = self.content(child)?.unwrap_or_default();
                    elem.children.push(xmlparse::XmlNode::Text(value));
                }
                NodeKind::Element => {
                    elem.children
                        .push(xmlparse::XmlNode::Element(self.materialize(child)?));
                }
            }
        }
        Ok(elem)
    }

    // ---- statistics ----------------------------------------------------

    /// Current I/O counters.
    pub fn io_stats(&self) -> IoStats {
        let pool = self.pool.borrow();
        IoStats {
            buffer: pool.stats(),
            disk: pool.disk_stats(),
        }
    }

    /// Zero the I/O counters.
    pub fn reset_io_stats(&self) {
        self.pool.borrow_mut().reset_stats();
    }

    /// Empty the buffer pool so the next operation starts cold.
    pub fn clear_buffer_pool(&self) -> Result<()> {
        self.pool.borrow_mut().clear()
    }

    /// Buffer pool capacity in pages.
    pub fn pool_capacity(&self) -> usize {
        self.pool.borrow().capacity()
    }
}

struct Loader<'a> {
    tags: &'a mut TagDict,
    heap: &'a mut HeapBuilder,
    records: &'a mut Vec<NodeRecord>,
    counter: &'a mut u32,
    strip_whitespace: bool,
    /// When building a value index: `(record index, content)` pairs.
    values: Option<&'a mut Vec<(usize, String)>>,
}

impl Loader<'_> {
    /// DFS over the DOM assigning ids, labels, and content.
    fn load_element(&mut self, elem: &xmlparse::Element, parent: u32, level: u16) -> Result<u32> {
        let id = self.records.len() as u32;
        let tag = self.tags.intern(&elem.name);
        let start = *self.counter;
        *self.counter += 1;
        self.records.push(NodeRecord {
            tag,
            start,
            end: 0, // patched at exit
            parent,
            level,
            kind: NodeKind::Element,
            content: ContentPtr::NULL,
        });

        // Attributes as leaf nodes.
        for (name, value) in &elem.attributes {
            let attr_tag = self.tags.intern(&attr_tag_name(name));
            let s = *self.counter;
            *self.counter += 1;
            let e = *self.counter;
            *self.counter += 1;
            let content = self.heap.append(value)?;
            if let Some(values) = self.values.as_deref_mut() {
                values.push((self.records.len(), value.clone()));
            }
            self.records.push(NodeRecord {
                tag: attr_tag,
                start: s,
                end: e,
                parent: id,
                level: level + 1,
                kind: NodeKind::Attribute,
                content,
            });
        }

        let has_element_children = elem
            .children
            .iter()
            .any(|c| matches!(c, xmlparse::XmlNode::Element(_)));

        if has_element_children {
            // Mixed or element content: text children become #text nodes.
            for child in &elem.children {
                match child {
                    xmlparse::XmlNode::Element(e) => {
                        self.load_element(e, id, level + 1)?;
                    }
                    xmlparse::XmlNode::Text(t) => {
                        if self.strip_whitespace && t.trim().is_empty() {
                            continue;
                        }
                        let text_tag = self.tags.intern(TEXT_TAG);
                        let s = *self.counter;
                        *self.counter += 1;
                        let e = *self.counter;
                        *self.counter += 1;
                        let content = self.heap.append(t)?;
                        if let Some(values) = self.values.as_deref_mut() {
                            values.push((self.records.len(), t.clone()));
                        }
                        self.records.push(NodeRecord {
                            tag: text_tag,
                            start: s,
                            end: e,
                            parent: id,
                            level: level + 1,
                            kind: NodeKind::Text,
                            content,
                        });
                    }
                    xmlparse::XmlNode::Comment(_) => {}
                }
            }
        } else {
            // Text-only (or empty) content merges into the element.
            let text = elem.text();
            if !(text.is_empty() || (self.strip_whitespace && text.trim().is_empty())) {
                let content = self.heap.append(&text)?;
                self.records[id as usize].content = content;
                if let Some(values) = self.values.as_deref_mut() {
                    values.push((id as usize, text));
                }
            }
        }

        let end = *self.counter;
        *self.counter += 1;
        self.records[id as usize].end = end;
        Ok(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"<bib>
        <article year="1999">
            <title>Querying XML</title>
            <author>Jack</author>
            <author>John</author>
        </article>
        <article>
            <title>Hack HTML</title>
            <author>John</author>
        </article>
    </bib>"#;

    fn store() -> DocumentStore {
        DocumentStore::from_xml(SAMPLE, &StoreOptions::in_memory()).unwrap()
    }

    #[test]
    fn loads_with_doc_root_wrapper() {
        let s = store();
        let root = s.root();
        assert_eq!(root.id, NodeId(0));
        assert_eq!(s.tag_name(s.record(NodeId(0)).unwrap().tag), DOC_ROOT_TAG);
        // doc_root + bib + 2 articles + 1 attr + 2 titles + 3 authors = 10
        assert_eq!(s.node_count(), 10);
    }

    #[test]
    fn tag_index_finds_all_authors() {
        let s = store();
        let author = s.tag_id("author").unwrap();
        let authors = s.nodes_with_tag(author);
        assert_eq!(authors.len(), 3);
        // Index entries are in document order.
        assert!(authors.windows(2).all(|w| w[0].start < w[1].start));
    }

    #[test]
    fn content_of_text_only_element() {
        let s = store();
        let title = s.tag_id("title").unwrap();
        let first = s.nodes_with_tag(title)[0];
        assert_eq!(s.content(first.id).unwrap().as_deref(), Some("Querying XML"));
    }

    #[test]
    fn attribute_stored_as_node() {
        let s = store();
        let year = s.attr_tag_id("year").unwrap();
        let entries = s.nodes_with_tag(year);
        assert_eq!(entries.len(), 1);
        assert_eq!(s.content(entries[0].id).unwrap().as_deref(), Some("1999"));
        let rec = s.record(entries[0].id).unwrap();
        assert_eq!(rec.kind, NodeKind::Attribute);
    }

    #[test]
    fn containment_labels_nest() {
        let s = store();
        let article = s.tag_id("article").unwrap();
        let author = s.tag_id("author").unwrap();
        let articles = s.nodes_with_tag(article);
        let authors = s.nodes_with_tag(author);
        // First article has exactly 2 of the 3 authors.
        let inside = authors
            .iter()
            .filter(|a| articles[0].is_ancestor_of(a))
            .count();
        assert_eq!(inside, 2);
        assert!(articles[0].is_parent_of(&authors[0]));
    }

    #[test]
    fn children_and_subtree_navigation() {
        let s = store();
        let article = s.tag_id("article").unwrap();
        let first = s.nodes_with_tag(article)[0];
        let kids = s.children(first.id).unwrap();
        // year attr + title + 2 authors
        assert_eq!(kids.len(), 4);
        let sub = s.subtree(first.id).unwrap();
        assert_eq!(sub.len(), 5);
        assert_eq!(sub[0], first.id);
    }

    #[test]
    fn parent_navigation() {
        let s = store();
        let title = s.tag_id("title").unwrap();
        let t = s.nodes_with_tag(title)[0];
        let p = s.parent(t.id).unwrap().unwrap();
        let prec = s.record(p).unwrap();
        assert_eq!(s.tag_name(prec.tag), "article");
        assert_eq!(s.parent(NodeId(0)).unwrap(), None);
    }

    #[test]
    fn materialize_roundtrips_article() {
        let s = store();
        let article = s.tag_id("article").unwrap();
        let first = s.nodes_with_tag(article)[0];
        let elem = s.materialize(first.id).unwrap();
        assert_eq!(elem.name, "article");
        assert_eq!(elem.attr("year"), Some("1999"));
        assert_eq!(elem.child("title").unwrap().text(), "Querying XML");
        assert_eq!(elem.children_named("author").count(), 2);
    }

    #[test]
    fn mixed_content_preserved() {
        let xml = "<p>Hello <b>bold</b> world</p>";
        let s = DocumentStore::from_xml(xml, &StoreOptions::in_memory()).unwrap();
        let p = s.tag_id("p").unwrap();
        let node = s.nodes_with_tag(p)[0];
        let elem = s.materialize(node.id).unwrap();
        assert_eq!(elem.deep_text(), "Hello bold world");
        let text_tag = s.tag_id(TEXT_TAG).unwrap();
        assert_eq!(s.nodes_with_tag(text_tag).len(), 2);
    }

    #[test]
    fn io_stats_count_page_traffic() {
        let s = store();
        s.reset_io_stats();
        let title = s.tag_id("title").unwrap();
        let t = s.nodes_with_tag(title)[0];
        // Index access alone: no page requests.
        assert_eq!(s.io_stats().page_requests(), 0);
        let _ = s.content(t.id).unwrap();
        assert!(s.io_stats().page_requests() >= 2); // node page + heap page
    }

    #[test]
    fn on_disk_backend_works() {
        let opts = StoreOptions {
            on_disk: true,
            pool_pages: 8,
            ..StoreOptions::in_memory()
        };
        let s = DocumentStore::from_xml(SAMPLE, &opts).unwrap();
        let author = s.tag_id("author").unwrap();
        let a = s.nodes_with_tag(author)[2];
        assert_eq!(s.content(a.id).unwrap().as_deref(), Some("John"));
        assert!(s.io_stats().disk.reads >= 1);
    }

    #[test]
    fn strip_whitespace_toggle() {
        let xml = "<a> <b/> </a>";
        let stripped = DocumentStore::from_xml(xml, &StoreOptions::in_memory()).unwrap();
        let kept = DocumentStore::from_xml(
            xml,
            &StoreOptions {
                strip_whitespace: false,
                ..StoreOptions::in_memory()
            },
        )
        .unwrap();
        // stripped: doc_root + a + b; kept adds two #text nodes.
        assert_eq!(stripped.node_count(), 3);
        assert_eq!(kept.node_count(), 5);
    }

    #[test]
    fn value_index_built_on_request() {
        let s = DocumentStore::from_xml(SAMPLE, &StoreOptions::in_memory().with_value_index())
            .unwrap();
        let author = s.tag_id("author").unwrap();
        let hits = s.nodes_with_tag_and_content(author, "John").unwrap();
        assert_eq!(hits.len(), 2);
        assert!(s.nodes_with_tag_and_content(author, "Nobody").unwrap().is_empty());
        // Attribute values are indexed too (tag @year).
        let year = s.attr_tag_id("year").unwrap();
        assert_eq!(s.nodes_with_tag_and_content(year, "1999").unwrap().len(), 1);
        // Off by default.
        let plain = DocumentStore::from_xml(SAMPLE, &StoreOptions::in_memory()).unwrap();
        assert!(plain.value_index().is_none());
        assert!(plain.nodes_with_tag_and_content(author, "John").is_none());
    }

    #[test]
    fn value_index_lookup_touches_no_pages() {
        let s = DocumentStore::from_xml(SAMPLE, &StoreOptions::in_memory().with_value_index())
            .unwrap();
        s.reset_io_stats();
        let author = s.tag_id("author").unwrap();
        let _ = s.nodes_with_tag_and_content(author, "Jack").unwrap();
        assert_eq!(s.io_stats().page_requests(), 0);
    }

    #[test]
    fn very_long_content_spans_heap_pages() {
        let long_title = "Grouping in XML ".repeat(1200); // ~19 KB > 2 pages
        let xml = format!("<bib><article><title>{long_title}</title></article></bib>");
        let s = DocumentStore::from_xml(&xml, &StoreOptions::in_memory()).unwrap();
        let title = s.tag_id("title").unwrap();
        let t = s.nodes_with_tag(title)[0];
        assert_eq!(s.content(t.id).unwrap().as_deref(), Some(long_title.as_str()));
        // The heap needs at least three pages for this value.
        assert!(s.total_pages() >= 3);
    }

    #[test]
    fn node_out_of_bounds_error() {
        let s = store();
        assert!(matches!(
            s.record(NodeId(10_000)),
            Err(StoreError::NodeOutOfBounds { .. })
        ));
    }

    #[test]
    fn many_nodes_span_pages() {
        // More than RECORDS_PER_PAGE nodes forces multi-page layout.
        let mut xml = String::from("<bib>");
        for i in 0..300 {
            xml.push_str(&format!("<article><title>T{i}</title></article>"));
        }
        xml.push_str("</bib>");
        let s = DocumentStore::from_xml(&xml, &StoreOptions::in_memory()).unwrap();
        assert_eq!(s.node_count(), 602);
        assert!(s.total_pages() > 2);
        let title = s.tag_id("title").unwrap();
        let last = s.nodes_with_tag(title)[299];
        assert_eq!(s.content(last.id).unwrap().as_deref(), Some("T299"));
    }
}
