//! The document store: records + heap on pages behind a buffer pool,
//! plus the in-memory tag dictionary and tag index.
//!
//! Loading wraps every document's root element under one synthetic
//! `doc_root` node (node id 0), matching the paper's convention that
//! "the database is a single tree document" whose pattern trees start at
//! `$1.tag = doc_root` (Sec. 4.1, Figs. 4–6). The store holds any number
//! of documents: each is laid out in its own page runs with *local* node
//! ids and `(start, end)` labels, and the read path projects them into
//! one dense global id/label space under the shared `doc_root`.
//!
//! Text handling follows TIMBER's model: an element whose children are
//! text-only stores that text as its *content* (`$i.content` in pattern
//! predicates); text inside mixed content becomes `#text` nodes;
//! attributes become `@name` nodes whose content is the value.
//!
//! # Durability
//!
//! With [`StoreOptions::durable`], every mutation is a write-ahead-logged
//! transaction (see [`crate::wal`]): an operation returns `Ok` if and
//! only if its commit record is durable, and [`DocumentStore::open`]
//! replays the log (ARIES-style analysis/redo/undo) to recover exactly
//! the committed documents after a crash. Bulk inserts into fresh pages
//! at the end of the file skip page-image logging entirely — the pages
//! are unreferenced until the commit's metadata snapshot lands, so a
//! sync of the page file plus one log flush is enough. Inserts that
//! reuse freed pages log full after-images with zero before-images, so
//! rolling back a torn reuse *zeroes* the reclaimed pages rather than
//! resurrecting whatever document previously occupied them.

use crate::buffer::{BufferPool, BufferStats};
use crate::catalog::{attr_tag_name, TagId, TEXT_TAG};
use crate::columns::NodeColumns;
use crate::dict::{Dictionary, Sym, NO_SYM};
use crate::error::{Result, StoreError};
use crate::fault::{FaultConfig, FaultInjector, FaultStats};
use crate::heap::{read_content_via, HeapBuilder};
use crate::index::{NodeEntry, TagIndex, ValueIndex};
use crate::node::{
    node_location, ContentPtr, NodeId, NodeKind, NodeRecord, NO_PARENT, RECORDS_PER_PAGE,
    RECORD_SIZE,
};
use crate::page::{PageId, PAGE_DATA_SIZE, PAGE_HEADER_SIZE, PAGE_SIZE};
use crate::storage::{DiskManager, DiskStats, SharedDisk};
use crate::wal::{self, BeforeImage, Lsn, TxnId, Wal, WalHandle, WalRecord, WalStats};
use std::collections::{BTreeSet, HashMap};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

/// Maximum number of buffer-pool shards per store. Page ids are striped
/// across shards (`pid % nshards`), so concurrent readers touching
/// different pages usually take different locks.
const MAX_POOL_SHARDS: usize = 8;

/// Entry cap per header-cache shard: the cache is a small read
/// accelerator, not a second buffer pool.
const HEADER_CACHE_SHARD_CAP: usize = 4096;

/// The reserved tag of the synthetic document root.
pub const DOC_ROOT_TAG: &str = "doc_root";

/// Identifier of one stored document, assigned at insert and never
/// reused (deleting a document retires its id).
pub type DocId = u64;

/// The log path used for a durable store whose page file lives at
/// `page_path`: the same path with `.wal` appended.
pub fn wal_path_for(page_path: &Path) -> PathBuf {
    let mut os = page_path.as_os_str().to_owned();
    os.push(".wal");
    PathBuf::from(os)
}

/// Configuration for loading a document into the store.
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Buffer pool capacity in pages. The paper uses a 32 MB pool of 8 KB
    /// pages, i.e. 4096 pages; that is the default.
    pub pool_pages: usize,
    /// Back the store with a real temporary file (true) or an in-memory
    /// page vector (false).
    pub on_disk: bool,
    /// If the store is on disk, put the page file here instead of a
    /// temporary path (the file is then kept after drop).
    pub path: Option<PathBuf>,
    /// Drop whitespace-only text between elements (bibliographic data is
    /// data-centric, so this is the default).
    pub strip_whitespace: bool,
    /// Also build a content value index (`(tag, value) → nodes`). The
    /// paper's experiments used only the tag index (its footnote 8
    /// explains the limits of value indices in XML), so this is off by
    /// default.
    pub value_index: bool,
    /// Cache decoded node headers (`NodeId → NodeRecord`) on the read
    /// path, skipping the buffer pool for repeat fetches. Off by default
    /// so I/O counters keep measuring true page traffic.
    pub header_cache: bool,
    /// Write-ahead log every mutation so the store survives crashes.
    /// The log lives next to the page file (`path` + `.wal`) when the
    /// store is on disk at a named path; otherwise it is kept in memory,
    /// which still exercises the full logging path (useful for
    /// benchmarking WAL overhead) but cannot be reopened.
    pub durable: bool,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            pool_pages: 32 * 1024 * 1024 / PAGE_SIZE,
            on_disk: true,
            path: None,
            strip_whitespace: true,
            value_index: false,
            header_cache: false,
            durable: false,
        }
    }
}

impl StoreOptions {
    /// Small, in-memory configuration for tests and examples.
    pub fn in_memory() -> Self {
        StoreOptions {
            pool_pages: 1024,
            on_disk: false,
            path: None,
            strip_whitespace: true,
            value_index: false,
            header_cache: false,
            durable: false,
        }
    }

    /// Enable the content value index.
    pub fn with_value_index(mut self) -> Self {
        self.value_index = true;
        self
    }

    /// Enable the node-header cache.
    pub fn with_header_cache(mut self) -> Self {
        self.header_cache = true;
        self
    }

    /// Set the buffer pool size in bytes (rounded down to whole pages,
    /// minimum one page).
    pub fn with_pool_bytes(mut self, bytes: usize) -> Self {
        self.pool_pages = (bytes / PAGE_SIZE).max(1);
        self
    }

    /// Set the buffer pool size in pages.
    pub fn with_pool_pages(mut self, pages: usize) -> Self {
        self.pool_pages = pages.max(1);
        self
    }

    /// Enable write-ahead logging and crash recovery.
    pub fn with_durable(mut self) -> Self {
        self.durable = true;
        self
    }

    /// Put the page file (and, if durable, the log) at `path`.
    pub fn with_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.on_disk = true;
        self.path = Some(path.into());
        self
    }
}

/// Combined I/O counters for one store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Buffer pool counters.
    pub buffer: BufferStats,
    /// Physical disk counters.
    pub disk: DiskStats,
}

impl IoStats {
    /// Total page requests (hits + misses).
    pub fn page_requests(&self) -> u64 {
        self.buffer.hits + self.buffer.misses
    }
}

/// Hit/miss counters of the in-memory read-path caches (tag-index
/// lookups and the optional node-header cache).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Node-header fetches answered from the header cache.
    pub header_hits: u64,
    /// Node-header fetches that had to decode a buffered page.
    pub header_misses: u64,
    /// Tag-name lookups that resolved to an interned tag.
    pub tag_hits: u64,
    /// Tag-name lookups for names absent from the document.
    pub tag_misses: u64,
}

/// What crash recovery did when the store was reopened.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// Page images rewritten during redo.
    pub redone: u64,
    /// Loser images rolled back during undo.
    pub undone: u64,
    /// Committed transactions found in the log.
    pub committed: u64,
    /// Loser (unfinished or aborted) transactions rolled back.
    pub losers: u64,
}

/// A sharded `NodeId → NodeRecord` cache. Shards are striped the same
/// way as the buffer pool (by node page), each behind a reader-writer
/// lock, so concurrent readers on a warm cache take no exclusive lock.
struct HeaderCache {
    shards: Vec<RwLock<HashMap<u32, NodeRecord>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl HeaderCache {
    fn new(nshards: usize) -> Self {
        HeaderCache {
            shards: (0..nshards.max(1))
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, id: u32) -> &RwLock<HashMap<u32, NodeRecord>> {
        &self.shards[id as usize % self.shards.len()]
    }

    fn get(&self, id: u32) -> Option<NodeRecord> {
        let found = self
            .shard(id)
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(&id)
            .copied();
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    fn insert(&self, id: u32, rec: NodeRecord) {
        let mut shard = self.shard(id).write().unwrap_or_else(|e| e.into_inner());
        if shard.len() < HEADER_CACHE_SHARD_CAP {
            shard.insert(id, rec);
        }
    }

    fn clear(&self) {
        for shard in &self.shards {
            shard.write().unwrap_or_else(|e| e.into_inner()).clear();
        }
    }
}

// ---- persistent metadata ----------------------------------------------

/// On-log layout of one stored document: where its pages live and how
/// big its local id/label spaces are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DocMeta {
    doc_id: DocId,
    heap_base: u32,
    heap_pages: u32,
    node_base: u32,
    node_pages: u32,
    /// Stored records (the synthetic `doc_root` is *not* stored).
    node_count: u32,
    /// Local `(start, end)` label span: local labels are in `[0, span)`.
    span: u32,
}

/// The store's durable metadata snapshot, serialized into every commit
/// and checkpoint record. Everything else (tag index, value index,
/// free list, global projection) is derived from it plus the pages.
#[derive(Debug, Clone, PartialEq, Eq)]
struct StoreMeta {
    /// The full dictionary snapshot in `Sym` order — tag names *and*
    /// interned content values; `tags[0]` is always `doc_root`. Logging
    /// the whole table with every commit is what lets recovery re-intern
    /// the identical `name → Sym` assignment the crashed session used.
    tags: Vec<String>,
    docs: Vec<DocMeta>,
    next_doc: DocId,
    next_txn: TxnId,
}

const META_MAGIC: u32 = 0x544d_4254; // "TBMT"
/// v2: `tags` carries the unified dictionary (values included), not just
/// element tags.
const META_VERSION: u32 = 2;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn encode_meta(meta: &StoreMeta) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, META_MAGIC);
    put_u32(&mut out, META_VERSION);
    put_u64(&mut out, meta.next_doc);
    put_u64(&mut out, meta.next_txn);
    put_u32(&mut out, meta.tags.len() as u32);
    for tag in &meta.tags {
        put_u32(&mut out, tag.len() as u32);
        out.extend_from_slice(tag.as_bytes());
    }
    put_u32(&mut out, meta.docs.len() as u32);
    for d in &meta.docs {
        put_u64(&mut out, d.doc_id);
        for v in [
            d.heap_base,
            d.heap_pages,
            d.node_base,
            d.node_pages,
            d.node_count,
            d.span,
        ] {
            put_u32(&mut out, v);
        }
    }
    out
}

fn bad_meta() -> StoreError {
    StoreError::WalCorrupt {
        offset: 0,
        reason: "bad metadata snapshot",
    }
}

struct MetaReader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> MetaReader<'a> {
    fn u32(&mut self) -> Result<u32> {
        let b = self
            .buf
            .get(self.at..self.at + 4)
            .ok_or_else(bad_meta)?
            .try_into()
            .map_err(|_| bad_meta())?;
        self.at += 4;
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self) -> Result<u64> {
        let b = self
            .buf
            .get(self.at..self.at + 8)
            .ok_or_else(bad_meta)?
            .try_into()
            .map_err(|_| bad_meta())?;
        self.at += 8;
        Ok(u64::from_le_bytes(b))
    }

    fn string(&mut self, len: usize) -> Result<String> {
        let b = self.buf.get(self.at..self.at + len).ok_or_else(bad_meta)?;
        self.at += len;
        String::from_utf8(b.to_vec()).map_err(|_| bad_meta())
    }
}

fn decode_meta(bytes: &[u8]) -> Result<StoreMeta> {
    let mut r = MetaReader { buf: bytes, at: 0 };
    if r.u32()? != META_MAGIC || r.u32()? != META_VERSION {
        return Err(bad_meta());
    }
    let next_doc = r.u64()?;
    let next_txn = r.u64()?;
    let ntags = r.u32()? as usize;
    let mut tags = Vec::with_capacity(ntags.min(1 << 16));
    for _ in 0..ntags {
        let len = r.u32()? as usize;
        tags.push(r.string(len)?);
    }
    let ndocs = r.u32()? as usize;
    let mut docs = Vec::with_capacity(ndocs.min(1 << 16));
    for _ in 0..ndocs {
        let doc_id = r.u64()?;
        let mut f = [0u32; 6];
        for v in &mut f {
            *v = r.u32()?;
        }
        docs.push(DocMeta {
            doc_id,
            heap_base: f[0],
            heap_pages: f[1],
            node_base: f[2],
            node_pages: f[3],
            node_count: f[4],
            span: f[5],
        });
    }
    if r.at != bytes.len() || tags.first().map(String::as_str) != Some(DOC_ROOT_TAG) {
        return Err(bad_meta());
    }
    Ok(StoreMeta {
        tags,
        docs,
        next_doc,
        next_txn,
    })
}

// ---- per-document derived state ---------------------------------------

/// One document built in memory, ready to commit: local records (ids and
/// labels starting at 0, synthetic root excluded), encoded pages, and
/// the content strings for the optional value index.
struct LocalDoc {
    records: Vec<NodeRecord>,
    heap_pages: Vec<Box<[u8; PAGE_SIZE]>>,
    node_pages: Vec<Box<[u8; PAGE_SIZE]>>,
    values: Option<Vec<(u32, String)>>,
    /// Per-record content symbol ([`NO_SYM`] when the record has none),
    /// parallel to `records`.
    content_syms: Vec<u32>,
    span: u32,
}

fn build_local(
    doc: &xmlparse::Document,
    tags: &Dictionary,
    strip_whitespace: bool,
    want_values: bool,
) -> Result<LocalDoc> {
    let mut heap = HeapBuilder::new();
    let mut records: Vec<NodeRecord> = Vec::new();
    let mut content_syms: Vec<u32> = Vec::new();
    let mut counter: u32 = 0;
    let mut values: Vec<(usize, String)> = Vec::new();
    let mut loader = Loader {
        tags,
        heap: &mut heap,
        records: &mut records,
        content_syms: &mut content_syms,
        counter: &mut counter,
        strip_whitespace,
        values: if want_values { Some(&mut values) } else { None },
    };
    loader.load_element(doc.root(), NO_PARENT, 1)?;
    let span = counter;

    let heap_pages = heap.into_pages();
    let mut node_pages = Vec::with_capacity(records.len().div_ceil(RECORDS_PER_PAGE));
    for chunk in records.chunks(RECORDS_PER_PAGE) {
        let mut page = Box::new([0u8; PAGE_SIZE]);
        for (slot, rec) in chunk.iter().enumerate() {
            let at = PAGE_HEADER_SIZE + slot * RECORD_SIZE;
            rec.encode(&mut page[at..at + RECORD_SIZE]);
        }
        node_pages.push(page);
    }
    Ok(LocalDoc {
        records,
        heap_pages,
        node_pages,
        values: want_values.then(|| values.into_iter().map(|(i, s)| (i as u32, s)).collect()),
        content_syms,
        span,
    })
}

/// In-memory acceleration state for one stored document, rebuilt from
/// its pages on open: the local tag-index entries (indexed by local node
/// id), node kinds and content symbols for the columnar projection, and,
/// when the value index is on, the local content strings.
struct DocAux {
    entries: Vec<(TagId, NodeEntry)>,
    kinds: Vec<NodeKind>,
    content_syms: Vec<u32>,
    values: Option<Vec<(u32, String)>>,
}

impl DocAux {
    fn new(
        records: &[NodeRecord],
        content_syms: Vec<u32>,
        values: Option<Vec<(u32, String)>>,
    ) -> Self {
        DocAux {
            entries: records
                .iter()
                .enumerate()
                .map(|(i, r)| {
                    (
                        r.tag,
                        NodeEntry {
                            id: NodeId(i as u32),
                            start: r.start,
                            end: r.end,
                            level: r.level,
                        },
                    )
                })
                .collect(),
            kinds: records.iter().map(|r| r.kind).collect(),
            content_syms,
            values,
        }
    }
}

/// A contiguous page run handed out by the allocator.
struct Run {
    base: u32,
    len: u32,
    /// Freshly appended at the end of the file (as opposed to reusing
    /// freed pages). Bulk inserts into fresh runs skip page-image
    /// logging: the pages are unreferenced until commit.
    fresh: bool,
}

/// Bounded retry of a commit-record flush: injected log-write errors are
/// transient, and leaving a commit record buffered after reporting
/// failure would let a later group flush commit it behind our back.
fn flush_commit(wal: &WalHandle, lsn: Lsn) -> Result<()> {
    const MAX_RETRIES: u32 = 3;
    let mut attempts = 0;
    loop {
        match wal.lock().flush_to(lsn) {
            Ok(()) => return Ok(()),
            Err(e) if e.is_transient() && attempts < MAX_RETRIES => attempts += 1,
            Err(e) => return Err(e),
        }
    }
}

/// A set of XML documents loaded into the paged store.
///
/// All read methods take `&self` and the store is `Sync`: pages live in
/// buffer-pool shards striped by page id, each behind its own mutex, all
/// sharing one [`SharedDisk`]. Mutations ([`insert_document`],
/// [`delete_document`], …) take `&mut self` and rebuild the in-memory
/// tag/value indexes and the global projection before returning.
///
/// [`insert_document`]: DocumentStore::insert_document
/// [`delete_document`]: DocumentStore::delete_document
pub struct DocumentStore {
    tags: Dictionary,
    doc_root_tag: TagId,
    index: TagIndex,
    /// The columnar label region, rebuilt (as a fresh `Arc`) on every
    /// mutation; readers that cloned the handle keep a consistent
    /// snapshot.
    columns: Arc<NodeColumns>,
    value_index: Option<ValueIndex>,
    meta: StoreMeta,
    aux: Vec<DocAux>,
    /// Global node id of each document's first local node; `id_bases[0]`
    /// is 1 (id 0 is the synthetic root).
    id_bases: Vec<u32>,
    /// Global `(start, end)` label offset of each document.
    label_offsets: Vec<u32>,
    node_count: u32,
    root_end: u32,
    /// Free page ids, derived from the metadata (never persisted).
    free: BTreeSet<u32>,
    wal: Option<WalHandle>,
    strip_whitespace: bool,
    build_values: bool,
    shards: Vec<Mutex<BufferPool>>,
    disk: SharedDisk,
    header_cache: Option<HeaderCache>,
    tag_hits: AtomicU64,
    tag_misses: AtomicU64,
    recovery: Option<RecoveryInfo>,
}

// The whole point of the sharded design: a loaded store can be shared
// across threads by reference.
const _: () = {
    const fn assert_sync_send<T: Sync + Send>() {}
    assert_sync_send::<DocumentStore>()
};

fn lock_pool(shard: &Mutex<BufferPool>) -> MutexGuard<'_, BufferPool> {
    // A poisoned shard only means another reader panicked mid-access;
    // the pool's bookkeeping is update-then-return, so keep going.
    shard.lock().unwrap_or_else(|e| e.into_inner())
}

impl DocumentStore {
    /// Parse `xml` and load it as the store's single document.
    pub fn from_xml(xml: &str, opts: &StoreOptions) -> Result<Self> {
        let doc = xmlparse::parse_document(xml)?;
        Self::load(&doc, opts)
    }

    /// Create a store holding one parsed document.
    pub fn load(doc: &xmlparse::Document, opts: &StoreOptions) -> Result<Self> {
        let mut store = Self::create(opts)?;
        store.insert_document(doc)?;
        store.clear_buffer_pool()?;
        store.disk.reset_stats();
        store.reset_io_stats();
        Ok(store)
    }

    /// Create an empty store.
    pub fn create(opts: &StoreOptions) -> Result<Self> {
        let tags = Dictionary::new();
        let doc_root_tag = tags.intern(DOC_ROOT_TAG);
        let disk = if opts.on_disk {
            match &opts.path {
                Some(p) => DiskManager::create_at(p)?,
                None => DiskManager::temp_file()?,
            }
        } else {
            DiskManager::in_memory()
        };
        let disk = SharedDisk::new(disk);
        let meta = StoreMeta {
            tags: vec![DOC_ROOT_TAG.to_owned()],
            docs: Vec::new(),
            next_doc: 1,
            next_txn: 1,
        };
        let wal = if opts.durable {
            let file = if opts.on_disk {
                opts.path.as_deref().map(wal_path_for)
            } else {
                None
            };
            Some(WalHandle::new(Wal::create(
                file.as_deref(),
                false,
                disk.clone(),
                encode_meta(&meta),
            )?))
        } else {
            None
        };
        let shards = Self::make_shards(&disk, opts.pool_pages, &wal)?;
        let mut store = DocumentStore {
            tags,
            doc_root_tag,
            index: TagIndex::new(),
            columns: Arc::new(NodeColumns::default()),
            value_index: None,
            meta,
            aux: Vec::new(),
            id_bases: Vec::new(),
            label_offsets: Vec::new(),
            node_count: 1,
            root_end: 1,
            free: BTreeSet::new(),
            wal,
            strip_whitespace: opts.strip_whitespace,
            build_values: opts.value_index,
            shards,
            disk,
            header_cache: opts.header_cache.then(|| HeaderCache::new(MAX_POOL_SHARDS)),
            tag_hits: AtomicU64::new(0),
            tag_misses: AtomicU64::new(0),
            recovery: None,
        };
        store.rebuild_projection();
        Ok(store)
    }

    /// Reopen a durable store from its page file and log, running crash
    /// recovery first: analysis finds the last committed metadata
    /// snapshot, redo repeats history over the page images, and undo
    /// rolls back loser transactions. The log is then truncated to a
    /// fresh checkpoint. Replaying recovery twice leaves the same bytes
    /// as once, so a crash *during* recovery is harmless.
    pub fn open(opts: &StoreOptions) -> Result<Self> {
        let path = opts.path.as_ref().ok_or_else(|| {
            StoreError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "DocumentStore::open requires StoreOptions.path",
            ))
        })?;
        let wal_p = wal_path_for(path);
        let (disk, state) = wal::recover(path, &wal_p)?;
        let mut meta = decode_meta(&state.meta)?;
        meta.next_txn = meta.next_txn.max(state.next_txn);
        let disk = SharedDisk::new(disk);
        // Post-recovery checkpoint: the recovered pages are synced, so
        // the old log tail is no longer needed.
        let wal = Some(WalHandle::new(Wal::create(
            Some(&wal_p),
            false,
            disk.clone(),
            encode_meta(&meta),
        )?));

        let tags = Dictionary::from_names(&meta.tags);
        let doc_root_tag = tags.get(DOC_ROOT_TAG).ok_or_else(bad_meta)?;

        let mut free: BTreeSet<u32> = (0..disk.num_pages()).collect();
        for d in &meta.docs {
            for p in d.heap_base..d.heap_base + d.heap_pages {
                free.remove(&p);
            }
            for p in d.node_base..d.node_base + d.node_pages {
                free.remove(&p);
            }
        }

        let shards = Self::make_shards(&disk, opts.pool_pages, &wal)?;
        let mut store = DocumentStore {
            tags,
            doc_root_tag,
            index: TagIndex::new(),
            columns: Arc::new(NodeColumns::default()),
            value_index: None,
            meta,
            aux: Vec::new(),
            id_bases: Vec::new(),
            label_offsets: Vec::new(),
            node_count: 1,
            root_end: 1,
            free,
            wal,
            strip_whitespace: opts.strip_whitespace,
            build_values: opts.value_index,
            shards,
            disk,
            header_cache: opts.header_cache.then(|| HeaderCache::new(MAX_POOL_SHARDS)),
            tag_hits: AtomicU64::new(0),
            tag_misses: AtomicU64::new(0),
            recovery: Some(RecoveryInfo {
                redone: state.redone as u64,
                undone: state.undone as u64,
                committed: state.committed as u64,
                losers: state.losers as u64,
            }),
        };
        store.rebuild_aux()?;
        store.rebuild_projection();
        store.clear_buffer_pool()?;
        store.disk.reset_stats();
        store.reset_io_stats();
        Ok(store)
    }

    fn make_shards(
        disk: &SharedDisk,
        pool_pages: usize,
        wal: &Option<WalHandle>,
    ) -> Result<Vec<Mutex<BufferPool>>> {
        // Stripe the pool across shards; every shard gets at least one
        // frame (remainder pages go to the first shards). A zero-page
        // pool still fails with `PoolTooSmall`, as before.
        let nshards = pool_pages.clamp(1, MAX_POOL_SHARDS);
        let base_cap = pool_pages / nshards;
        let rem = pool_pages % nshards;
        let mut shards = Vec::with_capacity(nshards);
        for i in 0..nshards {
            let cap = base_cap + usize::from(i < rem);
            let mut pool = BufferPool::with_shared(disk.clone(), cap)?;
            pool.set_wal(wal.clone());
            shards.push(Mutex::new(pool));
        }
        Ok(shards)
    }

    // ---- mutation ------------------------------------------------------

    /// Insert a parsed document as one WAL transaction, returning its id.
    /// On `Ok` the commit record is durable (durable stores) and the
    /// document is visible; on `Err` nothing changed.
    pub fn insert_document(&mut self, doc: &xmlparse::Document) -> Result<DocId> {
        if self.disk.crashed() {
            return Err(StoreError::SimulatedCrash);
        }
        let local = build_local(doc, &self.tags, self.strip_whitespace, self.build_values)?;
        let heap_run = self.alloc_run(local.heap_pages.len() as u32)?;
        let node_run = match self.alloc_run(local.node_pages.len() as u32) {
            Ok(r) => r,
            Err(e) => {
                self.release_run(&heap_run);
                return Err(e);
            }
        };
        // Transaction ids are never reused, even by failed operations:
        // recovery attributes log records by txn id, so a committed
        // later transaction must never share an id with a loser.
        let txn = self.meta.next_txn;
        self.meta.next_txn += 1;
        let doc_id = self.meta.next_doc;
        let mut new_meta = self.meta.clone();
        new_meta.tags = self.tags.snapshot();
        new_meta.docs.push(DocMeta {
            doc_id,
            heap_base: heap_run.base,
            heap_pages: heap_run.len,
            node_base: node_run.base,
            node_pages: node_run.len,
            node_count: local.records.len() as u32,
            span: local.span,
        });
        new_meta.next_doc += 1;
        let meta_bytes = encode_meta(&new_meta);
        let start_lsn = self.wal.as_ref().map_or(0, |w| w.lock().next_lsn());

        let LocalDoc {
            records,
            heap_pages,
            node_pages,
            values,
            content_syms,
            ..
        } = local;
        let result = if heap_run.fresh && node_run.fresh {
            self.commit_fresh(
                txn,
                &heap_run,
                &node_run,
                &heap_pages,
                &node_pages,
                meta_bytes,
            )
        } else {
            let mut pages = Vec::with_capacity(heap_pages.len() + node_pages.len());
            for (i, p) in heap_pages.into_iter().enumerate() {
                pages.push((PageId(heap_run.base + i as u32), p));
            }
            for (i, p) in node_pages.into_iter().enumerate() {
                pages.push((PageId(node_run.base + i as u32), p));
            }
            self.commit_images(txn, pages, meta_bytes)
        };
        match result {
            Ok(()) => {
                self.meta = new_meta;
                self.aux.push(DocAux::new(&records, content_syms, values));
                self.rebuild_projection();
                if let Some(cache) = &self.header_cache {
                    cache.clear();
                }
                Ok(doc_id)
            }
            Err(e) => {
                self.release_run(&heap_run);
                self.release_run(&node_run);
                self.rollback_txn(txn, start_lsn);
                Err(e)
            }
        }
    }

    /// Parse and insert an XML document.
    pub fn insert_xml(&mut self, xml: &str) -> Result<DocId> {
        let doc = xmlparse::parse_document(xml)?;
        self.insert_document(&doc)
    }

    /// Delete document `doc` as one WAL transaction. Its pages return to
    /// the free list for reuse; the reuse path writes full page images,
    /// so freed content can never leak into a later document.
    pub fn delete_document(&mut self, doc: DocId) -> Result<()> {
        if self.disk.crashed() {
            return Err(StoreError::SimulatedCrash);
        }
        let k = self
            .meta
            .docs
            .iter()
            .position(|d| d.doc_id == doc)
            .ok_or(StoreError::NoSuchDocument { doc })?;
        let txn = self.meta.next_txn;
        self.meta.next_txn += 1;
        let mut new_meta = self.meta.clone();
        let removed = new_meta.docs.remove(k);
        let wal = self.wal.clone();
        if let Some(w) = &wal {
            let start_lsn = w.lock().next_lsn();
            let lsn = {
                let mut wl = w.lock();
                wl.append(WalRecord::Begin { txn });
                wl.append(WalRecord::Commit {
                    txn,
                    meta: encode_meta(&new_meta),
                })
            };
            if let Err(e) = flush_commit(w, lsn) {
                self.rollback_txn(txn, start_lsn);
                return Err(e);
            }
        }
        self.release_run(&Run {
            base: removed.heap_base,
            len: removed.heap_pages,
            fresh: false,
        });
        self.release_run(&Run {
            base: removed.node_base,
            len: removed.node_pages,
            fresh: false,
        });
        self.meta = new_meta;
        self.aux.remove(k);
        self.rebuild_projection();
        if let Some(cache) = &self.header_cache {
            cache.clear();
        }
        Ok(())
    }

    /// Replace document `doc` with `new_doc`: a delete followed by an
    /// insert (two transactions), returning the new document's id.
    pub fn replace_document(&mut self, doc: DocId, new_doc: &xmlparse::Document) -> Result<DocId> {
        self.delete_document(doc)?;
        self.insert_document(new_doc)
    }

    /// Flush all dirty pages, sync the page file, and truncate the log
    /// to a fresh checkpoint carrying the current metadata snapshot.
    pub fn checkpoint(&mut self) -> Result<()> {
        if self.disk.crashed() {
            return Err(StoreError::SimulatedCrash);
        }
        for shard in &self.shards {
            lock_pool(shard).flush_all()?;
        }
        self.disk.lock().sync()?;
        if let Some(w) = &self.wal {
            // Refresh the dictionary snapshot: symbols interned since the
            // last commit (query-constructed tags and values) live only in
            // the in-memory table, and the checkpoint is about to truncate
            // the log that would otherwise be their last trace.
            self.meta.tags = self.tags.snapshot();
            w.lock().checkpoint(encode_meta(&self.meta))?;
        }
        Ok(())
    }

    /// `(doc_id, stored node count)` of every document, insertion order.
    pub fn documents(&self) -> Vec<(DocId, u32)> {
        self.meta
            .docs
            .iter()
            .map(|d| (d.doc_id, d.node_count))
            .collect()
    }

    /// Log activity counters, if the store is durable.
    pub fn wal_stats(&self) -> Option<WalStats> {
        self.wal.as_ref().map(|w| w.lock().stats())
    }

    /// Whether the store write-ahead-logs its mutations.
    pub fn durable(&self) -> bool {
        self.wal.is_some()
    }

    /// What crash recovery did, if this store was reopened with
    /// [`open`](DocumentStore::open).
    pub fn recovery_info(&self) -> Option<RecoveryInfo> {
        self.recovery
    }

    // ---- commit paths --------------------------------------------------

    /// Commit a document whose pages are all freshly allocated at the
    /// end of the file: write them directly (they are unreferenced until
    /// the commit's metadata snapshot lands), sync the page file, then
    /// log `Begin` + `Commit{meta}` in one flush. This keeps bulk-load
    /// WAL overhead to a file sync and one small log write, instead of
    /// doubling the write volume with page images.
    fn commit_fresh(
        &mut self,
        txn: TxnId,
        heap_run: &Run,
        node_run: &Run,
        heap_pages: &[Box<[u8; PAGE_SIZE]>],
        node_pages: &[Box<[u8; PAGE_SIZE]>],
        meta_bytes: Vec<u8>,
    ) -> Result<()> {
        {
            let mut d = self.disk.lock();
            for (i, page) in heap_pages.iter().enumerate() {
                d.write_page(PageId(heap_run.base + i as u32), page)?;
            }
            for (i, page) in node_pages.iter().enumerate() {
                d.write_page(PageId(node_run.base + i as u32), page)?;
            }
        }
        if let Some(w) = &self.wal {
            self.disk.lock().sync()?;
            let lsn = {
                let mut wl = w.lock();
                wl.append(WalRecord::Begin { txn });
                wl.append(WalRecord::Commit {
                    txn,
                    meta: meta_bytes,
                })
            };
            flush_commit(w, lsn)?;
        }
        Ok(())
    }

    /// Commit a document that reuses freed pages: log a full after-image
    /// per page (before-image `Zero` — the page was free, so rollback
    /// zeroes it), install the images in the buffer pool (steal/no-force:
    /// an eviction may write them early after flushing the log up to
    /// their LSN; commit itself flushes only the log), then log the
    /// commit.
    fn commit_images(
        &mut self,
        txn: TxnId,
        pages: Vec<(PageId, Box<[u8; PAGE_SIZE]>)>,
        meta_bytes: Vec<u8>,
    ) -> Result<()> {
        let wal = self.wal.clone();
        if let Some(w) = &wal {
            w.lock().append(WalRecord::Begin { txn });
        }
        for (pid, page) in &pages {
            let lsn = match &wal {
                Some(w) => w.lock().append(WalRecord::PageImage {
                    txn,
                    pid: *pid,
                    before: BeforeImage::Zero,
                    after: page.clone(),
                }),
                None => 0,
            };
            lock_pool(self.shard_of(*pid)).write_page_image(*pid, lsn, page)?;
        }
        if let Some(w) = &wal {
            let lsn = w.lock().append(WalRecord::Commit {
                txn,
                meta: meta_bytes,
            });
            flush_commit(w, lsn)?;
        }
        Ok(())
    }

    /// Clean up after a failed mutation: drop any still-buffered records
    /// of `txn` (so a later flush cannot commit it behind our back), and
    /// if part of the transaction already reached the durable log (an
    /// eviction flushed it), append a best-effort `Abort` marker —
    /// recovery rolls the transaction back either way.
    fn rollback_txn(&mut self, txn: TxnId, start_lsn: Lsn) {
        let Some(w) = &self.wal else { return };
        let crashed = self.disk.crashed();
        let mut wl = w.lock();
        wl.truncate_pending(start_lsn);
        if wl.durable_lsn() > start_lsn && !crashed {
            wl.append(WalRecord::Abort { txn });
            let _ = wl.flush();
        }
    }

    // ---- page allocation -----------------------------------------------

    /// Allocate a run of `n` consecutive pages: the lowest consecutive
    /// run in the free list if one exists, else fresh pages at the end
    /// of the file.
    fn alloc_run(&mut self, n: u32) -> Result<Run> {
        if n == 0 {
            return Ok(Run {
                base: 0,
                len: 0,
                fresh: true,
            });
        }
        let mut len = 0u32;
        let mut prev: Option<u32> = None;
        let mut found: Option<u32> = None;
        for &p in &self.free {
            len = match prev {
                Some(q) if p == q + 1 => len + 1,
                _ => 1,
            };
            prev = Some(p);
            if len == n {
                found = Some(p + 1 - n);
                break;
            }
        }
        if let Some(base) = found {
            for p in base..base + n {
                self.free.remove(&p);
            }
            return Ok(Run {
                base,
                len: n,
                fresh: false,
            });
        }
        let base = self.disk.num_pages();
        let mut allocated = 0u32;
        for _ in 0..n {
            match self.disk.lock().allocate() {
                Ok(_) => allocated += 1,
                Err(e) => {
                    for p in base..base + allocated {
                        self.free.insert(p);
                    }
                    return Err(e);
                }
            }
        }
        Ok(Run {
            base,
            len: n,
            fresh: true,
        })
    }

    fn release_run(&mut self, run: &Run) {
        for p in run.base..run.base + run.len {
            self.free.insert(p);
        }
    }

    // ---- global projection ---------------------------------------------

    /// Recompute the dense global id/label spaces and rebuild the tag
    /// index (and value index) from the per-document aux state. Node id
    /// 0 and label 0 belong to the synthetic root; document `k`'s local
    /// ids map to `id_bases[k] + local` and its labels to
    /// `label_offsets[k] + local`.
    fn rebuild_projection(&mut self) {
        self.id_bases.clear();
        self.label_offsets.clear();
        let mut id_base = 1u32;
        let mut label_offset = 1u32;
        for d in &self.meta.docs {
            self.id_bases.push(id_base);
            self.label_offsets.push(label_offset);
            id_base += d.node_count;
            label_offset += d.span;
        }
        self.node_count = id_base;
        self.root_end = label_offset;

        let mut index = TagIndex::new();
        index.insert(
            self.doc_root_tag,
            NodeEntry {
                id: NodeId(0),
                start: 0,
                end: self.root_end,
                level: 0,
            },
        );
        let mut columns = NodeColumns::with_capacity(self.node_count as usize);
        columns.push(
            0,
            self.root_end,
            0,
            self.doc_root_tag.0,
            NodeKind::Element,
            NO_SYM,
        );
        for (k, aux) in self.aux.iter().enumerate() {
            for (local, (tag, e)) in aux.entries.iter().enumerate() {
                index.insert(
                    *tag,
                    NodeEntry {
                        id: NodeId(self.id_bases[k] + local as u32),
                        start: e.start + self.label_offsets[k],
                        end: e.end + self.label_offsets[k],
                        level: e.level,
                    },
                );
                columns.push(
                    e.start + self.label_offsets[k],
                    e.end + self.label_offsets[k],
                    e.level,
                    tag.0,
                    aux.kinds[local],
                    aux.content_syms[local],
                );
            }
        }
        self.index = index;
        self.columns = Arc::new(columns);

        self.value_index = self.build_values.then(|| {
            let mut vi = ValueIndex::new();
            for (k, aux) in self.aux.iter().enumerate() {
                if let Some(vals) = &aux.values {
                    for (local, value) in vals {
                        let (tag, e) = &aux.entries[*local as usize];
                        vi.insert(
                            *tag,
                            value,
                            NodeEntry {
                                id: NodeId(self.id_bases[k] + local),
                                start: e.start + self.label_offsets[k],
                                end: e.end + self.label_offsets[k],
                                level: e.level,
                            },
                        );
                    }
                }
            }
            vi
        });
    }

    /// Rebuild every document's aux state from its pages (used on
    /// reopen; inserts build it from the in-memory document instead).
    fn rebuild_aux(&mut self) -> Result<()> {
        let docs = self.meta.docs.clone();
        for d in &docs {
            let mut records = Vec::with_capacity(d.node_count as usize);
            for local in 0..d.node_count {
                let (page, slot) = node_location(d.node_base, NodeId(local));
                let rec = self.with_page(PageId(page), |p| {
                    NodeRecord::decode(&p[slot..slot + RECORD_SIZE])
                })?;
                records.push(rec);
            }
            // Re-intern every stored content string so the columnar
            // region carries the same symbols the writing session used —
            // the names are already in the recovered dictionary snapshot,
            // so these lookups hit existing entries.
            let mut content_syms = Vec::with_capacity(records.len());
            let mut vals = Vec::new();
            for (i, rec) in records.iter().enumerate() {
                if rec.content.is_some() {
                    let s = read_content_via(
                        |pid, f| self.with_page(pid, |p| f(p)),
                        d.heap_base,
                        rec.content,
                    )?;
                    content_syms.push(self.tags.intern(&s).0);
                    if self.build_values {
                        vals.push((i as u32, s));
                    }
                } else {
                    content_syms.push(NO_SYM);
                }
            }
            let values = self.build_values.then_some(vals);
            self.aux.push(DocAux::new(&records, content_syms, values));
        }
        Ok(())
    }

    // ---- sharded page access ------------------------------------------

    fn shard_of(&self, pid: PageId) -> &Mutex<BufferPool> {
        &self.shards[pid.0 as usize % self.shards.len()]
    }

    /// Run `f` over the data region of page `pid` via the pool shard
    /// that owns it.
    fn with_page<R>(&self, pid: PageId, f: impl FnOnce(&[u8; PAGE_DATA_SIZE]) -> R) -> Result<R> {
        lock_pool(self.shard_of(pid)).with_page(pid, f)
    }

    /// Read heap content, routing each page to its shard. A value that
    /// spans pages may cross shards; pages are locked one at a time.
    /// The pointer is already globalized (absolute page ids).
    fn read_heap(&self, ptr: ContentPtr) -> Result<String> {
        read_content_via(|pid, f| self.with_page(pid, |p| f(p)), 0, ptr)
    }

    // ---- metadata ----------------------------------------------------

    /// Number of visible nodes (elements + attributes + text nodes,
    /// including the synthetic `doc_root`).
    pub fn node_count(&self) -> u32 {
        self.node_count
    }

    /// Total pages in the store file (including freed pages awaiting
    /// reuse).
    pub fn total_pages(&self) -> u32 {
        self.disk.num_pages()
    }

    /// Store size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.total_pages() as u64 * PAGE_SIZE as u64
    }

    /// The unified symbol dictionary (tags *and* content values).
    pub fn dict(&self) -> &Dictionary {
        &self.tags
    }

    /// The tag dictionary. Interning is concurrent (`&self`), so query
    /// layers can intern constructed tags and computed values directly.
    pub fn tags(&self) -> &Dictionary {
        &self.tags
    }

    /// Intern a string (tag or value) into the store dictionary.
    pub fn intern(&self, name: &str) -> Sym {
        self.tags.intern(name)
    }

    /// A zero-copy handle on the columnar label region. The snapshot
    /// stays valid (and unchanged) even if the store mutates afterwards;
    /// mutations install a fresh region.
    pub fn columns(&self) -> Arc<NodeColumns> {
        Arc::clone(&self.columns)
    }

    /// The content symbol of `id`, from the columns — no page access.
    pub fn content_sym(&self, id: NodeId) -> Option<Sym> {
        self.columns.content_sym(id).map(Sym)
    }

    /// Id of an element tag name, if present in the store.
    pub fn tag_id(&self, name: &str) -> Option<TagId> {
        self.count_tag_lookup(self.tags.get(name))
    }

    /// Id of an attribute `name` (stored as `@name`), if present.
    pub fn attr_tag_id(&self, name: &str) -> Option<TagId> {
        self.count_tag_lookup(self.tags.get(&attr_tag_name(name)))
    }

    fn count_tag_lookup(&self, found: Option<TagId>) -> Option<TagId> {
        match found {
            Some(_) => self.tag_hits.fetch_add(1, Ordering::Relaxed),
            None => self.tag_misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Name of a tag id (a clone of the interned string).
    pub fn tag_name(&self, id: TagId) -> Arc<str> {
        self.tags.resolve(id)
    }

    // ---- index access (no data pages touched) -------------------------

    /// Document-order index entries for a tag.
    pub fn nodes_with_tag(&self, tag: TagId) -> &[NodeEntry] {
        self.index.nodes(tag)
    }

    /// The synthetic root's index entry.
    pub fn root(&self) -> NodeEntry {
        NodeEntry {
            id: NodeId(0),
            start: 0,
            end: self.root_end,
            level: 0,
        }
    }

    /// The tag index itself.
    pub fn index(&self) -> &TagIndex {
        &self.index
    }

    /// The content value index, if it was built
    /// (`StoreOptions::value_index`).
    pub fn value_index(&self) -> Option<&ValueIndex> {
        self.value_index.as_ref()
    }

    /// Document-order nodes of `tag` whose content equals `value`, from
    /// the value index (no data-page access). `None` when the index was
    /// not built.
    pub fn nodes_with_tag_and_content(&self, tag: TagId, value: &str) -> Option<&[NodeEntry]> {
        self.value_index.as_ref().map(|vi| vi.nodes(tag, value))
    }

    // ---- record / content access (goes through the buffer pool) -------

    /// Which document holds global id `id` (> 0), and its local id.
    fn locate(&self, id: NodeId) -> (usize, NodeId) {
        let k = self.id_bases.partition_point(|b| *b <= id.0) - 1;
        (k, NodeId(id.0 - self.id_bases[k]))
    }

    /// Project a stored (local) record into the global id/label space.
    fn globalize(&self, k: usize, rec: &mut NodeRecord) {
        rec.start += self.label_offsets[k];
        rec.end += self.label_offsets[k];
        rec.parent = if rec.parent == NO_PARENT {
            0
        } else {
            rec.parent + self.id_bases[k]
        };
        if rec.content.is_some() {
            rec.content.page += self.meta.docs[k].heap_base;
        }
    }

    /// Fetch the full record of `id` (one node-page access; the
    /// synthetic root is materialized from metadata for free).
    pub fn record(&self, id: NodeId) -> Result<NodeRecord> {
        if id.0 >= self.node_count {
            return Err(StoreError::NodeOutOfBounds {
                node: id.0,
                node_count: self.node_count,
            });
        }
        if id.0 == 0 {
            return Ok(NodeRecord {
                tag: self.doc_root_tag,
                start: 0,
                end: self.root_end,
                parent: NO_PARENT,
                level: 0,
                kind: NodeKind::Element,
                content: ContentPtr::NULL,
            });
        }
        if let Some(cache) = &self.header_cache {
            if let Some(rec) = cache.get(id.0) {
                return Ok(rec);
            }
        }
        let (k, local) = self.locate(id);
        let (page, slot) = node_location(self.meta.docs[k].node_base, local);
        let mut rec = self.with_page(PageId(page), |p| {
            NodeRecord::decode(&p[slot..slot + RECORD_SIZE])
        })?;
        self.globalize(k, &mut rec);
        if let Some(cache) = &self.header_cache {
            cache.insert(id.0, rec);
        }
        Ok(rec)
    }

    /// The index-style entry of `id` (via its record).
    pub fn entry(&self, id: NodeId) -> Result<NodeEntry> {
        let rec = self.record(id)?;
        Ok(NodeEntry {
            id,
            start: rec.start,
            end: rec.end,
            level: rec.level,
        })
    }

    /// Character content of `id`: `Some` for attributes, text nodes, and
    /// text-only elements; `None` otherwise. This is the "data value
    /// look-up" of Sec. 5.3 and touches heap pages.
    pub fn content(&self, id: NodeId) -> Result<Option<String>> {
        let rec = self.record(id)?;
        if !rec.content.is_some() {
            return Ok(None);
        }
        Ok(Some(self.read_heap(rec.content)?))
    }

    /// Parent node id (None for the root).
    pub fn parent(&self, id: NodeId) -> Result<Option<NodeId>> {
        let rec = self.record(id)?;
        Ok(if rec.parent == NO_PARENT {
            None
        } else {
            Some(NodeId(rec.parent))
        })
    }

    /// All child node ids of `id` (elements, attributes, and text nodes),
    /// in document order.
    pub fn children(&self, id: NodeId) -> Result<Vec<NodeId>> {
        let rec = self.record(id)?;
        let mut out = Vec::new();
        let mut j = id.0 + 1;
        while j < self.node_count {
            let r = self.record(NodeId(j))?;
            if r.start >= rec.end {
                break;
            }
            if r.level == rec.level + 1 {
                out.push(NodeId(j));
            }
            j += 1;
        }
        Ok(out)
    }

    /// All node ids in the subtree of `id`, `id` included, in document
    /// order.
    pub fn subtree(&self, id: NodeId) -> Result<Vec<NodeId>> {
        let rec = self.record(id)?;
        let mut out = vec![id];
        let mut j = id.0 + 1;
        while j < self.node_count {
            let r = self.record(NodeId(j))?;
            if r.start >= rec.end {
                break;
            }
            out.push(NodeId(j));
            j += 1;
        }
        Ok(out)
    }

    /// Rebuild the DOM element for the subtree rooted at `id` — the "data
    /// population" step of Sec. 5.3. Attribute children become attributes,
    /// `#text` children become text nodes, merged content becomes a text
    /// child.
    pub fn materialize(&self, id: NodeId) -> Result<xmlparse::Element> {
        let rec = self.record(id)?;
        let mut elem = xmlparse::Element::new(&*self.tags.resolve(rec.tag));
        if rec.content.is_some() {
            // Element content and attribute/text nodes materialized
            // directly both surface as a text child.
            let text = self.read_heap(rec.content)?;
            elem.children.push(xmlparse::XmlNode::Text(text));
        }
        for child in self.children(id)? {
            let crec = self.record(child)?;
            match crec.kind {
                NodeKind::Attribute => {
                    let name = self
                        .tags
                        .resolve(crec.tag)
                        .trim_start_matches('@')
                        .to_owned();
                    let value = self.content(child)?.unwrap_or_default();
                    elem.attributes.push((name, value));
                }
                NodeKind::Text => {
                    let value = self.content(child)?.unwrap_or_default();
                    elem.children.push(xmlparse::XmlNode::Text(value));
                }
                NodeKind::Element => {
                    elem.children
                        .push(xmlparse::XmlNode::Element(self.materialize(child)?));
                }
            }
        }
        Ok(elem)
    }

    // ---- statistics ----------------------------------------------------

    /// Current I/O counters, summed over the pool shards.
    pub fn io_stats(&self) -> IoStats {
        let mut buffer = BufferStats::default();
        for shard in &self.shards {
            let s = lock_pool(shard).stats();
            buffer.hits += s.hits;
            buffer.misses += s.misses;
            buffer.evictions += s.evictions;
            buffer.writebacks += s.writebacks;
            buffer.retries += s.retries;
        }
        IoStats {
            buffer,
            disk: self.disk.stats(),
        }
    }

    /// Zero the I/O and cache counters.
    pub fn reset_io_stats(&self) {
        for shard in &self.shards {
            lock_pool(shard).reset_stats();
        }
        if let Some(cache) = &self.header_cache {
            cache.hits.store(0, Ordering::Relaxed);
            cache.misses.store(0, Ordering::Relaxed);
        }
        self.tag_hits.store(0, Ordering::Relaxed);
        self.tag_misses.store(0, Ordering::Relaxed);
    }

    /// Empty every buffer-pool shard (and the header cache) so the next
    /// operation starts cold. Dirty pages are flushed first (with their
    /// log records, on durable stores).
    pub fn clear_buffer_pool(&self) -> Result<()> {
        for shard in &self.shards {
            lock_pool(shard).clear()?;
        }
        if let Some(cache) = &self.header_cache {
            cache.clear();
        }
        Ok(())
    }

    /// Buffer pool capacity in pages, summed over shards.
    pub fn pool_capacity(&self) -> usize {
        self.shards.iter().map(|s| lock_pool(s).capacity()).sum()
    }

    /// Number of buffer-pool shards.
    pub fn pool_shards(&self) -> usize {
        self.shards.len()
    }

    /// Read-path cache counters (header cache + tag-index lookups).
    pub fn cache_stats(&self) -> CacheStats {
        let (header_hits, header_misses) = match &self.header_cache {
            Some(c) => (
                c.hits.load(Ordering::Relaxed),
                c.misses.load(Ordering::Relaxed),
            ),
            None => (0, 0),
        };
        CacheStats {
            header_hits,
            header_misses,
            tag_hits: self.tag_hits.load(Ordering::Relaxed),
            tag_misses: self.tag_misses.load(Ordering::Relaxed),
        }
    }

    /// Whether the node-header cache was enabled at load time.
    pub fn header_cache_enabled(&self) -> bool {
        self.header_cache.is_some()
    }

    // ---- fault injection ----------------------------------------------

    /// Install a deterministic fault schedule on the underlying disk (or
    /// remove it with `None`). Loading always happens fault-free — this
    /// is called afterwards, so schedules corrupt query-time page
    /// traffic, not the initial layout. Cached pages are dropped so the
    /// schedule applies to every subsequent page touch.
    pub fn inject_faults(&self, config: Option<FaultConfig>) -> Result<()> {
        // Flush through the *clean* disk before arming the injector, so
        // dirty frames are not lost to injected write errors.
        self.clear_buffer_pool()?;
        self.disk.set_fault_injector(config.map(FaultInjector::new));
        Ok(())
    }

    /// Counters from the installed fault injector, if any.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.disk.fault_stats()
    }

    /// Whether an injected crash has fired: every subsequent operation
    /// fails with [`StoreError::SimulatedCrash`] until the store is
    /// reopened.
    pub fn crashed(&self) -> bool {
        self.disk.crashed()
    }

    /// XOR one raw physical byte of page `page`, bypassing checksums —
    /// a corruption backdoor for recovery tests. Cached copies of the
    /// page are NOT invalidated; pair with [`clear_buffer_pool`] to make
    /// the damage visible to the next read.
    ///
    /// [`clear_buffer_pool`]: DocumentStore::clear_buffer_pool
    pub fn poke_page_byte(&self, page: u32, offset: usize, xor: u8) -> Result<()> {
        self.disk.lock().poke_byte(PageId(page), offset, xor)
    }
}

struct Loader<'a> {
    tags: &'a Dictionary,
    heap: &'a mut HeapBuilder,
    records: &'a mut Vec<NodeRecord>,
    /// Parallel to `records`: the content symbol of each record
    /// ([`NO_SYM`] when it has none).
    content_syms: &'a mut Vec<u32>,
    counter: &'a mut u32,
    strip_whitespace: bool,
    /// When building a value index: `(record index, content)` pairs.
    values: Option<&'a mut Vec<(usize, String)>>,
}

impl Loader<'_> {
    /// DFS over the DOM assigning local ids, labels, and content.
    fn load_element(&mut self, elem: &xmlparse::Element, parent: u32, level: u16) -> Result<u32> {
        let id = self.records.len() as u32;
        let tag = self.tags.intern(&elem.name);
        let start = *self.counter;
        *self.counter += 1;
        self.records.push(NodeRecord {
            tag,
            start,
            end: 0, // patched at exit
            parent,
            level,
            kind: NodeKind::Element,
            content: ContentPtr::NULL,
        });
        self.content_syms.push(NO_SYM);

        // Attributes as leaf nodes.
        for (name, value) in &elem.attributes {
            let attr_tag = self.tags.intern(&attr_tag_name(name));
            let s = *self.counter;
            *self.counter += 1;
            let e = *self.counter;
            *self.counter += 1;
            let content = self.heap.append(value)?;
            if let Some(values) = self.values.as_deref_mut() {
                values.push((self.records.len(), value.clone()));
            }
            self.records.push(NodeRecord {
                tag: attr_tag,
                start: s,
                end: e,
                parent: id,
                level: level + 1,
                kind: NodeKind::Attribute,
                content,
            });
            self.content_syms.push(self.tags.intern(value).0);
        }

        let has_element_children = elem
            .children
            .iter()
            .any(|c| matches!(c, xmlparse::XmlNode::Element(_)));

        if has_element_children {
            // Mixed or element content: text children become #text nodes.
            for child in &elem.children {
                match child {
                    xmlparse::XmlNode::Element(e) => {
                        self.load_element(e, id, level + 1)?;
                    }
                    xmlparse::XmlNode::Text(t) => {
                        if self.strip_whitespace && t.trim().is_empty() {
                            continue;
                        }
                        let text_tag = self.tags.intern(TEXT_TAG);
                        let s = *self.counter;
                        *self.counter += 1;
                        let e = *self.counter;
                        *self.counter += 1;
                        let content = self.heap.append(t)?;
                        if let Some(values) = self.values.as_deref_mut() {
                            values.push((self.records.len(), t.clone()));
                        }
                        self.records.push(NodeRecord {
                            tag: text_tag,
                            start: s,
                            end: e,
                            parent: id,
                            level: level + 1,
                            kind: NodeKind::Text,
                            content,
                        });
                        self.content_syms.push(self.tags.intern(t).0);
                    }
                    xmlparse::XmlNode::Comment(_) => {}
                }
            }
        } else {
            // Text-only (or empty) content merges into the element.
            let text = elem.text();
            if !(text.is_empty() || (self.strip_whitespace && text.trim().is_empty())) {
                let content = self.heap.append(&text)?;
                self.records[id as usize].content = content;
                self.content_syms[id as usize] = self.tags.intern(&text).0;
                if let Some(values) = self.values.as_deref_mut() {
                    values.push((id as usize, text));
                }
            }
        }

        let end = *self.counter;
        *self.counter += 1;
        self.records[id as usize].end = end;
        Ok(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"<bib>
        <article year="1999">
            <title>Querying XML</title>
            <author>Jack</author>
            <author>John</author>
        </article>
        <article>
            <title>Hack HTML</title>
            <author>John</author>
        </article>
    </bib>"#;

    fn store() -> DocumentStore {
        DocumentStore::from_xml(SAMPLE, &StoreOptions::in_memory()).unwrap()
    }

    /// Unique page/log paths in the system temp dir for reopen tests.
    fn temp_paths(tag: &str) -> (PathBuf, PathBuf) {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let page = std::env::temp_dir().join(format!(
            "xmlstore_doc_test_{}_{tag}_{n}.pages",
            std::process::id()
        ));
        let wal = wal_path_for(&page);
        let _ = std::fs::remove_file(&page);
        let _ = std::fs::remove_file(&wal);
        (page, wal)
    }

    fn durable_opts(page: &Path) -> StoreOptions {
        StoreOptions {
            pool_pages: 64,
            ..StoreOptions::in_memory()
        }
        .with_path(page)
        .with_durable()
    }

    #[test]
    fn loads_with_doc_root_wrapper() {
        let s = store();
        let root = s.root();
        assert_eq!(root.id, NodeId(0));
        assert_eq!(&*s.tag_name(s.record(NodeId(0)).unwrap().tag), DOC_ROOT_TAG);
        // doc_root + bib + 2 articles + 1 attr + 2 titles + 3 authors = 10
        assert_eq!(s.node_count(), 10);
    }

    #[test]
    fn tag_index_finds_all_authors() {
        let s = store();
        let author = s.tag_id("author").unwrap();
        let authors = s.nodes_with_tag(author);
        assert_eq!(authors.len(), 3);
        // Index entries are in document order.
        assert!(authors.windows(2).all(|w| w[0].start < w[1].start));
    }

    #[test]
    fn content_of_text_only_element() {
        let s = store();
        let title = s.tag_id("title").unwrap();
        let first = s.nodes_with_tag(title)[0];
        assert_eq!(
            s.content(first.id).unwrap().as_deref(),
            Some("Querying XML")
        );
    }

    #[test]
    fn attribute_stored_as_node() {
        let s = store();
        let year = s.attr_tag_id("year").unwrap();
        let entries = s.nodes_with_tag(year);
        assert_eq!(entries.len(), 1);
        assert_eq!(s.content(entries[0].id).unwrap().as_deref(), Some("1999"));
        let rec = s.record(entries[0].id).unwrap();
        assert_eq!(rec.kind, NodeKind::Attribute);
    }

    #[test]
    fn containment_labels_nest() {
        let s = store();
        let article = s.tag_id("article").unwrap();
        let author = s.tag_id("author").unwrap();
        let articles = s.nodes_with_tag(article);
        let authors = s.nodes_with_tag(author);
        // First article has exactly 2 of the 3 authors.
        let inside = authors
            .iter()
            .filter(|a| articles[0].is_ancestor_of(a))
            .count();
        assert_eq!(inside, 2);
        assert!(articles[0].is_parent_of(&authors[0]));
    }

    #[test]
    fn children_and_subtree_navigation() {
        let s = store();
        let article = s.tag_id("article").unwrap();
        let first = s.nodes_with_tag(article)[0];
        let kids = s.children(first.id).unwrap();
        // year attr + title + 2 authors
        assert_eq!(kids.len(), 4);
        let sub = s.subtree(first.id).unwrap();
        assert_eq!(sub.len(), 5);
        assert_eq!(sub[0], first.id);
    }

    #[test]
    fn parent_navigation() {
        let s = store();
        let title = s.tag_id("title").unwrap();
        let t = s.nodes_with_tag(title)[0];
        let p = s.parent(t.id).unwrap().unwrap();
        let prec = s.record(p).unwrap();
        assert_eq!(&*s.tag_name(prec.tag), "article");
        assert_eq!(s.parent(NodeId(0)).unwrap(), None);
    }

    #[test]
    fn materialize_roundtrips_article() {
        let s = store();
        let article = s.tag_id("article").unwrap();
        let first = s.nodes_with_tag(article)[0];
        let elem = s.materialize(first.id).unwrap();
        assert_eq!(elem.name, "article");
        assert_eq!(elem.attr("year"), Some("1999"));
        assert_eq!(elem.child("title").unwrap().text(), "Querying XML");
        assert_eq!(elem.children_named("author").count(), 2);
    }

    #[test]
    fn mixed_content_preserved() {
        let xml = "<p>Hello <b>bold</b> world</p>";
        let s = DocumentStore::from_xml(xml, &StoreOptions::in_memory()).unwrap();
        let p = s.tag_id("p").unwrap();
        let node = s.nodes_with_tag(p)[0];
        let elem = s.materialize(node.id).unwrap();
        assert_eq!(elem.deep_text(), "Hello bold world");
        let text_tag = s.tag_id(TEXT_TAG).unwrap();
        assert_eq!(s.nodes_with_tag(text_tag).len(), 2);
    }

    #[test]
    fn io_stats_count_page_traffic() {
        let s = store();
        s.reset_io_stats();
        let title = s.tag_id("title").unwrap();
        let t = s.nodes_with_tag(title)[0];
        // Index access alone: no page requests.
        assert_eq!(s.io_stats().page_requests(), 0);
        let _ = s.content(t.id).unwrap();
        assert!(s.io_stats().page_requests() >= 2); // node page + heap page
    }

    #[test]
    fn on_disk_backend_works() {
        let opts = StoreOptions {
            on_disk: true,
            pool_pages: 8,
            ..StoreOptions::in_memory()
        };
        let s = DocumentStore::from_xml(SAMPLE, &opts).unwrap();
        let author = s.tag_id("author").unwrap();
        let a = s.nodes_with_tag(author)[2];
        assert_eq!(s.content(a.id).unwrap().as_deref(), Some("John"));
        assert!(s.io_stats().disk.reads >= 1);
    }

    #[test]
    fn strip_whitespace_toggle() {
        let xml = "<a> <b/> </a>";
        let stripped = DocumentStore::from_xml(xml, &StoreOptions::in_memory()).unwrap();
        let kept = DocumentStore::from_xml(
            xml,
            &StoreOptions {
                strip_whitespace: false,
                ..StoreOptions::in_memory()
            },
        )
        .unwrap();
        // stripped: doc_root + a + b; kept adds two #text nodes.
        assert_eq!(stripped.node_count(), 3);
        assert_eq!(kept.node_count(), 5);
    }

    #[test]
    fn value_index_built_on_request() {
        let s =
            DocumentStore::from_xml(SAMPLE, &StoreOptions::in_memory().with_value_index()).unwrap();
        let author = s.tag_id("author").unwrap();
        let hits = s.nodes_with_tag_and_content(author, "John").unwrap();
        assert_eq!(hits.len(), 2);
        assert!(s
            .nodes_with_tag_and_content(author, "Nobody")
            .unwrap()
            .is_empty());
        // Attribute values are indexed too (tag @year).
        let year = s.attr_tag_id("year").unwrap();
        assert_eq!(s.nodes_with_tag_and_content(year, "1999").unwrap().len(), 1);
        // Off by default.
        let plain = DocumentStore::from_xml(SAMPLE, &StoreOptions::in_memory()).unwrap();
        assert!(plain.value_index().is_none());
        assert!(plain.nodes_with_tag_and_content(author, "John").is_none());
    }

    #[test]
    fn value_index_lookup_touches_no_pages() {
        let s =
            DocumentStore::from_xml(SAMPLE, &StoreOptions::in_memory().with_value_index()).unwrap();
        s.reset_io_stats();
        let author = s.tag_id("author").unwrap();
        let _ = s.nodes_with_tag_and_content(author, "Jack").unwrap();
        assert_eq!(s.io_stats().page_requests(), 0);
    }

    #[test]
    fn very_long_content_spans_heap_pages() {
        let long_title = "Grouping in XML ".repeat(1200); // ~19 KB > 2 pages
        let xml = format!("<bib><article><title>{long_title}</title></article></bib>");
        let s = DocumentStore::from_xml(&xml, &StoreOptions::in_memory()).unwrap();
        let title = s.tag_id("title").unwrap();
        let t = s.nodes_with_tag(title)[0];
        assert_eq!(
            s.content(t.id).unwrap().as_deref(),
            Some(long_title.as_str())
        );
        // The heap needs at least three pages for this value.
        assert!(s.total_pages() >= 3);
    }

    #[test]
    fn pool_capacity_and_shards_cover_request() {
        let s = store(); // in_memory: 1024 pages
        assert_eq!(s.pool_capacity(), 1024);
        assert_eq!(s.pool_shards(), 8);
        // Tiny pools get fewer shards but never zero-frame ones.
        let tiny =
            DocumentStore::from_xml(SAMPLE, &StoreOptions::in_memory().with_pool_pages(3)).unwrap();
        assert_eq!(tiny.pool_capacity(), 3);
        assert_eq!(tiny.pool_shards(), 3);
    }

    #[test]
    fn concurrent_reads_agree_with_sequential() {
        let mut xml = String::from("<bib>");
        for i in 0..300 {
            xml.push_str(&format!(
                "<article><title>T{i}</title><author>A{}</author></article>",
                i % 7
            ));
        }
        xml.push_str("</bib>");
        // A pool much smaller than the document, so threads contend and
        // evict under each other.
        let s =
            DocumentStore::from_xml(&xml, &StoreOptions::in_memory().with_pool_pages(4)).unwrap();
        let title = s.tag_id("title").unwrap();
        let entries: Vec<NodeEntry> = s.nodes_with_tag(title).to_vec();
        let expected: Vec<String> = entries
            .iter()
            .map(|e| s.content(e.id).unwrap().unwrap())
            .collect();

        let results: Vec<Vec<String>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(|| {
                        entries
                            .iter()
                            .map(|e| s.content(e.id).unwrap().unwrap())
                            .collect()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for r in results {
            assert_eq!(r, expected);
        }
    }

    #[test]
    fn header_cache_serves_repeat_fetches() {
        let s = DocumentStore::from_xml(SAMPLE, &StoreOptions::in_memory().with_header_cache())
            .unwrap();
        assert!(s.header_cache_enabled());
        let title = s.tag_id("title").unwrap();
        let t = s.nodes_with_tag(title)[0];
        s.reset_io_stats();
        let first = s.record(t.id).unwrap();
        let again = s.record(t.id).unwrap();
        assert_eq!(first, again);
        let cs = s.cache_stats();
        assert_eq!(cs.header_misses, 1);
        assert_eq!(cs.header_hits, 1);
        // The repeat fetch never reached the buffer pool.
        assert_eq!(s.io_stats().page_requests(), 1);
    }

    #[test]
    fn header_cache_off_by_default_and_counters_track_tags() {
        let s = store();
        assert!(!s.header_cache_enabled());
        s.reset_io_stats();
        let _ = s.record(NodeId(1)).unwrap();
        let _ = s.record(NodeId(1)).unwrap();
        let cs = s.cache_stats();
        assert_eq!((cs.header_hits, cs.header_misses), (0, 0));
        // Both requests hit the pool instead.
        assert_eq!(s.io_stats().page_requests(), 2);
        let _ = s.tag_id("title");
        let _ = s.tag_id("no_such_tag");
        let cs = s.cache_stats();
        assert_eq!(cs.tag_hits, 1);
        assert_eq!(cs.tag_misses, 1);
    }

    #[test]
    fn clear_buffer_pool_drops_header_cache() {
        let s = DocumentStore::from_xml(SAMPLE, &StoreOptions::in_memory().with_header_cache())
            .unwrap();
        let _ = s.record(NodeId(1)).unwrap();
        s.clear_buffer_pool().unwrap();
        s.reset_io_stats();
        let _ = s.record(NodeId(1)).unwrap();
        // Cold again: the fetch missed the cache and faulted a page.
        assert_eq!(s.cache_stats().header_misses, 1);
        assert_eq!(s.io_stats().buffer.misses, 1);
    }

    #[test]
    fn poisoned_pool_shard_recovers() {
        let s = store();
        let title = s.tag_id("title").unwrap();
        let t = s.nodes_with_tag(title)[0];
        let before = s.content(t.id).unwrap();
        // Panic while holding every shard's lock, poisoning the mutexes.
        for shard in &s.shards {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _guard = shard.lock().unwrap();
                panic!("reader dies while holding the pool lock");
            }));
            assert!(result.is_err());
            assert!(shard.lock().is_err(), "shard must actually be poisoned");
        }
        // The store keeps answering reads identically.
        assert_eq!(s.content(t.id).unwrap(), before);
        assert!(s.io_stats().page_requests() > 0);
        s.clear_buffer_pool().unwrap();
        assert_eq!(s.content(t.id).unwrap(), before);
    }

    #[test]
    fn inject_faults_round_trip() {
        let s = store();
        assert!(s.fault_stats().is_none());
        let cfg: FaultConfig = "seed=9,read_err=1.0".parse().unwrap();
        s.inject_faults(Some(cfg)).unwrap();
        // Every read now fails even after retries, as a typed error.
        let title = s.tag_id("title").unwrap();
        let t = s.nodes_with_tag(title)[0];
        let err = s.content(t.id).unwrap_err();
        assert!(err.is_transient(), "{err}");
        assert!(s.fault_stats().unwrap().read_errors > 0);
        // Disarming restores normal service.
        s.inject_faults(None).unwrap();
        assert!(s.fault_stats().is_none());
        assert_eq!(s.content(t.id).unwrap().as_deref(), Some("Querying XML"));
    }

    #[test]
    fn node_out_of_bounds_error() {
        let s = store();
        assert!(matches!(
            s.record(NodeId(10_000)),
            Err(StoreError::NodeOutOfBounds { .. })
        ));
    }

    #[test]
    fn many_nodes_span_pages() {
        // More than RECORDS_PER_PAGE nodes forces multi-page layout.
        let mut xml = String::from("<bib>");
        for i in 0..300 {
            xml.push_str(&format!("<article><title>T{i}</title></article>"));
        }
        xml.push_str("</bib>");
        let s = DocumentStore::from_xml(&xml, &StoreOptions::in_memory()).unwrap();
        assert_eq!(s.node_count(), 602);
        assert!(s.total_pages() > 2);
        let title = s.tag_id("title").unwrap();
        let last = s.nodes_with_tag(title)[299];
        assert_eq!(s.content(last.id).unwrap().as_deref(), Some("T299"));
    }

    // ---- multi-document mutations --------------------------------------

    #[test]
    fn empty_store_has_only_doc_root() {
        let s = DocumentStore::create(&StoreOptions::in_memory()).unwrap();
        assert_eq!(s.node_count(), 1);
        assert_eq!(s.root().end, 1);
        assert!(s.documents().is_empty());
        assert!(s.children(NodeId(0)).unwrap().is_empty());
        assert_eq!(&*s.tag_name(s.record(NodeId(0)).unwrap().tag), DOC_ROOT_TAG);
    }

    #[test]
    fn single_insert_matches_bulk_load() {
        let bulk = store();
        let mut inc = DocumentStore::create(&StoreOptions::in_memory()).unwrap();
        inc.insert_xml(SAMPLE).unwrap();
        assert_eq!(inc.node_count(), bulk.node_count());
        assert_eq!(inc.root(), bulk.root());
        for id in 0..bulk.node_count() {
            assert_eq!(
                inc.record(NodeId(id)).unwrap(),
                bulk.record(NodeId(id)).unwrap(),
                "record {id} diverges"
            );
            assert_eq!(
                inc.content(NodeId(id)).unwrap(),
                bulk.content(NodeId(id)).unwrap()
            );
        }
    }

    #[test]
    fn insert_and_query_multiple_documents() {
        let mut s = DocumentStore::create(&StoreOptions::in_memory()).unwrap();
        let d1 = s
            .insert_xml("<bib><article><author>Jack</author></article></bib>")
            .unwrap();
        let d2 = s
            .insert_xml("<bib><article><author>Jill</author></article></bib>")
            .unwrap();
        assert_ne!(d1, d2);
        assert_eq!(s.documents().len(), 2);
        // Both document roots are children of the shared doc_root.
        assert_eq!(s.children(NodeId(0)).unwrap().len(), 2);
        let author = s.tag_id("author").unwrap();
        let authors = s.nodes_with_tag(author);
        assert_eq!(authors.len(), 2);
        // Global labels keep document order: doc 1 strictly before doc 2.
        assert!(authors[0].end < authors[1].start);
        assert_eq!(s.content(authors[0].id).unwrap().as_deref(), Some("Jack"));
        assert_eq!(s.content(authors[1].id).unwrap().as_deref(), Some("Jill"));
        // Parent chains stay within the right document.
        let p = s.parent(authors[1].id).unwrap().unwrap();
        assert_eq!(&*s.tag_name(s.record(p).unwrap().tag), "article");
        // Subtree of doc_root covers everything.
        assert_eq!(s.subtree(NodeId(0)).unwrap().len() as u32, s.node_count());
    }

    #[test]
    fn delete_document_removes_and_frees_pages() {
        let mut s = DocumentStore::create(&StoreOptions::in_memory()).unwrap();
        let d1 = s.insert_xml("<a><b>one</b></a>").unwrap();
        let d2 = s.insert_xml("<a><b>two</b></a>").unwrap();
        let pages_before = s.total_pages();
        s.delete_document(d1).unwrap();
        assert_eq!(s.documents(), vec![(d2, s.documents()[0].1)]);
        let b = s.tag_id("b").unwrap();
        let entries = s.nodes_with_tag(b);
        assert_eq!(entries.len(), 1);
        assert_eq!(s.content(entries[0].id).unwrap().as_deref(), Some("two"));
        // A same-shaped insert reuses the freed pages: file does not grow.
        s.insert_xml("<a><b>three</b></a>").unwrap();
        assert_eq!(s.total_pages(), pages_before);
        let entries = s.nodes_with_tag(b);
        assert_eq!(entries.len(), 2);
        assert_eq!(s.content(entries[1].id).unwrap().as_deref(), Some("three"));
    }

    #[test]
    fn replace_document_swaps_content() {
        let mut s = DocumentStore::create(&StoreOptions::in_memory()).unwrap();
        let d1 = s.insert_xml("<a><b>old</b></a>").unwrap();
        let doc = xmlparse::parse_document("<a><b>new</b></a>").unwrap();
        let d2 = s.replace_document(d1, &doc).unwrap();
        assert_ne!(d1, d2);
        assert_eq!(s.documents().len(), 1);
        let b = s.tag_id("b").unwrap();
        let entries = s.nodes_with_tag(b);
        assert_eq!(s.content(entries[0].id).unwrap().as_deref(), Some("new"));
    }

    #[test]
    fn no_such_document_error() {
        let mut s = DocumentStore::create(&StoreOptions::in_memory()).unwrap();
        assert!(matches!(
            s.delete_document(42),
            Err(StoreError::NoSuchDocument { doc: 42 })
        ));
    }

    #[test]
    fn meta_round_trips() {
        let meta = StoreMeta {
            tags: vec![DOC_ROOT_TAG.to_owned(), "article".to_owned()],
            docs: vec![DocMeta {
                doc_id: 7,
                heap_base: 1,
                heap_pages: 2,
                node_base: 3,
                node_pages: 4,
                node_count: 900,
                span: 1801,
            }],
            next_doc: 8,
            next_txn: 19,
        };
        assert_eq!(decode_meta(&encode_meta(&meta)).unwrap(), meta);
        assert!(decode_meta(&encode_meta(&meta)[..10]).is_err());
        assert!(decode_meta(b"junk").is_err());
    }

    // ---- durability ----------------------------------------------------

    #[test]
    fn durable_store_reopens_with_committed_documents() {
        let (page, wal) = temp_paths("reopen");
        let opts = durable_opts(&page).with_value_index();
        {
            let mut s = DocumentStore::create(&opts).unwrap();
            s.insert_xml(SAMPLE).unwrap();
            s.insert_xml("<bib><article><author>Jill</author></article></bib>")
                .unwrap();
            assert!(s.durable());
            assert!(s.wal_stats().unwrap().flushes >= 2);
        }
        let s = DocumentStore::open(&opts).unwrap();
        assert_eq!(s.documents().len(), 2);
        let info = s.recovery_info().unwrap();
        assert_eq!(info.committed, 2);
        assert_eq!(info.losers, 0);
        let author = s.tag_id("author").unwrap();
        let authors = s.nodes_with_tag(author);
        assert_eq!(authors.len(), 4);
        assert_eq!(s.content(authors[3].id).unwrap().as_deref(), Some("Jill"));
        // The value index was rebuilt from the pages.
        assert_eq!(
            s.nodes_with_tag_and_content(author, "John").unwrap().len(),
            2
        );
        // Recovery is deterministic: a second replay of the durable log
        // leaves the same page bytes as the first.
        let log = std::fs::read(&wal).unwrap();
        drop(s);
        let mut disk = DiskManager::open_existing(&page).unwrap();
        wal::replay(&mut disk, &log).unwrap();
        drop(disk);
        let once = std::fs::read(&page).unwrap();
        let mut disk = DiskManager::open_existing(&page).unwrap();
        wal::replay(&mut disk, &log).unwrap();
        drop(disk);
        let twice = std::fs::read(&page).unwrap();
        assert_eq!(once, twice);
        let _ = std::fs::remove_file(&page);
        let _ = std::fs::remove_file(&wal);
    }

    #[test]
    fn crash_during_insert_rolls_back_on_reopen() {
        let (page, wal) = temp_paths("crash_insert");
        let opts = durable_opts(&page);
        {
            let mut s = DocumentStore::create(&opts).unwrap();
            let kept = s.insert_xml(SAMPLE).unwrap();
            // Arm a crash on the very next write-class operation: the
            // insert dies before its commit record can land.
            s.inject_faults(Some("seed=5,crash=1".parse().unwrap()))
                .unwrap();
            let err = s
                .insert_xml("<bib><article><author>Lost</author></article></bib>")
                .unwrap_err();
            assert!(matches!(err, StoreError::SimulatedCrash), "{err}");
            assert!(s.crashed());
            // The crashed store refuses further mutations.
            assert!(matches!(
                s.insert_xml("<a/>"),
                Err(StoreError::SimulatedCrash)
            ));
            assert_eq!(s.documents(), vec![(kept, 9)]);
        }
        let mut s = DocumentStore::open(&opts).unwrap();
        assert_eq!(s.documents().len(), 1);
        let author = s.tag_id("author").unwrap();
        assert_eq!(s.nodes_with_tag(author).len(), 3);
        assert!(s.tag_id("Lost").is_none());
        // The reopened store accepts new work.
        s.insert_xml("<bib><article><author>Back</author></article></bib>")
            .unwrap();
        assert_eq!(s.nodes_with_tag(author).len(), 4);
        let _ = std::fs::remove_file(&page);
        let _ = std::fs::remove_file(&wal);
    }

    #[test]
    fn torn_reuse_commit_zeroes_reclaimed_pages() {
        // The free-list-reuse regression: delete a document, reinsert
        // over its pages, and tear the commit off the log. Recovery must
        // roll the reuse back to ZERO pages — the deleted document's
        // payload must not resurrect, on disk or through the store.
        let (page, wal) = temp_paths("torn_reuse");
        let opts = durable_opts(&page);
        {
            let mut s = DocumentStore::create(&opts).unwrap();
            let d1 = s.insert_xml("<a><b>RESURRECT_ME</b></a>").unwrap();
            s.checkpoint().unwrap();
            s.delete_document(d1).unwrap();
            // Same shape: reuses d1's freed heap + node pages, so this
            // goes through the page-image commit path.
            s.insert_xml("<a><b>SECOND_BODY</b></a>").unwrap();
        }
        // Tear the final commit record: keep a few bytes so the tail is
        // genuinely torn, not cleanly truncated.
        let log = std::fs::read(&wal).unwrap();
        let contents = wal::read_log(&log);
        let last_commit = contents
            .records
            .iter()
            .rev()
            .find(|(_, r)| matches!(r, WalRecord::Commit { .. }))
            .map(|(lsn, _)| *lsn)
            .unwrap();
        let f = std::fs::OpenOptions::new().write(true).open(&wal).unwrap();
        f.set_len(last_commit + 5).unwrap();
        drop(f);

        let s = DocumentStore::open(&opts).unwrap();
        assert!(s.documents().is_empty(), "the torn insert must not survive");
        let info = s.recovery_info().unwrap();
        assert!(info.undone >= 2, "heap + node images rolled back: {info:?}");
        drop(s);
        // Raw page file scan: both payloads are gone — the reclaimed
        // pages were zeroed, not left with stale bytes.
        let raw = std::fs::read(&page).unwrap();
        let contains = |needle: &[u8]| raw.windows(needle.len()).any(|w| w == needle);
        assert!(!contains(b"RESURRECT_ME"), "deleted payload resurrected");
        assert!(!contains(b"SECOND_BODY"), "torn insert left partial data");
        let _ = std::fs::remove_file(&page);
        let _ = std::fs::remove_file(&wal);
    }

    #[test]
    fn crash_during_delete_preserves_document() {
        let (page, wal) = temp_paths("crash_delete");
        let opts = durable_opts(&page);
        {
            let mut s = DocumentStore::create(&opts).unwrap();
            let d1 = s.insert_xml(SAMPLE).unwrap();
            // The delete's only write-class op is its commit flush.
            s.inject_faults(Some("seed=11,crash=1".parse().unwrap()))
                .unwrap();
            let err = s.delete_document(d1).unwrap_err();
            assert!(matches!(err, StoreError::SimulatedCrash), "{err}");
        }
        let s = DocumentStore::open(&opts).unwrap();
        assert_eq!(s.documents().len(), 1, "torn delete must not apply");
        let author = s.tag_id("author").unwrap();
        assert_eq!(s.nodes_with_tag(author).len(), 3);
        let _ = std::fs::remove_file(&page);
        let _ = std::fs::remove_file(&wal);
    }

    #[test]
    fn checkpoint_survives_reopen_without_log_tail() {
        let (page, wal) = temp_paths("checkpoint");
        let opts = durable_opts(&page);
        {
            let mut s = DocumentStore::create(&opts).unwrap();
            s.insert_xml(SAMPLE).unwrap();
            let before = std::fs::metadata(&wal).unwrap().len();
            s.checkpoint().unwrap();
            let after = std::fs::metadata(&wal).unwrap().len();
            assert!(after < before, "checkpoint must shrink the log");
            assert_eq!(s.wal_stats().unwrap().checkpoints, 1);
        }
        let s = DocumentStore::open(&opts).unwrap();
        assert_eq!(s.documents().len(), 1);
        assert_eq!(s.node_count(), 10);
        let _ = std::fs::remove_file(&page);
        let _ = std::fs::remove_file(&wal);
    }

    #[test]
    fn durable_in_memory_store_logs_without_a_file() {
        // No path → the log lives in memory; the full logging path runs
        // (useful for measuring WAL overhead) but nothing is written out.
        let mut s = DocumentStore::create(&StoreOptions::in_memory().with_durable()).unwrap();
        s.insert_xml(SAMPLE).unwrap();
        let stats = s.wal_stats().unwrap();
        assert!(stats.records >= 3); // checkpoint + begin + commit
        assert!(stats.flushes >= 1);
    }
}
