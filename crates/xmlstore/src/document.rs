//! A loaded XML document: records + heap on pages behind a buffer pool,
//! plus the in-memory tag dictionary and tag index.
//!
//! Loading wraps the document's root element under a synthetic `doc_root`
//! node (node id 0), matching the paper's convention that "the database is
//! a single tree document" whose pattern trees start at `$1.tag =
//! doc_root` (Sec. 4.1, Figs. 4–6).
//!
//! Text handling follows TIMBER's model: an element whose children are
//! text-only stores that text as its *content* (`$i.content` in pattern
//! predicates); text inside mixed content becomes `#text` nodes;
//! attributes become `@name` nodes whose content is the value.

use crate::buffer::{BufferPool, BufferStats};
use crate::catalog::{attr_tag_name, TagDict, TagId, TEXT_TAG};
use crate::error::{Result, StoreError};
use crate::fault::{FaultConfig, FaultInjector, FaultStats};
use crate::heap::{read_content_via, HeapBuilder};
use crate::index::{NodeEntry, TagIndex, ValueIndex};
use crate::node::{
    node_location, ContentPtr, NodeId, NodeKind, NodeRecord, NO_PARENT, RECORDS_PER_PAGE,
    RECORD_SIZE,
};
use crate::page::{PageId, PAGE_DATA_SIZE, PAGE_HEADER_SIZE, PAGE_SIZE};
use crate::storage::{DiskManager, DiskStats, SharedDisk};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, RwLock};

/// Maximum number of buffer-pool shards per store. Page ids are striped
/// across shards (`pid % nshards`), so concurrent readers touching
/// different pages usually take different locks.
const MAX_POOL_SHARDS: usize = 8;

/// Entry cap per header-cache shard: the cache is a small read
/// accelerator, not a second buffer pool.
const HEADER_CACHE_SHARD_CAP: usize = 4096;

/// The reserved tag of the synthetic document root.
pub const DOC_ROOT_TAG: &str = "doc_root";

/// Configuration for loading a document into the store.
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Buffer pool capacity in pages. The paper uses a 32 MB pool of 8 KB
    /// pages, i.e. 4096 pages; that is the default.
    pub pool_pages: usize,
    /// Back the store with a real temporary file (true) or an in-memory
    /// page vector (false).
    pub on_disk: bool,
    /// If the store is on disk, put the page file here instead of a
    /// temporary path (the file is then kept after drop).
    pub path: Option<PathBuf>,
    /// Drop whitespace-only text between elements (bibliographic data is
    /// data-centric, so this is the default).
    pub strip_whitespace: bool,
    /// Also build a content value index (`(tag, value) → nodes`). The
    /// paper's experiments used only the tag index (its footnote 8
    /// explains the limits of value indices in XML), so this is off by
    /// default.
    pub value_index: bool,
    /// Cache decoded node headers (`NodeId → NodeRecord`) on the read
    /// path, skipping the buffer pool for repeat fetches. Off by default
    /// so I/O counters keep measuring true page traffic.
    pub header_cache: bool,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            pool_pages: 32 * 1024 * 1024 / PAGE_SIZE,
            on_disk: true,
            path: None,
            strip_whitespace: true,
            value_index: false,
            header_cache: false,
        }
    }
}

impl StoreOptions {
    /// Small, in-memory configuration for tests and examples.
    pub fn in_memory() -> Self {
        StoreOptions {
            pool_pages: 1024,
            on_disk: false,
            path: None,
            strip_whitespace: true,
            value_index: false,
            header_cache: false,
        }
    }

    /// Enable the content value index.
    pub fn with_value_index(mut self) -> Self {
        self.value_index = true;
        self
    }

    /// Enable the node-header cache.
    pub fn with_header_cache(mut self) -> Self {
        self.header_cache = true;
        self
    }

    /// Set the buffer pool size in bytes (rounded down to whole pages,
    /// minimum one page).
    pub fn with_pool_bytes(mut self, bytes: usize) -> Self {
        self.pool_pages = (bytes / PAGE_SIZE).max(1);
        self
    }

    /// Set the buffer pool size in pages.
    pub fn with_pool_pages(mut self, pages: usize) -> Self {
        self.pool_pages = pages.max(1);
        self
    }
}

/// Combined I/O counters for one store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Buffer pool counters.
    pub buffer: BufferStats,
    /// Physical disk counters.
    pub disk: DiskStats,
}

impl IoStats {
    /// Total page requests (hits + misses).
    pub fn page_requests(&self) -> u64 {
        self.buffer.hits + self.buffer.misses
    }
}

/// Hit/miss counters of the in-memory read-path caches (tag-index
/// lookups and the optional node-header cache).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Node-header fetches answered from the header cache.
    pub header_hits: u64,
    /// Node-header fetches that had to decode a buffered page.
    pub header_misses: u64,
    /// Tag-name lookups that resolved to an interned tag.
    pub tag_hits: u64,
    /// Tag-name lookups for names absent from the document.
    pub tag_misses: u64,
}

/// A sharded `NodeId → NodeRecord` cache. Shards are striped the same
/// way as the buffer pool (by node page), each behind a reader-writer
/// lock, so concurrent readers on a warm cache take no exclusive lock.
struct HeaderCache {
    shards: Vec<RwLock<HashMap<u32, NodeRecord>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl HeaderCache {
    fn new(nshards: usize) -> Self {
        HeaderCache {
            shards: (0..nshards.max(1))
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, id: u32) -> &RwLock<HashMap<u32, NodeRecord>> {
        &self.shards[id as usize % self.shards.len()]
    }

    fn get(&self, id: u32) -> Option<NodeRecord> {
        let found = self
            .shard(id)
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(&id)
            .copied();
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    fn insert(&self, id: u32, rec: NodeRecord) {
        let mut shard = self.shard(id).write().unwrap_or_else(|e| e.into_inner());
        if shard.len() < HEADER_CACHE_SHARD_CAP {
            shard.insert(id, rec);
        }
    }

    fn clear(&self) {
        for shard in &self.shards {
            shard.write().unwrap_or_else(|e| e.into_inner()).clear();
        }
    }
}

/// A document loaded into the paged store.
///
/// All read methods take `&self` and the store is `Sync`: pages live in
/// buffer-pool shards striped by page id, each behind its own mutex, all
/// sharing one [`SharedDisk`]. The tag dictionary and tag/value indexes
/// are immutable after load and need no locking.
pub struct DocumentStore {
    tags: TagDict,
    index: TagIndex,
    value_index: Option<ValueIndex>,
    heap_base: u32,
    node_base: u32,
    node_count: u32,
    root_end: u32,
    shards: Vec<Mutex<BufferPool>>,
    disk: SharedDisk,
    header_cache: Option<HeaderCache>,
    tag_hits: AtomicU64,
    tag_misses: AtomicU64,
}

// The whole point of the sharded design: a loaded store can be shared
// across threads by reference.
const _: () = {
    const fn assert_sync_send<T: Sync + Send>() {}
    assert_sync_send::<DocumentStore>()
};

fn lock_pool(shard: &Mutex<BufferPool>) -> MutexGuard<'_, BufferPool> {
    // A poisoned shard only means another reader panicked mid-access;
    // the pool's bookkeeping is update-then-return, so keep going.
    shard.lock().unwrap_or_else(|e| e.into_inner())
}

impl DocumentStore {
    /// Parse `xml` and load it.
    pub fn from_xml(xml: &str, opts: &StoreOptions) -> Result<Self> {
        let doc = xmlparse::parse_document(xml)?;
        Self::load(&doc, opts)
    }

    /// Load a parsed document.
    pub fn load(doc: &xmlparse::Document, opts: &StoreOptions) -> Result<Self> {
        let mut tags = TagDict::new();
        let mut heap = HeapBuilder::new();
        let mut records: Vec<NodeRecord> = Vec::new();
        let mut counter: u32 = 0;

        // Synthetic doc_root wrapping the document's root element.
        let doc_root_tag = tags.intern(DOC_ROOT_TAG);
        records.push(NodeRecord {
            tag: doc_root_tag,
            start: counter,
            end: 0, // patched below
            parent: NO_PARENT,
            level: 0,
            kind: NodeKind::Element,
            content: ContentPtr::NULL,
        });
        counter += 1;

        let mut values: Vec<(usize, String)> = Vec::new();
        let mut loader = Loader {
            tags: &mut tags,
            heap: &mut heap,
            records: &mut records,
            counter: &mut counter,
            strip_whitespace: opts.strip_whitespace,
            values: if opts.value_index {
                Some(&mut values)
            } else {
                None
            },
        };
        loader.load_element(doc.root(), 0, 1)?;
        let end = counter;
        records[0].end = end;

        // Build the tag index (and, if requested, the value index) in
        // document order. Content strings were collected during loading,
        // so the value index costs no page I/O to build.
        let mut index = TagIndex::new();
        for (i, rec) in records.iter().enumerate() {
            index.insert(
                rec.tag,
                NodeEntry {
                    id: NodeId(i as u32),
                    start: rec.start,
                    end: rec.end,
                    level: rec.level,
                },
            );
        }
        let value_index = if opts.value_index {
            let mut vi = ValueIndex::new();
            for (i, value) in &values {
                let rec = &records[*i];
                vi.insert(
                    rec.tag,
                    value,
                    NodeEntry {
                        id: NodeId(*i as u32),
                        start: rec.start,
                        end: rec.end,
                        level: rec.level,
                    },
                );
            }
            Some(vi)
        } else {
            None
        };

        // Lay out pages: heap first, then node records.
        let mut disk = if opts.on_disk {
            match &opts.path {
                Some(p) => DiskManager::create_at(p)?,
                None => DiskManager::temp_file()?,
            }
        } else {
            DiskManager::in_memory()
        };
        let heap_pages = heap.into_pages();
        let heap_base = 0u32;
        for page in &heap_pages {
            let pid = disk.allocate()?;
            disk.write_page(pid, page)?;
        }
        let node_base = heap_pages.len() as u32;
        let node_count = records.len() as u32;
        let root_end = records[0].end;
        let mut page_buf = [0u8; PAGE_SIZE];
        for chunk in records.chunks(RECORDS_PER_PAGE) {
            page_buf.fill(0);
            for (slot, rec) in chunk.iter().enumerate() {
                let at = PAGE_HEADER_SIZE + slot * RECORD_SIZE;
                rec.encode(&mut page_buf[at..at + RECORD_SIZE]);
            }
            let pid = disk.allocate()?;
            disk.write_page(pid, &page_buf)?;
        }
        disk.reset_stats();

        // Stripe the pool across shards; every shard gets at least one
        // frame (remainder pages go to the first shards). A zero-page
        // pool still fails with `PoolTooSmall`, as before.
        let disk = SharedDisk::new(disk);
        let nshards = opts.pool_pages.clamp(1, MAX_POOL_SHARDS);
        let base_cap = opts.pool_pages / nshards;
        let rem = opts.pool_pages % nshards;
        let mut shards = Vec::with_capacity(nshards);
        for i in 0..nshards {
            let cap = base_cap + usize::from(i < rem);
            shards.push(Mutex::new(BufferPool::with_shared(disk.clone(), cap)?));
        }
        Ok(DocumentStore {
            tags,
            index,
            value_index,
            heap_base,
            node_base,
            node_count,
            root_end,
            shards,
            disk,
            header_cache: opts.header_cache.then(|| HeaderCache::new(MAX_POOL_SHARDS)),
            tag_hits: AtomicU64::new(0),
            tag_misses: AtomicU64::new(0),
        })
    }

    // ---- sharded page access ------------------------------------------

    fn shard_of(&self, pid: PageId) -> &Mutex<BufferPool> {
        &self.shards[pid.0 as usize % self.shards.len()]
    }

    /// Run `f` over the data region of page `pid` via the pool shard
    /// that owns it.
    fn with_page<R>(&self, pid: PageId, f: impl FnOnce(&[u8; PAGE_DATA_SIZE]) -> R) -> Result<R> {
        lock_pool(self.shard_of(pid)).with_page(pid, f)
    }

    /// Read heap content, routing each page to its shard. A value that
    /// spans pages may cross shards; pages are locked one at a time.
    fn read_heap(&self, ptr: ContentPtr) -> Result<String> {
        read_content_via(|pid, f| self.with_page(pid, |p| f(p)), self.heap_base, ptr)
    }

    // ---- metadata ----------------------------------------------------

    /// Number of stored nodes (elements + attributes + text nodes,
    /// including the synthetic `doc_root`).
    pub fn node_count(&self) -> u32 {
        self.node_count
    }

    /// Total pages in the store file.
    pub fn total_pages(&self) -> u32 {
        self.node_base + self.node_count.div_ceil(RECORDS_PER_PAGE as u32)
    }

    /// Store size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.total_pages() as u64 * PAGE_SIZE as u64
    }

    /// The tag dictionary.
    pub fn tags(&self) -> &TagDict {
        &self.tags
    }

    /// Id of an element tag name, if present in the document.
    pub fn tag_id(&self, name: &str) -> Option<TagId> {
        self.count_tag_lookup(self.tags.get(name))
    }

    /// Id of an attribute `name` (stored as `@name`), if present.
    pub fn attr_tag_id(&self, name: &str) -> Option<TagId> {
        self.count_tag_lookup(self.tags.get(&attr_tag_name(name)))
    }

    fn count_tag_lookup(&self, found: Option<TagId>) -> Option<TagId> {
        match found {
            Some(_) => self.tag_hits.fetch_add(1, Ordering::Relaxed),
            None => self.tag_misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Name of a tag id.
    pub fn tag_name(&self, id: TagId) -> &str {
        self.tags.name(id)
    }

    // ---- index access (no data pages touched) -------------------------

    /// Document-order index entries for a tag.
    pub fn nodes_with_tag(&self, tag: TagId) -> &[NodeEntry] {
        self.index.nodes(tag)
    }

    /// The synthetic root's index entry.
    pub fn root(&self) -> NodeEntry {
        NodeEntry {
            id: NodeId(0),
            start: 0,
            end: self.root_end,
            level: 0,
        }
    }

    /// The tag index itself.
    pub fn index(&self) -> &TagIndex {
        &self.index
    }

    /// The content value index, if it was built
    /// (`StoreOptions::value_index`).
    pub fn value_index(&self) -> Option<&ValueIndex> {
        self.value_index.as_ref()
    }

    /// Document-order nodes of `tag` whose content equals `value`, from
    /// the value index (no data-page access). `None` when the index was
    /// not built.
    pub fn nodes_with_tag_and_content(&self, tag: TagId, value: &str) -> Option<&[NodeEntry]> {
        self.value_index.as_ref().map(|vi| vi.nodes(tag, value))
    }

    // ---- record / content access (goes through the buffer pool) -------

    /// Fetch the full record of `id` (one node-page access).
    pub fn record(&self, id: NodeId) -> Result<NodeRecord> {
        if id.0 >= self.node_count {
            return Err(StoreError::NodeOutOfBounds {
                node: id.0,
                node_count: self.node_count,
            });
        }
        if let Some(cache) = &self.header_cache {
            if let Some(rec) = cache.get(id.0) {
                return Ok(rec);
            }
        }
        let (page, slot) = node_location(self.node_base, id);
        let rec = self.with_page(PageId(page), |p| {
            NodeRecord::decode(&p[slot..slot + RECORD_SIZE])
        })?;
        if let Some(cache) = &self.header_cache {
            cache.insert(id.0, rec);
        }
        Ok(rec)
    }

    /// The index-style entry of `id` (via its record).
    pub fn entry(&self, id: NodeId) -> Result<NodeEntry> {
        let rec = self.record(id)?;
        Ok(NodeEntry {
            id,
            start: rec.start,
            end: rec.end,
            level: rec.level,
        })
    }

    /// Character content of `id`: `Some` for attributes, text nodes, and
    /// text-only elements; `None` otherwise. This is the "data value
    /// look-up" of Sec. 5.3 and touches heap pages.
    pub fn content(&self, id: NodeId) -> Result<Option<String>> {
        let rec = self.record(id)?;
        if !rec.content.is_some() {
            return Ok(None);
        }
        Ok(Some(self.read_heap(rec.content)?))
    }

    /// Parent node id (None for the root).
    pub fn parent(&self, id: NodeId) -> Result<Option<NodeId>> {
        let rec = self.record(id)?;
        Ok(if rec.parent == NO_PARENT {
            None
        } else {
            Some(NodeId(rec.parent))
        })
    }

    /// All child node ids of `id` (elements, attributes, and text nodes),
    /// in document order.
    pub fn children(&self, id: NodeId) -> Result<Vec<NodeId>> {
        let rec = self.record(id)?;
        let mut out = Vec::new();
        let mut j = id.0 + 1;
        while j < self.node_count {
            let r = self.record(NodeId(j))?;
            if r.start >= rec.end {
                break;
            }
            if r.level == rec.level + 1 {
                out.push(NodeId(j));
            }
            j += 1;
        }
        Ok(out)
    }

    /// All node ids in the subtree of `id`, `id` included, in document
    /// order.
    pub fn subtree(&self, id: NodeId) -> Result<Vec<NodeId>> {
        let rec = self.record(id)?;
        let mut out = vec![id];
        let mut j = id.0 + 1;
        while j < self.node_count {
            let r = self.record(NodeId(j))?;
            if r.start >= rec.end {
                break;
            }
            out.push(NodeId(j));
            j += 1;
        }
        Ok(out)
    }

    /// Rebuild the DOM element for the subtree rooted at `id` — the "data
    /// population" step of Sec. 5.3. Attribute children become attributes,
    /// `#text` children become text nodes, merged content becomes a text
    /// child.
    pub fn materialize(&self, id: NodeId) -> Result<xmlparse::Element> {
        let rec = self.record(id)?;
        let mut elem = xmlparse::Element::new(self.tags.name(rec.tag));
        if rec.content.is_some() {
            // Element content and attribute/text nodes materialized
            // directly both surface as a text child.
            let text = self.read_heap(rec.content)?;
            elem.children.push(xmlparse::XmlNode::Text(text));
        }
        for child in self.children(id)? {
            let crec = self.record(child)?;
            match crec.kind {
                NodeKind::Attribute => {
                    let name = self.tags.name(crec.tag).trim_start_matches('@').to_owned();
                    let value = self.content(child)?.unwrap_or_default();
                    elem.attributes.push((name, value));
                }
                NodeKind::Text => {
                    let value = self.content(child)?.unwrap_or_default();
                    elem.children.push(xmlparse::XmlNode::Text(value));
                }
                NodeKind::Element => {
                    elem.children
                        .push(xmlparse::XmlNode::Element(self.materialize(child)?));
                }
            }
        }
        Ok(elem)
    }

    // ---- statistics ----------------------------------------------------

    /// Current I/O counters, summed over the pool shards.
    pub fn io_stats(&self) -> IoStats {
        let mut buffer = BufferStats::default();
        for shard in &self.shards {
            let s = lock_pool(shard).stats();
            buffer.hits += s.hits;
            buffer.misses += s.misses;
            buffer.evictions += s.evictions;
            buffer.writebacks += s.writebacks;
            buffer.retries += s.retries;
        }
        IoStats {
            buffer,
            disk: self.disk.stats(),
        }
    }

    /// Zero the I/O and cache counters.
    pub fn reset_io_stats(&self) {
        for shard in &self.shards {
            lock_pool(shard).reset_stats();
        }
        if let Some(cache) = &self.header_cache {
            cache.hits.store(0, Ordering::Relaxed);
            cache.misses.store(0, Ordering::Relaxed);
        }
        self.tag_hits.store(0, Ordering::Relaxed);
        self.tag_misses.store(0, Ordering::Relaxed);
    }

    /// Empty every buffer-pool shard (and the header cache) so the next
    /// operation starts cold.
    pub fn clear_buffer_pool(&self) -> Result<()> {
        for shard in &self.shards {
            lock_pool(shard).clear()?;
        }
        if let Some(cache) = &self.header_cache {
            cache.clear();
        }
        Ok(())
    }

    /// Buffer pool capacity in pages, summed over shards.
    pub fn pool_capacity(&self) -> usize {
        self.shards.iter().map(|s| lock_pool(s).capacity()).sum()
    }

    /// Number of buffer-pool shards.
    pub fn pool_shards(&self) -> usize {
        self.shards.len()
    }

    /// Read-path cache counters (header cache + tag-index lookups).
    pub fn cache_stats(&self) -> CacheStats {
        let (header_hits, header_misses) = match &self.header_cache {
            Some(c) => (
                c.hits.load(Ordering::Relaxed),
                c.misses.load(Ordering::Relaxed),
            ),
            None => (0, 0),
        };
        CacheStats {
            header_hits,
            header_misses,
            tag_hits: self.tag_hits.load(Ordering::Relaxed),
            tag_misses: self.tag_misses.load(Ordering::Relaxed),
        }
    }

    /// Whether the node-header cache was enabled at load time.
    pub fn header_cache_enabled(&self) -> bool {
        self.header_cache.is_some()
    }

    // ---- fault injection ----------------------------------------------

    /// Install a deterministic fault schedule on the underlying disk (or
    /// remove it with `None`). Loading always happens fault-free — this
    /// is called afterwards, so schedules corrupt query-time page
    /// traffic, not the initial layout. Cached pages are dropped so the
    /// schedule applies to every subsequent page touch.
    pub fn inject_faults(&self, config: Option<FaultConfig>) -> Result<()> {
        // Flush through the *clean* disk before arming the injector, so
        // dirty frames are not lost to injected write errors.
        self.clear_buffer_pool()?;
        self.disk.set_fault_injector(config.map(FaultInjector::new));
        Ok(())
    }

    /// Counters from the installed fault injector, if any.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.disk.fault_stats()
    }

    /// XOR one raw physical byte of page `page`, bypassing checksums —
    /// a corruption backdoor for recovery tests. Cached copies of the
    /// page are NOT invalidated; pair with [`clear_buffer_pool`] to make
    /// the damage visible to the next read.
    ///
    /// [`clear_buffer_pool`]: DocumentStore::clear_buffer_pool
    pub fn poke_page_byte(&self, page: u32, offset: usize, xor: u8) -> Result<()> {
        self.disk.lock().poke_byte(PageId(page), offset, xor)
    }
}

struct Loader<'a> {
    tags: &'a mut TagDict,
    heap: &'a mut HeapBuilder,
    records: &'a mut Vec<NodeRecord>,
    counter: &'a mut u32,
    strip_whitespace: bool,
    /// When building a value index: `(record index, content)` pairs.
    values: Option<&'a mut Vec<(usize, String)>>,
}

impl Loader<'_> {
    /// DFS over the DOM assigning ids, labels, and content.
    fn load_element(&mut self, elem: &xmlparse::Element, parent: u32, level: u16) -> Result<u32> {
        let id = self.records.len() as u32;
        let tag = self.tags.intern(&elem.name);
        let start = *self.counter;
        *self.counter += 1;
        self.records.push(NodeRecord {
            tag,
            start,
            end: 0, // patched at exit
            parent,
            level,
            kind: NodeKind::Element,
            content: ContentPtr::NULL,
        });

        // Attributes as leaf nodes.
        for (name, value) in &elem.attributes {
            let attr_tag = self.tags.intern(&attr_tag_name(name));
            let s = *self.counter;
            *self.counter += 1;
            let e = *self.counter;
            *self.counter += 1;
            let content = self.heap.append(value)?;
            if let Some(values) = self.values.as_deref_mut() {
                values.push((self.records.len(), value.clone()));
            }
            self.records.push(NodeRecord {
                tag: attr_tag,
                start: s,
                end: e,
                parent: id,
                level: level + 1,
                kind: NodeKind::Attribute,
                content,
            });
        }

        let has_element_children = elem
            .children
            .iter()
            .any(|c| matches!(c, xmlparse::XmlNode::Element(_)));

        if has_element_children {
            // Mixed or element content: text children become #text nodes.
            for child in &elem.children {
                match child {
                    xmlparse::XmlNode::Element(e) => {
                        self.load_element(e, id, level + 1)?;
                    }
                    xmlparse::XmlNode::Text(t) => {
                        if self.strip_whitespace && t.trim().is_empty() {
                            continue;
                        }
                        let text_tag = self.tags.intern(TEXT_TAG);
                        let s = *self.counter;
                        *self.counter += 1;
                        let e = *self.counter;
                        *self.counter += 1;
                        let content = self.heap.append(t)?;
                        if let Some(values) = self.values.as_deref_mut() {
                            values.push((self.records.len(), t.clone()));
                        }
                        self.records.push(NodeRecord {
                            tag: text_tag,
                            start: s,
                            end: e,
                            parent: id,
                            level: level + 1,
                            kind: NodeKind::Text,
                            content,
                        });
                    }
                    xmlparse::XmlNode::Comment(_) => {}
                }
            }
        } else {
            // Text-only (or empty) content merges into the element.
            let text = elem.text();
            if !(text.is_empty() || (self.strip_whitespace && text.trim().is_empty())) {
                let content = self.heap.append(&text)?;
                self.records[id as usize].content = content;
                if let Some(values) = self.values.as_deref_mut() {
                    values.push((id as usize, text));
                }
            }
        }

        let end = *self.counter;
        *self.counter += 1;
        self.records[id as usize].end = end;
        Ok(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"<bib>
        <article year="1999">
            <title>Querying XML</title>
            <author>Jack</author>
            <author>John</author>
        </article>
        <article>
            <title>Hack HTML</title>
            <author>John</author>
        </article>
    </bib>"#;

    fn store() -> DocumentStore {
        DocumentStore::from_xml(SAMPLE, &StoreOptions::in_memory()).unwrap()
    }

    #[test]
    fn loads_with_doc_root_wrapper() {
        let s = store();
        let root = s.root();
        assert_eq!(root.id, NodeId(0));
        assert_eq!(s.tag_name(s.record(NodeId(0)).unwrap().tag), DOC_ROOT_TAG);
        // doc_root + bib + 2 articles + 1 attr + 2 titles + 3 authors = 10
        assert_eq!(s.node_count(), 10);
    }

    #[test]
    fn tag_index_finds_all_authors() {
        let s = store();
        let author = s.tag_id("author").unwrap();
        let authors = s.nodes_with_tag(author);
        assert_eq!(authors.len(), 3);
        // Index entries are in document order.
        assert!(authors.windows(2).all(|w| w[0].start < w[1].start));
    }

    #[test]
    fn content_of_text_only_element() {
        let s = store();
        let title = s.tag_id("title").unwrap();
        let first = s.nodes_with_tag(title)[0];
        assert_eq!(
            s.content(first.id).unwrap().as_deref(),
            Some("Querying XML")
        );
    }

    #[test]
    fn attribute_stored_as_node() {
        let s = store();
        let year = s.attr_tag_id("year").unwrap();
        let entries = s.nodes_with_tag(year);
        assert_eq!(entries.len(), 1);
        assert_eq!(s.content(entries[0].id).unwrap().as_deref(), Some("1999"));
        let rec = s.record(entries[0].id).unwrap();
        assert_eq!(rec.kind, NodeKind::Attribute);
    }

    #[test]
    fn containment_labels_nest() {
        let s = store();
        let article = s.tag_id("article").unwrap();
        let author = s.tag_id("author").unwrap();
        let articles = s.nodes_with_tag(article);
        let authors = s.nodes_with_tag(author);
        // First article has exactly 2 of the 3 authors.
        let inside = authors
            .iter()
            .filter(|a| articles[0].is_ancestor_of(a))
            .count();
        assert_eq!(inside, 2);
        assert!(articles[0].is_parent_of(&authors[0]));
    }

    #[test]
    fn children_and_subtree_navigation() {
        let s = store();
        let article = s.tag_id("article").unwrap();
        let first = s.nodes_with_tag(article)[0];
        let kids = s.children(first.id).unwrap();
        // year attr + title + 2 authors
        assert_eq!(kids.len(), 4);
        let sub = s.subtree(first.id).unwrap();
        assert_eq!(sub.len(), 5);
        assert_eq!(sub[0], first.id);
    }

    #[test]
    fn parent_navigation() {
        let s = store();
        let title = s.tag_id("title").unwrap();
        let t = s.nodes_with_tag(title)[0];
        let p = s.parent(t.id).unwrap().unwrap();
        let prec = s.record(p).unwrap();
        assert_eq!(s.tag_name(prec.tag), "article");
        assert_eq!(s.parent(NodeId(0)).unwrap(), None);
    }

    #[test]
    fn materialize_roundtrips_article() {
        let s = store();
        let article = s.tag_id("article").unwrap();
        let first = s.nodes_with_tag(article)[0];
        let elem = s.materialize(first.id).unwrap();
        assert_eq!(elem.name, "article");
        assert_eq!(elem.attr("year"), Some("1999"));
        assert_eq!(elem.child("title").unwrap().text(), "Querying XML");
        assert_eq!(elem.children_named("author").count(), 2);
    }

    #[test]
    fn mixed_content_preserved() {
        let xml = "<p>Hello <b>bold</b> world</p>";
        let s = DocumentStore::from_xml(xml, &StoreOptions::in_memory()).unwrap();
        let p = s.tag_id("p").unwrap();
        let node = s.nodes_with_tag(p)[0];
        let elem = s.materialize(node.id).unwrap();
        assert_eq!(elem.deep_text(), "Hello bold world");
        let text_tag = s.tag_id(TEXT_TAG).unwrap();
        assert_eq!(s.nodes_with_tag(text_tag).len(), 2);
    }

    #[test]
    fn io_stats_count_page_traffic() {
        let s = store();
        s.reset_io_stats();
        let title = s.tag_id("title").unwrap();
        let t = s.nodes_with_tag(title)[0];
        // Index access alone: no page requests.
        assert_eq!(s.io_stats().page_requests(), 0);
        let _ = s.content(t.id).unwrap();
        assert!(s.io_stats().page_requests() >= 2); // node page + heap page
    }

    #[test]
    fn on_disk_backend_works() {
        let opts = StoreOptions {
            on_disk: true,
            pool_pages: 8,
            ..StoreOptions::in_memory()
        };
        let s = DocumentStore::from_xml(SAMPLE, &opts).unwrap();
        let author = s.tag_id("author").unwrap();
        let a = s.nodes_with_tag(author)[2];
        assert_eq!(s.content(a.id).unwrap().as_deref(), Some("John"));
        assert!(s.io_stats().disk.reads >= 1);
    }

    #[test]
    fn strip_whitespace_toggle() {
        let xml = "<a> <b/> </a>";
        let stripped = DocumentStore::from_xml(xml, &StoreOptions::in_memory()).unwrap();
        let kept = DocumentStore::from_xml(
            xml,
            &StoreOptions {
                strip_whitespace: false,
                ..StoreOptions::in_memory()
            },
        )
        .unwrap();
        // stripped: doc_root + a + b; kept adds two #text nodes.
        assert_eq!(stripped.node_count(), 3);
        assert_eq!(kept.node_count(), 5);
    }

    #[test]
    fn value_index_built_on_request() {
        let s =
            DocumentStore::from_xml(SAMPLE, &StoreOptions::in_memory().with_value_index()).unwrap();
        let author = s.tag_id("author").unwrap();
        let hits = s.nodes_with_tag_and_content(author, "John").unwrap();
        assert_eq!(hits.len(), 2);
        assert!(s
            .nodes_with_tag_and_content(author, "Nobody")
            .unwrap()
            .is_empty());
        // Attribute values are indexed too (tag @year).
        let year = s.attr_tag_id("year").unwrap();
        assert_eq!(s.nodes_with_tag_and_content(year, "1999").unwrap().len(), 1);
        // Off by default.
        let plain = DocumentStore::from_xml(SAMPLE, &StoreOptions::in_memory()).unwrap();
        assert!(plain.value_index().is_none());
        assert!(plain.nodes_with_tag_and_content(author, "John").is_none());
    }

    #[test]
    fn value_index_lookup_touches_no_pages() {
        let s =
            DocumentStore::from_xml(SAMPLE, &StoreOptions::in_memory().with_value_index()).unwrap();
        s.reset_io_stats();
        let author = s.tag_id("author").unwrap();
        let _ = s.nodes_with_tag_and_content(author, "Jack").unwrap();
        assert_eq!(s.io_stats().page_requests(), 0);
    }

    #[test]
    fn very_long_content_spans_heap_pages() {
        let long_title = "Grouping in XML ".repeat(1200); // ~19 KB > 2 pages
        let xml = format!("<bib><article><title>{long_title}</title></article></bib>");
        let s = DocumentStore::from_xml(&xml, &StoreOptions::in_memory()).unwrap();
        let title = s.tag_id("title").unwrap();
        let t = s.nodes_with_tag(title)[0];
        assert_eq!(
            s.content(t.id).unwrap().as_deref(),
            Some(long_title.as_str())
        );
        // The heap needs at least three pages for this value.
        assert!(s.total_pages() >= 3);
    }

    #[test]
    fn pool_capacity_and_shards_cover_request() {
        let s = store(); // in_memory: 1024 pages
        assert_eq!(s.pool_capacity(), 1024);
        assert_eq!(s.pool_shards(), 8);
        // Tiny pools get fewer shards but never zero-frame ones.
        let tiny =
            DocumentStore::from_xml(SAMPLE, &StoreOptions::in_memory().with_pool_pages(3)).unwrap();
        assert_eq!(tiny.pool_capacity(), 3);
        assert_eq!(tiny.pool_shards(), 3);
    }

    #[test]
    fn concurrent_reads_agree_with_sequential() {
        let mut xml = String::from("<bib>");
        for i in 0..300 {
            xml.push_str(&format!(
                "<article><title>T{i}</title><author>A{}</author></article>",
                i % 7
            ));
        }
        xml.push_str("</bib>");
        // A pool much smaller than the document, so threads contend and
        // evict under each other.
        let s =
            DocumentStore::from_xml(&xml, &StoreOptions::in_memory().with_pool_pages(4)).unwrap();
        let title = s.tag_id("title").unwrap();
        let entries: Vec<NodeEntry> = s.nodes_with_tag(title).to_vec();
        let expected: Vec<String> = entries
            .iter()
            .map(|e| s.content(e.id).unwrap().unwrap())
            .collect();

        let results: Vec<Vec<String>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(|| {
                        entries
                            .iter()
                            .map(|e| s.content(e.id).unwrap().unwrap())
                            .collect()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for r in results {
            assert_eq!(r, expected);
        }
    }

    #[test]
    fn header_cache_serves_repeat_fetches() {
        let s = DocumentStore::from_xml(SAMPLE, &StoreOptions::in_memory().with_header_cache())
            .unwrap();
        assert!(s.header_cache_enabled());
        let title = s.tag_id("title").unwrap();
        let t = s.nodes_with_tag(title)[0];
        s.reset_io_stats();
        let first = s.record(t.id).unwrap();
        let again = s.record(t.id).unwrap();
        assert_eq!(first, again);
        let cs = s.cache_stats();
        assert_eq!(cs.header_misses, 1);
        assert_eq!(cs.header_hits, 1);
        // The repeat fetch never reached the buffer pool.
        assert_eq!(s.io_stats().page_requests(), 1);
    }

    #[test]
    fn header_cache_off_by_default_and_counters_track_tags() {
        let s = store();
        assert!(!s.header_cache_enabled());
        s.reset_io_stats();
        let _ = s.record(NodeId(1)).unwrap();
        let _ = s.record(NodeId(1)).unwrap();
        let cs = s.cache_stats();
        assert_eq!((cs.header_hits, cs.header_misses), (0, 0));
        // Both requests hit the pool instead.
        assert_eq!(s.io_stats().page_requests(), 2);
        let _ = s.tag_id("title");
        let _ = s.tag_id("no_such_tag");
        let cs = s.cache_stats();
        assert_eq!(cs.tag_hits, 1);
        assert_eq!(cs.tag_misses, 1);
    }

    #[test]
    fn clear_buffer_pool_drops_header_cache() {
        let s = DocumentStore::from_xml(SAMPLE, &StoreOptions::in_memory().with_header_cache())
            .unwrap();
        let _ = s.record(NodeId(1)).unwrap();
        s.clear_buffer_pool().unwrap();
        s.reset_io_stats();
        let _ = s.record(NodeId(1)).unwrap();
        // Cold again: the fetch missed the cache and faulted a page.
        assert_eq!(s.cache_stats().header_misses, 1);
        assert_eq!(s.io_stats().buffer.misses, 1);
    }

    #[test]
    fn poisoned_pool_shard_recovers() {
        let s = store();
        let title = s.tag_id("title").unwrap();
        let t = s.nodes_with_tag(title)[0];
        let before = s.content(t.id).unwrap();
        // Panic while holding every shard's lock, poisoning the mutexes.
        for shard in &s.shards {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _guard = shard.lock().unwrap();
                panic!("reader dies while holding the pool lock");
            }));
            assert!(result.is_err());
            assert!(shard.lock().is_err(), "shard must actually be poisoned");
        }
        // The store keeps answering reads identically.
        assert_eq!(s.content(t.id).unwrap(), before);
        assert!(s.io_stats().page_requests() > 0);
        s.clear_buffer_pool().unwrap();
        assert_eq!(s.content(t.id).unwrap(), before);
    }

    #[test]
    fn inject_faults_round_trip() {
        let s = store();
        assert!(s.fault_stats().is_none());
        let cfg: FaultConfig = "seed=9,read_err=1.0".parse().unwrap();
        s.inject_faults(Some(cfg)).unwrap();
        // Every read now fails even after retries, as a typed error.
        let title = s.tag_id("title").unwrap();
        let t = s.nodes_with_tag(title)[0];
        let err = s.content(t.id).unwrap_err();
        assert!(err.is_transient(), "{err}");
        assert!(s.fault_stats().unwrap().read_errors > 0);
        // Disarming restores normal service.
        s.inject_faults(None).unwrap();
        assert!(s.fault_stats().is_none());
        assert_eq!(s.content(t.id).unwrap().as_deref(), Some("Querying XML"));
    }

    #[test]
    fn node_out_of_bounds_error() {
        let s = store();
        assert!(matches!(
            s.record(NodeId(10_000)),
            Err(StoreError::NodeOutOfBounds { .. })
        ));
    }

    #[test]
    fn many_nodes_span_pages() {
        // More than RECORDS_PER_PAGE nodes forces multi-page layout.
        let mut xml = String::from("<bib>");
        for i in 0..300 {
            xml.push_str(&format!("<article><title>T{i}</title></article>"));
        }
        xml.push_str("</bib>");
        let s = DocumentStore::from_xml(&xml, &StoreOptions::in_memory()).unwrap();
        assert_eq!(s.node_count(), 602);
        assert!(s.total_pages() > 2);
        let title = s.tag_id("title").unwrap();
        let last = s.nodes_with_tag(title)[299];
        assert_eq!(s.content(last.id).unwrap().as_deref(), Some("T299"));
    }
}
