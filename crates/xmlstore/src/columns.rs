//! The columnar node-label region: parallel `start[]` / `end[]` /
//! `level[]` / `tag[]` / `kind[]` / `content[]` arrays in global
//! document order, indexed by global [`NodeId`].
//!
//! Node ids are preorder ordinals, so `start[]` is strictly increasing
//! with id (past the synthetic root) and the descendant set of any node
//! is one **contiguous id range** — structural work becomes binary
//! searches and linear scans over dense arrays instead of per-node
//! record fetches through the buffer pool. This is the paper's
//! identifier-only processing (Sec. 5.3) taken to its storage-layout
//! conclusion: the label region is rebuilt from the per-document aux
//! state on every mutation and handed out behind an `Arc`, so scan
//! batches borrow it without copying and keep a consistent snapshot even
//! while the store mutates underneath.

use crate::dict::NO_SYM;
use crate::index::NodeEntry;
use crate::node::{NodeId, NodeKind};

/// The label columns of every visible node, in global id order (row 0 is
/// the synthetic `doc_root`).
#[derive(Debug, Clone, Default)]
pub struct NodeColumns {
    /// Pre-order region starts; strictly increasing for ids ≥ 1.
    pub start: Vec<u32>,
    /// Region ends.
    pub end: Vec<u32>,
    /// Depths (root = 0).
    pub level: Vec<u16>,
    /// Tag symbols (`Sym.0`).
    pub tag: Vec<u32>,
    /// Node kinds.
    pub kind: Vec<NodeKind>,
    /// Content symbols; [`NO_SYM`] when the node has no content.
    pub content: Vec<u32>,
}

impl NodeColumns {
    /// An empty region with room for `n` rows.
    pub fn with_capacity(n: usize) -> Self {
        NodeColumns {
            start: Vec::with_capacity(n),
            end: Vec::with_capacity(n),
            level: Vec::with_capacity(n),
            tag: Vec::with_capacity(n),
            kind: Vec::with_capacity(n),
            content: Vec::with_capacity(n),
        }
    }

    /// Number of rows (== the store's node count).
    pub fn len(&self) -> usize {
        self.start.len()
    }

    /// Whether the region is empty.
    pub fn is_empty(&self) -> bool {
        self.start.is_empty()
    }

    /// Append one row.
    pub fn push(&mut self, start: u32, end: u32, level: u16, tag: u32, kind: NodeKind, content: u32) {
        self.start.push(start);
        self.end.push(end);
        self.level.push(level);
        self.tag.push(tag);
        self.kind.push(kind);
        self.content.push(content);
    }

    /// The index-style entry of row `id`.
    pub fn entry(&self, id: NodeId) -> NodeEntry {
        let i = id.0 as usize;
        NodeEntry {
            id,
            start: self.start[i],
            end: self.end[i],
            level: self.level[i],
        }
    }

    /// The content symbol of row `id`, if it has content.
    pub fn content_sym(&self, id: NodeId) -> Option<u32> {
        match self.content[id.0 as usize] {
            NO_SYM => None,
            s => Some(s),
        }
    }

    /// The contiguous id range of `id`'s proper descendants. Because ids
    /// are preorder ordinals and `start[]` is increasing past the root,
    /// this is a single binary search.
    pub fn descendant_ids(&self, id: NodeId) -> std::ops::Range<u32> {
        let i = id.0 as usize;
        if i == 0 {
            // Every other node descends from the synthetic root.
            return 1..self.len() as u32;
        }
        let end = self.end[i];
        let lo = id.0 + 1;
        // Rows are sorted by start for ids ≥ 1; descendants are exactly
        // the rows whose start precedes our end.
        let hi = lo + self.start[lo as usize..].partition_point(|&s| s < end) as u32;
        lo..hi
    }

    /// The child ids of `id` (all kinds, document order), skipping over
    /// grandchild subtrees via their `end` labels.
    pub fn child_ids(&self, id: NodeId) -> Vec<NodeId> {
        let range = self.descendant_ids(id);
        let mut out = Vec::new();
        let mut j = range.start;
        while j < range.end {
            out.push(NodeId(j));
            // Skip j's own subtree: the next sibling is the first row
            // starting after j's end.
            let next = j + 1
                + self.start[(j + 1) as usize..range.end as usize]
                    .partition_point(|&s| s < self.end[j as usize]) as u32;
            j = next;
        }
        out
    }

    /// The attribute children of element `id`: loading lays them out
    /// immediately after their element, so this is the leading run of
    /// `Attribute` rows one level down.
    pub fn attr_ids(&self, id: NodeId) -> std::ops::Range<u32> {
        let range = self.descendant_ids(id);
        let level = self.level[id.0 as usize] + 1;
        let mut j = range.start;
        while j < range.end
            && self.kind[j as usize] == NodeKind::Attribute
            && self.level[j as usize] == level
        {
            j += 1;
        }
        range.start..j
    }

    /// The value of attribute tag `attr_tag` on element `id`, as a
    /// content symbol — no page access.
    pub fn attr_sym(&self, id: NodeId, attr_tag: u32) -> Option<u32> {
        let attrs = self.attr_ids(id);
        for j in attrs {
            if self.tag[j as usize] == attr_tag {
                return self.content_sym(NodeId(j));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// doc_root > a(@x) > (b, c > d)
    fn cols() -> NodeColumns {
        let mut c = NodeColumns::default();
        //        start end lvl tag kind            content
        c.push(0, 11, 0, 0, NodeKind::Element, NO_SYM); // doc_root
        c.push(1, 10, 1, 1, NodeKind::Element, NO_SYM); // a
        c.push(2, 3, 2, 2, NodeKind::Attribute, 7); // @x
        c.push(4, 5, 2, 3, NodeKind::Element, 8); // b
        c.push(6, 9, 2, 4, NodeKind::Element, NO_SYM); // c
        c.push(7, 8, 3, 5, NodeKind::Element, 9); // d
        c
    }

    #[test]
    fn descendants_are_contiguous() {
        let c = cols();
        assert_eq!(c.descendant_ids(NodeId(0)), 1..6);
        assert_eq!(c.descendant_ids(NodeId(1)), 2..6);
        assert_eq!(c.descendant_ids(NodeId(4)), 5..6);
        assert_eq!(c.descendant_ids(NodeId(5)), 6..6);
    }

    #[test]
    fn children_skip_subtrees() {
        let c = cols();
        let kids: Vec<u32> = c.child_ids(NodeId(1)).iter().map(|n| n.0).collect();
        assert_eq!(kids, [2, 3, 4]);
        let kids: Vec<u32> = c.child_ids(NodeId(4)).iter().map(|n| n.0).collect();
        assert_eq!(kids, [5]);
        assert!(c.child_ids(NodeId(3)).is_empty());
    }

    #[test]
    fn attrs_and_content() {
        let c = cols();
        assert_eq!(c.attr_ids(NodeId(1)), 2..3);
        assert_eq!(c.attr_sym(NodeId(1), 2), Some(7));
        assert_eq!(c.attr_sym(NodeId(1), 9), None);
        assert_eq!(c.content_sym(NodeId(3)), Some(8));
        assert_eq!(c.content_sym(NodeId(1)), None);
        assert_eq!(c.entry(NodeId(4)).end, 9);
    }
}
