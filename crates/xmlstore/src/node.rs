//! Fixed-size node records with `(start, end, level)` containment labels.
//!
//! Every node — element, attribute, or mixed-content text — is one 32-byte
//! record. Records are laid out in document (pre-order) order, so the node
//! id doubles as the pre-order ordinal and a subtree occupies a contiguous
//! id range. The labels implement the containment tests used by the
//! structural-join algorithms the paper builds on (Al-Khalifa et al.,
//! ICDE 2002):
//!
//! * `a` is an ancestor of `d` ⇔ `a.start < d.start && d.end < a.end`
//! * `a` is the parent of `d` ⇔ ancestor test ∧ `d.level == a.level + 1`

use crate::catalog::TagId;
use crate::page::PAGE_DATA_SIZE;

/// Identifier of a node within a document: its pre-order ordinal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Sentinel parent value for the document root.
pub const NO_PARENT: u32 = u32::MAX;

/// Size of one encoded node record in bytes.
pub const RECORD_SIZE: usize = 32;

/// Node records per page: 255 with 8 KB pages, after the 8-byte
/// checksum header claims one record's worth of space (with 24 bytes
/// left over).
pub const RECORDS_PER_PAGE: usize = PAGE_DATA_SIZE / RECORD_SIZE;

const _: () = assert!(RECORDS_PER_PAGE * RECORD_SIZE <= PAGE_DATA_SIZE);

/// What kind of node a record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// An XML element.
    Element,
    /// An attribute (tag is `@name`, content is the value).
    Attribute,
    /// A text node from mixed content (tag is `#text`).
    Text,
}

impl NodeKind {
    fn to_u8(self) -> u8 {
        match self {
            NodeKind::Element => 0,
            NodeKind::Attribute => 1,
            NodeKind::Text => 2,
        }
    }

    fn from_u8(v: u8) -> NodeKind {
        match v {
            0 => NodeKind::Element,
            1 => NodeKind::Attribute,
            _ => NodeKind::Text,
        }
    }
}

/// Pointer into the content heap. `len == 0` means "no content".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ContentPtr {
    /// Page where the content begins.
    pub page: u32,
    /// Byte offset within that page.
    pub off: u16,
    /// Content length in bytes; may span subsequent pages.
    pub len: u32,
}

impl ContentPtr {
    /// The null pointer (no content).
    pub const NULL: ContentPtr = ContentPtr {
        page: 0,
        off: 0,
        len: 0,
    };

    /// Whether this pointer refers to any content.
    pub fn is_some(&self) -> bool {
        self.len > 0
    }
}

/// One stored node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeRecord {
    /// Interned tag.
    pub tag: TagId,
    /// Pre-order region start.
    pub start: u32,
    /// Region end; all descendants have `start` and `end` inside
    /// `(start, end)`.
    pub end: u32,
    /// Parent node id, or [`NO_PARENT`] for the root.
    pub parent: u32,
    /// Depth; the root is level 0.
    pub level: u16,
    /// Element / attribute / text.
    pub kind: NodeKind,
    /// Location of the node's character content, if any.
    pub content: ContentPtr,
}

impl NodeRecord {
    /// Is `self` a (proper) ancestor of `d`?
    pub fn is_ancestor_of(&self, d: &NodeRecord) -> bool {
        self.start < d.start && d.end < self.end
    }

    /// Is `self` the parent of `d`?
    pub fn is_parent_of(&self, d: &NodeRecord) -> bool {
        self.is_ancestor_of(d) && d.level == self.level + 1
    }

    /// Encode into a 32-byte buffer.
    pub fn encode(&self, out: &mut [u8]) {
        debug_assert!(out.len() >= RECORD_SIZE);
        out[0..4].copy_from_slice(&self.tag.0.to_le_bytes());
        out[4..8].copy_from_slice(&self.start.to_le_bytes());
        out[8..12].copy_from_slice(&self.end.to_le_bytes());
        out[12..16].copy_from_slice(&self.parent.to_le_bytes());
        out[16..18].copy_from_slice(&self.level.to_le_bytes());
        out[18] = self.kind.to_u8();
        out[19] = 0; // reserved
        out[20..24].copy_from_slice(&self.content.page.to_le_bytes());
        out[24..26].copy_from_slice(&self.content.off.to_le_bytes());
        out[26..28].copy_from_slice(&0u16.to_le_bytes()); // reserved
        out[28..32].copy_from_slice(&self.content.len.to_le_bytes());
    }

    /// Decode from a 32-byte buffer.
    pub fn decode(buf: &[u8]) -> NodeRecord {
        debug_assert!(buf.len() >= RECORD_SIZE);
        let u32le = |r: std::ops::Range<usize>| {
            u32::from_le_bytes([
                buf[r.start],
                buf[r.start + 1],
                buf[r.start + 2],
                buf[r.start + 3],
            ])
        };
        let u16le =
            |r: std::ops::Range<usize>| u16::from_le_bytes([buf[r.start], buf[r.start + 1]]);
        NodeRecord {
            tag: TagId(u32le(0..4)),
            start: u32le(4..8),
            end: u32le(8..12),
            parent: u32le(12..16),
            level: u16le(16..18),
            kind: NodeKind::from_u8(buf[18]),
            content: ContentPtr {
                page: u32le(20..24),
                off: u16le(24..26),
                len: u32le(28..32),
            },
        }
    }
}

/// Which page and slot hold node `id`, given the first node page.
pub fn node_location(base_page: u32, id: NodeId) -> (u32, usize) {
    let page = base_page + id.0 / RECORDS_PER_PAGE as u32;
    let slot = (id.0 as usize % RECORDS_PER_PAGE) * RECORD_SIZE;
    (page, slot)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(start: u32, end: u32, level: u16) -> NodeRecord {
        NodeRecord {
            tag: TagId(3),
            start,
            end,
            parent: 0,
            level,
            kind: NodeKind::Element,
            content: ContentPtr::NULL,
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let r = NodeRecord {
            tag: TagId(42),
            start: 7,
            end: 90,
            parent: 3,
            level: 5,
            kind: NodeKind::Attribute,
            content: ContentPtr {
                page: 9,
                off: 1000,
                len: 123456,
            },
        };
        let mut buf = [0u8; RECORD_SIZE];
        r.encode(&mut buf);
        assert_eq!(NodeRecord::decode(&buf), r);
    }

    #[test]
    fn records_fit_in_data_region() {
        assert_eq!(RECORDS_PER_PAGE, 255);
    }

    #[test]
    fn containment_tests() {
        let a = rec(1, 10, 1);
        let child = rec(2, 5, 2);
        let grandchild = rec(3, 4, 3);
        let sibling = rec(11, 14, 1);

        assert!(a.is_ancestor_of(&child));
        assert!(a.is_ancestor_of(&grandchild));
        assert!(a.is_parent_of(&child));
        assert!(!a.is_parent_of(&grandchild));
        assert!(!a.is_ancestor_of(&sibling));
        assert!(!child.is_ancestor_of(&a));
        // A node is not its own ancestor.
        assert!(!a.is_ancestor_of(&a));
    }

    #[test]
    fn node_location_math() {
        let per = RECORDS_PER_PAGE as u32;
        assert_eq!(node_location(10, NodeId(0)), (10, 0));
        assert_eq!(node_location(10, NodeId(1)), (10, RECORD_SIZE));
        assert_eq!(node_location(10, NodeId(per)), (11, 0));
        assert_eq!(node_location(10, NodeId(per + 1)), (11, RECORD_SIZE));
    }

    #[test]
    fn kind_roundtrip() {
        for k in [NodeKind::Element, NodeKind::Attribute, NodeKind::Text] {
            assert_eq!(NodeKind::from_u8(k.to_u8()), k);
        }
    }
}
