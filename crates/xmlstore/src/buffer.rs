//! A clock-eviction buffer pool over the disk manager.
//!
//! The paper runs its experiments with a 32 MB pool over a ~100 MB
//! database (Sec. 6), so eviction behaviour matters: the two evaluation
//! plans differ precisely in how many data-page fetches they perform.
//! Accesses are scoped by closures rather than guards, which keeps the
//! pool simple and makes every page touch visible to the hit/miss
//! counters.

use crate::error::{Result, StoreError};
use crate::page::{PageId, PAGE_SIZE};
use crate::storage::{DiskManager, DiskStats, SharedDisk};
use std::collections::HashMap;
use std::sync::MutexGuard;

/// Buffer pool counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Page requests served from the pool.
    pub hits: u64,
    /// Page requests that required a physical read.
    pub misses: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
    /// Dirty pages written back during eviction or flush.
    pub writebacks: u64,
}

struct Frame {
    pid: PageId,
    data: Box<[u8; PAGE_SIZE]>,
    dirty: bool,
    refbit: bool,
    valid: bool,
}

impl Frame {
    fn empty() -> Self {
        Frame {
            pid: PageId(u32::MAX),
            data: vec![0u8; PAGE_SIZE].into_boxed_slice().try_into().unwrap(),
            dirty: false,
            refbit: false,
            valid: false,
        }
    }
}

/// A fixed-capacity page cache with second-chance (clock) replacement.
///
/// The pool does not lock internally; a store that wants concurrent
/// reads runs several pool shards, each behind its own mutex, all over
/// one [`SharedDisk`].
pub struct BufferPool {
    disk: SharedDisk,
    frames: Vec<Frame>,
    table: HashMap<PageId, usize>,
    hand: usize,
    stats: BufferStats,
}

impl BufferPool {
    /// Create a pool of `capacity_pages` frames over `disk`.
    pub fn new(disk: DiskManager, capacity_pages: usize) -> Result<Self> {
        Self::with_shared(SharedDisk::new(disk), capacity_pages)
    }

    /// Create a pool shard over an already-shared disk.
    pub fn with_shared(disk: SharedDisk, capacity_pages: usize) -> Result<Self> {
        if capacity_pages == 0 {
            return Err(StoreError::PoolTooSmall);
        }
        Ok(BufferPool {
            disk,
            frames: (0..capacity_pages).map(|_| Frame::empty()).collect(),
            table: HashMap::with_capacity(capacity_pages),
            hand: 0,
            stats: BufferStats::default(),
        })
    }

    /// Pool capacity in pages.
    pub fn capacity(&self) -> usize {
        self.frames.len()
    }

    /// Buffer counters.
    pub fn stats(&self) -> BufferStats {
        self.stats
    }

    /// Physical I/O counters of the underlying disk manager.
    pub fn disk_stats(&self) -> DiskStats {
        self.disk.stats()
    }

    /// Zero both buffer and disk counters.
    pub fn reset_stats(&mut self) {
        self.stats = BufferStats::default();
        self.disk.reset_stats();
    }

    /// Access to the underlying disk manager (for allocation during load).
    pub fn disk_mut(&mut self) -> MutexGuard<'_, DiskManager> {
        self.disk.lock()
    }

    /// A clone of the shared-disk handle this pool reads through.
    pub fn shared_disk(&self) -> SharedDisk {
        self.disk.clone()
    }

    /// Run `f` over the bytes of page `pid`, faulting it in if necessary.
    pub fn with_page<R>(&mut self, pid: PageId, f: impl FnOnce(&[u8; PAGE_SIZE]) -> R) -> Result<R> {
        let idx = self.fetch(pid)?;
        Ok(f(&self.frames[idx].data))
    }

    /// Run `f` over the mutable bytes of page `pid`, marking it dirty.
    pub fn with_page_mut<R>(
        &mut self,
        pid: PageId,
        f: impl FnOnce(&mut [u8; PAGE_SIZE]) -> R,
    ) -> Result<R> {
        let idx = self.fetch(pid)?;
        self.frames[idx].dirty = true;
        Ok(f(&mut self.frames[idx].data))
    }

    /// Write all dirty frames back to disk.
    pub fn flush_all(&mut self) -> Result<()> {
        for i in 0..self.frames.len() {
            if self.frames[i].valid && self.frames[i].dirty {
                self.disk.lock().write_page(self.frames[i].pid, &self.frames[i].data)?;
                self.frames[i].dirty = false;
                self.stats.writebacks += 1;
            }
        }
        Ok(())
    }

    /// Drop every cached page (flushing dirty ones), emptying the pool.
    /// Used by benchmarks to start measurements cold.
    pub fn clear(&mut self) -> Result<()> {
        self.flush_all()?;
        for f in &mut self.frames {
            f.valid = false;
            f.refbit = false;
        }
        self.table.clear();
        Ok(())
    }

    fn fetch(&mut self, pid: PageId) -> Result<usize> {
        if let Some(&idx) = self.table.get(&pid) {
            self.stats.hits += 1;
            self.frames[idx].refbit = true;
            return Ok(idx);
        }
        self.stats.misses += 1;
        let idx = self.victim()?;
        if self.frames[idx].valid {
            self.table.remove(&self.frames[idx].pid);
            self.stats.evictions += 1;
            if self.frames[idx].dirty {
                let old = self.frames[idx].pid;
                // Split-borrow: copy out the page id before writing back.
                self.disk.lock().write_page(old, &self.frames[idx].data)?;
                self.stats.writebacks += 1;
            }
        }
        self.disk.lock().read_page(pid, &mut self.frames[idx].data)?;
        self.frames[idx].pid = pid;
        self.frames[idx].valid = true;
        self.frames[idx].dirty = false;
        self.frames[idx].refbit = true;
        self.table.insert(pid, idx);
        Ok(idx)
    }

    /// Choose a frame to fill: first invalid frame, else clock scan.
    fn victim(&mut self) -> Result<usize> {
        if let Some(idx) = self.frames.iter().position(|f| !f.valid) {
            return Ok(idx);
        }
        // Second-chance scan; bounded at two full sweeps, after which every
        // refbit is clear and the current hand must be evictable.
        for _ in 0..2 * self.frames.len() + 1 {
            let idx = self.hand;
            self.hand = (self.hand + 1) % self.frames.len();
            if self.frames[idx].refbit {
                self.frames[idx].refbit = false;
            } else {
                return Ok(idx);
            }
        }
        unreachable!("clock scan always terminates");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool_with_pages(capacity: usize, npages: u32) -> BufferPool {
        let mut disk = DiskManager::in_memory();
        for i in 0..npages {
            let pid = disk.allocate().unwrap();
            let mut buf = [0u8; PAGE_SIZE];
            buf[0] = i as u8;
            disk.write_page(pid, &buf).unwrap();
        }
        disk.reset_stats();
        BufferPool::new(disk, capacity).unwrap()
    }

    #[test]
    fn hit_after_miss() {
        let mut pool = pool_with_pages(4, 2);
        let v = pool.with_page(PageId(1), |p| p[0]).unwrap();
        assert_eq!(v, 1);
        pool.with_page(PageId(1), |_| ()).unwrap();
        let s = pool.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 1);
        assert_eq!(pool.disk_stats().reads, 1);
    }

    #[test]
    fn eviction_when_full() {
        let mut pool = pool_with_pages(2, 4);
        for i in 0..4 {
            pool.with_page(PageId(i), |_| ()).unwrap();
        }
        let s = pool.stats();
        assert_eq!(s.misses, 4);
        assert_eq!(s.evictions, 2);
    }

    #[test]
    fn clock_gives_second_chance_to_hot_page() {
        let mut pool = pool_with_pages(3, 5);
        // Fill the pool; all refbits set.
        for i in 0..3 {
            pool.with_page(PageId(i), |_| ()).unwrap();
        }
        // Fault page 3: the sweep clears every refbit, then evicts the
        // frame at the hand (page 0).
        pool.with_page(PageId(3), |_| ()).unwrap();
        // Re-reference page 1: it alone gets a second chance now.
        pool.with_page(PageId(1), |_| ()).unwrap();
        // Fault page 4: the victim must not be page 1.
        pool.with_page(PageId(4), |_| ()).unwrap();
        let before = pool.stats().misses;
        pool.with_page(PageId(1), |_| ()).unwrap();
        assert_eq!(pool.stats().misses, before, "hot page 1 must still be cached");
    }

    #[test]
    fn dirty_pages_written_back_on_eviction() {
        let mut pool = pool_with_pages(1, 2);
        pool.with_page_mut(PageId(0), |p| p[5] = 99).unwrap();
        pool.with_page(PageId(1), |_| ()).unwrap(); // evicts dirty page 0
        assert_eq!(pool.stats().writebacks, 1);
        let v = pool.with_page(PageId(0), |p| p[5]).unwrap();
        assert_eq!(v, 99);
    }

    #[test]
    fn flush_all_persists() {
        let mut pool = pool_with_pages(2, 2);
        pool.with_page_mut(PageId(1), |p| p[7] = 42).unwrap();
        pool.flush_all().unwrap();
        assert_eq!(pool.stats().writebacks, 1);
        // Direct disk read sees the change.
        let mut buf = [0u8; PAGE_SIZE];
        pool.disk_mut().read_page(PageId(1), &mut buf).unwrap();
        assert_eq!(buf[7], 42);
    }

    #[test]
    fn clear_empties_pool() {
        let mut pool = pool_with_pages(2, 2);
        pool.with_page(PageId(0), |_| ()).unwrap();
        pool.clear().unwrap();
        pool.reset_stats();
        pool.with_page(PageId(0), |_| ()).unwrap();
        assert_eq!(pool.stats().misses, 1);
    }

    #[test]
    fn zero_capacity_rejected() {
        let disk = DiskManager::in_memory();
        assert!(matches!(
            BufferPool::new(disk, 0),
            Err(StoreError::PoolTooSmall)
        ));
    }

    #[test]
    fn scan_larger_than_pool_thrashes() {
        // A repeated sequential scan over more pages than the pool holds
        // must miss every time (clock degenerates like LRU here).
        let mut pool = pool_with_pages(3, 6);
        for _ in 0..2 {
            for i in 0..6 {
                pool.with_page(PageId(i), |_| ()).unwrap();
            }
        }
        assert_eq!(pool.stats().hits, 0);
        assert_eq!(pool.stats().misses, 12);
    }
}
