//! A clock-eviction buffer pool over the disk manager.
//!
//! The paper runs its experiments with a 32 MB pool over a ~100 MB
//! database (Sec. 6), so eviction behaviour matters: the two evaluation
//! plans differ precisely in how many data-page fetches they perform.
//! Accesses are scoped by closures rather than guards, which keeps the
//! pool simple and makes every page touch visible to the hit/miss
//! counters.
//!
//! Callers see only the checksummed page's *data region*
//! (`PAGE_DATA_SIZE` bytes); the 8-byte header belongs to the storage
//! layer. Transient faults — interrupted I/O, read-path bit flips caught
//! by the checksum — are retried with exponential backoff before being
//! surfaced, and a failed transfer always leaves the pool in a
//! consistent state (the frame either still holds its old page or is
//! invalid, never a half-installed mapping).

use crate::error::{Result, StoreError};
use crate::page::{self, PageId, PAGE_DATA_SIZE, PAGE_SIZE};
use crate::storage::{DiskManager, DiskStats, SharedDisk};
use crate::wal::WalHandle;
use std::collections::HashMap;
use std::sync::MutexGuard;
use std::time::Duration;

/// Extra attempts after a transient failure before giving up.
const MAX_RETRIES: u32 = 3;

/// Base backoff before the first retry; doubles per attempt.
const BACKOFF: Duration = Duration::from_micros(50);

/// Buffer pool counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Page requests served from the pool.
    pub hits: u64,
    /// Page requests that required a physical read.
    pub misses: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
    /// Dirty pages written back during eviction or flush.
    pub writebacks: u64,
    /// Page transfers retried after a transient fault.
    pub retries: u64,
}

/// Run `op`, retrying transient failures with exponential backoff.
/// Increments `*retries` once per extra attempt.
fn with_retry<T>(retries: &mut u64, mut op: impl FnMut() -> Result<T>) -> Result<T> {
    let mut attempt = 0u32;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if e.is_transient() && attempt < MAX_RETRIES => {
                attempt += 1;
                *retries += 1;
                std::thread::sleep(BACKOFF * 2u32.pow(attempt - 1));
            }
            Err(e) => return Err(e),
        }
    }
}

struct Frame {
    pid: PageId,
    data: Box<[u8; PAGE_SIZE]>,
    dirty: bool,
    refbit: bool,
    valid: bool,
    /// LSN of the log record that justifies this frame's dirty state.
    /// Zero for pages dirtied outside a logged transaction.
    lsn: u64,
}

impl Frame {
    fn empty() -> Self {
        Frame {
            pid: PageId(u32::MAX),
            data: Box::new([0u8; PAGE_SIZE]),
            dirty: false,
            refbit: false,
            valid: false,
            lsn: 0,
        }
    }
}

/// A fixed-capacity page cache with second-chance (clock) replacement.
///
/// The pool does not lock internally; a store that wants concurrent
/// reads runs several pool shards, each behind its own mutex, all over
/// one [`SharedDisk`].
pub struct BufferPool {
    disk: SharedDisk,
    wal: Option<WalHandle>,
    frames: Vec<Frame>,
    table: HashMap<PageId, usize>,
    hand: usize,
    stats: BufferStats,
}

/// Write one frame back to disk, honouring the WAL-before-data rule: if
/// the frame was dirtied by a logged transaction, its page images must
/// be durable before the page itself may be (steal policy).
fn write_back(
    disk: &SharedDisk,
    wal: &Option<WalHandle>,
    retries: &mut u64,
    pid: PageId,
    lsn: u64,
    data: &[u8; PAGE_SIZE],
) -> Result<()> {
    with_retry(retries, || {
        if lsn > 0 {
            if let Some(w) = wal {
                w.lock().flush_to(lsn)?;
            }
        }
        disk.lock().write_page(pid, data)
    })
}

impl BufferPool {
    /// Create a pool of `capacity_pages` frames over `disk`.
    pub fn new(disk: DiskManager, capacity_pages: usize) -> Result<Self> {
        Self::with_shared(SharedDisk::new(disk), capacity_pages)
    }

    /// Create a pool shard over an already-shared disk.
    pub fn with_shared(disk: SharedDisk, capacity_pages: usize) -> Result<Self> {
        if capacity_pages == 0 {
            return Err(StoreError::PoolTooSmall);
        }
        Ok(BufferPool {
            disk,
            wal: None,
            frames: (0..capacity_pages).map(|_| Frame::empty()).collect(),
            table: HashMap::with_capacity(capacity_pages),
            hand: 0,
            stats: BufferStats::default(),
        })
    }

    /// Attach (or detach) the write-ahead log this pool must flush
    /// before writing back frames dirtied by logged transactions.
    pub fn set_wal(&mut self, wal: Option<WalHandle>) {
        self.wal = wal;
    }

    /// Pool capacity in pages.
    pub fn capacity(&self) -> usize {
        self.frames.len()
    }

    /// Buffer counters.
    pub fn stats(&self) -> BufferStats {
        self.stats
    }

    /// Physical I/O counters of the underlying disk manager.
    pub fn disk_stats(&self) -> DiskStats {
        self.disk.stats()
    }

    /// Zero both buffer and disk counters.
    pub fn reset_stats(&mut self) {
        self.stats = BufferStats::default();
        self.disk.reset_stats();
    }

    /// Access to the underlying disk manager (for allocation during load).
    pub fn disk_mut(&mut self) -> MutexGuard<'_, DiskManager> {
        self.disk.lock()
    }

    /// A clone of the shared-disk handle this pool reads through.
    pub fn shared_disk(&self) -> SharedDisk {
        self.disk.clone()
    }

    /// Run `f` over the data region of page `pid`, faulting it in if
    /// necessary.
    pub fn with_page<R>(
        &mut self,
        pid: PageId,
        f: impl FnOnce(&[u8; PAGE_DATA_SIZE]) -> R,
    ) -> Result<R> {
        let idx = self.fetch(pid)?;
        Ok(f(page::data(&self.frames[idx].data)))
    }

    /// Run `f` over the mutable data region of page `pid`, marking it
    /// dirty.
    pub fn with_page_mut<R>(
        &mut self,
        pid: PageId,
        f: impl FnOnce(&mut [u8; PAGE_DATA_SIZE]) -> R,
    ) -> Result<R> {
        let idx = self.fetch(pid)?;
        self.frames[idx].dirty = true;
        Ok(f(page::data_mut(&mut self.frames[idx].data)))
    }

    /// Install a full page image into the pool without reading the old
    /// contents from disk, marking the frame dirty. This is the logged
    /// write path: the caller has already appended the matching
    /// `PageImage` record at `lsn`, and the frame remembers that LSN so
    /// eviction flushes the log first (steal). The image's header LSN
    /// bytes are stamped here.
    pub fn write_page_image(
        &mut self,
        pid: PageId,
        lsn: u64,
        data: &[u8; PAGE_SIZE],
    ) -> Result<()> {
        let idx = match self.table.get(&pid) {
            Some(&idx) => idx,
            None => {
                let idx = self.evict_for(pid)?;
                self.frames[idx].pid = pid;
                self.frames[idx].valid = true;
                self.table.insert(pid, idx);
                idx
            }
        };
        *self.frames[idx].data = *data;
        page::set_lsn(&mut self.frames[idx].data, lsn);
        self.frames[idx].dirty = true;
        self.frames[idx].refbit = true;
        self.frames[idx].lsn = lsn;
        Ok(())
    }

    /// Write all dirty frames back to disk.
    pub fn flush_all(&mut self) -> Result<()> {
        let mut retries = 0;
        for i in 0..self.frames.len() {
            if self.frames[i].valid && self.frames[i].dirty {
                let f = &self.frames[i];
                let res = write_back(&self.disk, &self.wal, &mut retries, f.pid, f.lsn, &f.data);
                self.stats.retries += std::mem::take(&mut retries);
                res?;
                self.frames[i].dirty = false;
                self.frames[i].lsn = 0;
                self.stats.writebacks += 1;
            }
        }
        Ok(())
    }

    /// Drop every cached page (flushing dirty ones), emptying the pool.
    /// Used by benchmarks to start measurements cold.
    pub fn clear(&mut self) -> Result<()> {
        self.flush_all()?;
        for f in &mut self.frames {
            f.valid = false;
            f.refbit = false;
        }
        self.table.clear();
        Ok(())
    }

    fn fetch(&mut self, pid: PageId) -> Result<usize> {
        if let Some(&idx) = self.table.get(&pid) {
            self.stats.hits += 1;
            self.frames[idx].refbit = true;
            return Ok(idx);
        }
        self.stats.misses += 1;
        let idx = self.evict_for(pid)?;
        let mut retries = 0;
        let res = with_retry(&mut retries, || {
            self.disk.lock().read_page(pid, &mut self.frames[idx].data)
        });
        self.stats.retries += retries;
        // On failure the frame is already invalid and unmapped.
        res?;
        self.frames[idx].pid = pid;
        self.frames[idx].valid = true;
        self.frames[idx].dirty = false;
        self.frames[idx].refbit = true;
        self.frames[idx].lsn = 0;
        self.table.insert(pid, idx);
        Ok(idx)
    }

    /// Pick a victim frame and make it free (writing back its dirty
    /// contents first). On return the frame is invalid and unmapped.
    fn evict_for(&mut self, _incoming: PageId) -> Result<usize> {
        let idx = self.victim()?;
        let mut retries = 0;
        if self.frames[idx].valid {
            if self.frames[idx].dirty {
                let f = &self.frames[idx];
                let res = write_back(&self.disk, &self.wal, &mut retries, f.pid, f.lsn, &f.data);
                self.stats.retries += std::mem::take(&mut retries);
                // On failure the frame still holds its (dirty) page and
                // the table still maps it: nothing was lost.
                res?;
                self.frames[idx].dirty = false;
                self.frames[idx].lsn = 0;
                self.stats.writebacks += 1;
            }
            // Unmap only once the old contents are safe on disk.
            self.table.remove(&self.frames[idx].pid);
            self.frames[idx].valid = false;
            self.stats.evictions += 1;
        }
        Ok(idx)
    }

    /// Choose a frame to fill: first invalid frame, else clock scan.
    fn victim(&mut self) -> Result<usize> {
        if let Some(idx) = self.frames.iter().position(|f| !f.valid) {
            return Ok(idx);
        }
        // Second-chance scan; bounded at two full sweeps, after which every
        // refbit is clear and the current hand must be evictable.
        for _ in 0..2 * self.frames.len() + 1 {
            let idx = self.hand;
            self.hand = (self.hand + 1) % self.frames.len();
            if self.frames[idx].refbit {
                self.frames[idx].refbit = false;
            } else {
                return Ok(idx);
            }
        }
        unreachable!("clock scan always terminates");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultConfig, FaultInjector};
    use crate::page::PAGE_HEADER_SIZE;

    fn pool_with_pages(capacity: usize, npages: u32) -> BufferPool {
        let mut disk = DiskManager::in_memory();
        for i in 0..npages {
            let pid = disk.allocate().unwrap();
            let mut buf = [0u8; PAGE_SIZE];
            buf[PAGE_HEADER_SIZE] = i as u8;
            disk.write_page(pid, &buf).unwrap();
        }
        disk.reset_stats();
        BufferPool::new(disk, capacity).unwrap()
    }

    #[test]
    fn hit_after_miss() {
        let mut pool = pool_with_pages(4, 2);
        let v = pool.with_page(PageId(1), |p| p[0]).unwrap();
        assert_eq!(v, 1);
        pool.with_page(PageId(1), |_| ()).unwrap();
        let s = pool.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 1);
        assert_eq!(pool.disk_stats().reads, 1);
    }

    #[test]
    fn eviction_when_full() {
        let mut pool = pool_with_pages(2, 4);
        for i in 0..4 {
            pool.with_page(PageId(i), |_| ()).unwrap();
        }
        let s = pool.stats();
        assert_eq!(s.misses, 4);
        assert_eq!(s.evictions, 2);
    }

    #[test]
    fn clock_gives_second_chance_to_hot_page() {
        let mut pool = pool_with_pages(3, 5);
        // Fill the pool; all refbits set.
        for i in 0..3 {
            pool.with_page(PageId(i), |_| ()).unwrap();
        }
        // Fault page 3: the sweep clears every refbit, then evicts the
        // frame at the hand (page 0).
        pool.with_page(PageId(3), |_| ()).unwrap();
        // Re-reference page 1: it alone gets a second chance now.
        pool.with_page(PageId(1), |_| ()).unwrap();
        // Fault page 4: the victim must not be page 1.
        pool.with_page(PageId(4), |_| ()).unwrap();
        let before = pool.stats().misses;
        pool.with_page(PageId(1), |_| ()).unwrap();
        assert_eq!(
            pool.stats().misses,
            before,
            "hot page 1 must still be cached"
        );
    }

    #[test]
    fn dirty_pages_written_back_on_eviction() {
        let mut pool = pool_with_pages(1, 2);
        pool.with_page_mut(PageId(0), |p| p[5] = 99).unwrap();
        pool.with_page(PageId(1), |_| ()).unwrap(); // evicts dirty page 0
        assert_eq!(pool.stats().writebacks, 1);
        let v = pool.with_page(PageId(0), |p| p[5]).unwrap();
        assert_eq!(v, 99);
    }

    #[test]
    fn flush_all_persists() {
        let mut pool = pool_with_pages(2, 2);
        pool.with_page_mut(PageId(1), |p| p[7] = 42).unwrap();
        pool.flush_all().unwrap();
        assert_eq!(pool.stats().writebacks, 1);
        // Direct disk read sees the change in the data region.
        let mut buf = [0u8; PAGE_SIZE];
        pool.disk_mut().read_page(PageId(1), &mut buf).unwrap();
        assert_eq!(buf[PAGE_HEADER_SIZE + 7], 42);
    }

    #[test]
    fn clear_empties_pool() {
        let mut pool = pool_with_pages(2, 2);
        pool.with_page(PageId(0), |_| ()).unwrap();
        pool.clear().unwrap();
        pool.reset_stats();
        pool.with_page(PageId(0), |_| ()).unwrap();
        assert_eq!(pool.stats().misses, 1);
    }

    #[test]
    fn zero_capacity_rejected() {
        let disk = DiskManager::in_memory();
        assert!(matches!(
            BufferPool::new(disk, 0),
            Err(StoreError::PoolTooSmall)
        ));
    }

    #[test]
    fn scan_larger_than_pool_thrashes() {
        // A repeated sequential scan over more pages than the pool holds
        // must miss every time (clock degenerates like LRU here).
        let mut pool = pool_with_pages(3, 6);
        for _ in 0..2 {
            for i in 0..6 {
                pool.with_page(PageId(i), |_| ()).unwrap();
            }
        }
        assert_eq!(pool.stats().hits, 0);
        assert_eq!(pool.stats().misses, 12);
    }

    #[test]
    fn transient_read_errors_absorbed_by_retry() {
        let mut pool = pool_with_pages(2, 4);
        pool.shared_disk()
            .set_fault_injector(Some(FaultInjector::new(
                FaultConfig::seeded(11).with_read_error(0.3),
            )));
        // Deterministic schedule (seed 11): every fetch succeeds within
        // the retry budget.
        for round in 0..5 {
            for i in 0..4 {
                let v = pool.with_page(PageId(i), |p| p[0]).unwrap();
                assert_eq!(v, i as u8, "round {round}");
            }
        }
        assert!(pool.stats().retries > 0, "schedule must exercise retries");
    }

    #[test]
    fn persistent_corruption_exhausts_retries() {
        let mut pool = pool_with_pages(2, 2);
        pool.disk_mut()
            .poke_byte(PageId(0), PAGE_HEADER_SIZE + 3, 0xFF)
            .unwrap();
        let err = pool.with_page(PageId(0), |_| ()).unwrap_err();
        assert!(matches!(err, StoreError::Corruption { page: 0, .. }));
        assert_eq!(pool.stats().retries, MAX_RETRIES as u64);
        // The pool is still usable for healthy pages afterwards...
        pool.with_page(PageId(1), |p| assert_eq!(p[0], 1)).unwrap();
        // ...and the damaged page recovers once the damage is undone.
        pool.disk_mut()
            .poke_byte(PageId(0), PAGE_HEADER_SIZE + 3, 0xFF)
            .unwrap();
        pool.with_page(PageId(0), |p| assert_eq!(p[0], 0)).unwrap();
    }

    #[test]
    fn failed_writeback_keeps_dirty_page_mapped() {
        let mut pool = pool_with_pages(1, 2);
        pool.with_page_mut(PageId(0), |p| p[5] = 99).unwrap();
        // Every write fails: evicting the dirty page must error out
        // without losing it.
        pool.shared_disk()
            .set_fault_injector(Some(FaultInjector::new(
                FaultConfig::seeded(1).with_write_error(1.0),
            )));
        let err = pool.with_page(PageId(1), |_| ()).unwrap_err();
        assert!(err.is_transient());
        pool.shared_disk().set_fault_injector(None);
        // The dirty page is still cached with its modification.
        let s = pool.stats();
        let v = pool.with_page(PageId(0), |p| p[5]).unwrap();
        assert_eq!(v, 99);
        assert_eq!(pool.stats().hits, s.hits + 1, "page 0 must still be a hit");
        // And eviction works again once writes heal.
        pool.with_page(PageId(1), |_| ()).unwrap();
        let v = pool.with_page(PageId(0), |p| p[5]).unwrap();
        assert_eq!(v, 99);
    }
}
