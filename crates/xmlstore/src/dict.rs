//! The store dictionary: one interning namespace for tag names *and*
//! content values.
//!
//! The paper's Sec. 5.3 "identifier processing" has operators circulate
//! node labels instead of data; the dictionary takes that to its logical
//! end for the values themselves. Every string the store knows — element
//! tags, `@name` attribute tags, `#text`, attribute values, element
//! content — is interned once into a [`Sym`] (a dense `u32`), so the
//! layers above compare, hash, and route grouping keys on fixed-width
//! integers and resolve back to text only at serialization.
//!
//! Interning is concurrent: queries intern constructed tags and computed
//! values through `&self` (a read-lock fast path for already-known
//! strings, a write lock only for genuinely new ones), so a shared
//! `&DocumentStore` works across threads. Symbols are append-only and
//! never reused; `resolve` hands back an `Arc<str>` clone of the interned
//! string, which keeps the lock scope to the lookup itself.
//!
//! Persistence: the full name table (in symbol order) is snapshotted into
//! [`StoreMeta`](crate::document) and travels in every WAL commit and
//! checkpoint record, so crash recovery re-interns the identical
//! `name → Sym` assignment that the crashed process used — the numeric
//! tags and content symbols on the pages stay valid across reopen.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

/// An interned string handle: index into the dictionary's name table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub u32);

/// The sentinel used by columnar content arrays for "no content". Never
/// handed out by [`Dictionary::intern`].
pub const NO_SYM: u32 = u32::MAX;

#[derive(Debug, Default)]
struct DictInner {
    names: Vec<Arc<str>>,
    ids: HashMap<Arc<str>, u32>,
}

/// A concurrent two-way mapping between strings and [`Sym`]s.
#[derive(Debug, Default)]
pub struct Dictionary {
    inner: RwLock<DictInner>,
}

fn read(d: &Dictionary) -> std::sync::RwLockReadGuard<'_, DictInner> {
    // Poisoning only means a reader panicked; the map is append-only and
    // updated atomically under the write lock, so it is always coherent.
    d.inner.read().unwrap_or_else(|e| e.into_inner())
}

fn write(d: &Dictionary) -> std::sync::RwLockWriteGuard<'_, DictInner> {
    d.inner.write().unwrap_or_else(|e| e.into_inner())
}

impl Dictionary {
    /// An empty dictionary.
    pub fn new() -> Self {
        Dictionary::default()
    }

    /// Rebuild a dictionary from a metadata snapshot: `names[i]` becomes
    /// `Sym(i)`, reproducing the exact assignment of the session that
    /// wrote the snapshot.
    pub fn from_names<S: AsRef<str>>(names: &[S]) -> Self {
        let d = Dictionary::new();
        {
            let mut inner = write(&d);
            for name in names {
                let name: Arc<str> = Arc::from(name.as_ref());
                let id = inner.names.len() as u32;
                inner.names.push(Arc::clone(&name));
                inner.ids.insert(name, id);
            }
        }
        d
    }

    /// Intern `name`, returning its symbol (existing or fresh).
    pub fn intern(&self, name: &str) -> Sym {
        if let Some(&id) = read(self).ids.get(name) {
            return Sym(id);
        }
        let mut inner = write(self);
        // Re-check: another thread may have interned it between locks.
        if let Some(&id) = inner.ids.get(name) {
            return Sym(id);
        }
        let id = inner.names.len() as u32;
        let name: Arc<str> = Arc::from(name);
        inner.names.push(Arc::clone(&name));
        inner.ids.insert(name, id);
        Sym(id)
    }

    /// Look up an already-interned name.
    pub fn get(&self, name: &str) -> Option<Sym> {
        read(self).ids.get(name).map(|&id| Sym(id))
    }

    /// The string for `sym`. Panics on a symbol not produced by this
    /// dictionary (a logic error, not an I/O condition).
    pub fn resolve(&self, sym: Sym) -> Arc<str> {
        Arc::clone(&read(self).names[sym.0 as usize])
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        read(self).names.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        read(self).names.is_empty()
    }

    /// The full name table in symbol order — the durable snapshot stored
    /// in the metadata record.
    pub fn snapshot(&self) -> Vec<String> {
        read(self).names.iter().map(|n| n.to_string()).collect()
    }
}

impl Clone for Dictionary {
    fn clone(&self) -> Self {
        let inner = read(self);
        Dictionary::from_names(&inner.names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let d = Dictionary::new();
        let a = d.intern("article");
        let b = d.intern("author");
        let a2 = d.intern("article");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn resolve_roundtrip() {
        let d = Dictionary::new();
        let id = d.intern("title");
        assert_eq!(&*d.resolve(id), "title");
        assert_eq!(d.get("title"), Some(id));
        assert_eq!(d.get("missing"), None);
    }

    #[test]
    fn snapshot_restores_assignment() {
        let d = Dictionary::new();
        let a = d.intern("a");
        let v = d.intern("some value");
        let snap = d.snapshot();
        let d2 = Dictionary::from_names(&snap);
        assert_eq!(d2.get("a"), Some(a));
        assert_eq!(d2.get("some value"), Some(v));
        assert_eq!(d2.len(), d.len());
        // Re-interning after restore continues the sequence.
        assert_eq!(d2.intern("fresh").0, snap.len() as u32);
    }

    #[test]
    fn tags_and_values_share_one_namespace() {
        let d = Dictionary::new();
        let tag = d.intern("year");
        let attr = d.intern("@year");
        let value = d.intern("1999");
        assert_ne!(tag, attr);
        assert_ne!(tag, value);
        // A value equal to a tag name harmlessly shares the symbol.
        assert_eq!(d.intern("year"), tag);
    }

    #[test]
    fn concurrent_intern_agrees() {
        let d = std::sync::Arc::new(Dictionary::new());
        let names: Vec<String> = (0..64).map(|i| format!("tag{}", i % 16)).collect();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let d = std::sync::Arc::clone(&d);
            let names = names.clone();
            handles.push(std::thread::spawn(move || {
                names.iter().map(|n| d.intern(n)).collect::<Vec<_>>()
            }));
        }
        let first = handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect::<Vec<_>>();
        assert!(first.iter().all(|syms| syms == &first[0]));
        assert_eq!(d.len(), 16);
    }
}
