//! The disk manager: a linear file of fixed-size pages, with physical
//! I/O accounting. Stands in for Shore's volume manager.

use crate::error::{Result, StoreError};
use crate::page::{PageId, PAGE_SIZE};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Running counters of physical page I/O.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Pages read from the backing store.
    pub reads: u64,
    /// Pages written to the backing store.
    pub writes: u64,
}

enum Backend {
    /// A real file. The `bool` says whether to delete it on drop.
    File { file: File, path: PathBuf, temp: bool },
    /// In-memory pages (for tests and small examples).
    Mem(Vec<Box<[u8]>>),
}

/// A linear page file.
pub struct DiskManager {
    backend: Backend,
    num_pages: u32,
    reads: u64,
    writes: u64,
}

static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

impl DiskManager {
    /// An in-memory page store.
    pub fn in_memory() -> Self {
        DiskManager {
            backend: Backend::Mem(Vec::new()),
            num_pages: 0,
            reads: 0,
            writes: 0,
        }
    }

    /// A page store backed by a fresh temporary file, removed on drop.
    pub fn temp_file() -> Result<Self> {
        let n = TEMP_COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "xmlstore-{}-{}.pages",
            std::process::id(),
            n
        ));
        Self::open(&path, true)
    }

    /// A page store backed by the named file (truncated), kept on drop.
    pub fn create_at(path: &Path) -> Result<Self> {
        Self::open(path, false)
    }

    fn open(path: &Path, temp: bool) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(DiskManager {
            backend: Backend::File {
                file,
                path: path.to_owned(),
                temp,
            },
            num_pages: 0,
            reads: 0,
            writes: 0,
        })
    }

    /// Number of allocated pages.
    pub fn num_pages(&self) -> u32 {
        self.num_pages
    }

    /// Physical I/O counters.
    pub fn stats(&self) -> DiskStats {
        DiskStats {
            reads: self.reads,
            writes: self.writes,
        }
    }

    /// Zero the I/O counters.
    pub fn reset_stats(&mut self) {
        self.reads = 0;
        self.writes = 0;
    }

    /// Allocate a new zeroed page at the end of the file.
    pub fn allocate(&mut self) -> Result<PageId> {
        let pid = PageId(self.num_pages);
        self.num_pages += 1;
        match &mut self.backend {
            Backend::Mem(pages) => pages.push(vec![0u8; PAGE_SIZE].into_boxed_slice()),
            Backend::File { file, .. } => {
                // Extend the file so later reads are valid.
                file.seek(SeekFrom::Start(pid.byte_offset()))?;
                file.write_all(&[0u8; PAGE_SIZE])?;
            }
        }
        Ok(pid)
    }

    /// Read page `pid` into `buf`.
    pub fn read_page(&mut self, pid: PageId, buf: &mut [u8; PAGE_SIZE]) -> Result<()> {
        self.check(pid)?;
        self.reads += 1;
        match &mut self.backend {
            Backend::Mem(pages) => buf.copy_from_slice(&pages[pid.0 as usize]),
            Backend::File { file, .. } => {
                file.seek(SeekFrom::Start(pid.byte_offset()))?;
                file.read_exact(buf)?;
            }
        }
        Ok(())
    }

    /// Write `buf` to page `pid`.
    pub fn write_page(&mut self, pid: PageId, buf: &[u8; PAGE_SIZE]) -> Result<()> {
        self.check(pid)?;
        self.writes += 1;
        match &mut self.backend {
            Backend::Mem(pages) => pages[pid.0 as usize].copy_from_slice(buf),
            Backend::File { file, .. } => {
                file.seek(SeekFrom::Start(pid.byte_offset()))?;
                file.write_all(buf)?;
            }
        }
        Ok(())
    }

    fn check(&self, pid: PageId) -> Result<()> {
        if pid.0 >= self.num_pages {
            Err(StoreError::PageOutOfBounds {
                page: pid.0,
                num_pages: self.num_pages,
            })
        } else {
            Ok(())
        }
    }
}

/// A cloneable, thread-safe handle to one [`DiskManager`].
///
/// The buffer-pool shards of a store each hold a clone; the mutex is
/// taken only for the duration of a single page transfer, so shards
/// faulting different pages serialize on physical I/O but nothing else.
#[derive(Clone)]
pub struct SharedDisk(Arc<Mutex<DiskManager>>);

impl SharedDisk {
    /// Wrap a disk manager for shared use.
    pub fn new(disk: DiskManager) -> Self {
        SharedDisk(Arc::new(Mutex::new(disk)))
    }

    /// Exclusive access for a sequence of operations (allocation during
    /// load, direct reads in tests).
    pub fn lock(&self) -> MutexGuard<'_, DiskManager> {
        // Poisoning carries no meaning here: the manager holds no
        // invariants a panicked page transfer could break.
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Physical I/O counters.
    pub fn stats(&self) -> DiskStats {
        self.lock().stats()
    }

    /// Zero the I/O counters.
    pub fn reset_stats(&self) {
        self.lock().reset_stats();
    }

    /// Number of allocated pages.
    pub fn num_pages(&self) -> u32 {
        self.lock().num_pages()
    }
}

impl Drop for DiskManager {
    fn drop(&mut self) {
        if let Backend::File { path, temp: true, .. } = &self.backend {
            let _ = std::fs::remove_file(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(mut dm: DiskManager) {
        let a = dm.allocate().unwrap();
        let b = dm.allocate().unwrap();
        assert_eq!(a, PageId(0));
        assert_eq!(b, PageId(1));

        let mut page = [0u8; PAGE_SIZE];
        page[0] = 0xAB;
        page[PAGE_SIZE - 1] = 0xCD;
        dm.write_page(b, &page).unwrap();

        let mut out = [0u8; PAGE_SIZE];
        dm.read_page(b, &mut out).unwrap();
        assert_eq!(out[0], 0xAB);
        assert_eq!(out[PAGE_SIZE - 1], 0xCD);

        dm.read_page(a, &mut out).unwrap();
        assert!(out.iter().all(|&x| x == 0));

        let stats = dm.stats();
        assert_eq!(stats.reads, 2);
        assert_eq!(stats.writes, 1);
    }

    #[test]
    fn mem_roundtrip() {
        roundtrip(DiskManager::in_memory());
    }

    #[test]
    fn file_roundtrip() {
        roundtrip(DiskManager::temp_file().unwrap());
    }

    #[test]
    fn out_of_bounds_read_rejected() {
        let mut dm = DiskManager::in_memory();
        let mut buf = [0u8; PAGE_SIZE];
        assert!(matches!(
            dm.read_page(PageId(0), &mut buf),
            Err(StoreError::PageOutOfBounds { .. })
        ));
    }

    #[test]
    fn temp_file_removed_on_drop() {
        let dm = DiskManager::temp_file().unwrap();
        let path = match &dm.backend {
            Backend::File { path, .. } => path.clone(),
            _ => unreachable!(),
        };
        assert!(path.exists());
        drop(dm);
        assert!(!path.exists());
    }

    #[test]
    fn reset_stats_zeroes() {
        let mut dm = DiskManager::in_memory();
        let p = dm.allocate().unwrap();
        let buf = [0u8; PAGE_SIZE];
        dm.write_page(p, &buf).unwrap();
        dm.reset_stats();
        assert_eq!(dm.stats(), DiskStats::default());
    }
}
