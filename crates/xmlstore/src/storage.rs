//! The disk manager: a linear file of fixed-size pages, with physical
//! I/O accounting. Stands in for Shore's volume manager.
//!
//! Every page image crossing this layer carries the checksum header from
//! [`crate::page`]: `write_page` seals a private copy of the caller's
//! buffer (so all writers get checksums, whatever bytes they left in the
//! header region), and `read_page` verifies the image it hands back,
//! surfacing damage as [`StoreError::Corruption`]. An optional
//! [`FaultInjector`] sits between the checksum logic and the physical
//! backend, corrupting traffic deterministically for the crash-recovery
//! suites.

use crate::error::{Result, StoreError};
use crate::fault::{FaultInjector, FaultStats, LogFault, ReadFault, WriteFault};
use crate::page::{self, PageId, PAGE_SIZE};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Running counters of physical page I/O.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Pages read from the backing store.
    pub reads: u64,
    /// Pages written to the backing store.
    pub writes: u64,
}

enum Backend {
    /// A real file. The `bool` says whether to delete it on drop.
    File {
        file: File,
        path: PathBuf,
        temp: bool,
    },
    /// In-memory pages (for tests and small examples).
    Mem(Vec<Box<[u8]>>),
}

impl Backend {
    /// Persist the first `len` bytes of `buf` at page `pid` (the tail of
    /// the page keeps whatever it held before — how a torn write looks).
    fn write_prefix(&mut self, pid: PageId, buf: &[u8; PAGE_SIZE], len: usize) -> Result<()> {
        match self {
            Backend::Mem(pages) => pages[pid.0 as usize][..len].copy_from_slice(&buf[..len]),
            Backend::File { file, .. } => {
                file.seek(SeekFrom::Start(pid.byte_offset()))?;
                file.write_all(&buf[..len])?;
            }
        }
        Ok(())
    }
}

/// A linear page file.
pub struct DiskManager {
    backend: Backend,
    num_pages: u32,
    reads: u64,
    writes: u64,
    fault: Option<FaultInjector>,
}

static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

fn transient_io(what: &str, pid: PageId) -> StoreError {
    StoreError::Io(std::io::Error::new(
        std::io::ErrorKind::Interrupted,
        format!("injected transient {what} error on page {}", pid.0),
    ))
}

impl DiskManager {
    /// An in-memory page store.
    pub fn in_memory() -> Self {
        DiskManager {
            backend: Backend::Mem(Vec::new()),
            num_pages: 0,
            reads: 0,
            writes: 0,
            fault: None,
        }
    }

    /// A page store backed by a fresh temporary file, removed on drop.
    pub fn temp_file() -> Result<Self> {
        let n = TEMP_COUNTER.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("xmlstore-{}-{}.pages", std::process::id(), n));
        Self::open(&path, true)
    }

    /// A page store backed by the named file (truncated), kept on drop.
    pub fn create_at(path: &Path) -> Result<Self> {
        Self::open(path, false)
    }

    /// Reopen an existing page file without truncating it; the page count
    /// comes from the file length (a torn final page — a crash mid-extend
    /// — is rounded down and will be re-extended by recovery).
    pub fn open_existing(path: &Path) -> Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let num_pages = (file.metadata()?.len() / PAGE_SIZE as u64) as u32;
        Ok(DiskManager {
            backend: Backend::File {
                file,
                path: path.to_owned(),
                temp: false,
            },
            num_pages,
            reads: 0,
            writes: 0,
            fault: None,
        })
    }

    fn open(path: &Path, temp: bool) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(DiskManager {
            backend: Backend::File {
                file,
                path: path.to_owned(),
                temp,
            },
            num_pages: 0,
            reads: 0,
            writes: 0,
            fault: None,
        })
    }

    /// Number of allocated pages.
    pub fn num_pages(&self) -> u32 {
        self.num_pages
    }

    /// Physical I/O counters.
    pub fn stats(&self) -> DiskStats {
        DiskStats {
            reads: self.reads,
            writes: self.writes,
        }
    }

    /// Zero the I/O counters.
    pub fn reset_stats(&mut self) {
        self.reads = 0;
        self.writes = 0;
    }

    /// Install (or with `None`, remove) a fault injector. Subsequent
    /// reads and writes consult it; allocation never does, so freshly
    /// allocated pages always start validly sealed.
    pub fn set_fault_injector(&mut self, injector: Option<FaultInjector>) {
        self.fault = injector;
    }

    /// Counters from the installed injector, if any.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.fault.as_ref().map(FaultInjector::stats)
    }

    /// Has the installed injector's `crash=N` kill point fired?
    pub fn crashed(&self) -> bool {
        self.fault.as_ref().is_some_and(FaultInjector::crashed)
    }

    /// Consult the injector about a write-ahead-log flush of `pending`
    /// bytes. The WAL shares the disk's injector so that `crash=N`
    /// schedules count page writes and log flushes on one clock.
    pub fn on_log_write(&mut self, pending: usize) -> LogFault {
        match &mut self.fault {
            Some(inj) => inj.on_log_write(pending),
            None => LogFault::None,
        }
    }

    /// Flush the backing file's buffers to stable storage (no-op for the
    /// in-memory backend). Fails once the simulated machine has crashed.
    pub fn sync(&mut self) -> Result<()> {
        if self.crashed() {
            return Err(StoreError::SimulatedCrash);
        }
        if let Backend::File { file, .. } = &mut self.backend {
            // `sync_data` (fdatasync) persists the page bytes and the
            // file size needed to read them back, skipping the metadata
            // journal flush `sync_all` pays — reads depend on nothing
            // else, and the difference is measurable on bulk loads.
            file.sync_data()?;
        }
        Ok(())
    }

    /// Allocate a new sealed, zero-data page at the end of the file.
    pub fn allocate(&mut self) -> Result<PageId> {
        if self.crashed() {
            return Err(StoreError::SimulatedCrash);
        }
        let pid = PageId(self.num_pages);
        let mut image = [0u8; PAGE_SIZE];
        page::seal(pid, &mut image);
        match &mut self.backend {
            Backend::Mem(pages) => pages.push(Box::from(&image[..])),
            Backend::File { file, .. } => {
                // Extend the file so later reads are valid.
                file.seek(SeekFrom::Start(pid.byte_offset()))?;
                file.write_all(&image)?;
            }
        }
        self.num_pages += 1;
        Ok(pid)
    }

    /// Read page `pid` into `buf`, verifying its checksum header.
    pub fn read_page(&mut self, pid: PageId, buf: &mut [u8; PAGE_SIZE]) -> Result<()> {
        self.check(pid)?;
        let fault = match &mut self.fault {
            Some(inj) => inj.on_read(pid),
            None => ReadFault::None,
        };
        if fault == ReadFault::Error {
            return Err(transient_io("read", pid));
        }
        if fault == ReadFault::Crash {
            return Err(StoreError::SimulatedCrash);
        }
        self.reads += 1;
        match &mut self.backend {
            Backend::Mem(pages) => buf.copy_from_slice(&pages[pid.0 as usize]),
            Backend::File { file, .. } => {
                file.seek(SeekFrom::Start(pid.byte_offset()))?;
                file.read_exact(buf)?;
            }
        }
        if let ReadFault::FlipBit { bit } = fault {
            buf[bit / 8] ^= 1 << (bit % 8);
        }
        if let Err((expected, actual)) = page::verify(pid, buf) {
            return Err(StoreError::Corruption {
                page: pid.0,
                expected,
                actual,
            });
        }
        Ok(())
    }

    /// Seal `buf`'s header (in a private copy) and write it to page
    /// `pid`. The caller's header bytes are ignored.
    pub fn write_page(&mut self, pid: PageId, buf: &[u8; PAGE_SIZE]) -> Result<()> {
        self.check(pid)?;
        let mut sealed = *buf;
        page::seal(pid, &mut sealed);
        let fault = match &mut self.fault {
            Some(inj) => inj.on_write(pid),
            None => WriteFault::None,
        };
        let len = match fault {
            WriteFault::Error => return Err(transient_io("write", pid)),
            WriteFault::FlipBit { bit } => {
                sealed[bit / 8] ^= 1 << (bit % 8);
                PAGE_SIZE
            }
            WriteFault::Torn { len } => len,
            WriteFault::Crash { len } => {
                // The kill point: persist the torn prefix, then die.
                if len > 0 {
                    self.backend.write_prefix(pid, &sealed, len)?;
                }
                return Err(StoreError::SimulatedCrash);
            }
            WriteFault::None => PAGE_SIZE,
        };
        self.writes += 1;
        self.backend.write_prefix(pid, &sealed, len)
    }

    /// XOR one raw physical byte of page `pid`, bypassing checksums,
    /// counters, and fault injection. A corruption backdoor for tests:
    /// damage planted this way must be caught by the next verified read.
    pub fn poke_byte(&mut self, pid: PageId, offset: usize, xor: u8) -> Result<()> {
        self.check(pid)?;
        assert!(offset < PAGE_SIZE, "poke offset {offset} out of page");
        match &mut self.backend {
            Backend::Mem(pages) => pages[pid.0 as usize][offset] ^= xor,
            Backend::File { file, .. } => {
                let at = pid.byte_offset() + offset as u64;
                let mut b = [0u8; 1];
                file.seek(SeekFrom::Start(at))?;
                file.read_exact(&mut b)?;
                b[0] ^= xor;
                file.seek(SeekFrom::Start(at))?;
                file.write_all(&b)?;
            }
        }
        Ok(())
    }

    fn check(&self, pid: PageId) -> Result<()> {
        if pid.0 >= self.num_pages {
            Err(StoreError::PageOutOfBounds {
                page: pid.0,
                num_pages: self.num_pages,
            })
        } else {
            Ok(())
        }
    }
}

/// A cloneable, thread-safe handle to one [`DiskManager`].
///
/// The buffer-pool shards of a store each hold a clone; the mutex is
/// taken only for the duration of a single page transfer, so shards
/// faulting different pages serialize on physical I/O but nothing else.
#[derive(Clone)]
pub struct SharedDisk(Arc<Mutex<DiskManager>>);

impl SharedDisk {
    /// Wrap a disk manager for shared use.
    pub fn new(disk: DiskManager) -> Self {
        SharedDisk(Arc::new(Mutex::new(disk)))
    }

    /// Exclusive access for a sequence of operations (allocation during
    /// load, direct reads in tests).
    pub fn lock(&self) -> MutexGuard<'_, DiskManager> {
        // Poisoning carries no meaning here: the manager holds no
        // invariants a panicked page transfer could break.
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Physical I/O counters.
    pub fn stats(&self) -> DiskStats {
        self.lock().stats()
    }

    /// Zero the I/O counters.
    pub fn reset_stats(&self) {
        self.lock().reset_stats();
    }

    /// Number of allocated pages.
    pub fn num_pages(&self) -> u32 {
        self.lock().num_pages()
    }

    /// Install (or remove) a fault injector on the underlying manager.
    pub fn set_fault_injector(&self, injector: Option<FaultInjector>) {
        self.lock().set_fault_injector(injector);
    }

    /// Counters from the installed injector, if any.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.lock().fault_stats()
    }

    /// Has the installed injector's `crash=N` kill point fired?
    pub fn crashed(&self) -> bool {
        self.lock().crashed()
    }
}

impl Drop for DiskManager {
    fn drop(&mut self) {
        if let Backend::File {
            path, temp: true, ..
        } = &self.backend
        {
            let _ = std::fs::remove_file(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultConfig;
    use crate::page::PAGE_HEADER_SIZE;

    fn roundtrip(mut dm: DiskManager) {
        let a = dm.allocate().unwrap();
        let b = dm.allocate().unwrap();
        assert_eq!(a, PageId(0));
        assert_eq!(b, PageId(1));

        let mut page = [0u8; PAGE_SIZE];
        page[PAGE_HEADER_SIZE] = 0xAB;
        page[PAGE_SIZE - 1] = 0xCD;
        dm.write_page(b, &page).unwrap();

        let mut out = [0u8; PAGE_SIZE];
        dm.read_page(b, &mut out).unwrap();
        assert_eq!(out[PAGE_HEADER_SIZE], 0xAB);
        assert_eq!(out[PAGE_SIZE - 1], 0xCD);

        dm.read_page(a, &mut out).unwrap();
        assert!(out[PAGE_HEADER_SIZE..].iter().all(|&x| x == 0));

        let stats = dm.stats();
        assert_eq!(stats.reads, 2);
        assert_eq!(stats.writes, 1);
    }

    #[test]
    fn mem_roundtrip() {
        roundtrip(DiskManager::in_memory());
    }

    #[test]
    fn file_roundtrip() {
        roundtrip(DiskManager::temp_file().unwrap());
    }

    #[test]
    fn out_of_bounds_read_rejected() {
        let mut dm = DiskManager::in_memory();
        let mut buf = [0u8; PAGE_SIZE];
        assert!(matches!(
            dm.read_page(PageId(0), &mut buf),
            Err(StoreError::PageOutOfBounds { .. })
        ));
    }

    #[test]
    fn temp_file_removed_on_drop() {
        let dm = DiskManager::temp_file().unwrap();
        let path = match &dm.backend {
            Backend::File { path, .. } => path.clone(),
            _ => unreachable!(),
        };
        assert!(path.exists());
        drop(dm);
        assert!(!path.exists());
    }

    #[test]
    fn reset_stats_zeroes() {
        let mut dm = DiskManager::in_memory();
        let p = dm.allocate().unwrap();
        let buf = [0u8; PAGE_SIZE];
        dm.write_page(p, &buf).unwrap();
        dm.reset_stats();
        assert_eq!(dm.stats(), DiskStats::default());
    }

    #[test]
    fn header_region_is_storage_owned() {
        // Garbage in the caller's header bytes must not survive a write.
        let mut dm = DiskManager::in_memory();
        let p = dm.allocate().unwrap();
        let mut page = [0u8; PAGE_SIZE];
        page[0] = 0xFF;
        page[7] = 0xFF;
        dm.write_page(p, &page).unwrap();
        let mut out = [0u8; PAGE_SIZE];
        dm.read_page(p, &mut out).unwrap();
    }

    fn poke_detected(mut dm: DiskManager) {
        let p = dm.allocate().unwrap();
        let mut page = [0u8; PAGE_SIZE];
        page[PAGE_HEADER_SIZE + 10] = 42;
        dm.write_page(p, &page).unwrap();
        dm.poke_byte(p, PAGE_HEADER_SIZE + 10, 0x04).unwrap();
        let mut out = [0u8; PAGE_SIZE];
        match dm.read_page(p, &mut out) {
            Err(StoreError::Corruption {
                page: 0,
                expected,
                actual,
            }) => assert_ne!(expected, actual),
            other => panic!("expected corruption, got {other:?}"),
        }
        // Un-poking repairs the page.
        dm.poke_byte(p, PAGE_HEADER_SIZE + 10, 0x04).unwrap();
        dm.read_page(p, &mut out).unwrap();
        assert_eq!(out[PAGE_HEADER_SIZE + 10], 42);
    }

    #[test]
    fn mem_poke_detected() {
        poke_detected(DiskManager::in_memory());
    }

    #[test]
    fn file_poke_detected() {
        poke_detected(DiskManager::temp_file().unwrap());
    }

    #[test]
    fn injected_read_error_is_transient() {
        let mut dm = DiskManager::in_memory();
        let p = dm.allocate().unwrap();
        dm.set_fault_injector(Some(FaultInjector::new(
            FaultConfig::seeded(1).with_read_error(1.0),
        )));
        let mut out = [0u8; PAGE_SIZE];
        let err = dm.read_page(p, &mut out).unwrap_err();
        assert!(err.is_transient(), "{err}");
        // Removing the injector restores clean reads.
        dm.set_fault_injector(None);
        dm.read_page(p, &mut out).unwrap();
    }

    #[test]
    fn injected_read_flip_caught_and_clears() {
        let mut dm = DiskManager::in_memory();
        let p = dm.allocate().unwrap();
        dm.set_fault_injector(Some(FaultInjector::new(
            FaultConfig::seeded(2).with_read_flip(1.0).with_after_ops(0),
        )));
        let mut out = [0u8; PAGE_SIZE];
        let err = dm.read_page(p, &mut out).unwrap_err();
        assert!(matches!(err, StoreError::Corruption { page: 0, .. }));
        assert_eq!(dm.fault_stats().unwrap().read_flips, 1);
        // The persisted image is intact: a fault-free read succeeds.
        dm.set_fault_injector(None);
        dm.read_page(p, &mut out).unwrap();
    }

    #[test]
    fn injected_write_flip_is_persistent() {
        let mut dm = DiskManager::in_memory();
        let p = dm.allocate().unwrap();
        dm.set_fault_injector(Some(FaultInjector::new(
            FaultConfig::seeded(3).with_write_flip(1.0),
        )));
        let page = [0u8; PAGE_SIZE];
        dm.write_page(p, &page).unwrap();
        dm.set_fault_injector(None);
        let mut out = [0u8; PAGE_SIZE];
        let err = dm.read_page(p, &mut out).unwrap_err();
        assert!(matches!(err, StoreError::Corruption { page: 0, .. }));
    }

    #[test]
    fn torn_write_detected_on_read() {
        let mut dm = DiskManager::in_memory();
        let p = dm.allocate().unwrap();
        let mut page = [0u8; PAGE_SIZE];
        for (i, b) in page[PAGE_HEADER_SIZE..].iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        dm.write_page(p, &page).unwrap();
        // Now tear the next write of different data over it.
        dm.set_fault_injector(Some(FaultInjector::new(
            FaultConfig::seeded(4).with_torn_write(1.0),
        )));
        let other = [0x5Au8; PAGE_SIZE];
        dm.write_page(p, &other).unwrap();
        dm.set_fault_injector(None);
        let mut out = [0u8; PAGE_SIZE];
        let err = dm.read_page(p, &mut out).unwrap_err();
        assert!(
            matches!(err, StoreError::Corruption { page: 0, .. }),
            "{err}"
        );
    }

    #[test]
    fn injected_write_error_persists_nothing() {
        let mut dm = DiskManager::in_memory();
        let p = dm.allocate().unwrap();
        dm.set_fault_injector(Some(FaultInjector::new(
            FaultConfig::seeded(5).with_write_error(1.0),
        )));
        let mut page = [0u8; PAGE_SIZE];
        page[PAGE_HEADER_SIZE] = 9;
        let err = dm.write_page(p, &page).unwrap_err();
        assert!(err.is_transient());
        dm.set_fault_injector(None);
        let mut out = [0u8; PAGE_SIZE];
        dm.read_page(p, &mut out).unwrap();
        assert_eq!(out[PAGE_HEADER_SIZE], 0, "failed write must not persist");
    }
}
