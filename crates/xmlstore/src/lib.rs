//! A paged native XML store, standing in for the Shore storage manager
//! underneath TIMBER in *Grouping in XML* (Paparizos et al., EDBT 2002).
//!
//! The paper's experiments (Sec. 6) depend on a concrete storage model:
//! 8 KB pages, a 32 MB buffer pool far smaller than the data, a tag-name
//! index, and node identifiers that carry enough structure to evaluate
//! containment without touching data pages. This crate reproduces that
//! model:
//!
//! * [`storage::DiskManager`] — a page file (on disk or in memory) with
//!   physical read/write counters;
//! * [`buffer::BufferPool`] — a clock-eviction buffer pool with hit/miss
//!   accounting, sized in pages;
//! * [`node`] — fixed-size 32-byte node records labelled with
//!   `(start, end, level)` so that *descendant(a, d) ⇔
//!   a.start < d.start ∧ d.end < a.end* and *child* additionally requires
//!   `d.level = a.level + 1`;
//! * [`heap`] — a content heap holding element text and attribute values;
//! * [`dict::Dictionary`] — the unified symbol dictionary: tags *and*
//!   content values intern to dense `u32` [`dict::Sym`]s, snapshotted
//!   into every WAL commit so recovery round-trips the assignment;
//! * [`columns::NodeColumns`] — the columnar label region: parallel
//!   `start`/`end`/`level`/`tag`/`kind`/`content` arrays in global
//!   document order, shared out behind an `Arc` for zero-copy scans;
//! * [`index::TagIndex`] — the tag-name index: for each tag, the document-
//!   order list of `(id, start, end, level)` entries, so pattern-tree node
//!   candidates are found **without any data-page access**, as Sec. 5.2 of
//!   the paper requires;
//! * [`document::DocumentStore`] — the loaded document: accessors for
//!   records, content, navigation, and subtree materialization, all routed
//!   through the buffer pool so that I/O behaviour is observable;
//! * [`checksum`] / [`fault`] — the robustness layer: CRC32 page
//!   checksums sealed on every write and verified on every read, plus a
//!   deterministic fault injector for crash-recovery testing.
//!
//! This is a library crate on the I/O path of every query, so it must
//! never panic on an I/O problem: `unwrap`/`expect` are denied outside
//! tests and all fallible paths return [`error::StoreError`].
//!
//! # Example
//!
//! ```
//! use xmlstore::{DocumentStore, StoreOptions};
//!
//! let xml = "<bib><article><title>Querying XML</title><author>Jack</author></article></bib>";
//! let store = DocumentStore::from_xml(xml, &StoreOptions::in_memory()).unwrap();
//! let author = store.tag_id("author").unwrap();
//! let entries = store.nodes_with_tag(author);
//! assert_eq!(entries.len(), 1);
//! assert_eq!(store.content(entries[0].id).unwrap().as_deref(), Some("Jack"));
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod buffer;
pub mod catalog;
pub mod checksum;
pub mod columns;
pub mod dict;
pub mod document;
pub mod error;
pub mod fault;
pub mod heap;
pub mod index;
pub mod node;
pub mod page;
pub mod storage;
pub mod wal;

pub use catalog::TagId;
pub use columns::NodeColumns;
pub use dict::{Dictionary, Sym, NO_SYM};
pub use document::{
    wal_path_for, CacheStats, DocId, DocumentStore, IoStats, RecoveryInfo, StoreOptions,
    DOC_ROOT_TAG,
};
pub use error::{Result, StoreError};
pub use fault::{FaultConfig, FaultInjector, FaultStats, LogFault};
pub use index::NodeEntry;
pub use node::{NodeId, NodeKind, NodeRecord};
pub use page::{PageId, PAGE_DATA_SIZE, PAGE_HEADER_SIZE, PAGE_SIZE};
pub use wal::{Lsn, TxnId, Wal, WalHandle, WalRecord, WalStats};
