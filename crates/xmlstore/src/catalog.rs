//! The metadata manager's tag dictionary: interned tag names.
//!
//! Attribute nodes are stored with tags of the form `@name`, and mixed-
//! content text nodes with the reserved tag `#text`, so every stored node
//! has a tag id and the tag index covers all of them uniformly.

use std::collections::HashMap;

/// Interned tag identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TagId(pub u32);

/// Reserved tag for text nodes inside mixed content.
pub const TEXT_TAG: &str = "#text";

/// A two-way mapping between tag names and [`TagId`]s.
#[derive(Debug, Default, Clone)]
pub struct TagDict {
    names: Vec<String>,
    ids: HashMap<String, TagId>,
}

impl TagDict {
    /// An empty dictionary.
    pub fn new() -> Self {
        TagDict::default()
    }

    /// Intern `name`, returning its id (existing or fresh).
    pub fn intern(&mut self, name: &str) -> TagId {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = TagId(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.ids.insert(name.to_owned(), id);
        id
    }

    /// Look up an already-interned name.
    pub fn get(&self, name: &str) -> Option<TagId> {
        self.ids.get(name).copied()
    }

    /// The name for `id`. Panics on an id not produced by this dictionary.
    pub fn name(&self, id: TagId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Number of distinct tags.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate over `(TagId, name)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TagId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (TagId(i as u32), n.as_str()))
    }
}

/// The tag used to store an attribute named `name`.
pub fn attr_tag_name(name: &str) -> String {
    format!("@{name}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = TagDict::new();
        let a = d.intern("article");
        let b = d.intern("author");
        let a2 = d.intern("article");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn name_roundtrip() {
        let mut d = TagDict::new();
        let id = d.intern("title");
        assert_eq!(d.name(id), "title");
        assert_eq!(d.get("title"), Some(id));
        assert_eq!(d.get("missing"), None);
    }

    #[test]
    fn attr_tags_are_distinct_namespace() {
        let mut d = TagDict::new();
        let elem = d.intern("year");
        let attr = d.intern(&attr_tag_name("year"));
        assert_ne!(elem, attr);
        assert_eq!(d.name(attr), "@year");
    }

    #[test]
    fn iter_enumerates_in_order() {
        let mut d = TagDict::new();
        d.intern("a");
        d.intern("b");
        let v: Vec<_> = d.iter().map(|(_, n)| n.to_owned()).collect();
        assert_eq!(v, ["a", "b"]);
    }
}
