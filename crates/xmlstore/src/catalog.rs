//! The metadata manager's tag conventions.
//!
//! Tags are interned into the store's unified [`Dictionary`] — the
//! historical `TagId` is now just the dictionary's [`Sym`] handle, so
//! tags, attribute names, and content values share one symbol space.
//! Attribute nodes are stored with tags of the form `@name`, and mixed-
//! content text nodes with the reserved tag `#text`, so every stored node
//! has a tag symbol and the tag index covers all of them uniformly.
//!
//! [`Dictionary`]: crate::dict::Dictionary
//! [`Sym`]: crate::dict::Sym

pub use crate::dict::Sym as TagId;

/// Reserved tag for text nodes inside mixed content.
pub const TEXT_TAG: &str = "#text";

/// The tag used to store an attribute named `name`.
pub fn attr_tag_name(name: &str) -> String {
    format!("@{name}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dict::Dictionary;

    #[test]
    fn attr_tags_are_distinct_namespace() {
        let d = Dictionary::new();
        let elem = d.intern("year");
        let attr = d.intern(&attr_tag_name("year"));
        assert_ne!(elem, attr);
        assert_eq!(&*d.resolve(attr), "@year");
    }

    #[test]
    fn tag_id_is_the_dictionary_sym() {
        let d = Dictionary::new();
        let id: TagId = d.intern("title");
        assert_eq!(id, TagId(0));
    }
}
