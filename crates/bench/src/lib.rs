//! Shared harness for the experiment reproductions.
//!
//! The paper's two measurements (Sec. 6) compare a *direct* evaluation of
//! the group-by-author query against the *GROUPBY* plan over the DBLP
//! Journals set (4.6 M nodes, ~100 MB, 8 KB pages, 32 MB buffer pool):
//!
//! | run | direct | GROUPBY | ratio |
//! |---|---|---|---|
//! | E1 titles | 323.966 s | 178.607 s | ≈1.81× |
//! | E2 count  | 155.564 s | 23.033 s  | ≈6.75× |
//!
//! Absolute times are not reproducible (their testbed was a 550 MHz
//! Pentium III running Shore), so the harness reports the *shape*: who
//! wins, by what factor, and how the factor moves with scale and buffer
//! pool size. Every run reports wall-clock time plus page/disk traffic.

use datagen::{DblpConfig, DblpGenerator};
use std::time::Duration;
use timber::{PlanMode, TimberDb};
use xmlstore::{IoStats, StoreOptions};

/// Query 1 (titles output) — the paper's running example.
pub const QUERY_TITLES: &str = r#"
    FOR $a IN distinct-values(document("bib.xml")//author)
    RETURN <authorpubs>
      {$a}
      { FOR $b IN document("bib.xml")//article
        WHERE $a = $b/author
        RETURN $b/title }
    </authorpubs>
"#;

/// Query 2 — the unnested LET formulation (Sec. 4.2).
pub const QUERY_TITLES_LET: &str = r#"
    FOR $a IN distinct-values(document("bib.xml")//author)
    LET $t := document("bib.xml")//article[author = $a]/title
    RETURN <authorpubs> {$a} {$t} </authorpubs>
"#;

/// The count variant (second experiment of Sec. 6).
pub const QUERY_COUNT: &str = r#"
    FOR $a IN distinct-values(document("bib.xml")//author)
    LET $t := document("bib.xml")//article[author = $a]/title
    RETURN <authorpubs> {$a} {count($t)} </authorpubs>
"#;

/// The XOLAP lattice query (X14): all prefix levels of
/// journal → year → author computed by one `Plan::Cube` scan under the
/// grouping rewrite, or as the composed per-level rollup union under the
/// materialized mode.
pub const QUERY_CUBE: &str = r#"
    FOR $b IN document("bib.xml")//article
    CUBE BY $b/journal, $b/year, $b/author
    RETURN <pubs> {count($b/title)} </pubs>
"#;

/// Paper-reported seconds for E1/E2 (direct, groupby).
pub const PAPER_E1: (f64, f64) = (323.966, 178.607);
/// Paper-reported seconds for E2.
pub const PAPER_E2: (f64, f64) = (155.564, 23.033);

/// Build a synthetic-DBLP database.
///
/// `pool_bytes` defaults to the paper's 32 MB when `None`; the store goes
/// to a real temp file when `on_disk`.
pub fn build_db(articles: usize, pool_bytes: Option<usize>, on_disk: bool) -> TimberDb {
    let xml = DblpGenerator::new(DblpConfig::sized(articles)).generate_xml();
    let mut opts = StoreOptions {
        on_disk,
        ..StoreOptions::default()
    };
    if let Some(bytes) = pool_bytes {
        opts = opts.with_pool_bytes(bytes);
    }
    if !on_disk {
        opts.pool_pages = opts.pool_pages.max(64);
    }
    TimberDb::load_xml(&xml, &opts).expect("load synthetic DBLP")
}

/// One measured run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Wall-clock time including output materialization.
    pub elapsed: Duration,
    /// Page and disk traffic of the run.
    pub io: IoStats,
    /// Number of output trees (groups / authors).
    pub output_trees: usize,
    /// Serialized output size in bytes.
    pub output_bytes: usize,
    /// Whether the GROUPBY rewrite produced the plan.
    pub rewritten: bool,
}

/// Evaluate `query` under `mode`, cold buffer pool, materializing the
/// full output (as the paper's runs do).
///
/// Panics on evaluation errors — use [`try_measure`] when a fault
/// schedule is armed and typed errors are expected outcomes.
pub fn measure(db: &TimberDb, query: &str, mode: PlanMode) -> RunStats {
    try_measure(db, query, mode).expect("fault-free measurement")
}

/// Fallible [`measure`]: identical run protocol, but injected storage
/// faults surface as the typed [`timber::TimberError`] instead of a
/// panic, so fault-schedule replays can report per-run outcomes.
pub fn try_measure(db: &TimberDb, query: &str, mode: PlanMode) -> timber::Result<RunStats> {
    db.clear_buffer_pool()?;
    db.reset_io_stats();
    let start = std::time::Instant::now();
    let result = db.query(query, mode)?;
    let xml = result.to_xml_on(db.store())?;
    let elapsed = start.elapsed();
    Ok(RunStats {
        elapsed,
        io: db.io_stats(),
        output_trees: result.len(),
        output_bytes: xml.len(),
        rewritten: result.rewritten,
    })
}

/// Wall-clock seconds of a fixed CPU-bound xorshift workload (best of
/// three runs).
///
/// CI perf gating cannot compare raw wall times across machines — a
/// committed baseline from one runner would gate a faster or slower one
/// at the wrong level. Every [`BenchReport`] therefore stores times in
/// *calibration units*: measured seconds divided by this quantum, which
/// scales with the host's single-core speed. The workload is pure
/// register arithmetic, so the units transfer across CPUs of the same
/// rough generation well enough for a 25 % gate.
pub fn calibrate() -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = std::time::Instant::now();
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        let mut acc = 0u64;
        for _ in 0..20_000_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            acc = acc.wrapping_add(x);
        }
        std::hint::black_box(acc);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Convert measured wall-clock `seconds` into calibration units for the
/// quantum measured on the same host in the same run.
///
/// This is the gate's whole portability argument in one line: a host
/// that is uniformly 2× slower doubles both the numerator (the measured
/// query seconds) and the denominator (its own freshly measured
/// [`calibrate`] quantum), so the units — and therefore the
/// [`BenchReport::regressions`] comparison against a baseline written on
/// a different machine — are unchanged. Only a genuine slowdown of the
/// *workload relative to the host* moves the number.
pub fn units(seconds: f64, calibration_secs: f64) -> f64 {
    seconds / calibration_secs.max(1e-12)
}

/// A machine-portable benchmark report: named measurements in
/// calibration units (see [`calibrate`]), plus the calibration quantum
/// and database size that produced them. Serialized as JSON by hand —
/// the workspace is offline and carries no serde.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Seconds of the calibration quantum on the measuring host.
    pub calibration_secs: f64,
    /// Synthetic-DBLP size the workload ran against.
    pub articles: usize,
    /// `(key, calibration units)` per benchmark, in run order.
    pub entries: Vec<(String, f64)>,
}

impl BenchReport {
    /// The measurement for `key`, if present.
    pub fn get(&self, key: &str) -> Option<f64> {
        self.entries.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }

    /// Render as JSON (the format [`BenchReport::from_json`] reads).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"calibration_secs\": {:.6},\n  \"articles\": {},\n  \"entries\": {{\n",
            self.calibration_secs, self.articles
        ));
        for (i, (k, v)) in self.entries.iter().enumerate() {
            let comma = if i + 1 < self.entries.len() { "," } else { "" };
            out.push_str(&format!("    \"{k}\": {v:.6}{comma}\n"));
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Parse the JSON that [`BenchReport::to_json`] writes: every
    /// `"key": number` pair is collected, with `calibration_secs` and
    /// `articles` lifted out of the entry list. Returns `None` on
    /// malformed numbers or missing calibration.
    pub fn from_json(s: &str) -> Option<BenchReport> {
        let mut calibration_secs = None;
        let mut articles = 0usize;
        let mut entries = Vec::new();
        let mut parts = s.split('"');
        parts.next(); // before the first quote
        while let (Some(key), Some(rest)) = (parts.next(), parts.next()) {
            let rest = rest.trim_start().trim_start_matches(':').trim_start();
            let num: String = rest
                .chars()
                .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
                .collect();
            if num.is_empty() {
                continue; // a structural token like `"entries": {`
            }
            let v: f64 = num.parse().ok()?;
            match key {
                "calibration_secs" => calibration_secs = Some(v),
                "articles" => articles = v as usize,
                _ => entries.push((key.to_owned(), v)),
            }
        }
        Some(BenchReport {
            calibration_secs: calibration_secs?,
            articles,
            entries,
        })
    }

    /// Compare against a committed `baseline`, returning one line per
    /// violation: a measurement more than `threshold_pct` percent slower
    /// (in calibration units) than the baseline's, or a baseline key the
    /// current run no longer measures. New keys absent from the baseline
    /// pass silently (they gate once the baseline is refreshed).
    pub fn regressions(&self, baseline: &BenchReport, threshold_pct: f64) -> Vec<String> {
        let mut out = Vec::new();
        for (key, base) in &baseline.entries {
            match self.get(key) {
                None => out.push(format!("{key}: present in baseline but not measured")),
                Some(now) => {
                    let ratio = now / base.max(1e-9);
                    if ratio > 1.0 + threshold_pct / 100.0 {
                        out.push(format!(
                            "{key}: {now:.3} units vs baseline {base:.3} ({:+.1} %, limit +{threshold_pct:.0} %)",
                            (ratio - 1.0) * 100.0
                        ));
                    }
                }
            }
        }
        out
    }
}

/// Direct-over-groupby slowdown factor.
pub fn speedup(direct: &RunStats, grouped: &RunStats) -> f64 {
    direct.elapsed.as_secs_f64() / grouped.elapsed.as_secs_f64().max(1e-9)
}

/// Render one comparison row.
pub fn format_row(label: &str, direct: &RunStats, grouped: &RunStats) -> String {
    format!(
        "{label:<22} direct {:>9.3}s ({:>9} pages, {:>8} disk) | groupby {:>9.3}s ({:>9} pages, {:>8} disk) | speedup {:>5.2}x",
        direct.elapsed.as_secs_f64(),
        direct.io.page_requests(),
        direct.io.disk.reads,
        grouped.elapsed.as_secs_f64(),
        grouped.io.page_requests(),
        grouped.io.disk.reads,
        speedup(direct, grouped),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_smoke() {
        let db = build_db(200, Some(1 << 20), false);
        let d = measure(&db, QUERY_TITLES, PlanMode::Direct);
        let g = measure(&db, QUERY_TITLES, PlanMode::GroupByRewrite);
        assert!(!d.rewritten);
        assert!(g.rewritten);
        assert_eq!(d.output_trees, g.output_trees);
        assert!(d.output_trees > 10);
        assert!(speedup(&d, &g) > 0.0);
        let row = format_row("smoke", &d, &g);
        assert!(row.contains("speedup"));
    }

    #[test]
    fn outputs_identical_across_plans() {
        let db = build_db(150, None, false);
        for q in [QUERY_TITLES, QUERY_TITLES_LET, QUERY_COUNT] {
            let d = db.query(q, PlanMode::Direct).unwrap();
            let g = db.query(q, PlanMode::GroupByRewrite).unwrap();
            assert_eq!(
                d.to_xml_on(db.store()).unwrap(),
                g.to_xml_on(db.store()).unwrap()
            );
        }
    }

    #[test]
    fn try_measure_surfaces_injected_faults() {
        // A certain-failure schedule: every physical read errors, retries
        // included, so the run must end in a typed error, not a panic.
        let db = build_db(200, Some(4 * 8192), true);
        let schedule: xmlstore::FaultConfig = "seed=1,read_err=1.0".parse().unwrap();
        db.set_faults(Some(schedule)).unwrap();
        assert!(try_measure(&db, QUERY_COUNT, PlanMode::GroupByRewrite).is_err());
        db.set_faults(None).unwrap();
        assert!(try_measure(&db, QUERY_COUNT, PlanMode::GroupByRewrite).is_ok());
    }

    #[test]
    fn bench_report_json_round_trips() {
        let r = BenchReport {
            calibration_secs: 0.042,
            articles: 1500,
            entries: vec![
                ("e1_titles_direct".into(), 12.5),
                ("e2_count_groupby".into(), 0.75),
            ],
        };
        let parsed = BenchReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed.articles, 1500);
        assert!((parsed.calibration_secs - 0.042).abs() < 1e-9);
        assert_eq!(parsed.entries.len(), 2);
        assert!((parsed.get("e1_titles_direct").unwrap() - 12.5).abs() < 1e-9);
        assert!(BenchReport::from_json("not json").is_none());
    }

    #[test]
    fn regressions_flag_slowdowns_and_missing_keys() {
        let base = BenchReport {
            calibration_secs: 0.04,
            articles: 1500,
            entries: vec![("a".into(), 10.0), ("b".into(), 10.0), ("c".into(), 10.0)],
        };
        let now = BenchReport {
            calibration_secs: 0.05, // different host speed is fine
            articles: 1500,
            // a: +20 % (within the 25 % gate), b: +100 % (fails), c: gone.
            entries: vec![("a".into(), 12.0), ("b".into(), 20.0), ("d".into(), 1.0)],
        };
        let viol = now.regressions(&base, 25.0);
        assert_eq!(viol.len(), 2, "{viol:?}");
        assert!(viol.iter().any(|v| v.starts_with("b:")), "{viol:?}");
        assert!(viol.iter().any(|v| v.starts_with("c:")), "{viol:?}");
        assert!(now.regressions(&now.clone(), 25.0).is_empty());
    }

    #[test]
    fn gate_units_are_host_portable() {
        // The committed baseline was written on host A (quantum 0.04 s).
        let base = BenchReport {
            calibration_secs: 0.04,
            articles: 1500,
            entries: vec![("e2".into(), units(0.48, 0.04))], // 12 units
        };
        // Host B is uniformly 2× slower: the query takes twice the wall
        // time, but so does the freshly measured quantum — identical
        // units, so the gate must not fire.
        let slower_host = BenchReport {
            calibration_secs: 0.08,
            articles: 1500,
            entries: vec![("e2".into(), units(0.96, 0.08))],
        };
        assert_eq!(slower_host.get("e2"), base.get("e2"));
        assert!(slower_host.regressions(&base, 25.0).is_empty());
        // A genuine 2× workload slowdown on the *same* host doubles the
        // units and fails the 25 % bar; an unchanged 1.0× run passes.
        let regressed = BenchReport {
            calibration_secs: 0.04,
            articles: 1500,
            entries: vec![("e2".into(), units(0.96, 0.04))], // 24 units
        };
        let viol = regressed.regressions(&base, 25.0);
        assert_eq!(viol.len(), 1, "{viol:?}");
        let same = BenchReport {
            calibration_secs: 0.04,
            articles: 1500,
            entries: vec![("e2".into(), units(0.48, 0.04))],
        };
        assert!(same.regressions(&base, 25.0).is_empty());
    }

    #[test]
    fn calibration_is_positive_and_stable() {
        let a = calibrate();
        assert!(a > 0.0);
    }

    #[test]
    fn groupby_wins_io_at_scale() {
        let db = build_db(400, Some(1 << 21), false);
        let d = measure(&db, QUERY_COUNT, PlanMode::Direct);
        let g = measure(&db, QUERY_COUNT, PlanMode::GroupByRewrite);
        assert!(
            g.io.page_requests() < d.io.page_requests(),
            "groupby {} vs direct {}",
            g.io.page_requests(),
            d.io.page_requests()
        );
    }
}
