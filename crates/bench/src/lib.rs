//! Shared harness for the experiment reproductions.
//!
//! The paper's two measurements (Sec. 6) compare a *direct* evaluation of
//! the group-by-author query against the *GROUPBY* plan over the DBLP
//! Journals set (4.6 M nodes, ~100 MB, 8 KB pages, 32 MB buffer pool):
//!
//! | run | direct | GROUPBY | ratio |
//! |---|---|---|---|
//! | E1 titles | 323.966 s | 178.607 s | ≈1.81× |
//! | E2 count  | 155.564 s | 23.033 s  | ≈6.75× |
//!
//! Absolute times are not reproducible (their testbed was a 550 MHz
//! Pentium III running Shore), so the harness reports the *shape*: who
//! wins, by what factor, and how the factor moves with scale and buffer
//! pool size. Every run reports wall-clock time plus page/disk traffic.

use datagen::{DblpConfig, DblpGenerator};
use std::time::Duration;
use timber::{PlanMode, TimberDb};
use xmlstore::{IoStats, StoreOptions};

/// Query 1 (titles output) — the paper's running example.
pub const QUERY_TITLES: &str = r#"
    FOR $a IN distinct-values(document("bib.xml")//author)
    RETURN <authorpubs>
      {$a}
      { FOR $b IN document("bib.xml")//article
        WHERE $a = $b/author
        RETURN $b/title }
    </authorpubs>
"#;

/// Query 2 — the unnested LET formulation (Sec. 4.2).
pub const QUERY_TITLES_LET: &str = r#"
    FOR $a IN distinct-values(document("bib.xml")//author)
    LET $t := document("bib.xml")//article[author = $a]/title
    RETURN <authorpubs> {$a} {$t} </authorpubs>
"#;

/// The count variant (second experiment of Sec. 6).
pub const QUERY_COUNT: &str = r#"
    FOR $a IN distinct-values(document("bib.xml")//author)
    LET $t := document("bib.xml")//article[author = $a]/title
    RETURN <authorpubs> {$a} {count($t)} </authorpubs>
"#;

/// Paper-reported seconds for E1/E2 (direct, groupby).
pub const PAPER_E1: (f64, f64) = (323.966, 178.607);
/// Paper-reported seconds for E2.
pub const PAPER_E2: (f64, f64) = (155.564, 23.033);

/// Build a synthetic-DBLP database.
///
/// `pool_bytes` defaults to the paper's 32 MB when `None`; the store goes
/// to a real temp file when `on_disk`.
pub fn build_db(articles: usize, pool_bytes: Option<usize>, on_disk: bool) -> TimberDb {
    let xml = DblpGenerator::new(DblpConfig::sized(articles)).generate_xml();
    let mut opts = StoreOptions {
        on_disk,
        ..StoreOptions::default()
    };
    if let Some(bytes) = pool_bytes {
        opts = opts.with_pool_bytes(bytes);
    }
    if !on_disk {
        opts.pool_pages = opts.pool_pages.max(64);
    }
    TimberDb::load_xml(&xml, &opts).expect("load synthetic DBLP")
}

/// One measured run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Wall-clock time including output materialization.
    pub elapsed: Duration,
    /// Page and disk traffic of the run.
    pub io: IoStats,
    /// Number of output trees (groups / authors).
    pub output_trees: usize,
    /// Serialized output size in bytes.
    pub output_bytes: usize,
    /// Whether the GROUPBY rewrite produced the plan.
    pub rewritten: bool,
}

/// Evaluate `query` under `mode`, cold buffer pool, materializing the
/// full output (as the paper's runs do).
///
/// Panics on evaluation errors — use [`try_measure`] when a fault
/// schedule is armed and typed errors are expected outcomes.
pub fn measure(db: &TimberDb, query: &str, mode: PlanMode) -> RunStats {
    try_measure(db, query, mode).expect("fault-free measurement")
}

/// Fallible [`measure`]: identical run protocol, but injected storage
/// faults surface as the typed [`timber::TimberError`] instead of a
/// panic, so fault-schedule replays can report per-run outcomes.
pub fn try_measure(db: &TimberDb, query: &str, mode: PlanMode) -> timber::Result<RunStats> {
    db.clear_buffer_pool()?;
    db.reset_io_stats();
    let start = std::time::Instant::now();
    let result = db.query(query, mode)?;
    let xml = result.to_xml_on(db.store())?;
    let elapsed = start.elapsed();
    Ok(RunStats {
        elapsed,
        io: db.io_stats(),
        output_trees: result.len(),
        output_bytes: xml.len(),
        rewritten: result.rewritten,
    })
}

/// Direct-over-groupby slowdown factor.
pub fn speedup(direct: &RunStats, grouped: &RunStats) -> f64 {
    direct.elapsed.as_secs_f64() / grouped.elapsed.as_secs_f64().max(1e-9)
}

/// Render one comparison row.
pub fn format_row(label: &str, direct: &RunStats, grouped: &RunStats) -> String {
    format!(
        "{label:<22} direct {:>9.3}s ({:>9} pages, {:>8} disk) | groupby {:>9.3}s ({:>9} pages, {:>8} disk) | speedup {:>5.2}x",
        direct.elapsed.as_secs_f64(),
        direct.io.page_requests(),
        direct.io.disk.reads,
        grouped.elapsed.as_secs_f64(),
        grouped.io.page_requests(),
        grouped.io.disk.reads,
        speedup(direct, grouped),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_smoke() {
        let db = build_db(200, Some(1 << 20), false);
        let d = measure(&db, QUERY_TITLES, PlanMode::Direct);
        let g = measure(&db, QUERY_TITLES, PlanMode::GroupByRewrite);
        assert!(!d.rewritten);
        assert!(g.rewritten);
        assert_eq!(d.output_trees, g.output_trees);
        assert!(d.output_trees > 10);
        assert!(speedup(&d, &g) > 0.0);
        let row = format_row("smoke", &d, &g);
        assert!(row.contains("speedup"));
    }

    #[test]
    fn outputs_identical_across_plans() {
        let db = build_db(150, None, false);
        for q in [QUERY_TITLES, QUERY_TITLES_LET, QUERY_COUNT] {
            let d = db.query(q, PlanMode::Direct).unwrap();
            let g = db.query(q, PlanMode::GroupByRewrite).unwrap();
            assert_eq!(
                d.to_xml_on(db.store()).unwrap(),
                g.to_xml_on(db.store()).unwrap()
            );
        }
    }

    #[test]
    fn try_measure_surfaces_injected_faults() {
        // A certain-failure schedule: every physical read errors, retries
        // included, so the run must end in a typed error, not a panic.
        let db = build_db(200, Some(4 * 8192), true);
        let schedule: xmlstore::FaultConfig = "seed=1,read_err=1.0".parse().unwrap();
        db.set_faults(Some(schedule)).unwrap();
        assert!(try_measure(&db, QUERY_COUNT, PlanMode::GroupByRewrite).is_err());
        db.set_faults(None).unwrap();
        assert!(try_measure(&db, QUERY_COUNT, PlanMode::GroupByRewrite).is_ok());
    }

    #[test]
    fn groupby_wins_io_at_scale() {
        let db = build_db(400, Some(1 << 21), false);
        let d = measure(&db, QUERY_COUNT, PlanMode::Direct);
        let g = measure(&db, QUERY_COUNT, PlanMode::GroupByRewrite);
        assert!(
            g.io.page_requests() < d.io.page_requests(),
            "groupby {} vs direct {}",
            g.io.page_requests(),
            d.io.page_requests()
        );
    }
}
