//! An interactive shell for the TIMBER reproduction.
//!
//! ```text
//! cargo run --release -p timber-bench --bin timber_shell [file.xml]
//! ```
//!
//! Commands (terminate queries with `;`):
//!
//! ```text
//! .load <file.xml>     load an XML document
//! .gen <articles>      load a synthetic DBLP of the given size
//! .insert <file.xml>   insert a document into the current database
//!                      (creates an empty one first if none is loaded)
//! .delete <doc>        delete a document by id (see .stats for ids)
//! .checkpoint          flush dirty pages and truncate the write-ahead
//!                      log (durable databases)
//! .mode direct|groupby|materialized|auto|both
//! .exec physical|legacy
//! .cube                run the X14 lattice query (journal → year →
//!                      author cube) under the current settings
//! .batch <n>           physical executor batch size
//! .threads <n>         worker threads for operator evaluation
//! .explain             show plans instead of executing (toggle)
//! .explain analyze     execute and report per-operator metrics
//! .faults <spec|off>   arm a deterministic fault schedule, e.g.
//!                      .faults seed=3,read_err=0.01,flip=0.005
//! .stats               database and I/O statistics
//! .help                this text
//! .quit
//! FOR $a IN … ;        any query in the supported FLWR subset
//! ```

use std::io::{BufRead, Write};
use timber::{ExecMode, PlanMode, TimberDb};
use xmlstore::StoreOptions;

struct Shell {
    db: Option<TimberDb>,
    mode: Mode,
    exec: ExecMode,
    explain: Explain,
    threads: usize,
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Direct,
    GroupBy,
    /// The grouping rewrite without rollup fusion — the reference
    /// `GroupBy → Aggregate` pipeline the fused kernel is checked against.
    Materialized,
    /// Metric-driven plan choice: grouped plan unless the sampled basis
    /// keys look degenerate (distinct ≈ cardinality).
    Auto,
    Both,
}

/// Accepted `.mode` arguments, echoed by the unknown-argument report.
const MODE_VALUES: &str = "direct|groupby|materialized|auto|both";

impl Mode {
    fn parse(arg: &str) -> Option<Mode> {
        match arg {
            "direct" => Some(Mode::Direct),
            "groupby" => Some(Mode::GroupBy),
            "materialized" => Some(Mode::Materialized),
            "auto" => Some(Mode::Auto),
            "both" => Some(Mode::Both),
            _ => None,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Mode::Direct => "direct",
            Mode::GroupBy => "groupby",
            Mode::Materialized => "materialized",
            Mode::Auto => "auto",
            Mode::Both => "both",
        }
    }
}

/// Accepted `.exec` arguments.
const EXEC_VALUES: &str = "physical|legacy";

fn parse_exec(arg: &str) -> Option<ExecMode> {
    match arg {
        "physical" => Some(ExecMode::Physical),
        "legacy" => Some(ExecMode::Legacy),
        _ => None,
    }
}

fn exec_name(exec: ExecMode) -> &'static str {
    match exec {
        ExecMode::Physical => "physical",
        ExecMode::Legacy => "legacy",
    }
}

/// The one unknown-argument report every settings command prints: which
/// command rejected what, the values it accepts, and the setting that
/// stays in force — so a typo never silently changes (or appears to
/// change) the session state.
fn bad_setting(cmd: &str, arg: &str, expected: &str, retained: &str) -> String {
    format!("{cmd}: unknown argument '{arg}' (expected {expected}); keeping {retained}")
}

#[derive(Clone, Copy, PartialEq)]
enum Explain {
    Off,
    Plan,
    Analyze,
}

fn main() {
    let mut shell = Shell {
        db: None,
        mode: Mode::GroupBy,
        exec: ExecMode::Physical,
        explain: Explain::Off,
        threads: 1,
    };
    if let Some(path) = std::env::args().nth(1) {
        shell.load(&path);
    }
    println!("TIMBER shell — .help for commands");
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        print!(
            "{}",
            if buffer.is_empty() {
                "timber> "
            } else {
                "   ...> "
            }
        );
        let _ = std::io::stdout().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with('.') {
            if !shell.command(trimmed) {
                break;
            }
            continue;
        }
        if trimmed.is_empty() && buffer.is_empty() {
            continue;
        }
        buffer.push_str(&line);
        if trimmed.ends_with(';') {
            let query = buffer.trim_end().trim_end_matches(';').to_owned();
            buffer.clear();
            shell.run_query(&query);
        }
    }
}

impl Shell {
    fn command(&mut self, cmd: &str) -> bool {
        let mut parts = cmd.splitn(2, ' ');
        let head = parts.next().unwrap_or("");
        let arg = parts.next().unwrap_or("").trim();
        match head {
            ".quit" | ".exit" => return false,
            ".help" => {
                println!(
                    ".load <file.xml> | .gen <articles> | .mode {MODE_VALUES}\n\
                     .insert <file.xml> | .delete <doc> | .checkpoint\n\
                     .exec {EXEC_VALUES} | .batch <n> | .threads <n>\n\
                     .cube (run the X14 lattice query) | .explain (toggle) | .explain analyze | .explain off\n\
                     .faults <spec|off> | .stats | .quit\n\
                     end a query with ';' to run it"
                );
            }
            ".load" => self.load(arg),
            ".insert" => self.insert(arg),
            ".delete" => match (arg.parse::<u64>(), &mut self.db) {
                (_, None) => eprintln!("no database loaded (.load or .gen first)"),
                (Err(_), _) => eprintln!(".delete needs a document id (see .stats)"),
                (Ok(id), Some(db)) => match db.delete_document(id) {
                    Ok(()) => println!("deleted document {id}; {} remain", db.documents().len()),
                    Err(e) => eprintln!("delete failed: {e}"),
                },
            },
            ".checkpoint" => match &mut self.db {
                None => eprintln!("no database loaded (.load or .gen first)"),
                Some(db) => match db.checkpoint() {
                    Ok(()) => match db.wal_stats() {
                        Some(s) => println!(
                            "checkpoint done ({} so far, {} log records written)",
                            s.checkpoints, s.records
                        ),
                        None => println!("checkpoint done (non-durable database: pages flushed)"),
                    },
                    Err(e) => eprintln!("checkpoint failed: {e}"),
                },
            },
            ".gen" => match arg.parse::<usize>() {
                Ok(n) => {
                    let xml =
                        datagen::DblpGenerator::new(datagen::DblpConfig::sized(n)).generate_xml();
                    match TimberDb::load_xml(&xml, &StoreOptions::default()) {
                        Ok(mut db) => {
                            db.set_threads(self.threads);
                            db.set_exec_mode(self.exec);
                            println!(
                                "generated {n} articles: {} nodes, {:.1} MB",
                                db.store().node_count(),
                                db.store().size_bytes() as f64 / (1024.0 * 1024.0)
                            );
                            self.db = Some(db);
                        }
                        Err(e) => eprintln!("load failed: {e}"),
                    }
                }
                Err(_) => eprintln!(".gen needs an article count"),
            },
            ".mode" => match Mode::parse(arg) {
                Some(m) => {
                    self.mode = m;
                    println!("mode {}", m.name());
                }
                None => eprintln!(
                    "{}",
                    bad_setting(
                        ".mode",
                        arg,
                        MODE_VALUES,
                        &format!("mode {}", self.mode.name())
                    )
                ),
            },
            ".exec" => match parse_exec(arg) {
                Some(exec) => {
                    // Remember the choice even with no database loaded;
                    // `.load`/`.gen` apply it to the new database.
                    self.exec = exec;
                    if let Some(db) = &mut self.db {
                        db.set_exec_mode(exec);
                    }
                    println!("executor {}", exec_name(exec));
                }
                None => eprintln!(
                    "{}",
                    bad_setting(
                        ".exec",
                        arg,
                        EXEC_VALUES,
                        &format!("executor {}", exec_name(self.exec))
                    )
                ),
            },
            ".cube" => {
                println!("-- X14 lattice query: CUBE BY journal, year, author --");
                self.run_query(timber_bench::QUERY_CUBE.trim());
            }
            ".batch" => match arg.parse::<usize>() {
                Ok(n) => {
                    if let Some(db) = &mut self.db {
                        db.set_batch_size(n);
                        println!("batch size {}", db.batch_size());
                    } else {
                        eprintln!("no database loaded (.load or .gen first)");
                    }
                }
                Err(_) => eprintln!(".batch needs a tree count"),
            },
            ".threads" => match arg.parse::<usize>() {
                Ok(n) => {
                    self.threads = n.max(1);
                    if let Some(db) = &mut self.db {
                        db.set_threads(self.threads);
                    }
                    println!("evaluating with {} worker thread(s)", self.threads);
                }
                Err(_) => eprintln!(".threads needs a thread count"),
            },
            ".explain" => {
                self.explain = match arg {
                    "analyze" => Explain::Analyze,
                    "off" => Explain::Off,
                    // Bare `.explain` keeps its toggle behaviour.
                    _ => match self.explain {
                        Explain::Off => Explain::Plan,
                        _ => Explain::Off,
                    },
                };
                println!(
                    "explain {}",
                    match self.explain {
                        Explain::Off => "off",
                        Explain::Plan => "on",
                        Explain::Analyze => "analyze",
                    }
                );
            }
            ".faults" => match &self.db {
                None => eprintln!("no database loaded (.load or .gen first)"),
                Some(db) => {
                    if arg == "off" {
                        match db.set_faults(None) {
                            Ok(()) => println!("fault injection off"),
                            Err(e) => eprintln!("disarm failed: {e}"),
                        }
                    } else if arg.is_empty() {
                        match db.fault_stats() {
                            None => println!("fault injection off"),
                            Some(s) => println!(
                                "armed; {} eligible ops, {} faults injected",
                                s.ops,
                                s.total()
                            ),
                        }
                    } else {
                        match arg.parse::<xmlstore::FaultConfig>() {
                            Err(e) => eprintln!("{e}"),
                            Ok(cfg) => match db.set_faults(Some(cfg.clone())) {
                                Ok(()) => println!("fault schedule armed: {cfg}"),
                                Err(e) => eprintln!("arming failed: {e}"),
                            },
                        }
                    }
                }
            },
            ".stats" => match &self.db {
                None => println!("no database loaded"),
                Some(db) => {
                    let io = db.io_stats();
                    println!(
                        "{} nodes, {} pages ({:.1} MB), pool {} pages; \
                         session I/O: {} page requests, {} disk reads",
                        db.store().node_count(),
                        db.store().total_pages(),
                        db.store().size_bytes() as f64 / (1024.0 * 1024.0),
                        db.store().pool_capacity(),
                        io.page_requests(),
                        io.disk.reads,
                    );
                    let docs = db.documents();
                    if !docs.is_empty() {
                        let list: Vec<String> = docs
                            .iter()
                            .map(|&(id, n)| format!("{id} ({n} nodes)"))
                            .collect();
                        println!("documents: {}", list.join(", "));
                    }
                    if let Some(w) = db.wal_stats() {
                        println!(
                            "wal: {} records, {} flushes, {} checkpoints",
                            w.records, w.flushes, w.checkpoints
                        );
                    }
                }
            },
            other => eprintln!("unknown command {other}; try .help"),
        }
        true
    }

    fn load(&mut self, path: &str) {
        if path.is_empty() {
            eprintln!(".load needs a file path");
            return;
        }
        match std::fs::read_to_string(path) {
            Err(e) => eprintln!("cannot read {path}: {e}"),
            Ok(xml) => match TimberDb::load_xml(&xml, &StoreOptions::default()) {
                Ok(mut db) => {
                    db.set_threads(self.threads);
                    db.set_exec_mode(self.exec);
                    println!(
                        "loaded {path}: {} nodes, {} pages",
                        db.store().node_count(),
                        db.store().total_pages()
                    );
                    self.db = Some(db);
                }
                Err(e) => eprintln!("load failed: {e}"),
            },
        }
    }

    fn insert(&mut self, path: &str) {
        if path.is_empty() {
            eprintln!(".insert needs a file path");
            return;
        }
        if self.db.is_none() {
            match TimberDb::create(&StoreOptions::default()) {
                Ok(mut db) => {
                    db.set_threads(self.threads);
                    db.set_exec_mode(self.exec);
                    self.db = Some(db);
                    println!("created an empty database");
                }
                Err(e) => {
                    eprintln!("create failed: {e}");
                    return;
                }
            }
        }
        let Some(db) = &mut self.db else { return };
        match std::fs::read_to_string(path) {
            Err(e) => eprintln!("cannot read {path}: {e}"),
            Ok(xml) => match db.insert_xml(&xml) {
                Ok(id) => println!(
                    "inserted {path} as document {id}: {} documents, {} nodes total",
                    db.documents().len(),
                    db.store().node_count()
                ),
                Err(e) => eprintln!("insert failed: {e}"),
            },
        }
    }

    fn run_query(&mut self, query: &str) {
        let Some(db) = &self.db else {
            eprintln!("no database loaded (.load or .gen first)");
            return;
        };
        if self.explain == Explain::Plan {
            match db.explain(query) {
                Ok(text) => println!("{text}"),
                Err(e) => eprintln!("error: {e}"),
            }
            return;
        }
        let modes: &[(&str, PlanMode)] = match self.mode {
            Mode::Direct => &[("direct", PlanMode::Direct)],
            Mode::GroupBy => &[("groupby", PlanMode::GroupByRewrite)],
            Mode::Materialized => &[("materialized", PlanMode::GroupByMaterialized)],
            Mode::Auto => &[("auto", PlanMode::Auto)],
            Mode::Both => &[
                ("direct", PlanMode::Direct),
                ("groupby", PlanMode::GroupByRewrite),
            ],
        };
        for (name, mode) in modes {
            if self.explain == Explain::Analyze {
                db.reset_io_stats();
                match db.explain_analyze(query, *mode) {
                    Ok(a) => {
                        if self.mode == Mode::Both {
                            println!("-- {name} --");
                        }
                        print!("{}", a.render());
                    }
                    Err(e) => eprintln!("error: {e}"),
                }
                continue;
            }
            db.reset_io_stats();
            let t0 = std::time::Instant::now();
            match db.query(query, *mode) {
                Err(e) => eprintln!("error: {e}"),
                Ok(result) => match result.to_xml_on(db.store()) {
                    Err(e) => eprintln!("materialize error: {e}"),
                    Ok(xml) => {
                        let dt = t0.elapsed();
                        let io = db.io_stats();
                        if self.mode == Mode::Both {
                            println!("-- {name} --");
                        }
                        print!("{xml}");
                        println!(
                            "[{} trees, {:.3}s, {} page requests, {} disk reads{}]",
                            result.len(),
                            dt.as_secs_f64(),
                            io.page_requests(),
                            io.disk.reads,
                            if result.rewritten { ", rewritten" } else { "" }
                        );
                    }
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shell() -> Shell {
        Shell {
            db: None,
            mode: Mode::GroupBy,
            exec: ExecMode::Physical,
            explain: Explain::Off,
            threads: 1,
        }
    }

    #[test]
    fn unknown_mode_argument_keeps_the_setting_and_reports_it() {
        let mut sh = shell();
        assert!(sh.command(".mode warp"), "shell keeps running");
        assert!(sh.mode == Mode::GroupBy, "typo must not change the mode");
        assert_eq!(
            bad_setting(".mode", "warp", MODE_VALUES, "mode groupby"),
            ".mode: unknown argument 'warp' (expected \
             direct|groupby|materialized|auto|both); keeping mode groupby"
        );
        // A valid argument still switches.
        assert!(sh.command(".mode materialized"));
        assert!(sh.mode == Mode::Materialized);
    }

    #[test]
    fn unknown_exec_argument_keeps_the_setting_and_reports_it() {
        let mut sh = shell();
        assert!(sh.command(".exec quantum"));
        assert_eq!(
            sh.exec,
            ExecMode::Physical,
            "typo must not change the executor"
        );
        assert_eq!(
            bad_setting(".exec", "quantum", EXEC_VALUES, "executor physical"),
            ".exec: unknown argument 'quantum' (expected physical|legacy); \
             keeping executor physical"
        );
        // The choice survives without a database and is echoed verbatim.
        assert!(sh.command(".exec legacy"));
        assert_eq!(sh.exec, ExecMode::Legacy);
        assert!(sh.command(".exec nope"));
        assert_eq!(
            sh.exec,
            ExecMode::Legacy,
            "error keeps the *current* setting"
        );
    }

    #[test]
    fn both_arms_share_one_error_shape() {
        // The unified report always names the command, quotes the
        // argument, lists the accepted values, and echoes the retained
        // setting — the format both `.mode` and `.exec` arms print.
        for (cmd, arg, expected, retained) in [
            (".mode", "x", MODE_VALUES, "mode auto"),
            (".exec", "x", EXEC_VALUES, "executor legacy"),
        ] {
            let msg = bad_setting(cmd, arg, expected, retained);
            assert!(
                msg.starts_with(&format!("{cmd}: unknown argument 'x'")),
                "{msg}"
            );
            assert!(msg.contains(expected), "{msg}");
            assert!(msg.ends_with(&format!("keeping {retained}")), "{msg}");
        }
    }

    #[test]
    fn mode_names_round_trip_through_parse() {
        for m in [
            Mode::Direct,
            Mode::GroupBy,
            Mode::Materialized,
            Mode::Auto,
            Mode::Both,
        ] {
            assert!(Mode::parse(m.name()) == Some(m));
        }
        for e in [ExecMode::Physical, ExecMode::Legacy] {
            assert_eq!(parse_exec(exec_name(e)), Some(e));
        }
    }
}
