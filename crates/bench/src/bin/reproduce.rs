//! Reproduce the experiments of *Grouping in XML* (EDBT 2002), Sec. 6.
//!
//! ```text
//! reproduce [e1] [e2] [scale] [pool] [matching] [groupby-impl] [value-index]
//!           [threads] [rollup] [cube] [faults] [recovery] [wal-overhead]
//!           [bench-smoke] [all]
//!           [--articles N] [--mem] [--threads N] [--faults SPEC] [--analyze]
//!           [--json PATH] [--baseline PATH] [--bench-threshold PCT]
//! ```
//!
//! `--analyze` additionally prints an `EXPLAIN ANALYZE` report for the
//! E1/E2 queries: the executed plan, the optimizer's rule-firing trace,
//! and per-operator trees in/out, batches, wall time and I/O from the
//! physical executor.
//!
//! With no experiment argument, `all` is assumed. `--articles` sets the
//! synthetic DBLP size for E1/E2 (default 20 000 ≈ 310 k stored nodes;
//! the paper's DBLP Journals had 4.6 M nodes — pass a larger value to
//! approach it). `--mem` keeps the page file in memory (for quick runs).
//! `--threads N` evaluates the operators with N worker threads (output is
//! byte-identical to a single-threaded run); the `threads` experiment
//! sweeps E1 over 1/2/4/8 threads, and `rollup` sweeps the E2 count
//! query over the same thread counts comparing the materialized
//! `GroupBy → Aggregate` pipeline against the fused streaming rollup.
//! The `cube` experiment (X14) sweeps the XOLAP lattice query over the
//! same thread counts, comparing the one-scan `Plan::Cube` against the
//! composed per-level rollup union it fuses away.
//!
//! The `faults` experiment replays a deterministic fault schedule against
//! the E1/E2 workload and reports per-run outcomes (absorbed via retry,
//! or a typed error — never a panic or a wrong answer). `--faults SPEC`
//! sets the schedule, e.g. `--faults seed=3,read_err=0.01,flip=0.005`;
//! the same spec syntax the `crash_recovery` suite uses, so any CI
//! failure is replayable from the command line. Passing `--faults`
//! without an experiment list implies `faults`.
//!
//! The `recovery` experiment (X16) drives the durable write path: a
//! scripted mutation workload against a WAL-backed store is killed by a
//! seeded `crash=N` schedule (`--faults seed=S,crash=N` to pick the
//! point), the page file is reopened through ARIES-style recovery, and
//! the recovered store's grouped query output is byte-diffed against a
//! never-crashed oracle holding exactly the committed documents.
//!
//! The `wal-overhead` experiment (X15) prices durability: the same bulk
//! insert runs into a fresh on-disk page file plain and through the
//! write-ahead log, over a sweep of document sizes up to `--articles`.
//! Fresh-extent commits keep the log tiny (direct page writes, one page
//! file sync, one group log flush), so the overhead is two fdatasyncs
//! plus the page-file flush — fixed costs that dominate tiny loads and
//! amortize below the 10 % target at bulk scale.
//!
//! `bench-smoke` is the CI perf gate (never part of `all`): it times the
//! tier-1 workload — E1/E2 under both plans, serial and with sharded
//! sinks at 4 threads — best-of-three, normalizes by a CPU calibration
//! loop so the numbers transfer across runners, writes the report to
//! `--json PATH`, and exits nonzero if any measurement regresses more
//! than `--bench-threshold` percent (default 25) against the committed
//! `--baseline PATH`.

use timber::{PlanMode, TimberDb};
use timber_bench::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiments: Vec<String> = Vec::new();
    let mut articles = 20_000usize;
    let mut on_disk = true;
    let mut threads = 1usize;
    let mut fault_spec: Option<String> = None;
    let mut analyze = false;
    let mut json_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut bench_threshold = 25.0f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--articles" => {
                i += 1;
                articles = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--articles N");
            }
            "--mem" => on_disk = false,
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--threads N");
            }
            "--faults" => {
                i += 1;
                fault_spec = Some(args.get(i).expect("--faults SPEC").clone());
            }
            "--analyze" => analyze = true,
            "--json" => {
                i += 1;
                json_path = Some(args.get(i).expect("--json PATH").clone());
            }
            "--baseline" => {
                i += 1;
                baseline_path = Some(args.get(i).expect("--baseline PATH").clone());
            }
            "--bench-threshold" => {
                i += 1;
                bench_threshold = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--bench-threshold PCT");
            }
            other => experiments.push(other.to_owned()),
        }
        i += 1;
    }
    if experiments.is_empty() {
        // A bare `--faults SPEC` means "replay this schedule".
        experiments.push(if fault_spec.is_some() {
            "faults".to_owned()
        } else {
            "all".to_owned()
        });
    }
    let run_all = experiments.iter().any(|e| e == "all");
    // The CI perf gate runs only when asked for by name — `all` is the
    // local exploratory sweep and must not pick up gating semantics.
    let wants_smoke = experiments.iter().any(|e| e == "bench-smoke");
    let wants = |name: &str| run_all || experiments.iter().any(|e| e == name);

    println!("== Grouping in XML (EDBT 2002) — experiment reproduction ==");
    println!(
        "synthetic DBLP: {articles} articles, 8 KB pages, 32 MB buffer pool, {} backend, {threads} worker thread(s)\n",
        if on_disk { "file" } else { "memory" }
    );

    if wants("e1") || wants("e2") {
        let mut db = build_db(articles, None, on_disk);
        db.set_threads(threads);
        println!(
            "database: {} stored nodes, {} pages ({:.1} MB)\n",
            db.store().node_count(),
            db.store().total_pages(),
            db.store().size_bytes() as f64 / (1024.0 * 1024.0)
        );
        if wants("e1") {
            run_e1(&db);
            if analyze {
                run_analyze(&db, "E1 titles", QUERY_TITLES);
            }
        }
        if wants("e2") {
            run_e2(&db);
            if analyze {
                run_analyze(&db, "E2 count", QUERY_COUNT);
            }
        }
    }
    if wants("scale") {
        run_scale(on_disk, threads);
    }
    if wants("pool") {
        run_pool(articles, on_disk, threads);
    }
    if wants("matching") {
        run_matching(articles);
    }
    if wants("groupby-impl") {
        run_groupby_impl();
    }
    if wants("value-index") {
        run_value_index();
    }
    if wants("threads") {
        run_threads(articles, on_disk);
    }
    if wants("rollup") {
        run_rollup(articles, on_disk);
    }
    if wants("cube") {
        run_cube(articles, on_disk);
    }
    if wants("faults") {
        run_faults(threads, fault_spec.as_deref());
    }
    if wants("recovery") {
        run_recovery(threads, fault_spec.as_deref());
    }
    if wants("wal-overhead") {
        run_wal_overhead(articles);
    }
    if wants_smoke {
        let ok = run_bench_smoke(
            articles,
            on_disk,
            analyze,
            json_path.as_deref(),
            baseline_path.as_deref(),
            bench_threshold,
        );
        if !ok {
            std::process::exit(1);
        }
    }
}

/// The CI perf gate: tier-1 queries, serial and sharded, best-of-three,
/// in calibration units. Returns `false` when the committed baseline is
/// violated (the caller exits nonzero).
fn run_bench_smoke(
    articles: usize,
    on_disk: bool,
    analyze: bool,
    json_path: Option<&str>,
    baseline_path: Option<&str>,
    threshold_pct: f64,
) -> bool {
    println!(
        "-- bench-smoke: CI perf gate ({articles} articles, best of 5, calibration-normalized) --"
    );
    let calibration_secs = calibrate();
    println!("calibration quantum: {calibration_secs:.4}s");
    let mut db = build_db(articles, None, on_disk);

    // The count query runs in three plan flavors: `*_groupby` pins the
    // materialized GroupBy → Aggregate reference, `*_rollup` the fused
    // streaming kernel (GroupByRewrite now fires rollup-fuse), so the
    // gate catches a regression in either path — and a fusion win that
    // stops beating the materialized floor.
    // `e2_cube*` pins the XOLAP lattice: the one-scan `Plan::Cube`
    // (rewrite mode) against the composed per-level rollup union
    // (materialized mode) it replaces — both timed here so the ≥1.5×
    // one-scan advantage is gated as a same-run ratio.
    let workload: [(&str, &str, PlanMode, usize); 11] = [
        ("e1_titles_direct", QUERY_TITLES, PlanMode::Direct, 1),
        (
            "e1_titles_groupby",
            QUERY_TITLES,
            PlanMode::GroupByRewrite,
            1,
        ),
        ("e2_count_direct", QUERY_COUNT, PlanMode::Direct, 1),
        (
            "e2_count_groupby",
            QUERY_COUNT,
            PlanMode::GroupByMaterialized,
            1,
        ),
        ("e2_count_rollup", QUERY_COUNT, PlanMode::GroupByRewrite, 1),
        (
            "e1_titles_groupby_t4",
            QUERY_TITLES,
            PlanMode::GroupByRewrite,
            4,
        ),
        (
            "e2_count_groupby_t4",
            QUERY_COUNT,
            PlanMode::GroupByMaterialized,
            4,
        ),
        (
            "e2_count_rollup_t4",
            QUERY_COUNT,
            PlanMode::GroupByRewrite,
            4,
        ),
        (
            "e2_cube_composed",
            QUERY_CUBE,
            PlanMode::GroupByMaterialized,
            1,
        ),
        ("e2_cube", QUERY_CUBE, PlanMode::GroupByRewrite, 1),
        ("e2_cube_t4", QUERY_CUBE, PlanMode::GroupByRewrite, 4),
    ];
    let mut entries = Vec::with_capacity(workload.len());
    for &(key, query, mode, threads) in &workload {
        db.set_threads(threads);
        // One discarded warmup, then best-of-5: the gate compares a
        // *minimum* against the committed baseline, so scheduler noise
        // (worst on small CI runners) cannot manufacture a regression.
        measure(&db, query, mode);
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            best = best.min(measure(&db, query, mode).elapsed.as_secs_f64());
        }
        let u = units(best, calibration_secs);
        println!("{key:<22} {best:>9.4}s = {u:>9.3} units");
        entries.push((key.to_owned(), u));
    }
    db.set_threads(4);
    if analyze {
        run_analyze(&db, "bench-smoke E1 titles (threads=4)", QUERY_TITLES);
    }

    // X15: durable-load overhead. The same bulk insert lands in the same
    // on-disk page file twice — once plain, once through the write-ahead
    // log (fresh-extent commits: direct page writes, one sync, one group
    // log flush). `load_wal` is gated against the baseline like every
    // other key; the plain twin is measured in the same run so the
    // overhead ratio is also visible without calibration.
    let load_articles = (articles / 4).max(1_000);
    let load_xml =
        datagen::DblpGenerator::new(datagen::DblpConfig::sized(load_articles)).generate_xml();
    let mut best_plain = f64::INFINITY;
    let mut best_wal = f64::INFINITY;
    for _ in 0..3 {
        best_plain = best_plain.min(timed_durable_load(&load_xml, false));
        best_wal = best_wal.min(timed_durable_load(&load_xml, true));
    }
    for (key, best) in [("load_plain", best_plain), ("load_wal", best_wal)] {
        let u = units(best, calibration_secs);
        println!("{key:<22} {best:>9.4}s = {u:>9.3} units");
        entries.push((key.to_owned(), u));
    }
    // At smoke scale the fixed fsync costs dominate a millisecond-range
    // load, so the ratio is informational only — the ≤10 % durability
    // target is measured at bulk scale by `reproduce wal-overhead` (X15).
    println!(
        "wal overhead at smoke scale: {:+.1}% (fixed-cost dominated; X15 gates at bulk scale)",
        (best_wal / best_plain - 1.0) * 100.0
    );

    // 10× scale — the symbol-path acceptance gate. The fused count
    // rollup extracts grouping keys as dictionary symbols straight from
    // the columnar label region; the replicated grouping kernel is the
    // pre-refactor data path (every witness's values materialized
    // through the buffer pool — Sec. 5.3's strawman, and what string
    // keys forced on every fold). Both sides run here, seconds apart at
    // 10× the smoke article count, so the ≥2× requirement gates the
    // refactor win itself without a baseline.
    let articles_10x = articles * 10;
    let mut db10 = build_db(articles_10x, None, on_disk);
    for (key, threads) in [("e2_count_rollup_10x", 1usize), ("e2_count_rollup_10x_t4", 4)] {
        db10.set_threads(threads);
        measure(&db10, QUERY_COUNT, PlanMode::GroupByRewrite);
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            best = best.min(
                measure(&db10, QUERY_COUNT, PlanMode::GroupByRewrite)
                    .elapsed
                    .as_secs_f64(),
            );
        }
        let u = units(best, calibration_secs);
        println!("{key:<22} {best:>9.4}s = {u:>9.3} units");
        entries.push((key.to_owned(), u));
    }
    db10.set_threads(1);
    let replicated_secs = timed_replicated_grouping(&db10);
    {
        let key = "e2_count_replicated_10x";
        let u = units(replicated_secs, calibration_secs);
        println!("{key:<22} {replicated_secs:>9.4}s = {u:>9.3} units");
        entries.push((key.to_owned(), u));
    }

    let report = BenchReport {
        calibration_secs,
        articles,
        entries,
    };
    if let Some(path) = json_path {
        std::fs::write(path, report.to_json()).expect("write --json report");
        println!("report written to {path}");
    }

    // Lattice acceptance gate: the one-scan cube must stay ≥1.5× faster
    // than running the composed per-level rollup plans. Both sides were
    // measured seconds apart on this host, so the ratio needs no
    // baseline and no calibration — it gates the fusion win itself.
    let mut cube_ok = true;
    if let (Some(cube), Some(composed)) = (report.get("e2_cube"), report.get("e2_cube_composed")) {
        let ratio = composed / cube;
        println!("one-scan cube vs composed rollups: {ratio:.2}x (gate: >= 1.50x)");
        if ratio < 1.5 {
            println!(
                "CUBE GATE FAILED: fused lattice no longer 1.5x faster than the composed plans"
            );
            cube_ok = false;
        }
    }

    // Symbol-path acceptance gate: the fused rollup over dictionary
    // symbols must beat the replicated (value-materializing) grouping
    // by ≥2× at 10× scale, measured in this same run.
    let mut symbols_ok = true;
    if let (Some(fused), Some(replicated)) = (
        report.get("e2_count_rollup_10x"),
        report.get("e2_count_replicated_10x"),
    ) {
        let ratio = replicated / fused;
        println!("symbol rollup vs replicated grouping at 10x: {ratio:.2}x (gate: >= 2.00x)");
        if ratio < 2.0 {
            println!(
                "SYMBOL GATE FAILED: columnar rollup no longer 2x faster than the replicated path"
            );
            symbols_ok = false;
        }
    }

    cube_ok
        && symbols_ok
        && match baseline_path {
            None => {
                println!("no --baseline given; measuring only, not gating");
                true
            }
            Some(path) => {
                let text = std::fs::read_to_string(path)
                    .unwrap_or_else(|e| panic!("read --baseline {path}: {e}"));
                let baseline = BenchReport::from_json(&text)
                    .unwrap_or_else(|| panic!("--baseline {path} is not a bench report"));
                let violations = report.regressions(&baseline, threshold_pct);
                if violations.is_empty() {
                    println!("within +{threshold_pct:.0} % of baseline {path} — gate passes\n");
                    true
                } else {
                    println!("PERF REGRESSION vs baseline {path}:");
                    for v in &violations {
                        println!("  {v}");
                    }
                    false
                }
            }
        }
}

/// X15: the price of durability on bulk load. The same synthetic DBLP
/// document is inserted into a fresh on-disk page file plain and through
/// the write-ahead log, best-of-three each, over a sweep of sizes — the
/// WAL's costs on a fresh-extent commit are fixed (two fdatasyncs plus
/// the page-file flush), so the percentage falls as the load grows. The
/// ≤10 % acceptance target applies at the full `--articles` scale.
fn run_wal_overhead(articles: usize) {
    println!("-- X15: WAL overhead on bulk load (fresh-extent commit path) --");
    println!(
        "{:>10}  {:>10}  {:>10}  {:>9}",
        "articles", "plain", "wal", "overhead"
    );
    let mut last_overhead = 0.0;
    for scale in [articles / 16, articles / 4, articles] {
        let scale = scale.max(100);
        let xml = datagen::DblpGenerator::new(datagen::DblpConfig::sized(scale)).generate_xml();
        let mut plain = f64::INFINITY;
        let mut wal = f64::INFINITY;
        for _ in 0..3 {
            plain = plain.min(timed_durable_load(&xml, false));
            wal = wal.min(timed_durable_load(&xml, true));
        }
        last_overhead = (wal / plain - 1.0) * 100.0;
        println!("{scale:>10}  {plain:>9.4}s  {wal:>9.4}s  {last_overhead:>+8.1}%");
    }
    println!("overhead at {articles} articles: {last_overhead:+.1}% (target <= +10%)\n");
}

/// One timed bulk insert into a fresh on-disk page file, with or
/// without the write-ahead log. Returns wall seconds.
fn timed_durable_load(xml: &str, durable: bool) -> f64 {
    use xmlstore::{wal_path_for, StoreOptions};
    let page = std::env::temp_dir().join(format!(
        "timber_bench_load_{}_{}.pages",
        std::process::id(),
        durable
    ));
    let wal_p = wal_path_for(&page);
    let _ = std::fs::remove_file(&page);
    let _ = std::fs::remove_file(&wal_p);
    let mut opts = StoreOptions {
        pool_pages: 4096,
        ..StoreOptions::in_memory()
    }
    .with_path(&page);
    if durable {
        opts = opts.with_durable();
    }
    let t0 = std::time::Instant::now();
    let mut db = timber::TimberDb::create(&opts).expect("create load store");
    db.insert_xml(xml).expect("bulk insert");
    let dt = t0.elapsed().as_secs_f64();
    drop(db);
    let _ = std::fs::remove_file(&page);
    let _ = std::fs::remove_file(&wal_p);
    dt
}

fn run_analyze(db: &timber::TimberDb, label: &str, query: &str) {
    for (name, mode) in [
        ("direct", PlanMode::Direct),
        ("groupby", PlanMode::GroupByRewrite),
    ] {
        println!("-- EXPLAIN ANALYZE: {label}, {name} plan --");
        match db.explain_analyze(query, mode) {
            Ok(a) => println!("{}", a.render()),
            Err(e) => println!("error: {e}"),
        }
    }
}

fn run_faults(threads: usize, spec: Option<&str>) {
    use xmlstore::FaultConfig;

    let schedule: FaultConfig = spec
        .unwrap_or("seed=1,read_err=0.005,flip=0.005")
        .parse()
        .expect("--faults SPEC (e.g. seed=3,read_err=0.01,flip=0.005,torn=0.01,after=100)");
    // A small database against a deliberately tiny pool: nearly every
    // page access is a physical read the schedule can hit.
    let articles = 2_000;
    println!("-- X10: deterministic fault-schedule replay ({articles} articles, 8-page pool) --");
    println!("schedule: {schedule}");
    let mut db = build_db(articles, Some(8 * 8192), true);
    db.set_threads(threads);

    let runs = [
        ("E1 titles/direct", QUERY_TITLES, PlanMode::Direct),
        ("E1 titles/groupby", QUERY_TITLES, PlanMode::GroupByRewrite),
        ("E2 count/direct", QUERY_COUNT, PlanMode::Direct),
        ("E2 count/groupby", QUERY_COUNT, PlanMode::GroupByRewrite),
    ];
    let reference: Vec<RunStats> = runs.iter().map(|&(_, q, m)| measure(&db, q, m)).collect();

    db.set_faults(Some(schedule)).expect("arm fault schedule");
    for (i, &(label, q, m)) in runs.iter().enumerate() {
        match try_measure(&db, q, m) {
            Ok(s) => {
                assert_eq!(
                    (s.output_trees, s.output_bytes),
                    (reference[i].output_trees, reference[i].output_bytes),
                    "{label}: output diverged under faults"
                );
                println!(
                    "{label:<20} ok     {:>8.3}s, {:>6} retries absorbed, output matches fault-free run",
                    s.elapsed.as_secs_f64(),
                    s.io.buffer.retries,
                );
            }
            Err(e) => println!("{label:<20} error  {e}"),
        }
    }
    let stats = db.fault_stats().expect("schedule is armed");
    db.set_faults(None).expect("disarm fault schedule");
    println!(
        "injected over {} eligible ops: {} read errors, {} write errors, {} read flips, {} write flips, {} torn writes\n",
        stats.ops,
        stats.read_errors,
        stats.write_errors,
        stats.read_flips,
        stats.write_flips,
        stats.torn_writes,
    );
}

/// X16: the durable write path under a seeded kill. A scripted mutation
/// workload (inserts, a delete, a replace, a checkpoint) runs against a
/// WAL-backed store with a `crash=N` schedule armed; the page file is
/// then reopened through ARIES recovery and checked — document by
/// document and byte-by-byte on the grouped query output — against a
/// never-crashed oracle holding exactly the committed documents.
fn run_recovery(threads: usize, spec: Option<&str>) {
    use datagen::{DblpConfig, DblpGenerator};
    use timber::TimberDb;
    use xmlstore::{wal_path_for, FaultConfig, StoreOptions};

    let schedule: FaultConfig = spec
        .unwrap_or("seed=1,crash=12")
        .parse()
        .expect("--faults SPEC (e.g. seed=3,crash=25)");
    println!("-- X16: WAL + ARIES crash recovery replay --");
    println!("schedule: {schedule}");

    let page =
        std::env::temp_dir().join(format!("timber_recovery_x16_{}.pages", std::process::id()));
    let wal_p = wal_path_for(&page);
    let _ = std::fs::remove_file(&page);
    let _ = std::fs::remove_file(&wal_p);
    let opts = StoreOptions {
        pool_pages: 256,
        ..StoreOptions::in_memory()
    }
    .with_path(&page)
    .with_durable();

    let mut db = TimberDb::create(&opts).expect("create durable store");
    db.set_threads(threads);
    db.set_faults(Some(schedule)).expect("arm crash schedule");

    // The committed model: XML of every live document, insertion order.
    let mut alive: Vec<String> = Vec::new();
    let doc = |n: usize| DblpGenerator::new(DblpConfig::sized(n)).generate_xml();
    type ScriptStep = Box<dyn Fn(&mut TimberDb, &mut Vec<String>) -> timber::Result<()>>;
    let script: [(&str, ScriptStep); 6] = [
        (
            "insert 200",
            Box::new(move |db, alive| {
                let xml = doc(200);
                db.insert_xml(&xml).map(|_| alive.push(xml))
            }),
        ),
        (
            "insert 120",
            Box::new(move |db, alive| {
                let xml = doc(120);
                db.insert_xml(&xml).map(|_| alive.push(xml))
            }),
        ),
        ("checkpoint", Box::new(|db, _| db.checkpoint())),
        (
            "delete first",
            Box::new(|db, alive| {
                let id = db.documents()[0].0;
                db.delete_document(id).map(|()| {
                    alive.remove(0);
                })
            }),
        ),
        (
            "replace first",
            Box::new(move |db, alive| {
                let id = db.documents()[0].0;
                let xml = doc(80);
                db.replace_xml(id, &xml).map(|_| {
                    alive.remove(0);
                    alive.push(xml);
                })
            }),
        ),
        (
            "insert 150",
            Box::new(move |db, alive| {
                let xml = doc(150);
                db.insert_xml(&xml).map(|_| alive.push(xml))
            }),
        ),
    ];
    for (label, step) in &script {
        match step(&mut db, &mut alive) {
            Ok(()) => println!("{label:<15} committed"),
            Err(e) => {
                println!("{label:<15} CRASHED mid-write ({e})");
                break;
            }
        }
    }
    let write_ops = db.fault_stats().map(|s| s.write_ops).unwrap_or(0);
    drop(db);

    let t0 = std::time::Instant::now();
    let recovered = TimberDb::open(&opts).expect("reopen through recovery");
    let dt = t0.elapsed();
    let info = recovered.recovery_info().expect("recovery ran");
    println!(
        "reopened in {:.3}s after {write_ops} write ops: {} committed txns, {} losers rolled back, {} images redone, {} undone",
        dt.as_secs_f64(),
        info.committed,
        info.losers,
        info.redone,
        info.undone
    );
    assert_eq!(
        recovered.documents().len(),
        alive.len(),
        "recovered store must hold exactly the committed documents"
    );

    let mut oracle = TimberDb::create(&StoreOptions::in_memory()).expect("oracle store");
    for xml in &alive {
        oracle.insert_xml(xml).expect("oracle insert");
    }
    for (label, query) in [("E1 titles", QUERY_TITLES), ("E2 count", QUERY_COUNT)] {
        let got = recovered
            .query(query, PlanMode::GroupByRewrite)
            .and_then(|r| r.to_xml_on(recovered.store()))
            .expect("recovered query");
        let want = oracle
            .query(query, PlanMode::GroupByRewrite)
            .and_then(|r| r.to_xml_on(oracle.store()))
            .expect("oracle query");
        assert_eq!(got, want, "{label}: recovered output diverges from oracle");
        println!(
            "{label:<15} grouped output matches the never-crashed oracle ({} bytes)",
            got.len()
        );
    }
    drop(recovered);
    let _ = std::fs::remove_file(&page);
    let _ = std::fs::remove_file(&wal_p);
    println!();
}

fn run_e1(db: &timber::TimberDb) {
    println!(
        "-- E1: Query 1, titles output (paper: direct 323.966 s vs GROUPBY 178.607 s, 1.81x) --"
    );
    let d = measure(db, QUERY_TITLES, PlanMode::Direct);
    let g = measure(db, QUERY_TITLES, PlanMode::GroupByRewrite);
    assert!(g.rewritten, "rewrite must fire");
    println!("{}", format_row("E1 nested form", &d, &g));
    let d2 = measure(db, QUERY_TITLES_LET, PlanMode::Direct);
    let g2 = measure(db, QUERY_TITLES_LET, PlanMode::GroupByRewrite);
    println!("{}", format_row("E1 LET form", &d2, &g2));
    println!(
        "paper ratio 1.81x; measured {:.2}x (nested), {:.2}x (LET); output: {} authorpubs, {:.1} MB\n",
        speedup(&d, &g),
        speedup(&d2, &g2),
        g.output_trees,
        g.output_bytes as f64 / (1024.0 * 1024.0)
    );
}

fn run_e2(db: &timber::TimberDb) {
    println!("-- E2: count variant (paper: direct 155.564 s vs GROUPBY 23.033 s, 6.75x) --");
    let d = measure(db, QUERY_COUNT, PlanMode::Direct);
    let g = measure(db, QUERY_COUNT, PlanMode::GroupByRewrite);
    println!("{}", format_row("E2 count", &d, &g));
    println!(
        "paper ratio 6.75x; measured {:.2}x; output: {} authorpubs, {:.2} MB\n",
        speedup(&d, &g),
        g.output_trees,
        g.output_bytes as f64 / (1024.0 * 1024.0)
    );
}

fn run_scale(on_disk: bool, threads: usize) {
    println!("-- X1: scale sweep (direct/GROUPBY ratio vs database size) --");
    for articles in [2_000, 5_000, 10_000, 20_000, 50_000] {
        let mut db = build_db(articles, None, on_disk);
        db.set_threads(threads);
        let d = measure(&db, QUERY_TITLES, PlanMode::Direct);
        let g = measure(&db, QUERY_TITLES, PlanMode::GroupByRewrite);
        let dc = measure(&db, QUERY_COUNT, PlanMode::Direct);
        let gc = measure(&db, QUERY_COUNT, PlanMode::GroupByRewrite);
        println!(
            "{articles:>7} articles ({:>8} nodes): titles {:>5.2}x  count {:>5.2}x",
            db.store().node_count(),
            speedup(&d, &g),
            speedup(&dc, &gc)
        );
    }
    println!();
}

fn run_pool(articles: usize, on_disk: bool, threads: usize) {
    println!("-- X2: buffer-pool sweep (Query 1 titles, {articles} articles) --");
    for mb in [4, 8, 16, 32, 64, 128] {
        let mut db = build_db(articles, Some(mb << 20), on_disk);
        db.set_threads(threads);
        let d = measure(&db, QUERY_TITLES, PlanMode::Direct);
        let g = measure(&db, QUERY_TITLES, PlanMode::GroupByRewrite);
        println!(
            "{mb:>4} MB pool: direct {:>8.3}s / {:>8} disk reads | groupby {:>8.3}s / {:>8} disk reads | {:>5.2}x",
            d.elapsed.as_secs_f64(),
            d.io.disk.reads,
            g.elapsed.as_secs_f64(),
            g.io.disk.reads,
            speedup(&d, &g)
        );
    }
    println!();
}

fn run_matching(articles: usize) {
    use tax::matching::{match_db, naive::match_db_scan};
    use tax::pattern::{Axis, PatternTree, Pred};

    let articles = articles.min(5_000); // the scan baseline is slow by design
    println!(
        "-- X3: pattern matching, index+structural join vs full scan ({articles} articles) --"
    );
    let db = build_db(articles, None, false);
    let mut p = PatternTree::with_root(Pred::tag("article"));
    p.add_child(p.root(), Axis::Child, Pred::tag("title"));
    p.add_child(p.root(), Axis::Child, Pred::tag("author"));

    db.reset_io_stats();
    let t0 = std::time::Instant::now();
    let indexed = match_db(db.store(), &p).unwrap();
    let t_index = t0.elapsed();
    let io_index = db.io_stats().page_requests();

    db.reset_io_stats();
    let t0 = std::time::Instant::now();
    let scanned = match_db_scan(db.store(), &p).unwrap();
    let t_scan = t0.elapsed();
    let io_scan = db.io_stats().page_requests();

    assert_eq!(indexed.len(), scanned.len());
    println!(
        "index+joins: {:>9.3}s, {:>9} page requests | full scan: {:>9.3}s, {:>9} page requests | {:.1}x fewer pages\n",
        t_index.as_secs_f64(),
        io_index,
        t_scan.as_secs_f64(),
        io_scan,
        io_scan as f64 / io_index.max(1) as f64
    );
}

fn run_value_index() {
    use datagen::{DblpConfig, DblpGenerator};
    use tax::matching::match_db;
    use tax::pattern::{Axis, PatternTree, Pred};
    use timber::TimberDb;
    use xmlstore::StoreOptions;

    let articles = 20_000;
    println!("-- X8: content value index vs per-candidate look-ups ({articles} articles) --");
    let xml = DblpGenerator::new(DblpConfig::sized(articles)).generate_xml();
    let with_vi = TimberDb::load_xml(&xml, &StoreOptions::default().with_value_index()).unwrap();
    let without = TimberDb::load_xml(&xml, &StoreOptions::default()).unwrap();

    // Find the most prolific author's name for a selective predicate.
    let store = without.store();
    let author_tag = store.tag_id("author").unwrap();
    let mut counts: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    for e in store.nodes_with_tag(author_tag) {
        *counts
            .entry(store.content(e.id).unwrap().unwrap())
            .or_default() += 1;
    }
    let (top, _) = counts.iter().max_by_key(|(_, n)| **n).unwrap();

    let mut p = PatternTree::with_root(Pred::tag("article"));
    p.add_child(
        p.root(),
        Axis::Child,
        Pred::tag("author").and(Pred::content_eq(top.clone())),
    );

    for (name, db) in [("value index", &with_vi), ("tag index only", &without)] {
        db.clear_buffer_pool().unwrap();
        db.reset_io_stats();
        let t0 = std::time::Instant::now();
        let bindings = match_db(db.store(), &p).unwrap();
        println!(
            "{name:>15}: {:>8.4}s, {:>8} page requests, {} matches",
            t0.elapsed().as_secs_f64(),
            db.io_stats().page_requests(),
            bindings.len()
        );
    }
    println!();
}

fn run_threads(articles: usize, on_disk: bool) {
    println!("-- X5: worker-thread sweep (E1 queries, {articles} articles) --");
    let mut db = build_db(articles, None, on_disk);
    let mut base: Option<(f64, f64)> = None;
    for threads in [1usize, 2, 4, 8] {
        db.set_threads(threads);
        let d = measure(&db, QUERY_TITLES, PlanMode::Direct);
        let g = measure(&db, QUERY_TITLES, PlanMode::GroupByRewrite);
        let (dt, gt) = (d.elapsed.as_secs_f64(), g.elapsed.as_secs_f64());
        let (d1, g1) = *base.get_or_insert((dt, gt));
        println!(
            "{threads:>2} thread(s): direct {dt:>8.3}s ({:>4.2}x vs 1T) | groupby {gt:>8.3}s ({:>4.2}x vs 1T)",
            d1 / dt,
            g1 / gt,
        );
    }
    println!("(outputs are byte-identical across thread counts by construction)\n");
}

fn run_rollup(articles: usize, on_disk: bool) {
    println!(
        "-- X13: rollup fusion (E2 count: materialized GroupBy → Aggregate vs fused streaming rollup, {articles} articles) --"
    );
    let mut db = build_db(articles, None, on_disk);
    for threads in [1usize, 2, 4, 8] {
        db.set_threads(threads);
        let m = measure(&db, QUERY_COUNT, PlanMode::GroupByMaterialized);
        let r = measure(&db, QUERY_COUNT, PlanMode::GroupByRewrite);
        assert_eq!(
            (m.output_trees, m.output_bytes),
            (r.output_trees, r.output_bytes),
            "fused rollup output diverged from the materialized pipeline"
        );
        let (mt, rt) = (m.elapsed.as_secs_f64(), r.elapsed.as_secs_f64());
        println!(
            "{threads:>2} thread(s): materialized {mt:>8.3}s ({:>8} pages) | rollup {rt:>8.3}s ({:>8} pages) | {:.2}x faster",
            m.io.page_requests(),
            r.io.page_requests(),
            mt / rt,
        );
    }
    println!("(the differential suite pins byte-identity; see tests/tests/rollup.rs)\n");
}

fn run_cube(articles: usize, on_disk: bool) {
    println!(
        "-- X14: grouping lattice (journal → year → author cube: composed per-level rollups vs one-scan Cube, {articles} articles) --"
    );
    let mut db = build_db(articles, None, on_disk);
    for threads in [1usize, 2, 4, 8] {
        db.set_threads(threads);
        let c = measure(&db, QUERY_CUBE, PlanMode::GroupByMaterialized);
        let f = measure(&db, QUERY_CUBE, PlanMode::GroupByRewrite);
        // The fused output carries per-level markers the composed union
        // lacks, so tree/byte counts differ by exactly those markers;
        // the differential suite (tests/tests/cube.rs) pins the stripped
        // outputs byte for byte. Here the group count must agree.
        assert_eq!(
            c.output_trees, f.output_trees,
            "one-scan cube group count diverged from the composed lattice"
        );
        let (ct, ft) = (c.elapsed.as_secs_f64(), f.elapsed.as_secs_f64());
        println!(
            "{threads:>2} thread(s): composed {ct:>8.3}s ({:>8} pages) | cube {ft:>8.3}s ({:>8} pages) | {:.2}x faster",
            c.io.page_requests(),
            f.io.page_requests(),
            ct / ft,
        );
    }
    println!("(all prefix levels share one scan and one accumulator pass; see DESIGN.md)\n");
}

/// Time the pre-refactor grouping data path at the given database's
/// scale: `groupby_replicated` materializes every witness's grouping
/// values (and member subtrees) through the buffer pool, which is what
/// string keys forced on the grouping kernel before values were
/// dictionary-interned. The select+project input build is untimed and
/// shared in shape with the fused plan's scan, so the timing isolates
/// the grouping work the symbol path replaces. Best-of-three seconds,
/// cold buffer pool each run — the same protocol `measure` uses.
fn timed_replicated_grouping(db: &TimberDb) -> f64 {
    use tax::ops::groupby::{groupby_replicated, BasisItem};
    use tax::ops::project::ProjectItem;
    use tax::ops::{project, select_db};
    use tax::pattern::{Axis, PatternTree, Pred};

    let store = db.store();
    let mut sp = PatternTree::with_root(Pred::tag("doc_root"));
    let art = sp.add_child(sp.root(), Axis::Descendant, Pred::tag("article"));
    let sel = select_db(store, &sp, &[art]).unwrap();
    let input = project(store, &sel, &sp, &[ProjectItem::deep(art)], true).unwrap();

    let mut gp = PatternTree::with_root(Pred::tag("article"));
    let author = gp.add_child(gp.root(), Axis::Child, Pred::tag("author"));
    let basis = [BasisItem::content(author)];

    let mut best = f64::INFINITY;
    for _ in 0..3 {
        db.clear_buffer_pool().unwrap();
        db.reset_io_stats();
        let t0 = std::time::Instant::now();
        let groups = groupby_replicated(store, &input, &gp, &basis, &[]).unwrap();
        best = best.min(t0.elapsed().as_secs_f64());
        assert!(!groups.is_empty(), "replicated grouping produced no groups");
    }
    best
}

fn run_groupby_impl() {
    use tax::ops::groupby::{groupby, groupby_replicated, BasisItem};
    use tax::ops::project::ProjectItem;
    use tax::ops::{project, select_db};
    use tax::pattern::{Axis, PatternTree, Pred};

    let articles = 5_000;
    println!("-- X4: grouping implementation, identifier processing vs eager replication ({articles} articles) --");
    let db = build_db(articles, None, false);
    let store = db.store();
    let mut sp = PatternTree::with_root(Pred::tag("doc_root"));
    let art = sp.add_child(sp.root(), Axis::Descendant, Pred::tag("article"));
    let sel = select_db(store, &sp, &[art]).unwrap();
    let input = project(store, &sel, &sp, &[ProjectItem::deep(art)], true).unwrap();

    let mut gp = PatternTree::with_root(Pred::tag("article"));
    let author = gp.add_child(gp.root(), Axis::Child, Pred::tag("author"));
    let basis = [BasisItem::content(author)];

    db.clear_buffer_pool().unwrap();
    db.reset_io_stats();
    let t0 = std::time::Instant::now();
    let fast = groupby(store, &input, &gp, &basis, &[]).unwrap();
    let t_fast = t0.elapsed();
    let io_fast = db.io_stats().page_requests();

    db.clear_buffer_pool().unwrap();
    db.reset_io_stats();
    let t0 = std::time::Instant::now();
    let slow = groupby_replicated(store, &input, &gp, &basis, &[]).unwrap();
    let t_slow = t0.elapsed();
    let io_slow = db.io_stats().page_requests();

    assert_eq!(fast.len(), slow.len());
    println!(
        "identifier: {:>8.3}s, {:>9} page requests | replicated: {:>8.3}s, {:>9} page requests | {:.1}x fewer pages\n",
        t_fast.as_secs_f64(),
        io_fast,
        t_slow.as_secs_f64(),
        io_slow,
        io_slow as f64 / io_fast.max(1) as f64
    );
}
