//! X2: buffer-pool sensitivity. The paper fixes a 32 MB pool against a
//! ~100 MB database; this sweep varies the pool (pages cached) against a
//! fixed database and measures the count query under both plans — the
//! direct plan touches ~3.5× the pages, so it degrades faster as the
//! pool shrinks.

use microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use timber::PlanMode;
use timber_bench::{build_db, QUERY_COUNT};

fn bench_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool_sweep_count");
    group.sample_size(10);
    let articles = 4_000usize; // ~1.5 MB of pages
    for &pool_kb in &[64usize, 256, 1024, 4096] {
        let db = build_db(articles, Some(pool_kb << 10), true);
        for (name, mode) in [
            ("direct", PlanMode::Direct),
            ("groupby", PlanMode::GroupByRewrite),
        ] {
            group.bench_with_input(
                BenchmarkId::new(name, format!("{pool_kb}KB")),
                &pool_kb,
                |b, _| {
                    b.iter(|| {
                        db.clear_buffer_pool().expect("clear");
                        let r = db.query(QUERY_COUNT, mode).expect("query");
                        std::hint::black_box(r.len())
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_pool);
criterion_main!(benches);
