//! X11: operator-pipeline cost of the TAX kernels whose signatures
//! transfer collection ownership (`dup_elim`, `aggregate`, `rename`,
//! …). Each iteration runs a full pipeline so intermediate collections
//! are consumed in place rather than deep-cloned between stages — the
//! shape the evaluator executes.

use microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tax::ops::aggregate::{aggregate, AggFunc, UpdateSpec};
use tax::ops::groupby::{groupby, BasisItem};
use tax::ops::project::ProjectItem;
use tax::ops::rename::rename_root;
use tax::ops::{dup_elim, project, select_db};
use tax::pattern::{Axis, PatternTree, Pred};
use tax::tags;
use timber_bench::build_db;

/// E1's author prefix: select every distinct author element.
fn bench_dupelim_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("tax_ops_dupelim");
    group.sample_size(10);
    for &articles in &[2_000usize, 8_000] {
        let db = build_db(articles, None, false);
        let store = db.store();
        let mut sp = PatternTree::with_root(Pred::tag("doc_root"));
        let author = sp.add_child(sp.root(), Axis::Descendant, Pred::tag("author"));
        group.bench_with_input(
            BenchmarkId::new("select_project_dupelim", articles),
            &articles,
            |b, _| {
                b.iter(|| {
                    let sel = select_db(store, &sp, &[author]).unwrap();
                    let proj = project(
                        store,
                        &sel,
                        &sp,
                        &[ProjectItem::shallow(sp.root()), ProjectItem::deep(author)],
                        true,
                    )
                    .unwrap();
                    std::hint::black_box(dup_elim(store, proj, &sp, author).unwrap().len())
                })
            },
        );
    }
    group.finish();
}

/// Grouping followed by a three-aggregate chain and a root rename —
/// every stage after GROUPBY consumes its input collection.
fn bench_aggregate_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("tax_ops_aggregate");
    group.sample_size(10);
    for &articles in &[2_000usize, 8_000] {
        let db = build_db(articles, None, false);
        let store = db.store();
        let mut sp = PatternTree::with_root(Pred::tag("doc_root"));
        let art = sp.add_child(sp.root(), Axis::Descendant, Pred::tag("article"));
        let sel = select_db(store, &sp, &[art]).unwrap();
        let input = project(store, &sel, &sp, &[ProjectItem::deep(art)], true).unwrap();
        let mut gp = PatternTree::with_root(Pred::tag("article"));
        let author = gp.add_child(gp.root(), Axis::Child, Pred::tag("author"));
        let basis = [BasisItem::content(author)];
        let mut ap = PatternTree::with_root(Pred::tag(tags::GROUP_ROOT));
        let sub = ap.add_child(ap.root(), Axis::Child, Pred::tag(tags::GROUP_SUBROOT));
        let member = ap.add_child(sub, Axis::Child, Pred::tag("article"));
        let year = ap.add_child(member, Axis::Child, Pred::tag("year"));
        group.bench_with_input(
            BenchmarkId::new("groupby_count_min_max_rename", articles),
            &articles,
            |b, _| {
                b.iter(|| {
                    let groups = groupby(store, &input, &gp, &basis, &[]).unwrap();
                    let counted = aggregate(
                        store,
                        groups,
                        &ap,
                        AggFunc::Count,
                        member,
                        "pubcount",
                        UpdateSpec::AfterLastChild(0),
                    )
                    .unwrap();
                    let lo = aggregate(
                        store,
                        counted,
                        &ap,
                        AggFunc::Min,
                        year,
                        "first_year",
                        UpdateSpec::AfterLastChild(0),
                    )
                    .unwrap();
                    let hi = aggregate(
                        store,
                        lo,
                        &ap,
                        AggFunc::Max,
                        year,
                        "last_year",
                        UpdateSpec::AfterLastChild(0),
                    )
                    .unwrap();
                    std::hint::black_box(rename_root(hi, "authorgroup").unwrap().len())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_dupelim_pipeline, bench_aggregate_chain);
criterion_main!(benches);
