//! X4: the grouping implementation choice of Sec. 5.3 — identifier
//! processing (populate only grouping/sorting values, keep members as
//! references) vs eager replication (materialize every member per
//! witness before grouping).

use microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tax::ops::groupby::{
    groupby, groupby_opts, groupby_replicated, BasisItem, Direction, GroupOrder,
};
use tax::ops::project::ProjectItem;
use tax::ops::{project, select_db};
use tax::pattern::{Axis, PatternTree, Pred};
use tax::{Collection, ExecOptions};
use timber_bench::build_db;

fn article_collection(db: &timber::TimberDb) -> Collection {
    let store = db.store();
    let mut sp = PatternTree::with_root(Pred::tag("doc_root"));
    let art = sp.add_child(sp.root(), Axis::Descendant, Pred::tag("article"));
    let sel = select_db(store, &sp, &[art]).unwrap();
    project(store, &sel, &sp, &[ProjectItem::deep(art)], true).unwrap()
}

fn bench_groupby_impls(c: &mut Criterion) {
    let mut group = c.benchmark_group("groupby_impl");
    group.sample_size(10);
    for &articles in &[500usize, 2_000] {
        let db = build_db(articles, None, false);
        let input = article_collection(&db);
        let mut gp = PatternTree::with_root(Pred::tag("article"));
        let title = gp.add_child(gp.root(), Axis::Child, Pred::tag("title"));
        let author = gp.add_child(gp.root(), Axis::Child, Pred::tag("author"));
        let basis = [BasisItem::content(author)];
        let ordering = [GroupOrder {
            label: title,
            direction: Direction::Descending,
        }];
        group.bench_with_input(
            BenchmarkId::new("identifier", articles),
            &articles,
            |b, _| {
                b.iter(|| {
                    std::hint::black_box(
                        groupby(db.store(), &input, &gp, &basis, &ordering)
                            .unwrap()
                            .len(),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("replicated", articles),
            &articles,
            |b, _| {
                b.iter(|| {
                    std::hint::black_box(
                        groupby_replicated(db.store(), &input, &gp, &basis, &ordering)
                            .unwrap()
                            .len(),
                    )
                })
            },
        );
    }
    group.finish();
}

/// Thread axis: the identifier-processing GROUPBY with its per-tree
/// witness extraction fanned out over 1/2/4 worker threads. The merge
/// stays sequential, so every thread count produces identical groups.
fn bench_groupby_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("groupby_threads");
    group.sample_size(10);
    let articles = 2_000usize;
    let db = build_db(articles, None, false);
    let input = article_collection(&db);
    let mut gp = PatternTree::with_root(Pred::tag("article"));
    let title = gp.add_child(gp.root(), Axis::Child, Pred::tag("title"));
    let author = gp.add_child(gp.root(), Axis::Child, Pred::tag("author"));
    let basis = [BasisItem::content(author)];
    let ordering = [GroupOrder {
        label: title,
        direction: Direction::Descending,
    }];
    for &threads in &[1usize, 2, 4] {
        let opts = ExecOptions::with_threads(threads);
        group.bench_with_input(BenchmarkId::new("identifier", threads), &threads, |b, _| {
            b.iter(|| {
                std::hint::black_box(
                    groupby_opts(db.store(), &input, &gp, &basis, &ordering, &opts)
                        .unwrap()
                        .len(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_groupby_impls, bench_groupby_threads);
criterion_main!(benches);
