//! E2 (Sec. 6, second experiment): the `count($t)` variant — direct vs
//! GROUPBY. The paper reports 155.564 s vs 23.033 s (≈6.75×): the gap
//! widens because the GROUPBY plan confines data look-ups to author
//! content while the direct plan still builds the whole join result.

use microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use timber::PlanMode;
use timber_bench::{build_db, QUERY_COUNT};

fn bench_e2(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_group_count");
    group.sample_size(10);
    for &articles in &[1_000usize, 4_000] {
        let db = build_db(articles, None, false);
        for (name, mode) in [
            ("direct", PlanMode::Direct),
            ("groupby", PlanMode::GroupByRewrite),
        ] {
            group.bench_with_input(BenchmarkId::new(name, articles), &articles, |b, _| {
                b.iter(|| {
                    let r = db.query(QUERY_COUNT, mode).expect("query");
                    let xml = r.to_xml_on(db.store()).expect("serialize");
                    std::hint::black_box(xml.len())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_e2);
criterion_main!(benches);
