//! E1 (Sec. 6, first experiment): Query 1 with title output — direct
//! join plan vs GROUPBY plan. The paper reports 323.966 s vs 178.607 s
//! (≈1.81×) on DBLP Journals; the benchmark checks the same ordering and
//! a comparable factor on the synthetic bibliography.

use microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use timber::PlanMode;
use timber_bench::{build_db, QUERY_TITLES};

fn bench_e1(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_group_titles");
    group.sample_size(10);
    for &articles in &[1_000usize, 4_000] {
        let db = build_db(articles, None, false);
        for (name, mode) in [
            ("direct", PlanMode::Direct),
            ("groupby", PlanMode::GroupByRewrite),
        ] {
            group.bench_with_input(BenchmarkId::new(name, articles), &articles, |b, _| {
                b.iter(|| {
                    let r = db.query(QUERY_TITLES, mode).expect("query");
                    let xml = r.to_xml_on(db.store()).expect("serialize");
                    std::hint::black_box(xml.len())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_e1);
criterion_main!(benches);
