//! X3: pattern-tree matching strategies (Sec. 5.2).
//!
//! * index-driven matching with sorted containment joins (TIMBER's way)
//!   vs the full-database-scan matcher;
//! * the binary structural join itself: single-pass stack-tree join vs
//!   nested loops, on the (article, author) lists.

use microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tax::matching::structural::{nested_loop_join, stack_tree_join, JoinAxis};
use tax::matching::{match_db, naive::match_db_scan};
use tax::pattern::{Axis, PatternTree, Pred};
use timber_bench::build_db;

fn fig1_like_pattern() -> PatternTree {
    let mut p = PatternTree::with_root(Pred::tag("article"));
    p.add_child(p.root(), Axis::Child, Pred::tag("title"));
    p.add_child(p.root(), Axis::Child, Pred::tag("author"));
    p
}

fn bench_matchers(c: &mut Criterion) {
    let mut group = c.benchmark_group("pattern_matching");
    group.sample_size(10);
    let db = build_db(1_000, None, false);
    let p = fig1_like_pattern();
    group.bench_function("index_structural_joins", |b| {
        b.iter(|| std::hint::black_box(match_db(db.store(), &p).unwrap().len()))
    });
    group.bench_function("full_database_scan", |b| {
        b.iter(|| std::hint::black_box(match_db_scan(db.store(), &p).unwrap().len()))
    });
    group.finish();
}

fn bench_binary_joins(c: &mut Criterion) {
    let mut group = c.benchmark_group("structural_join");
    let db = build_db(4_000, None, false);
    let store = db.store();
    let articles = store
        .nodes_with_tag(store.tag_id("article").unwrap())
        .to_vec();
    let authors = store
        .nodes_with_tag(store.tag_id("author").unwrap())
        .to_vec();
    for (name, size) in [("small", 400usize), ("full", articles.len())] {
        let a = &articles[..size.min(articles.len())];
        group.bench_with_input(BenchmarkId::new("stack_tree", name), &a, |b, a| {
            b.iter(|| {
                std::hint::black_box(stack_tree_join(a, &authors, JoinAxis::ParentChild).len())
            })
        });
        group.bench_with_input(BenchmarkId::new("nested_loop", name), &a, |b, a| {
            b.iter(|| {
                std::hint::black_box(nested_loop_join(a, &authors, JoinAxis::ParentChild).len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matchers, bench_binary_joins);
criterion_main!(benches);
