//! X1: how the direct/GROUPBY gap moves with database size (Query 1,
//! titles). The paper gives one size (4.6 M nodes); this sweep shows the
//! crossover behaviour — at tiny sizes plan overheads dominate and the
//! plans tie, at realistic sizes the GROUPBY plan pulls ahead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use timber::PlanMode;
use timber_bench::{build_db, QUERY_TITLES};

fn bench_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale_sweep_titles");
    group.sample_size(10);
    for &articles in &[250usize, 1_000, 4_000, 8_000] {
        let db = build_db(articles, None, false);
        group.throughput(Throughput::Elements(articles as u64));
        for (name, mode) in [
            ("direct", PlanMode::Direct),
            ("groupby", PlanMode::GroupByRewrite),
        ] {
            group.bench_with_input(BenchmarkId::new(name, articles), &articles, |b, _| {
                b.iter(|| {
                    let r = db.query(QUERY_TITLES, mode).expect("query");
                    std::hint::black_box(r.len())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scale);
criterion_main!(benches);
