//! X1: how the direct/GROUPBY gap moves with database size (Query 1,
//! titles). The paper gives one size (4.6 M nodes); this sweep shows the
//! crossover behaviour — at tiny sizes plan overheads dominate and the
//! plans tie, at realistic sizes the GROUPBY plan pulls ahead.

use microbench::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use timber::PlanMode;
use timber_bench::{build_db, QUERY_TITLES};

fn bench_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale_sweep_titles");
    group.sample_size(10);
    for &articles in &[250usize, 1_000, 4_000, 8_000] {
        let db = build_db(articles, None, false);
        group.throughput(Throughput::Elements(articles as u64));
        for (name, mode) in [
            ("direct", PlanMode::Direct),
            ("groupby", PlanMode::GroupByRewrite),
        ] {
            group.bench_with_input(BenchmarkId::new(name, articles), &articles, |b, _| {
                b.iter(|| {
                    let r = db.query(QUERY_TITLES, mode).expect("query");
                    std::hint::black_box(r.len())
                })
            });
        }
    }
    group.finish();
}

/// Thread axis: both plans of Query 1 at a fixed size, evaluated with
/// 1/2/4 worker threads. Outputs are byte-identical across thread
/// counts; only wall-clock time moves.
fn bench_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("thread_sweep_titles");
    group.sample_size(10);
    let articles = 4_000usize;
    let mut db = build_db(articles, None, false);
    group.throughput(Throughput::Elements(articles as u64));
    for &threads in &[1usize, 2, 4] {
        db.set_threads(threads);
        for (name, mode) in [
            ("direct", PlanMode::Direct),
            ("groupby", PlanMode::GroupByRewrite),
        ] {
            group.bench_with_input(BenchmarkId::new(name, threads), &threads, |b, _| {
                b.iter(|| {
                    let r = db.query(QUERY_TITLES, mode).expect("query");
                    std::hint::black_box(r.len())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scale, bench_threads);
criterion_main!(benches);
