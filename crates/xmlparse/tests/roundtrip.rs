//! Property-based round-trip tests: any DOM we can build serializes to
//! text that parses back to the identical DOM.

use proptest::prelude::*;
use xmlparse::{parse_document, to_string, Document, Element, XmlNode};

/// Strategy for XML names (ASCII subset, never empty, no leading digit).
fn name_strategy() -> impl Strategy<Value = String> {
    "[a-zA-Z_][a-zA-Z0-9_.-]{0,8}"
}

/// Strategy for text content. Avoid text that is empty (the parser never
/// produces empty text nodes) and avoid the `]]>`-free constraint issues
/// by using plain printable text including characters that need escaping.
fn text_strategy() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~]{1,20}")
        .unwrap()
        .prop_filter("no empty", |s| !s.is_empty())
}

fn element_strategy() -> impl Strategy<Value = Element> {
    let leaf = (
        name_strategy(),
        prop::collection::vec((name_strategy(), text_strategy()), 0..3),
        prop::option::of(text_strategy()),
    )
        .prop_map(|(name, attrs, text)| {
            let mut e = Element::new(name);
            for (n, v) in attrs {
                if e.attr(&n).is_none() {
                    e.attributes.push((n, v));
                }
            }
            if let Some(t) = text {
                e.children.push(XmlNode::Text(t));
            }
            e
        });
    leaf.prop_recursive(4, 32, 4, |inner| {
        (
            name_strategy(),
            prop::collection::vec((name_strategy(), text_strategy()), 0..2),
            prop::collection::vec(inner, 0..4),
        )
            .prop_map(|(name, attrs, children)| {
                let mut e = Element::new(name);
                for (n, v) in attrs {
                    if e.attr(&n).is_none() {
                        e.attributes.push((n, v));
                    }
                }
                for c in children {
                    e.children.push(XmlNode::Element(c));
                }
                e
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn serialize_then_parse_is_identity(root in element_strategy()) {
        let doc = Document::new(root);
        let text = to_string(&doc);
        let reparsed = parse_document(&text).expect("serializer output must parse");
        prop_assert_eq!(&doc, &reparsed);
    }

    #[test]
    fn parse_never_panics(input in "\\PC{0,100}") {
        let _ = parse_document(&input);
    }

    #[test]
    fn escaped_text_roundtrips(t in text_strategy()) {
        let doc = Document::new(Element::new("a").with_text(t.clone()));
        let reparsed = parse_document(&to_string(&doc)).unwrap();
        prop_assert_eq!(reparsed.root().text(), t);
    }
}

#[test]
fn pretty_output_reparses() {
    let src = "<bib><article year=\"2001\"><title>Grouping &amp; XML</title><author>Stelios</author><author>Shurug</author></article></bib>";
    let doc = parse_document(src).unwrap();
    let pretty = xmlparse::to_string_pretty(&doc);
    let doc2 = parse_document(&pretty).unwrap();
    assert_eq!(doc2.root().descendants().count(), doc.root().descendants().count());
}
