//! Property-based round-trip tests: any DOM we can build serializes to
//! text that parses back to the identical DOM.
//!
//! Ported from proptest to the in-tree `smallrand::prop` harness.

use smallrand::prop::{check, Gen};
use smallrand::RngExt;
use xmlparse::{parse_document, to_string, Document, Element, XmlNode};

/// Random XML name (ASCII subset, never empty, no leading digit) —
/// `[a-zA-Z_][a-zA-Z0-9_.-]{0,8}`.
fn gen_name(g: &mut Gen) -> String {
    g.ident(8)
}

/// Random text content: printable ASCII including characters that need
/// escaping, never empty (the parser never produces empty text nodes).
fn gen_text(g: &mut Gen) -> String {
    g.printable_string(1, 20)
}

fn push_attrs(g: &mut Gen, e: &mut Element, max: usize) {
    for _ in 0..g.usize_in(0, max) {
        let n = gen_name(g);
        if e.attr(&n).is_none() {
            let v = gen_text(g);
            e.attributes.push((n, v));
        }
    }
}

/// Random element tree up to `depth` levels deep, mirroring the old
/// `prop_recursive(4, 32, 4, ..)` strategy: leaves carry optional text,
/// interior nodes carry 0–3 child elements.
fn gen_element(g: &mut Gen, depth: usize) -> Element {
    let mut e = Element::new(gen_name(g));
    if depth == 0 || g.ratio(1, 3) {
        push_attrs(g, &mut e, 2);
        if g.bool() {
            let t = gen_text(g);
            e.children.push(XmlNode::Text(t));
        }
    } else {
        push_attrs(g, &mut e, 1);
        for _ in 0..g.usize_in(0, 3) {
            e.children.push(XmlNode::Element(gen_element(g, depth - 1)));
        }
    }
    e
}

#[test]
fn serialize_then_parse_is_identity() {
    check("serialize_then_parse_is_identity", 256, |g| {
        let doc = Document::new(gen_element(g, 4));
        let text = to_string(&doc);
        let reparsed = parse_document(&text).expect("serializer output must parse");
        assert_eq!(&doc, &reparsed, "source text: {text}");
    });
}

#[test]
fn parse_never_panics() {
    // Arbitrary garbage: half XML-ish punctuation (to reach deep parser
    // states), half arbitrary Unicode scalars.
    const XMLISH: &[u8] = b"<>&;/=\"' abc!?-[]";
    check("parse_never_panics", 256, |g| {
        let n = g.usize_in(0, 100);
        let mut s = String::with_capacity(n);
        for _ in 0..n {
            if g.bool() {
                s.push(char::from(*g.pick(XMLISH)));
            } else {
                let c = loop {
                    let v = g.rng().random_range(0u32..0x11_0000);
                    if let Some(c) = char::from_u32(v) {
                        break c;
                    }
                };
                s.push(c);
            }
        }
        let _ = parse_document(&s);
    });
}

#[test]
fn escaped_text_roundtrips() {
    check("escaped_text_roundtrips", 256, |g| {
        let t = gen_text(g);
        let doc = Document::new(Element::new("a").with_text(t.clone()));
        let reparsed = parse_document(&to_string(&doc)).unwrap();
        assert_eq!(reparsed.root().text(), t);
    });
}

#[test]
fn pretty_output_reparses() {
    let src = "<bib><article year=\"2001\"><title>Grouping &amp; XML</title><author>Stelios</author><author>Shurug</author></article></bib>";
    let doc = parse_document(src).unwrap();
    let pretty = xmlparse::to_string_pretty(&doc);
    let doc2 = parse_document(&pretty).unwrap();
    assert_eq!(
        doc2.root().descendants().count(),
        doc.root().descendants().count()
    );
}
