//! Recursive-descent XML parser producing a [`Document`].

use crate::dom::{Document, Element, XmlNode};
use crate::error::{ParseErrorKind, Pos, Result};
use crate::lexer::Cursor;

/// Parse a complete XML document.
///
/// The document may begin with an `<?xml ...?>` declaration, comments,
/// processing instructions, and one `<!DOCTYPE ...>` declaration; it must
/// contain exactly one root element; trailing comments/PIs are allowed.
pub fn parse_document(input: &str) -> Result<Document> {
    let mut p = Parser {
        cur: Cursor::new(input),
    };
    p.skip_prolog()?;
    p.cur.skip_whitespace();
    if p.cur.peek() != Some(b'<') {
        return Err(p.cur.err(ParseErrorKind::InvalidDocumentStructure(
            "expected a root element",
        )));
    }
    let root = p.parse_element()?;
    // Trailing misc: whitespace, comments, PIs.
    loop {
        p.cur.skip_whitespace();
        if p.cur.at_eof() {
            break;
        }
        if p.cur.eat("<!--") {
            p.cur.take_until("-->", "comment")?;
        } else if p.cur.eat("<?") {
            p.cur.take_until("?>", "processing instruction")?;
        } else {
            return Err(p.cur.err(ParseErrorKind::InvalidDocumentStructure(
                "content after the root element",
            )));
        }
    }
    Ok(Document::new(root))
}

struct Parser<'a> {
    cur: Cursor<'a>,
}

impl<'a> Parser<'a> {
    fn skip_prolog(&mut self) -> Result<()> {
        self.cur.skip_whitespace();
        if self.cur.eat("<?xml") {
            self.cur.take_until("?>", "xml declaration")?;
        }
        loop {
            self.cur.skip_whitespace();
            if self.cur.eat("<!--") {
                self.cur.take_until("-->", "comment")?;
            } else if self.cur.eat("<!DOCTYPE") {
                self.skip_doctype()?;
            } else if self.cur.peek() == Some(b'<') && self.cur.peek_at(1) == Some(b'?') {
                self.cur.eat("<?");
                self.cur.take_until("?>", "processing instruction")?;
            } else {
                return Ok(());
            }
        }
    }

    /// Skip a DOCTYPE declaration, handling one level of `[...]` internal
    /// subset (no nested brackets, which suffices for non-validating use).
    fn skip_doctype(&mut self) -> Result<()> {
        loop {
            match self.cur.bump() {
                Some(b'[') => {
                    self.cur.take_until("]", "DOCTYPE internal subset")?;
                }
                Some(b'>') => return Ok(()),
                Some(_) => {}
                None => {
                    return Err(self.cur.err(ParseErrorKind::UnexpectedEof("DOCTYPE")));
                }
            }
        }
    }

    /// Parse one element, cursor positioned at `<`.
    fn parse_element(&mut self) -> Result<Element> {
        let open_pos = self.cur.pos();
        self.cur.expect("<", "element start")?;
        let name = self.cur.scan_name("element name")?.to_owned();
        let mut elem = Element::new(name);
        self.parse_attributes(&mut elem)?;
        self.cur.skip_whitespace();
        if self.cur.eat("/>") {
            return Ok(elem);
        }
        self.cur.expect(">", "end of open tag")?;
        self.parse_content(&mut elem, open_pos)?;
        Ok(elem)
    }

    fn parse_attributes(&mut self, elem: &mut Element) -> Result<()> {
        loop {
            self.cur.skip_whitespace();
            match self.cur.peek() {
                Some(b'>') | Some(b'/') | None => return Ok(()),
                _ => {}
            }
            let attr_pos = self.cur.pos();
            let name = self.cur.scan_name("attribute name")?.to_owned();
            self.cur.skip_whitespace();
            self.cur.expect("=", "attribute '='")?;
            self.cur.skip_whitespace();
            let quote = match self.cur.bump() {
                Some(q @ (b'"' | b'\'')) => q,
                Some(c) => {
                    return Err(self.cur.err(ParseErrorKind::UnexpectedChar {
                        found: c as char,
                        expected: "attribute value quote",
                    }))
                }
                None => {
                    return Err(self
                        .cur
                        .err(ParseErrorKind::UnexpectedEof("attribute value")))
                }
            };
            let delim = if quote == b'"' { "\"" } else { "'" };
            let raw = self.cur.take_until(delim, "attribute value")?;
            let value = resolve_entities(raw, &self.cur, attr_pos)?;
            if elem.attributes.iter().any(|(n, _)| *n == name) {
                return Err(self
                    .cur
                    .err_at(attr_pos, ParseErrorKind::DuplicateAttribute(name)));
            }
            elem.attributes.push((name, value));
        }
    }

    /// Parse element content up to and including the matching close tag.
    fn parse_content(&mut self, elem: &mut Element, open_pos: Pos) -> Result<()> {
        let mut text = String::new();
        loop {
            if self.cur.at_eof() {
                return Err(self
                    .cur
                    .err_at(open_pos, ParseErrorKind::UnclosedElement(elem.name.clone())));
            }
            if self.cur.peek() == Some(b'<') {
                if self.cur.eat("<!--") {
                    flush_text(elem, &mut text);
                    let c = self.cur.take_until("-->", "comment")?;
                    elem.children.push(XmlNode::Comment(c.to_owned()));
                } else if self.cur.eat("<![CDATA[") {
                    let c = self.cur.take_until("]]>", "CDATA section")?;
                    text.push_str(c);
                } else if self.cur.peek_at(1) == Some(b'?') {
                    self.cur.eat("<?");
                    self.cur.take_until("?>", "processing instruction")?;
                } else if self.cur.peek_at(1) == Some(b'/') {
                    flush_text(elem, &mut text);
                    self.cur.eat("</");
                    let close_pos = self.cur.pos();
                    let close = self.cur.scan_name("close tag name")?;
                    if close != elem.name {
                        return Err(self.cur.err_at(
                            close_pos,
                            ParseErrorKind::MismatchedCloseTag {
                                open: elem.name.clone(),
                                close: close.to_owned(),
                            },
                        ));
                    }
                    self.cur.skip_whitespace();
                    self.cur.expect(">", "end of close tag")?;
                    return Ok(());
                } else {
                    flush_text(elem, &mut text);
                    let child = self.parse_element()?;
                    elem.children.push(XmlNode::Element(child));
                }
            } else {
                let pos = self.cur.pos();
                let raw = self.cur.take_while(|b| b != b'<');
                let resolved = resolve_entities(raw, &self.cur, pos)?;
                text.push_str(&resolved);
            }
        }
    }
}

fn flush_text(elem: &mut Element, text: &mut String) {
    if !text.is_empty() {
        elem.children.push(XmlNode::Text(std::mem::take(text)));
    }
}

/// Resolve the five predefined entities and numeric character references
/// in `raw`.
fn resolve_entities(raw: &str, cur: &Cursor<'_>, pos: Pos) -> Result<String> {
    if !raw.contains('&') {
        return Ok(raw.to_owned());
    }
    let mut out = String::with_capacity(raw.len());
    let mut rest = raw;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        rest = &rest[amp + 1..];
        let semi = rest
            .find(';')
            .ok_or_else(|| cur.err_at(pos, ParseErrorKind::UnknownEntity(truncate(rest, 16))))?;
        let name = &rest[..semi];
        match name {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "apos" => out.push('\''),
            "quot" => out.push('"'),
            _ if name.starts_with('#') => {
                let digits = &name[1..];
                let code = if let Some(hex) = digits.strip_prefix('x').or(digits.strip_prefix('X'))
                {
                    u32::from_str_radix(hex, 16)
                } else {
                    digits.parse::<u32>()
                }
                .map_err(|_| cur.err_at(pos, ParseErrorKind::BadCharRef(name.to_owned())))?;
                let ch = char::from_u32(code)
                    .ok_or_else(|| cur.err_at(pos, ParseErrorKind::BadCharRef(name.to_owned())))?;
                out.push(ch);
            }
            _ => {
                return Err(cur.err_at(pos, ParseErrorKind::UnknownEntity(name.to_owned())));
            }
        }
        rest = &rest[semi + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

fn truncate(s: &str, n: usize) -> String {
    s.chars().take(n).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ParseErrorKind;

    #[test]
    fn minimal_document() {
        let doc = parse_document("<a/>").unwrap();
        assert_eq!(doc.root().name, "a");
        assert!(doc.root().children.is_empty());
    }

    #[test]
    fn nested_elements_and_text() {
        let doc = parse_document("<bib><article><title>X</title></article></bib>").unwrap();
        let article = doc.root().child("article").unwrap();
        assert_eq!(article.child("title").unwrap().text(), "X");
    }

    #[test]
    fn attributes_both_quote_styles() {
        let doc = parse_document(r#"<a x="1" y='two'/>"#).unwrap();
        assert_eq!(doc.root().attr("x"), Some("1"));
        assert_eq!(doc.root().attr("y"), Some("two"));
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let err = parse_document(r#"<a x="1" x="2"/>"#).unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::DuplicateAttribute(_)));
    }

    #[test]
    fn predefined_entities() {
        let doc = parse_document("<a>&lt;&gt;&amp;&apos;&quot;</a>").unwrap();
        assert_eq!(doc.root().text(), "<>&'\"");
    }

    #[test]
    fn numeric_char_refs() {
        let doc = parse_document("<a>&#65;&#x42;</a>").unwrap();
        assert_eq!(doc.root().text(), "AB");
    }

    #[test]
    fn bad_char_ref() {
        let err = parse_document("<a>&#xZZ;</a>").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::BadCharRef(_)));
    }

    #[test]
    fn unknown_entity() {
        let err = parse_document("<a>&nbsp;</a>").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::UnknownEntity(_)));
    }

    #[test]
    fn entity_in_attribute() {
        let doc = parse_document(r#"<a t="a&amp;b"/>"#).unwrap();
        assert_eq!(doc.root().attr("t"), Some("a&b"));
    }

    #[test]
    fn cdata_is_literal_text() {
        let doc = parse_document("<a><![CDATA[<not><tags>&amp;]]></a>").unwrap();
        assert_eq!(doc.root().text(), "<not><tags>&amp;");
    }

    #[test]
    fn comments_preserved_in_content() {
        let doc = parse_document("<a><!-- note --><b/></a>").unwrap();
        assert!(matches!(doc.root().children[0], XmlNode::Comment(_)));
        assert!(doc.root().child("b").is_some());
    }

    #[test]
    fn prolog_and_doctype_skipped() {
        let doc = parse_document(
            "<?xml version=\"1.0\"?>\n<!DOCTYPE bib [ <!ELEMENT bib (article*)> ]>\n<!-- c -->\n<bib/>",
        )
        .unwrap();
        assert_eq!(doc.root().name, "bib");
    }

    #[test]
    fn processing_instructions_skipped() {
        let doc = parse_document("<?pi data?><a><?inner?></a><?post?>").unwrap();
        assert_eq!(doc.root().name, "a");
        assert!(doc.root().children.is_empty());
    }

    #[test]
    fn mismatched_close_tag() {
        let err = parse_document("<a><b></a></b>").unwrap_err();
        assert!(matches!(
            err.kind,
            ParseErrorKind::MismatchedCloseTag { .. }
        ));
    }

    #[test]
    fn unclosed_element() {
        let err = parse_document("<a><b>").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::UnclosedElement(_)));
    }

    #[test]
    fn content_after_root_rejected() {
        let err = parse_document("<a/><b/>").unwrap_err();
        assert!(matches!(
            err.kind,
            ParseErrorKind::InvalidDocumentStructure(_)
        ));
    }

    #[test]
    fn trailing_comment_allowed() {
        assert!(parse_document("<a/><!-- bye -->").is_ok());
    }

    #[test]
    fn empty_input_rejected() {
        assert!(parse_document("").is_err());
        assert!(parse_document("   ").is_err());
    }

    #[test]
    fn mixed_content_ordering() {
        let doc = parse_document("<a>x<b/>y<c/>z</a>").unwrap();
        let kinds: Vec<&str> = doc
            .root()
            .children
            .iter()
            .map(|c| match c {
                XmlNode::Text(_) => "t",
                XmlNode::Element(_) => "e",
                XmlNode::Comment(_) => "c",
            })
            .collect();
        assert_eq!(kinds, ["t", "e", "t", "e", "t"]);
    }

    #[test]
    fn whitespace_only_text_is_kept() {
        let doc = parse_document("<a> <b/> </a>").unwrap();
        // TIMBER-style loaders decide whether to strip; the parser keeps it.
        assert_eq!(doc.root().children.len(), 3);
    }

    #[test]
    fn error_position_is_plausible() {
        let err = parse_document("<a>\n  <b x=></b></a>").unwrap_err();
        assert_eq!(err.pos.line, 2);
    }

    #[test]
    fn deeply_nested_ok() {
        let mut s = String::new();
        for _ in 0..200 {
            s.push_str("<d>");
        }
        s.push('x');
        for _ in 0..200 {
            s.push_str("</d>");
        }
        let doc = parse_document(&s).unwrap();
        assert_eq!(doc.root().deep_text(), "x");
    }
}
