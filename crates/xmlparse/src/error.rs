//! Parse errors with line/column positions.

use std::fmt;

/// Result alias for parsing operations.
pub type Result<T> = std::result::Result<T, ParseError>;

/// A position in the input text, 1-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in bytes within the line).
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// An error encountered while parsing XML text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Where in the input the error was detected.
    pub pos: Pos,
    /// What went wrong.
    pub kind: ParseErrorKind,
}

/// The specific failure class of a [`ParseError`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// Input ended in the middle of a construct.
    UnexpectedEof(&'static str),
    /// A character that cannot start or continue the current construct.
    UnexpectedChar { found: char, expected: &'static str },
    /// A close tag whose name does not match the open tag.
    MismatchedCloseTag { open: String, close: String },
    /// A close tag with no matching open tag.
    UnbalancedCloseTag(String),
    /// An open tag left unclosed at end of input.
    UnclosedElement(String),
    /// An entity reference that is not one of the predefined five and not
    /// a character reference.
    UnknownEntity(String),
    /// A malformed numeric character reference.
    BadCharRef(String),
    /// The same attribute appears twice on one element.
    DuplicateAttribute(String),
    /// The document has no root element, or text outside the root.
    InvalidDocumentStructure(&'static str),
}

impl ParseError {
    pub(crate) fn new(pos: Pos, kind: ParseErrorKind) -> Self {
        ParseError { pos, kind }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML parse error at {}: ", self.pos)?;
        match &self.kind {
            ParseErrorKind::UnexpectedEof(ctx) => write!(f, "unexpected end of input in {ctx}"),
            ParseErrorKind::UnexpectedChar { found, expected } => {
                write!(f, "unexpected character {found:?}, expected {expected}")
            }
            ParseErrorKind::MismatchedCloseTag { open, close } => {
                write!(f, "close tag </{close}> does not match open tag <{open}>")
            }
            ParseErrorKind::UnbalancedCloseTag(name) => {
                write!(f, "close tag </{name}> has no matching open tag")
            }
            ParseErrorKind::UnclosedElement(name) => {
                write!(f, "element <{name}> is never closed")
            }
            ParseErrorKind::UnknownEntity(name) => write!(f, "unknown entity &{name};"),
            ParseErrorKind::BadCharRef(text) => {
                write!(f, "malformed character reference &#{text};")
            }
            ParseErrorKind::DuplicateAttribute(name) => {
                write!(f, "duplicate attribute {name:?}")
            }
            ParseErrorKind::InvalidDocumentStructure(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let err = ParseError::new(
            Pos { line: 3, col: 7 },
            ParseErrorKind::UnknownEntity("nbsp".into()),
        );
        let s = err.to_string();
        assert!(s.contains("3:7"), "{s}");
        assert!(s.contains("nbsp"), "{s}");
    }

    #[test]
    fn display_mismatched_tags() {
        let err = ParseError::new(
            Pos { line: 1, col: 1 },
            ParseErrorKind::MismatchedCloseTag {
                open: "a".into(),
                close: "b".into(),
            },
        );
        assert!(err.to_string().contains("</b>"));
        assert!(err.to_string().contains("<a>"));
    }
}
