//! A self-contained XML 1.0 subset parser, DOM, and serializer.
//!
//! This crate is one of the substrates of the reproduction of *Grouping in
//! XML* (Paparizos et al., EDBT 2002). The TIMBER system the paper
//! describes loads XML documents into a native paged store; this crate
//! provides the front end of that loading path: turning XML text into an
//! in-memory [`dom::Document`], and turning query results back into XML
//! text.
//!
//! # Supported XML subset
//!
//! * elements, attributes (single- or double-quoted)
//! * character data with the five predefined entities plus decimal and
//!   hexadecimal character references
//! * CDATA sections, comments, processing instructions (skipped), a
//!   `<?xml ...?>` declaration, and a (non-validating) `<!DOCTYPE ...>`
//!   declaration
//!
//! Namespaces are not processed: a name such as `dblp:article` is kept as
//! one opaque tag, which is all the bibliographic workloads in the paper
//! require.
//!
//! # Example
//!
//! ```
//! use xmlparse::parse_document;
//!
//! let doc = parse_document("<bib><article><title>Querying XML</title></article></bib>")
//!     .expect("well-formed");
//! assert_eq!(doc.root().name, "bib");
//! assert_eq!(doc.root().children.len(), 1);
//! ```

pub mod dom;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod serialize;

pub use dom::{Document, Element, XmlNode};
pub use error::{ParseError, Result};
pub use parser::parse_document;
pub use serialize::{to_string, to_string_pretty};
