//! A character cursor over the input with position tracking and the small
//! scanning primitives the parser is built from.

use crate::error::{ParseError, ParseErrorKind, Pos, Result};

/// A cursor over the input text that tracks line/column positions and
/// offers the low-level scanning operations used by [`crate::parser`].
pub struct Cursor<'a> {
    input: &'a str,
    bytes: &'a [u8],
    offset: usize,
    line: u32,
    /// Byte offset of the start of the current line.
    line_start: usize,
}

impl<'a> Cursor<'a> {
    /// Create a cursor at the start of `input`.
    pub fn new(input: &'a str) -> Self {
        Cursor {
            input,
            bytes: input.as_bytes(),
            offset: 0,
            line: 1,
            line_start: 0,
        }
    }

    /// Current position, for error reporting.
    pub fn pos(&self) -> Pos {
        Pos {
            line: self.line,
            col: (self.offset - self.line_start) as u32 + 1,
        }
    }

    /// Byte offset into the input.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// True when all input has been consumed.
    pub fn at_eof(&self) -> bool {
        self.offset >= self.bytes.len()
    }

    /// Peek the next byte without consuming it.
    pub fn peek(&self) -> Option<u8> {
        self.bytes.get(self.offset).copied()
    }

    /// Peek the byte `n` positions ahead.
    pub fn peek_at(&self, n: usize) -> Option<u8> {
        self.bytes.get(self.offset + n).copied()
    }

    /// Consume and return one byte.
    pub fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.offset += 1;
        if b == b'\n' {
            self.line += 1;
            self.line_start = self.offset;
        }
        Some(b)
    }

    /// Consume `s` if the input starts with it; return whether it did.
    pub fn eat(&mut self, s: &str) -> bool {
        if self.input[self.offset..].starts_with(s) {
            for _ in 0..s.len() {
                self.bump();
            }
            true
        } else {
            false
        }
    }

    /// Require `s` next in the input, or fail with an error naming `ctx`.
    pub fn expect(&mut self, s: &str, ctx: &'static str) -> Result<()> {
        if self.eat(s) {
            Ok(())
        } else if self.at_eof() {
            Err(self.err(ParseErrorKind::UnexpectedEof(ctx)))
        } else {
            let found = self.input[self.offset..].chars().next().unwrap_or('\0');
            Err(self.err(ParseErrorKind::UnexpectedChar {
                found,
                expected: ctx,
            }))
        }
    }

    /// Skip XML whitespace (space, tab, CR, LF).
    pub fn skip_whitespace(&mut self) {
        while let Some(b) = self.peek() {
            if b == b' ' || b == b'\t' || b == b'\r' || b == b'\n' {
                self.bump();
            } else {
                break;
            }
        }
    }

    /// Consume bytes while `pred` holds and return the matched slice.
    pub fn take_while(&mut self, mut pred: impl FnMut(u8) -> bool) -> &'a str {
        let start = self.offset;
        while let Some(b) = self.peek() {
            if pred(b) {
                self.bump();
            } else {
                break;
            }
        }
        &self.input[start..self.offset]
    }

    /// Consume input until the literal `delim` is found; the delimiter is
    /// also consumed. Returns the text before the delimiter, or an error
    /// naming `ctx` if the input ends first.
    pub fn take_until(&mut self, delim: &str, ctx: &'static str) -> Result<&'a str> {
        match self.input[self.offset..].find(delim) {
            Some(rel) => {
                let start = self.offset;
                for _ in 0..rel + delim.len() {
                    self.bump();
                }
                Ok(&self.input[start..start + rel])
            }
            None => Err(self.err(ParseErrorKind::UnexpectedEof(ctx))),
        }
    }

    /// Scan an XML `Name` (simplified: ASCII letters, digits, `_ - . :`
    /// plus any non-ASCII character; must not start with a digit, `-` or
    /// `.`).
    pub fn scan_name(&mut self, ctx: &'static str) -> Result<&'a str> {
        let start = self.offset;
        match self.peek() {
            Some(b) if is_name_start(b) => {
                self.bump();
            }
            Some(b) => {
                return Err(self.err(ParseErrorKind::UnexpectedChar {
                    found: b as char,
                    expected: ctx,
                }))
            }
            None => return Err(self.err(ParseErrorKind::UnexpectedEof(ctx))),
        }
        while let Some(b) = self.peek() {
            if is_name_continue(b) {
                self.bump();
            } else {
                break;
            }
        }
        Ok(&self.input[start..self.offset])
    }

    /// Build an error at the current position.
    pub fn err(&self, kind: ParseErrorKind) -> ParseError {
        ParseError::new(self.pos(), kind)
    }

    /// Build an error at an earlier recorded position.
    pub fn err_at(&self, pos: Pos, kind: ParseErrorKind) -> ParseError {
        ParseError::new(pos, kind)
    }
}

/// Whether `b` may start an XML name (ASCII approximation; any multi-byte
/// UTF-8 lead/continuation byte is accepted so non-ASCII names work).
pub fn is_name_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b == b':' || b >= 0x80
}

/// Whether `b` may continue an XML name.
pub fn is_name_continue(b: u8) -> bool {
    is_name_start(b) || b.is_ascii_digit() || b == b'-' || b == b'.'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_tracking_counts_lines() {
        let mut c = Cursor::new("ab\ncd");
        assert_eq!(c.pos().line, 1);
        c.bump();
        c.bump();
        c.bump(); // newline
        assert_eq!(c.pos().line, 2);
        assert_eq!(c.pos().col, 1);
        c.bump();
        assert_eq!(c.pos().col, 2);
    }

    #[test]
    fn eat_and_expect() {
        let mut c = Cursor::new("<?xml?>");
        assert!(c.eat("<?xml"));
        assert!(!c.eat("version"));
        c.expect("?>", "xml declaration").unwrap();
        assert!(c.at_eof());
    }

    #[test]
    fn take_until_finds_delimiter() {
        let mut c = Cursor::new("hello-->rest");
        let text = c.take_until("-->", "comment").unwrap();
        assert_eq!(text, "hello");
        assert_eq!(c.take_while(|_| true), "rest");
    }

    #[test]
    fn take_until_eof_errors() {
        let mut c = Cursor::new("no end");
        assert!(c.take_until("-->", "comment").is_err());
    }

    #[test]
    fn scan_name_accepts_mixed_names() {
        let mut c = Cursor::new("doc_root-1.x rest");
        assert_eq!(c.scan_name("name").unwrap(), "doc_root-1.x");
    }

    #[test]
    fn scan_name_rejects_leading_digit() {
        let mut c = Cursor::new("1abc");
        assert!(c.scan_name("name").is_err());
    }

    #[test]
    fn scan_name_accepts_utf8() {
        let mut c = Cursor::new("données>");
        assert_eq!(c.scan_name("name").unwrap(), "données");
    }

    #[test]
    fn skip_whitespace_all_kinds() {
        let mut c = Cursor::new(" \t\r\n x");
        c.skip_whitespace();
        assert_eq!(c.peek(), Some(b'x'));
    }
}
