//! Serialization of the DOM back to XML text, with escaping.

use crate::dom::{Document, Element, XmlNode};
use std::fmt::Write;

/// Serialize a document compactly (no added whitespace).
pub fn to_string(doc: &Document) -> String {
    element_to_string(doc.root())
}

/// Serialize a document with two-space indentation.
///
/// Elements with mixed content (any text child) are kept on one line so
/// round-tripping does not introduce significant whitespace.
pub fn to_string_pretty(doc: &Document) -> String {
    let mut out = String::new();
    write_element(&mut out, doc.root(), Some(0));
    out.push('\n');
    out
}

/// Serialize a single element compactly.
pub fn element_to_string(elem: &Element) -> String {
    let mut out = String::new();
    write_element(&mut out, elem, None);
    out
}

/// Serialize a single element with indentation.
pub fn element_to_string_pretty(elem: &Element) -> String {
    let mut out = String::new();
    write_element(&mut out, elem, Some(0));
    out.push('\n');
    out
}

fn write_element(out: &mut String, elem: &Element, indent: Option<usize>) {
    if let Some(depth) = indent {
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
    out.push('<');
    out.push_str(&elem.name);
    for (name, value) in &elem.attributes {
        let _ = write!(out, " {}=\"{}\"", name, escape_attr(value));
    }
    if elem.children.is_empty() {
        out.push_str("/>");
        return;
    }
    out.push('>');

    let mixed = elem.children.iter().any(|c| matches!(c, XmlNode::Text(_)));
    let child_indent = match indent {
        Some(depth) if !mixed => Some(depth + 1),
        _ => None,
    };

    for child in &elem.children {
        match child {
            XmlNode::Element(e) => {
                if child_indent.is_some() {
                    out.push('\n');
                }
                write_element(out, e, child_indent);
            }
            XmlNode::Text(t) => out.push_str(&escape_text(t)),
            XmlNode::Comment(c) => {
                if let Some(depth) = child_indent {
                    out.push('\n');
                    for _ in 0..depth {
                        out.push_str("  ");
                    }
                }
                let _ = write!(out, "<!--{c}-->");
            }
        }
    }
    if let Some(depth) = indent {
        if !mixed {
            out.push('\n');
            for _ in 0..depth {
                out.push_str("  ");
            }
        }
    }
    out.push_str("</");
    out.push_str(&elem.name);
    out.push('>');
}

/// Escape character data: `& < >`.
pub fn escape_text(s: &str) -> String {
    if !s.contains(['&', '<', '>']) {
        return s.to_owned();
    }
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escape an attribute value for double-quoted output: `& < > "`.
pub fn escape_attr(s: &str) -> String {
    if !s.contains(['&', '<', '>', '"']) {
        return s.to_owned();
    }
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_document;

    #[test]
    fn roundtrip_compact() {
        let src = r#"<bib><article year="1999"><title>A&amp;B</title><author>Jack</author></article></bib>"#;
        let doc = parse_document(src).unwrap();
        let out = to_string(&doc);
        assert_eq!(out, src);
    }

    #[test]
    fn empty_element_self_closes() {
        let doc = parse_document("<a><b></b></a>").unwrap();
        assert_eq!(to_string(&doc), "<a><b/></a>");
    }

    #[test]
    fn escaping_in_text_and_attr() {
        let e = crate::Element::new("a")
            .with_attr("q", "say \"hi\" & <go>")
            .with_text("1 < 2 & 3 > 2");
        let s = element_to_string(&e);
        assert_eq!(
            s,
            r#"<a q="say &quot;hi&quot; &amp; &lt;go&gt;">1 &lt; 2 &amp; 3 &gt; 2</a>"#
        );
        // And it parses back to the same values.
        let doc = parse_document(&s).unwrap();
        assert_eq!(doc.root().attr("q"), Some("say \"hi\" & <go>"));
        assert_eq!(doc.root().text(), "1 < 2 & 3 > 2");
    }

    #[test]
    fn pretty_indents_element_only_content() {
        let doc = parse_document("<a><b><c/></b></a>").unwrap();
        let s = to_string_pretty(&doc);
        assert_eq!(s, "<a>\n  <b>\n    <c/>\n  </b>\n</a>\n");
    }

    #[test]
    fn pretty_keeps_mixed_content_inline() {
        let doc = parse_document("<a>hello <b/> world</a>").unwrap();
        let s = to_string_pretty(&doc);
        assert_eq!(s, "<a>hello <b/> world</a>\n");
    }

    #[test]
    fn pretty_roundtrips_semantically() {
        let src =
            "<bib><article><title>T</title></article><article><title>U</title></article></bib>";
        let doc = parse_document(src).unwrap();
        let pretty = to_string_pretty(&doc);
        // Re-parsing the pretty form and stripping whitespace-only text
        // yields the same structure.
        let doc2 = parse_document(&pretty).unwrap();
        let titles: Vec<String> = doc2
            .root()
            .descendants()
            .filter(|e| e.name == "title")
            .map(|e| e.text())
            .collect();
        assert_eq!(titles, ["T", "U"]);
    }

    #[test]
    fn comment_serialized() {
        let doc = parse_document("<a><!--x--></a>").unwrap();
        assert_eq!(to_string(&doc), "<a><!--x--></a>");
    }
}
