//! A small owned XML DOM: documents, elements, text, and comments.
//!
//! The DOM is deliberately simple — it exists to ferry parsed documents
//! into the native store (the `xmlstore` crate) and to carry query results
//! back out for serialization. Attributes are kept in document order.

use std::fmt;

/// A parsed XML document: an optional prolog plus exactly one root element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    root: Element,
}

impl Document {
    /// Wrap an element as a document root.
    pub fn new(root: Element) -> Self {
        Document { root }
    }

    /// The root element.
    pub fn root(&self) -> &Element {
        &self.root
    }

    /// Mutable access to the root element.
    pub fn root_mut(&mut self) -> &mut Element {
        &mut self.root
    }

    /// Consume the document, yielding the root element.
    pub fn into_root(self) -> Element {
        self.root
    }

    /// Total number of element nodes in the document (root included).
    pub fn element_count(&self) -> usize {
        self.root.subtree_element_count()
    }
}

/// One node in the DOM tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlNode {
    /// An element with a tag name, attributes, and children.
    Element(Element),
    /// Character data (entities already resolved).
    Text(String),
    /// A comment (without the `<!--`/`-->` delimiters).
    Comment(String),
}

impl XmlNode {
    /// The contained element, if this node is one.
    pub fn as_element(&self) -> Option<&Element> {
        match self {
            XmlNode::Element(e) => Some(e),
            _ => None,
        }
    }

    /// The contained text, if this node is character data.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            XmlNode::Text(t) => Some(t),
            _ => None,
        }
    }
}

/// An XML element.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Element {
    /// Tag name, e.g. `article`.
    pub name: String,
    /// Attributes in document order.
    pub attributes: Vec<(String, String)>,
    /// Child nodes in document order.
    pub children: Vec<XmlNode>,
}

impl Element {
    /// Create an element with no attributes or children.
    pub fn new(name: impl Into<String>) -> Self {
        Element {
            name: name.into(),
            attributes: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Builder-style: add an attribute.
    pub fn with_attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.attributes.push((name.into(), value.into()));
        self
    }

    /// Builder-style: add a child element.
    pub fn with_child(mut self, child: Element) -> Self {
        self.children.push(XmlNode::Element(child));
        self
    }

    /// Builder-style: add a text child.
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.children.push(XmlNode::Text(text.into()));
        self
    }

    /// Look up an attribute value by name.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Iterate over child elements only.
    pub fn child_elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(XmlNode::as_element)
    }

    /// The first child element with the given tag name.
    pub fn child(&self, name: &str) -> Option<&Element> {
        self.child_elements().find(|e| e.name == name)
    }

    /// All child elements with the given tag name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.child_elements().filter(move |e| e.name == name)
    }

    /// Concatenation of the *direct* text children (not descendants).
    pub fn text(&self) -> String {
        let mut out = String::new();
        for c in &self.children {
            if let XmlNode::Text(t) = c {
                out.push_str(t);
            }
        }
        out
    }

    /// Concatenation of all descendant text, in document order.
    pub fn deep_text(&self) -> String {
        let mut out = String::new();
        self.collect_text(&mut out);
        out
    }

    fn collect_text(&self, out: &mut String) {
        for c in &self.children {
            match c {
                XmlNode::Text(t) => out.push_str(t),
                XmlNode::Element(e) => e.collect_text(out),
                XmlNode::Comment(_) => {}
            }
        }
    }

    /// Number of element nodes in this subtree, including `self`.
    pub fn subtree_element_count(&self) -> usize {
        1 + self
            .child_elements()
            .map(Element::subtree_element_count)
            .sum::<usize>()
    }

    /// Total node count (elements + attributes + text nodes) in this
    /// subtree, matching how the paper counts "4.6 million nodes".
    pub fn subtree_node_count(&self) -> usize {
        let mut n = 1 + self.attributes.len();
        for c in &self.children {
            match c {
                XmlNode::Element(e) => n += e.subtree_node_count(),
                XmlNode::Text(_) => n += 1,
                XmlNode::Comment(_) => {}
            }
        }
        n
    }

    /// Depth-first pre-order iteration over descendant elements,
    /// `self` included.
    pub fn descendants(&self) -> Descendants<'_> {
        Descendants { stack: vec![self] }
    }
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::serialize::element_to_string(self))
    }
}

/// Iterator produced by [`Element::descendants`].
pub struct Descendants<'a> {
    stack: Vec<&'a Element>,
}

impl<'a> Iterator for Descendants<'a> {
    type Item = &'a Element;

    fn next(&mut self) -> Option<Self::Item> {
        let e = self.stack.pop()?;
        // Push children in reverse so iteration is document order.
        for c in e.children.iter().rev() {
            if let XmlNode::Element(ch) = c {
                self.stack.push(ch);
            }
        }
        Some(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Element {
        Element::new("article")
            .with_attr("year", "1999")
            .with_child(Element::new("title").with_text("Querying XML"))
            .with_child(Element::new("author").with_text("Jack"))
            .with_child(Element::new("author").with_text("John"))
    }

    #[test]
    fn attr_lookup() {
        let e = sample();
        assert_eq!(e.attr("year"), Some("1999"));
        assert_eq!(e.attr("month"), None);
    }

    #[test]
    fn child_navigation() {
        let e = sample();
        assert_eq!(e.child("title").unwrap().text(), "Querying XML");
        assert_eq!(e.children_named("author").count(), 2);
        assert!(e.child("publisher").is_none());
    }

    #[test]
    fn text_vs_deep_text() {
        let e = Element::new("a")
            .with_text("x")
            .with_child(Element::new("b").with_text("y"))
            .with_text("z");
        assert_eq!(e.text(), "xz");
        assert_eq!(e.deep_text(), "xyz");
    }

    #[test]
    fn counts() {
        let e = sample();
        assert_eq!(e.subtree_element_count(), 4);
        // article + year attr + (title + text) + 2*(author + text) = 8
        assert_eq!(e.subtree_node_count(), 8);
    }

    #[test]
    fn descendants_in_document_order() {
        let e = sample();
        let names: Vec<_> = e.descendants().map(|d| d.name.as_str()).collect();
        assert_eq!(names, ["article", "title", "author", "author"]);
    }

    #[test]
    fn document_wraps_root() {
        let doc = Document::new(sample());
        assert_eq!(doc.element_count(), 4);
        assert_eq!(doc.root().name, "article");
    }
}
