//! Errors raised by algebra evaluation.

use std::fmt;

/// Result alias for TAX operations.
pub type Result<T> = std::result::Result<T, Error>;

/// An algebra-evaluation error.
#[derive(Debug)]
pub enum Error {
    /// The storage layer failed.
    Store(xmlstore::StoreError),
    /// A pattern-node label referenced by a parameter list does not exist
    /// in the pattern.
    UnknownLabel(String),
    /// A structurally invalid pattern (e.g. a child before its parent).
    BadPattern(String),
    /// An operator precondition was violated.
    Unsupported(String),
    /// A per-tree computation panicked; the panic was contained and the
    /// rest of the run survived.
    Panic {
        /// Input index of the item whose computation panicked.
        index: usize,
        /// The panic payload, if it was a string.
        message: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Store(e) => write!(f, "store error: {e}"),
            Error::UnknownLabel(l) => write!(f, "unknown pattern label {l}"),
            Error::BadPattern(m) => write!(f, "bad pattern: {m}"),
            Error::Unsupported(m) => write!(f, "unsupported operation: {m}"),
            Error::Panic { index, message } => {
                write!(f, "evaluation of item {index} panicked: {message}")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<xmlstore::StoreError> for Error {
    fn from(e: xmlstore::StoreError) -> Self {
        Error::Store(e)
    }
}
