//! Structural (containment) joins over index entry lists.
//!
//! Both inputs are sorted by `start`, which the tag index guarantees.
//! Two algorithms are provided:
//!
//! * [`contained_in`] — range expansion: binary-search the descendant
//!   list for one ancestor's interval. Used by the pattern matcher, where
//!   the ancestor side arrives one binding at a time.
//! * [`stack_tree_join`] — the single-pass stack-based
//!   ancestor-descendant join of Al-Khalifa et al. (ICDE 2002), the
//!   algorithm the paper cites for TIMBER ("efficient single-pass
//!   containment join algorithms whose asymptotic cost is optimal").
//!   Used when both sides are full candidate lists, and benchmarked
//!   against the naive nested-loop join (ablation X3).

use std::ops::Range;
use xmlstore::{NodeColumns, NodeEntry, NodeId};

/// All entries of `list` strictly contained in `scope`
/// (`scope.start < e.start && e.end < scope.end`). `list` must be sorted
/// by `start`; intervals must be properly nested (as containment labels
/// are), so the result is the contiguous run following `scope.start`.
pub fn contained_in<'a>(list: &'a [NodeEntry], scope: &NodeEntry) -> &'a [NodeEntry] {
    let lo = list.partition_point(|e| e.start <= scope.start);
    let hi = lo + list[lo..].partition_point(|e| e.start < scope.end);
    &list[lo..hi]
}

/// All entries of `list` contained in `scope`, allowing the node equal to
/// `scope` itself.
pub fn contained_in_or_self<'a>(list: &'a [NodeEntry], scope: &NodeEntry) -> &'a [NodeEntry] {
    let lo = list.partition_point(|e| e.start < scope.start);
    let hi = lo + list[lo..].partition_point(|e| e.start < scope.end);
    &list[lo..hi]
}

/// Which axis a [`stack_tree_join`] enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinAxis {
    /// Ancestor-descendant.
    AncestorDescendant,
    /// Parent-child (`level` difference of exactly 1).
    ParentChild,
}

/// Single-pass stack-based structural join (Stack-Tree-Desc).
///
/// Returns `(ancestor, descendant)` pairs, ordered by descendant. Both
/// inputs must be sorted by `start`. Runs in
/// `O(|ancestors| + |descendants| + |output|)`.
pub fn stack_tree_join(
    ancestors: &[NodeEntry],
    descendants: &[NodeEntry],
    axis: JoinAxis,
) -> Vec<(NodeEntry, NodeEntry)> {
    let mut out = Vec::new();
    let mut stack: Vec<NodeEntry> = Vec::new();
    let mut ai = 0;

    for d in descendants {
        // Pop ancestors that end before this descendant begins.
        while let Some(top) = stack.last() {
            if top.end < d.start {
                stack.pop();
            } else {
                break;
            }
        }
        // Push ancestors that start before this descendant.
        while ai < ancestors.len() && ancestors[ai].start < d.start {
            let a = ancestors[ai];
            ai += 1;
            // Maintain the nesting invariant on the stack.
            while let Some(top) = stack.last() {
                if top.end < a.start {
                    stack.pop();
                } else {
                    break;
                }
            }
            if a.end > d.start {
                // Only keep ancestors whose interval is still open.
                stack.push(a);
            }
        }
        // Every stack entry containing d joins with it.
        for a in stack.iter() {
            if a.start < d.start && d.end < a.end {
                match axis {
                    JoinAxis::AncestorDescendant => out.push((*a, *d)),
                    JoinAxis::ParentChild => {
                        if d.level == a.level + 1 {
                            out.push((*a, *d));
                        }
                    }
                }
            }
        }
    }
    out
}

/// The dense id range of the columnar label region covered by `scope`
/// (scope included), or the whole store when `scope` is `None`.
///
/// Node ids are preorder ordinals, so a subtree is one contiguous id
/// range: the scoped candidate set needs no per-tag merge, no sort, and
/// no entry materialization — callers index straight into the parallel
/// `start`/`end`/`level`/`tag` arrays.
pub fn scoped_ids(cols: &NodeColumns, scope: Option<&NodeEntry>) -> Range<u32> {
    match scope {
        Some(s) => s.id.0..cols.descendant_ids(s.id).end,
        None => 0..cols.len() as u32,
    }
}

/// [`stack_tree_join`] run directly over the columnar label region: both
/// sides are id lists (ascending ids ⇔ ascending `start`), and labels are
/// read from the dense parallel arrays instead of materialized
/// [`NodeEntry`] values. Returns `(ancestor, descendant)` id pairs,
/// ordered by descendant.
pub fn stack_tree_join_cols(
    cols: &NodeColumns,
    ancestors: &[NodeId],
    descendants: &[NodeId],
    axis: JoinAxis,
) -> Vec<(NodeId, NodeId)> {
    let mut out = Vec::new();
    let mut stack: Vec<u32> = Vec::new();
    let mut ai = 0;

    for &d in descendants {
        let di = d.0 as usize;
        let (d_start, d_end, d_level) = (cols.start[di], cols.end[di], cols.level[di]);
        while let Some(&top) = stack.last() {
            if cols.end[top as usize] < d_start {
                stack.pop();
            } else {
                break;
            }
        }
        while ai < ancestors.len() && cols.start[ancestors[ai].0 as usize] < d_start {
            let a = ancestors[ai].0;
            ai += 1;
            while let Some(&top) = stack.last() {
                if cols.end[top as usize] < cols.start[a as usize] {
                    stack.pop();
                } else {
                    break;
                }
            }
            if cols.end[a as usize] > d_start {
                stack.push(a);
            }
        }
        for &a in stack.iter() {
            let aj = a as usize;
            if cols.start[aj] < d_start && d_end < cols.end[aj] {
                match axis {
                    JoinAxis::AncestorDescendant => out.push((NodeId(a), d)),
                    JoinAxis::ParentChild => {
                        if d_level == cols.level[aj] + 1 {
                            out.push((NodeId(a), d));
                        }
                    }
                }
            }
        }
    }
    out
}

/// Nested-loop containment join: the `O(|A| · |D|)` baseline used only to
/// cross-check and benchmark [`stack_tree_join`].
pub fn nested_loop_join(
    ancestors: &[NodeEntry],
    descendants: &[NodeEntry],
    axis: JoinAxis,
) -> Vec<(NodeEntry, NodeEntry)> {
    let mut out = Vec::new();
    for d in descendants {
        for a in ancestors {
            if a.is_ancestor_of(d) {
                match axis {
                    JoinAxis::AncestorDescendant => out.push((*a, *d)),
                    JoinAxis::ParentChild => {
                        if d.level == a.level + 1 {
                            out.push((*a, *d));
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlstore::NodeId;

    fn e(id: u32, start: u32, end: u32, level: u16) -> NodeEntry {
        NodeEntry {
            id: NodeId(id),
            start,
            end,
            level,
        }
    }

    /// A small forest:
    /// a0[0,19]  level1
    ///   b1[1,8]   level2
    ///     c2[2,3]  level3
    ///     c3[4,5]  level3
    ///   b4[9,18]  level2
    ///     c5[10,11] level3
    /// a6[20,29] level1
    ///   c7[21,22] level2
    fn ancestors() -> Vec<NodeEntry> {
        vec![e(0, 0, 19, 1), e(6, 20, 29, 1)]
    }
    fn mids() -> Vec<NodeEntry> {
        vec![e(1, 1, 8, 2), e(4, 9, 18, 2)]
    }
    fn leaves() -> Vec<NodeEntry> {
        vec![
            e(2, 2, 3, 3),
            e(3, 4, 5, 3),
            e(5, 10, 11, 3),
            e(7, 21, 22, 2),
        ]
    }

    #[test]
    fn contained_in_basic() {
        let list = leaves();
        let within_a0 = contained_in(&list, &e(0, 0, 19, 1));
        assert_eq!(within_a0.len(), 3);
        let within_b1 = contained_in(&list, &e(1, 1, 8, 2));
        assert_eq!(within_b1.len(), 2);
        let within_a6 = contained_in(&list, &e(6, 20, 29, 1));
        assert_eq!(within_a6.len(), 1);
        // A node is not contained in itself.
        let self_scope = contained_in(&list, &e(2, 2, 3, 3));
        assert!(self_scope.is_empty());
    }

    #[test]
    fn contained_in_or_self_includes_self() {
        let list = leaves();
        let r = contained_in_or_self(&list, &e(2, 2, 3, 3));
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].id, NodeId(2));
    }

    #[test]
    fn stack_tree_ad_matches_nested_loop() {
        let a = ancestors();
        let d = leaves();
        let mut fast = stack_tree_join(&a, &d, JoinAxis::AncestorDescendant);
        let mut slow = nested_loop_join(&a, &d, JoinAxis::AncestorDescendant);
        let key = |p: &(NodeEntry, NodeEntry)| (p.0.id.0, p.1.id.0);
        fast.sort_by_key(key);
        slow.sort_by_key(key);
        assert_eq!(fast, slow);
        assert_eq!(fast.len(), 4);
    }

    #[test]
    fn stack_tree_pc_level_filter() {
        let a = mids();
        let d = leaves();
        let pairs = stack_tree_join(&a, &d, JoinAxis::ParentChild);
        assert_eq!(pairs.len(), 3); // c2,c3 under b1; c5 under b4; c7 has no mid parent
        let ad = stack_tree_join(&ancestors(), &leaves(), JoinAxis::ParentChild);
        assert_eq!(ad.len(), 1); // only c7 is a direct child of a6
    }

    #[test]
    fn nested_ancestor_lists() {
        // Ancestor list containing nested intervals (a0 and b1 both
        // ancestors of c2): both must pair.
        let a = vec![e(0, 0, 19, 1), e(1, 1, 8, 2)];
        let d = vec![e(2, 2, 3, 3)];
        let pairs = stack_tree_join(&a, &d, JoinAxis::AncestorDescendant);
        assert_eq!(pairs.len(), 2);
    }

    #[test]
    fn empty_inputs() {
        assert!(stack_tree_join(&[], &leaves(), JoinAxis::AncestorDescendant).is_empty());
        assert!(stack_tree_join(&ancestors(), &[], JoinAxis::AncestorDescendant).is_empty());
    }

    #[test]
    fn disjoint_ranges_do_not_join() {
        let a = vec![e(0, 0, 5, 1)];
        let d = vec![e(1, 6, 7, 2)];
        assert!(stack_tree_join(&a, &d, JoinAxis::AncestorDescendant).is_empty());
    }

    /// The test forest as a columnar label region, under a spanning root:
    /// root id0 (0,31,0); a id1 (1,20,1); b id2 (2,9,2); c id3 (3,4,3);
    /// c id4 (5,6,3); b id5 (10,19,2); c id6 (11,12,3); a id7 (21,30,1);
    /// c id8 (22,23,2).
    fn columns() -> NodeColumns {
        use xmlstore::{NodeKind, NO_SYM};
        let rows: [(u32, u32, u16); 9] = [
            (0, 31, 0),
            (1, 20, 1),
            (2, 9, 2),
            (3, 4, 3),
            (5, 6, 3),
            (10, 19, 2),
            (11, 12, 3),
            (21, 30, 1),
            (22, 23, 2),
        ];
        let mut cols = NodeColumns::with_capacity(rows.len());
        for (start, end, level) in rows {
            cols.push(start, end, level, 0, NodeKind::Element, NO_SYM);
        }
        cols
    }

    #[test]
    fn scoped_ids_are_dense_subtree_ranges() {
        let cols = columns();
        assert_eq!(scoped_ids(&cols, None), 0..9);
        // Whole store through the root scope.
        assert_eq!(scoped_ids(&cols, Some(&cols.entry(NodeId(0)))), 0..9);
        // First `a` subtree: ids 1..=6.
        assert_eq!(scoped_ids(&cols, Some(&cols.entry(NodeId(1)))), 1..7);
        // A leaf scopes to itself.
        assert_eq!(scoped_ids(&cols, Some(&cols.entry(NodeId(3)))), 3..4);
    }

    #[test]
    fn columnar_join_matches_entry_join() {
        let cols = columns();
        let anc_ids = [NodeId(1), NodeId(7)];
        let desc_ids = [NodeId(3), NodeId(4), NodeId(6), NodeId(8)];
        let anc: Vec<NodeEntry> = anc_ids.iter().map(|&i| cols.entry(i)).collect();
        let desc: Vec<NodeEntry> = desc_ids.iter().map(|&i| cols.entry(i)).collect();
        for axis in [JoinAxis::AncestorDescendant, JoinAxis::ParentChild] {
            let by_cols = stack_tree_join_cols(&cols, &anc_ids, &desc_ids, axis);
            let by_entries: Vec<(NodeId, NodeId)> = stack_tree_join(&anc, &desc, axis)
                .into_iter()
                .map(|(a, d)| (a.id, d.id))
                .collect();
            assert_eq!(by_cols, by_entries);
        }
        let ad = stack_tree_join_cols(&cols, &anc_ids, &desc_ids, JoinAxis::AncestorDescendant);
        assert_eq!(
            ad,
            vec![
                (NodeId(1), NodeId(3)),
                (NodeId(1), NodeId(4)),
                (NodeId(1), NodeId(6)),
                (NodeId(7), NodeId(8)),
            ]
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use smallrand::prop::{check, Gen};
    use smallrand::RngCore;
    use xmlstore::{NodeEntry, NodeId};

    /// Generate a random labelled forest by simulating a DFS, then split
    /// its nodes into two random sublists.
    fn random_forest(depth_seed: Vec<u8>) -> Vec<NodeEntry> {
        let mut entries = Vec::new();
        let mut counter = 0u32;
        let mut id = 0u32;
        // stack of (start, level) for open nodes
        let mut open: Vec<(u32, u16, u32)> = Vec::new();
        for b in depth_seed {
            if b % 3 == 0 || open.is_empty() {
                // open a node
                open.push((counter, open.len() as u16, id));
                id += 1;
                counter += 1;
            } else {
                // close a node
                let (start, level, nid) = open.pop().unwrap();
                entries.push(NodeEntry {
                    id: NodeId(nid),
                    start,
                    end: counter,
                    level,
                });
                counter += 1;
            }
        }
        while let Some((start, level, nid)) = open.pop() {
            entries.push(NodeEntry {
                id: NodeId(nid),
                start,
                end: counter,
                level,
            });
            counter += 1;
        }
        entries.sort_by_key(|e| e.start);
        entries
    }

    fn random_depth_seed(g: &mut Gen) -> Vec<u8> {
        g.vec(0, 119, |g| g.usize_in(0, 255) as u8)
    }

    #[test]
    fn stack_tree_equals_nested_loop() {
        check("stack_tree_equals_nested_loop", 256, |g| {
            let forest = random_forest(random_depth_seed(g));
            let mask = g.rng().next_u64();
            let mut ancestors = Vec::new();
            let mut descendants = Vec::new();
            for (i, e) in forest.iter().enumerate() {
                if (mask >> (i % 64)) & 1 == 0 {
                    ancestors.push(*e);
                } else {
                    descendants.push(*e);
                }
            }
            for axis in [JoinAxis::AncestorDescendant, JoinAxis::ParentChild] {
                let mut fast = stack_tree_join(&ancestors, &descendants, axis);
                let mut slow = nested_loop_join(&ancestors, &descendants, axis);
                let key = |p: &(NodeEntry, NodeEntry)| (p.0.id.0, p.1.id.0);
                fast.sort_by_key(key);
                slow.sort_by_key(key);
                assert_eq!(fast, slow);
            }
        });
    }

    #[test]
    fn columnar_join_equals_entry_join_on_random_forests() {
        use xmlstore::{NodeColumns, NodeKind, NO_SYM};
        check("columnar_join_equals_entry_join_on_random_forests", 128, |g| {
            let forest = random_forest(random_depth_seed(g));
            // Ids are preorder ordinals, so start order == id order and
            // row i of the columnar region is node id i.
            let mut cols = NodeColumns::with_capacity(forest.len());
            for (i, e) in forest.iter().enumerate() {
                assert_eq!(e.id.0 as usize, i);
                cols.push(e.start, e.end, e.level, 0, NodeKind::Element, NO_SYM);
            }
            let mask = g.rng().next_u64();
            let mut anc = Vec::new();
            let mut anc_ids = Vec::new();
            let mut desc = Vec::new();
            let mut desc_ids = Vec::new();
            for (i, e) in forest.iter().enumerate() {
                if (mask >> (i % 64)) & 1 == 0 {
                    anc.push(*e);
                    anc_ids.push(e.id);
                } else {
                    desc.push(*e);
                    desc_ids.push(e.id);
                }
            }
            for axis in [JoinAxis::AncestorDescendant, JoinAxis::ParentChild] {
                let by_cols = stack_tree_join_cols(&cols, &anc_ids, &desc_ids, axis);
                let by_entries: Vec<(NodeId, NodeId)> = stack_tree_join(&anc, &desc, axis)
                    .into_iter()
                    .map(|(a, d)| (a.id, d.id))
                    .collect();
                assert_eq!(by_cols, by_entries);
            }
        });
    }

    #[test]
    fn contained_in_equals_filter() {
        check("contained_in_equals_filter", 256, |g| {
            let forest = random_forest(random_depth_seed(g));
            if forest.is_empty() {
                return;
            }
            let pick = g.rng().next_u64() as usize;
            let scope = forest[pick % forest.len()];
            let by_search: Vec<_> = contained_in(&forest, &scope).to_vec();
            let by_filter: Vec<_> = forest
                .iter()
                .filter(|e| scope.is_ancestor_of(e))
                .copied()
                .collect();
            assert_eq!(by_search, by_filter);
        });
    }
}
