//! Pattern-tree matching (Sec. 5.2).
//!
//! Two paths exist:
//!
//! * [`match_db`] — match against the **stored database** using the tag
//!   index for candidates and sorted containment (structural) joins to
//!   combine them. Bindings are found on index data alone; data pages are
//!   touched only for content/attribute predicates and cross-node join
//!   predicates.
//! * [`match_tree`] — match against an **in-memory data tree** (a witness
//!   tree, a group tree, …) by recursive embedding; references descend
//!   into the store.
//!
//! A full-scan matcher ([`naive::match_db_scan`]) is kept as the
//! ablation baseline the paper argues against ("the simplest way to find
//! matches for a pattern tree is to scan the entire database").

pub mod naive;
pub mod structural;
pub mod vnode;

use crate::error::Result;
use crate::pattern::{Axis, PatternTree};
use crate::tree::Tree;
use std::collections::HashMap;
use vnode::{VNode, VTree};
use xmlstore::{DocumentStore, NodeEntry, NodeId};

/// A complete match of a pattern: one bound node per pattern node,
/// indexed by [`crate::pattern::PatternNodeId`].
pub type Binding = Vec<VNode>;

/// Match `pattern` against the whole stored database, returning all
/// bindings in document order of the pattern root.
pub fn match_db(store: &DocumentStore, pattern: &PatternTree) -> Result<Vec<Binding>> {
    match_db_scoped(store, pattern, None)
}

/// Match `pattern` against the subtree of the database rooted at `scope`
/// (used by per-tree operators whose input trees are stored subtrees).
/// With `scope == None` the whole document is searched.
pub fn match_db_scoped(
    store: &DocumentStore,
    pattern: &PatternTree,
    scope: Option<NodeEntry>,
) -> Result<Vec<Binding>> {
    // 1. Candidate lists per pattern node, from the tag index. The scope
    //    restriction is a binary-searched sub-slice of the index list, so
    //    scoped matching (one call per input tree in per-tree operators)
    //    costs proportional to the *scoped* candidates, not the index.
    let order = pattern.preorder();
    let mut candidates: Vec<Vec<NodeEntry>> = vec![Vec::new(); pattern.len()];
    let mut content_cache: HashMap<NodeId, Option<String>> = HashMap::new();
    for &pid in &order {
        let pnode = pattern.node(pid);
        let mut kept: Vec<NodeEntry> = Vec::new();
        match pnode.pred.required_tag() {
            Some(t) => {
                let tag_id = store.tag_id(t);
                // Content value index (optional, `StoreOptions::value_index`):
                // a `tag ∧ content = "v"` predicate is answered directly,
                // with no per-candidate data look-ups.
                let (full, eq_satisfied): (&[NodeEntry], bool) =
                    match (tag_id, pnode.pred.eq_content_value()) {
                        (Some(id), Some(v)) => match store.nodes_with_tag_and_content(id, v) {
                            Some(list) => (list, true),
                            None => (store.nodes_with_tag(id), false),
                        },
                        (Some(id), None) => (store.nodes_with_tag(id), false),
                        (None, _) => (&[], false),
                    };
                let scoped = match scope {
                    Some(s) => structural::contained_in_or_self(full, &s),
                    None => full,
                };
                let skip_data_eval =
                    !pnode.pred.needs_data() || (eq_satisfied && pnode.pred.is_tag_eq_only());
                kept.reserve(scoped.len());
                for e in scoped {
                    if !skip_data_eval
                        && !eval_stored_local(store, &pnode.pred, *e, &mut content_cache)?
                    {
                        continue;
                    }
                    kept.push(*e);
                }
            }
            None => {
                // No tag pinned: every node in scope. Node ids are
                // preorder ordinals, so the scoped set is one dense id
                // range of the columnar label region — walked directly,
                // already in document order, with no per-tag merge or
                // sort.
                let cols = store.columns();
                for i in structural::scoped_ids(&cols, scope.as_ref()) {
                    let e = cols.entry(NodeId(i));
                    if pnode.pred.needs_data()
                        && !eval_stored_local(store, &pnode.pred, e, &mut content_cache)?
                    {
                        continue;
                    }
                    kept.push(e);
                }
            }
        }
        candidates[pid] = kept;
    }

    // 2. Combine by containment joins in pre-order: each node's candidates
    //    are range-searched inside its parent's bound region (the lists
    //    are sorted by `start`, so this is a sorted containment join).
    let mut partial: Vec<Vec<NodeEntry>> = candidates[order[0]]
        .iter()
        .map(|&e| {
            let mut b = vec![
                NodeEntry {
                    id: NodeId(u32::MAX),
                    start: 0,
                    end: 0,
                    level: 0
                };
                pattern.len()
            ];
            b[order[0]] = e;
            b
        })
        .collect();
    for &pid in order.iter().skip(1) {
        let parent = pattern.node(pid).parent.expect("non-root");
        let axis = pattern.node(pid).axis;
        let cands = &candidates[pid];
        let mut next: Vec<Vec<NodeEntry>> = Vec::new();
        for binding in &partial {
            let p = binding[parent];
            for d in structural::contained_in(cands, &p) {
                if axis == Axis::Child && d.level != p.level + 1 {
                    continue;
                }
                let mut b = binding.clone();
                b[pid] = *d;
                next.push(b);
            }
        }
        partial = next;
        if partial.is_empty() {
            break;
        }
    }

    // 3. Post-filter cross-node join predicates (value look-ups).
    let mut out: Vec<Binding> = Vec::with_capacity(partial.len());
    'outer: for binding in partial {
        for (pid, pnode) in pattern.iter() {
            for target in pnode.pred.join_targets() {
                let a = cached_content(store, binding[pid].id, &mut content_cache)?;
                let b = cached_content(store, binding[target].id, &mut content_cache)?;
                if a.is_none() || a != b {
                    continue 'outer;
                }
            }
        }
        out.push(binding.into_iter().map(VNode::Stored).collect());
    }
    Ok(out)
}

/// Match `pattern` against an in-memory data tree. With
/// `anchor_root == true` the pattern root may bind only to the tree root
/// (the constraint the paper suggests for one-output-per-input
/// projection).
///
/// Fast path: a tree that is one deep stored reference (the common case
/// after `SL`/`PL`-adorned selection — e.g. the article collection fed to
/// GROUPBY) is matched through the tag index with a scope restriction,
/// touching **no data pages** for structure (Sec. 5.2/5.3); only
/// content/attribute predicates cost value look-ups. Other trees use the
/// recursive matcher.
pub fn match_tree(
    store: &DocumentStore,
    tree: &Tree,
    pattern: &PatternTree,
    anchor_root: bool,
) -> Result<Vec<Binding>> {
    if tree.len() == 1 {
        if let crate::tree::TreeNodeKind::Ref {
            node: scope,
            deep: true,
        } = tree.node(tree.root()).kind
        {
            let mut bindings = match_db_scoped(store, pattern, Some(scope))?;
            if anchor_root {
                bindings.retain(|b| match b[pattern.root()] {
                    VNode::Stored(e) => e.id == scope.id,
                    VNode::Arena(_) => false,
                });
            }
            // Canonicalize: a binding of the scope node itself is the
            // tree's (arena) root, matching the recursive matcher's view.
            for b in &mut bindings {
                for v in b.iter_mut() {
                    if let VNode::Stored(e) = v {
                        if e.id == scope.id {
                            *v = VNode::Arena(tree.root());
                        }
                    }
                }
            }
            return Ok(bindings);
        }
    }
    let vt = VTree::new(store, tree);
    naive::match_vtree(&vt, pattern, anchor_root)
}

/// Evaluate the local predicate of a stored node, fetching content and
/// attributes through the buffer pool as needed.
fn eval_stored_local(
    store: &DocumentStore,
    pred: &crate::pattern::Pred,
    e: NodeEntry,
    cache: &mut HashMap<NodeId, Option<String>>,
) -> Result<bool> {
    let content = cached_content(store, e.id, cache)?;
    // Tag comes from the columnar label region: no page access.
    let tag = store
        .tag_name(xmlstore::TagId(store.columns().tag[e.id.0 as usize]))
        .to_string();
    let attr_lookup = |name: &str| -> Option<String> {
        let attr_tag = store.attr_tag_id(name)?;
        // Attributes of e are index entries of @name contained in e with
        // level e.level + 1.
        let entries = store.nodes_with_tag(attr_tag);
        let child = structural::contained_in(entries, &e)
            .iter()
            .find(|c| c.level == e.level + 1)
            .copied()?;
        store.content(child.id).ok().flatten()
    };
    Ok(pred.eval_local(&tag, content.as_deref(), &attr_lookup))
}

fn cached_content(
    store: &DocumentStore,
    id: NodeId,
    cache: &mut HashMap<NodeId, Option<String>>,
) -> Result<Option<String>> {
    if let Some(v) = cache.get(&id) {
        return Ok(v.clone());
    }
    let v = store.content(id)?;
    cache.insert(id, v.clone());
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Pred;
    use xmlstore::StoreOptions;

    const SAMPLE: &str = "<bib>\
        <article><title>Transaction Mng</title><author>Silberschatz</author></article>\
        <article><title>Overview of Transaction Mng</title><author>Silberschatz</author><author>Garcia-Molina</author></article>\
        <article><title>Transaction Mng for the Web</title><author>Thompson</author></article>\
        <article><title>Other Topic</title><author>Unrelated</author></article>\
        <book><title>Transaction Books</title><author>NotAnArticle</author></book>\
    </bib>";

    fn store() -> DocumentStore {
        DocumentStore::from_xml(SAMPLE, &StoreOptions::in_memory()).unwrap()
    }

    /// The Figure 1 pattern.
    fn fig1_pattern() -> PatternTree {
        let mut p = PatternTree::with_root(Pred::tag("article"));
        p.add_child(
            p.root(),
            Axis::Child,
            Pred::tag("title").and(Pred::content_contains("Transaction")),
        );
        p.add_child(p.root(), Axis::Child, Pred::tag("author"));
        p
    }

    #[test]
    fn fig1_yields_fig2_witness_count() {
        // Figure 2: four witness trees — one per (article, author) pair
        // among Transaction-titled articles.
        let s = store();
        let bindings = match_db(&s, &fig1_pattern()).unwrap();
        assert_eq!(bindings.len(), 4);
    }

    #[test]
    fn bindings_are_in_document_order() {
        let s = store();
        let bindings = match_db(&s, &fig1_pattern()).unwrap();
        let roots: Vec<u32> = bindings
            .iter()
            .map(|b| match b[0] {
                VNode::Stored(e) => e.start,
                _ => unreachable!(),
            })
            .collect();
        assert!(roots.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn ad_axis_reaches_depths() {
        let s = store();
        let mut p = PatternTree::with_root(Pred::tag("doc_root"));
        p.add_child(p.root(), Axis::Descendant, Pred::tag("author"));
        let bindings = match_db(&s, &p).unwrap();
        assert_eq!(bindings.len(), 6); // 5 article authors + 1 book author
    }

    #[test]
    fn pc_axis_enforces_level() {
        let s = store();
        // doc_root -pc-> author never holds (authors are two levels down).
        let mut p = PatternTree::with_root(Pred::tag("doc_root"));
        p.add_child(p.root(), Axis::Child, Pred::tag("author"));
        assert!(match_db(&s, &p).unwrap().is_empty());
    }

    #[test]
    fn scoped_match_restricts_to_subtree() {
        let s = store();
        let article_tag = s.tag_id("article").unwrap();
        let second_article = s.nodes_with_tag(article_tag)[1];
        let mut p = PatternTree::with_root(Pred::tag("article"));
        p.add_child(p.root(), Axis::Child, Pred::tag("author"));
        let bindings = match_db_scoped(&s, &p, Some(second_article)).unwrap();
        assert_eq!(bindings.len(), 2); // only the two authors of article 2
    }

    #[test]
    fn join_predicate_filters_bindings() {
        let s = store();
        // article with two author children having equal content — none in
        // this sample (all co-author pairs differ).
        let mut p = PatternTree::with_root(Pred::tag("article"));
        let a1 = p.add_child(p.root(), Axis::Child, Pred::tag("author"));
        p.add_child(
            p.root(),
            Axis::Child,
            Pred::tag("author").and(Pred::ContentEqNode(a1)),
        );
        let bindings = match_db(&s, &p).unwrap();
        // Self-pairs do exist ((a,a) for each author): the pattern does
        // not force distinct bindings. 4 article-authors → but only
        // article 2 has 2 authors, giving (a1,a1),(a1,a2),(a2,a1),(a2,a2)
        // → equal-content pairs are the 4 self-pairs of single-author
        // articles... let's count: every (author,author) pair within an
        // article with equal content. Articles 1,3,4: 1 author → 1 pair
        // each. Article 2: authors differ → only self pairs (2).
        assert_eq!(bindings.len(), 5);
    }

    #[test]
    fn content_predicate_costs_data_io() {
        let s = store();
        s.reset_io_stats();
        let p = PatternTree::with_root(Pred::tag("author"));
        let _ = match_db(&s, &p).unwrap();
        let tag_only = s.io_stats().page_requests();
        assert_eq!(tag_only, 0, "tag-only matching must not touch pages");

        let p2 = PatternTree::with_root(Pred::tag("author").and(Pred::content_eq("Thompson")));
        let b = match_db(&s, &p2).unwrap();
        assert_eq!(b.len(), 1);
        assert!(s.io_stats().page_requests() > 0);
    }

    #[test]
    fn attribute_predicate() {
        let xml = r#"<bib><article year="1999"><title>A</title></article><article year="2002"><title>B</title></article></bib>"#;
        let s = DocumentStore::from_xml(xml, &StoreOptions::in_memory()).unwrap();
        let p = PatternTree::with_root(Pred::tag("article").and(Pred::Attr(
            "year".into(),
            CmpOp::Gt,
            "2000".into(),
        )));
        use crate::value::CmpOp;
        let bindings = match_db(&s, &p).unwrap();
        assert_eq!(bindings.len(), 1);
    }

    #[test]
    fn match_tree_over_witness_tree() {
        let s = store();
        // Build a witness-like tree: article(shallow) -> author(shallow)
        let article = s.tag_id("article").unwrap();
        let author = s.tag_id("author").unwrap();
        let art = s.nodes_with_tag(article)[0];
        let auth = s.nodes_with_tag(author)[0];
        let mut t = Tree::new_ref(art, false);
        t.add_ref(t.root(), auth, false);

        let mut p = PatternTree::with_root(Pred::tag("article"));
        p.add_child(p.root(), Axis::Descendant, Pred::tag("author"));
        let bindings = match_tree(&s, &t, &p, false).unwrap();
        assert_eq!(bindings.len(), 1);
    }

    #[test]
    fn match_tree_descends_into_deep_refs() {
        let s = store();
        let article = s.tag_id("article").unwrap();
        let art = s.nodes_with_tag(article)[1]; // two authors
        let t = Tree::new_ref(art, true);
        let mut p = PatternTree::with_root(Pred::tag("article"));
        p.add_child(p.root(), Axis::Child, Pred::tag("author"));
        let bindings = match_tree(&s, &t, &p, false).unwrap();
        assert_eq!(bindings.len(), 2);
    }

    #[test]
    fn anchor_root_restricts_embeddings() {
        let s = store();
        let mut t = Tree::new_elem(s.dict(), "wrapper");
        let inner = t.add_elem(s.dict(), t.root(), "wrapper");
        t.add_elem_with_content(s.dict(), inner, "x", "1");
        let p = PatternTree::with_root(Pred::tag("wrapper"));
        assert_eq!(match_tree(&s, &t, &p, false).unwrap().len(), 2);
        assert_eq!(match_tree(&s, &t, &p, true).unwrap().len(), 1);
    }

    #[test]
    fn value_index_answers_content_eq_without_io() {
        let s =
            DocumentStore::from_xml(SAMPLE, &StoreOptions::in_memory().with_value_index()).unwrap();
        // Footnote 8's example: find articles of one author. The value
        // index returns the *author* nodes with zero I/O; the structural
        // step up to the article still runs on index labels.
        let mut p = PatternTree::with_root(Pred::tag("article"));
        p.add_child(
            p.root(),
            Axis::Child,
            Pred::tag("author").and(Pred::content_eq("Silberschatz")),
        );
        s.reset_io_stats();
        let bindings = match_db(&s, &p).unwrap();
        assert_eq!(bindings.len(), 2);
        assert_eq!(
            s.io_stats().page_requests(),
            0,
            "content-eq via the value index must not touch data pages"
        );
        // Without the index, the same pattern needs value look-ups.
        let plain = DocumentStore::from_xml(SAMPLE, &StoreOptions::in_memory()).unwrap();
        plain.reset_io_stats();
        let bindings2 = match_db(&plain, &p).unwrap();
        assert_eq!(bindings2.len(), 2);
        assert!(plain.io_stats().page_requests() > 0);
    }

    #[test]
    fn no_required_tag_scans_all_nodes() {
        let s = store();
        let p = PatternTree::with_root(Pred::content_contains("Transaction"));
        let bindings = match_db(&s, &p).unwrap();
        assert_eq!(bindings.len(), 4); // 3 article titles + 1 book title
    }

    #[test]
    fn missing_tag_means_no_bindings() {
        let s = store();
        let p = PatternTree::with_root(Pred::tag("nonexistent"));
        assert!(match_db(&s, &p).unwrap().is_empty());
    }
}
