//! The recursive (navigational) matcher for in-memory data trees, and the
//! full-scan database baseline.
//!
//! The matcher is *index-assisted*, as TIMBER's is (Sec. 5.2): structural
//! work — does this stored node have tag `t`? which `t`-tagged nodes lie
//! inside this stored subtree? — is answered from the tag index without
//! touching data pages. Node ids are pre-order ordinals, so each index
//! list is sorted by id as well as by `start`, and membership is a binary
//! search; subtree enumeration is a range scan. Data pages are read only
//! for content/attribute predicates, for patterns whose root predicate
//! pins no tag, and for join-predicate post-filtering.
//!
//! [`match_db_scan`] deliberately avoids the index: it navigates the
//! stored document from the root, paying a record read per visited node —
//! the "simplest way … is to scan the entire database" baseline that the
//! paper argues against (ablation X3).

use super::vnode::{VNode, VTree};
use super::Binding;
use crate::error::Result;
use crate::matching::structural::contained_in;
use crate::pattern::{Axis, PatternTree, Pred};
use crate::tree::{Tree, TreeNodeKind};
use xmlstore::{DocumentStore, NodeEntry, NodeId};

/// Match a pattern against a virtual tree by recursive embedding.
pub fn match_vtree(
    vt: &VTree<'_>,
    pattern: &PatternTree,
    anchor_root: bool,
) -> Result<Vec<Binding>> {
    let order = pattern.preorder();
    let root_pred = &pattern.node(order[0]).pred;
    let mut roots: Vec<VNode> = Vec::new();
    if check_node(vt, vt.root(), root_pred)? {
        roots.push(vt.root());
    }
    if !anchor_root {
        descendant_candidates(vt, vt.root(), root_pred, &mut roots)?;
    }

    let mut out: Vec<Binding> = Vec::new();
    let mut binding: Vec<Option<VNode>> = vec![None; pattern.len()];
    for r in roots {
        binding[order[0]] = Some(r);
        assign(vt, pattern, &order, 1, &mut binding, &mut out)?;
        binding[order[0]] = None;
    }

    // Cross-node join predicates as a post-filter.
    let mut kept = Vec::with_capacity(out.len());
    'outer: for b in out {
        for (pid, pnode) in pattern.iter() {
            for target in pnode.pred.join_targets() {
                let a = vt.content(b[pid])?;
                let t = vt.content(b[target])?;
                if a.is_none() || a != t {
                    continue 'outer;
                }
            }
        }
        kept.push(b);
    }
    Ok(kept)
}

fn assign(
    vt: &VTree<'_>,
    pattern: &PatternTree,
    order: &[usize],
    idx: usize,
    binding: &mut Vec<Option<VNode>>,
    out: &mut Vec<Binding>,
) -> Result<()> {
    if idx == order.len() {
        out.push(binding.iter().map(|b| b.expect("complete")).collect());
        return Ok(());
    }
    let pid = order[idx];
    let parent = pattern.node(pid).parent.expect("non-root in preorder tail");
    let pv = binding[parent].expect("parent bound first");
    let pred = &pattern.node(pid).pred;
    let mut candidates = Vec::new();
    match pattern.node(pid).axis {
        Axis::Child => child_candidates(vt, pv, pred, &mut candidates)?,
        Axis::Descendant => descendant_candidates(vt, pv, pred, &mut candidates)?,
    }
    for c in candidates {
        binding[pid] = Some(c);
        assign(vt, pattern, order, idx + 1, binding, out)?;
        binding[pid] = None;
    }
    Ok(())
}

/// Does the stored node `id` carry tag `t`? Answered from the columnar
/// label region in O(1), with no page access.
fn stored_has_tag(store: &DocumentStore, id: NodeId, t: &str) -> bool {
    match store.tag_id(t) {
        Some(tid) => store.columns().tag[id.0 as usize] == tid.0,
        None => false,
    }
}

/// Evaluate a predicate on a virtual node, using the index for the tag
/// part of stored nodes.
pub fn check_node(vt: &VTree<'_>, v: VNode, pred: &Pred) -> Result<bool> {
    let required = pred.required_tag();
    let stored_id = match v {
        VNode::Stored(e) => Some(e.id),
        VNode::Arena(i) => match &vt.tree().node(i).kind {
            TreeNodeKind::Ref { node, .. } => Some(node.id),
            TreeNodeKind::Elem { .. } => None,
        },
    };
    match (required, stored_id) {
        (Some(t), Some(id)) => {
            if !stored_has_tag(vt.store(), id, t) {
                return Ok(false);
            }
            if pred.needs_data() {
                let content = vt.content(v)?;
                let attr = |name: &str| vt.attr(v, name).ok().flatten();
                Ok(pred.eval_local(t, content.as_deref(), &attr))
            } else {
                // Tag matched; remaining local conjuncts can only be join
                // predicates, which hold locally.
                Ok(true)
            }
        }
        _ => {
            // Arena elements (cheap tag), or predicates that pin no tag:
            // fall back to a full local evaluation.
            let tag = vt.tag(v)?;
            let content = if pred.needs_data() {
                vt.content(v)?
            } else {
                None
            };
            let attr = |name: &str| vt.attr(v, name).ok().flatten();
            Ok(pred.eval_local(&tag, content.as_deref(), &attr))
        }
    }
}

/// How a virtual node continues downward.
enum Below {
    /// Children are arena nodes.
    Arena(Vec<usize>),
    /// The node's subtree lives in the store.
    Stored(NodeEntry),
}

fn below(vt: &VTree<'_>, v: VNode) -> Result<Below> {
    Ok(match v {
        VNode::Stored(e) => Below::Stored(e),
        VNode::Arena(i) => match &vt.tree().node(i).kind {
            TreeNodeKind::Ref { node, deep: true } => Below::Stored(*node),
            _ => Below::Arena(vt.tree().node(i).children.clone()),
        },
    })
}

/// Append all descendants of `v` (excluding `v`) that satisfy `pred`, in
/// document order.
fn descendant_candidates(
    vt: &VTree<'_>,
    v: VNode,
    pred: &Pred,
    out: &mut Vec<VNode>,
) -> Result<()> {
    match below(vt, v)? {
        Below::Arena(children) => {
            for c in children {
                let cv = VNode::Arena(c);
                if check_node(vt, cv, pred)? {
                    out.push(cv);
                }
                descendant_candidates(vt, cv, pred, out)?;
            }
        }
        Below::Stored(e) => stored_range_candidates(vt, e, pred, None, out)?,
    }
    Ok(())
}

/// Append the children of `v` that satisfy `pred`, in document order.
fn child_candidates(vt: &VTree<'_>, v: VNode, pred: &Pred, out: &mut Vec<VNode>) -> Result<()> {
    match below(vt, v)? {
        Below::Arena(children) => {
            for c in children {
                let cv = VNode::Arena(c);
                if check_node(vt, cv, pred)? {
                    out.push(cv);
                }
            }
        }
        Below::Stored(e) => stored_range_candidates(vt, e, pred, Some(e.level + 1), out)?,
    }
    Ok(())
}

/// Candidates inside a stored subtree: index range scan when the
/// predicate pins a tag (no page I/O for structure), record-by-record
/// navigation otherwise.
fn stored_range_candidates(
    vt: &VTree<'_>,
    scope: NodeEntry,
    pred: &Pred,
    level: Option<u16>,
    out: &mut Vec<VNode>,
) -> Result<()> {
    let store = vt.store();
    if let Some(t) = pred.required_tag() {
        let Some(tid) = store.tag_id(t) else {
            return Ok(());
        };
        for entry in contained_in(store.nodes_with_tag(tid), &scope) {
            if let Some(l) = level {
                if entry.level != l {
                    continue;
                }
            }
            let cand = VNode::Stored(*entry);
            if !pred.needs_data() || check_node(vt, cand, pred)? {
                out.push(cand);
            }
        }
        return Ok(());
    }
    // No tag pinned: navigate (record reads), matching TIMBER's fallback.
    let mut stack = vec![(VNode::Stored(scope), true)];
    while let Some((v, is_scope)) = stack.pop() {
        if !is_scope {
            let ok = match level {
                Some(l) => v.as_stored().map(|e| e.level == l).unwrap_or(false),
                None => true,
            };
            if ok && check_node(vt, v, pred)? {
                out.push(v);
            }
        }
        let descend = match (level, v.as_stored()) {
            (Some(l), Some(e)) => e.level < l, // children mode: stop below target level
            _ => true,
        };
        if descend {
            let kids = vt.children(v)?;
            for c in kids.into_iter().rev() {
                stack.push((c, false));
            }
        }
    }
    Ok(())
}

/// Full-database-scan matching: navigate the stored document from the
/// root without using the tag index. Every visited node costs a record
/// read, which is exactly why the paper prefers index-driven matching.
pub fn match_db_scan(store: &DocumentStore, pattern: &PatternTree) -> Result<Vec<Binding>> {
    let root_tree = Tree::new_ref(store.root(), true);
    let vt = VTree::new(store, &root_tree);
    let order = pattern.preorder();

    // Enumerate every node by navigation and test the root predicate
    // with record reads (no index).
    let mut roots = Vec::new();
    scan_collect(&vt, vt.root(), &pattern.node(order[0]).pred, &mut roots)?;

    let mut out: Vec<Binding> = Vec::new();
    let mut binding: Vec<Option<VNode>> = vec![None; pattern.len()];
    for r in roots {
        binding[order[0]] = Some(r);
        assign_scan(&vt, pattern, &order, 1, &mut binding, &mut out)?;
        binding[order[0]] = None;
    }
    let mut kept = Vec::with_capacity(out.len());
    'outer: for b in out {
        for (pid, pnode) in pattern.iter() {
            for target in pnode.pred.join_targets() {
                let a = vt.content(b[pid])?;
                let t = vt.content(b[target])?;
                if a.is_none() || a != t {
                    continue 'outer;
                }
            }
        }
        kept.push(b);
    }
    Ok(kept)
}

fn scan_collect(vt: &VTree<'_>, v: VNode, pred: &Pred, out: &mut Vec<VNode>) -> Result<()> {
    if eval_by_navigation(vt, v, pred)? {
        out.push(v);
    }
    for c in vt.children(v)? {
        scan_collect(vt, c, pred, out)?;
    }
    Ok(())
}

fn assign_scan(
    vt: &VTree<'_>,
    pattern: &PatternTree,
    order: &[usize],
    idx: usize,
    binding: &mut Vec<Option<VNode>>,
    out: &mut Vec<Binding>,
) -> Result<()> {
    if idx == order.len() {
        out.push(binding.iter().map(|b| b.expect("complete")).collect());
        return Ok(());
    }
    let pid = order[idx];
    let parent = pattern.node(pid).parent.expect("non-root");
    let pv = binding[parent].expect("parent bound first");
    let candidates: Vec<VNode> = match pattern.node(pid).axis {
        Axis::Child => vt.children(pv)?,
        Axis::Descendant => vt.descendants(pv)?,
    };
    for c in candidates {
        if !eval_by_navigation(vt, c, &pattern.node(pid).pred)? {
            continue;
        }
        binding[pid] = Some(c);
        assign_scan(vt, pattern, order, idx + 1, binding, out)?;
        binding[pid] = None;
    }
    Ok(())
}

/// Predicate evaluation that always reads the record (the scan baseline).
fn eval_by_navigation(vt: &VTree<'_>, v: VNode, pred: &Pred) -> Result<bool> {
    // Pay the record read the scan baseline models, even though the tag
    // is now answered from the columnar label region — this is exactly
    // the per-node cost the index-driven matcher avoids (Sec. 5.3).
    if let VNode::Stored(e) = v {
        vt.store().record(e.id)?;
    }
    let tag = vt.tag(v)?;
    let content = if pred.needs_data() {
        vt.content(v)?
    } else {
        None
    };
    let attr = |name: &str| vt.attr(v, name).ok().flatten();
    Ok(pred.eval_local(&tag, content.as_deref(), &attr))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::match_db;
    use xmlstore::StoreOptions;

    const SAMPLE: &str = "<bib>\
        <article><title>Transaction Mng</title><author>Silberschatz</author></article>\
        <article><title>Overview of Transaction Mng</title><author>Silberschatz</author><author>Garcia-Molina</author></article>\
        <article><title>Web Stuff</title><author>Thompson</author></article>\
    </bib>";

    fn store() -> DocumentStore {
        DocumentStore::from_xml(SAMPLE, &StoreOptions::in_memory()).unwrap()
    }

    fn fig1() -> PatternTree {
        let mut p = PatternTree::with_root(Pred::tag("article"));
        p.add_child(
            p.root(),
            Axis::Child,
            Pred::tag("title").and(Pred::content_contains("Transaction")),
        );
        p.add_child(p.root(), Axis::Child, Pred::tag("author"));
        p
    }

    #[test]
    fn scan_agrees_with_index_matcher() {
        let s = store();
        let p = fig1();
        let scan = match_db_scan(&s, &p).unwrap();
        let indexed = match_db(&s, &p).unwrap();
        assert_eq!(scan.len(), indexed.len());
        let ids = |bs: &Vec<Binding>| -> Vec<Vec<u32>> {
            let mut v: Vec<Vec<u32>> = bs
                .iter()
                .map(|b| {
                    b.iter()
                        .map(|n| n.as_stored().unwrap().id.0)
                        .collect::<Vec<_>>()
                })
                .collect();
            v.sort();
            v
        };
        assert_eq!(ids(&scan), ids(&indexed));
    }

    #[test]
    fn scan_touches_data_pages_even_for_tag_only_patterns() {
        let s = store();
        let p = PatternTree::with_root(Pred::tag("author"));
        s.reset_io_stats();
        let _ = match_db(&s, &p).unwrap();
        assert_eq!(s.io_stats().page_requests(), 0);
        let r = match_db_scan(&s, &p).unwrap();
        assert_eq!(r.len(), 4);
        assert!(s.io_stats().page_requests() > 0);
    }

    #[test]
    fn descendant_axis_in_tree_matcher() {
        let s = store();
        let mut p = PatternTree::with_root(Pred::tag("doc_root"));
        p.add_child(p.root(), Axis::Descendant, Pred::tag("author"));
        let b = match_db_scan(&s, &p).unwrap();
        assert_eq!(b.len(), 4);
    }

    #[test]
    fn multiple_embeddings_per_tree() {
        let s = store();
        let article = s.tag_id("article").unwrap();
        let art2 = s.nodes_with_tag(article)[1];
        let t = Tree::new_ref(art2, true);
        let vt = VTree::new(&s, &t);
        let mut p = PatternTree::with_root(Pred::tag("article"));
        p.add_child(p.root(), Axis::Child, Pred::tag("author"));
        let b = match_vtree(&vt, &p, false).unwrap();
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn join_predicate_post_filter() {
        let s = store();
        // Equal-content author pairs within an article: one self-pair per
        // author occurrence.
        let mut p = PatternTree::with_root(Pred::tag("article"));
        let a1 = p.add_child(p.root(), Axis::Child, Pred::tag("author"));
        p.add_child(
            p.root(),
            Axis::Child,
            Pred::tag("author").and(Pred::ContentEqNode(a1)),
        );
        let b = match_db_scan(&s, &p).unwrap();
        assert_eq!(b.len(), 4);
    }

    #[test]
    fn index_assisted_matcher_avoids_structure_io() {
        let s = store();
        // A tag-only pattern over a group-like synthetic tree whose
        // members are deep references: candidate work must be index-only.
        let article = s.tag_id("article").unwrap();
        let mut t = Tree::new_elem(s.dict(), "TAX_group_root");
        let sub = t.add_elem(s.dict(), t.root(), "TAX_group_subroot");
        for e in s.nodes_with_tag(article) {
            t.add_ref(sub, *e, true);
        }
        let mut p = PatternTree::with_root(Pred::tag("TAX_group_root"));
        let subroot = p.add_child(p.root(), Axis::Child, Pred::tag("TAX_group_subroot"));
        p.add_child(subroot, Axis::Child, Pred::tag("article"));

        s.reset_io_stats();
        let vt = VTree::new(&s, &t);
        let b = match_vtree(&vt, &p, true).unwrap();
        assert_eq!(b.len(), 3);
        assert_eq!(
            s.io_stats().page_requests(),
            0,
            "structural matching over references must be index-only"
        );
    }

    #[test]
    fn mixed_arena_stored_descendant_search() {
        let s = store();
        let article = s.tag_id("article").unwrap();
        let mut t = Tree::new_elem(s.dict(), "wrap");
        t.add_ref(t.root(), s.nodes_with_tag(article)[1], true);
        let mut p = PatternTree::with_root(Pred::tag("wrap"));
        p.add_child(p.root(), Axis::Descendant, Pred::tag("author"));
        let vt = VTree::new(&s, &t);
        let b = match_vtree(&vt, &p, true).unwrap();
        assert_eq!(b.len(), 2, "authors found inside the deep reference");
    }

    #[test]
    fn no_required_tag_falls_back_to_navigation() {
        let s = store();
        let article = s.tag_id("article").unwrap();
        let t = Tree::new_ref(s.nodes_with_tag(article)[0], true);
        let mut p = PatternTree::with_root(Pred::tag("article"));
        p.add_child(
            p.root(),
            Axis::Descendant,
            Pred::content_contains("Transaction"),
        );
        let vt = VTree::new(&s, &t);
        let b = match_vtree(&vt, &p, true).unwrap();
        assert_eq!(b.len(), 1); // the title
    }
}
