//! Virtual nodes: a uniform view over in-memory tree nodes and stored
//! nodes, so the recursive matcher can walk a heterogeneous data tree
//! whose deep references continue in the store.

use crate::error::Result;
use crate::tree::{Tree, TreeNodeId, TreeNodeKind};
use xmlstore::{DocumentStore, NodeEntry, NodeId, NodeKind, Sym};

/// A node of the *virtual* data tree: either an arena node of the
/// in-memory [`Tree`], or a stored node reached through a deep reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VNode {
    /// An arena node.
    Arena(TreeNodeId),
    /// A stored node (with its containment label).
    Stored(NodeEntry),
}

impl VNode {
    /// The stored entry, if this is a stored node.
    pub fn as_stored(&self) -> Option<NodeEntry> {
        match self {
            VNode::Stored(e) => Some(*e),
            VNode::Arena(_) => None,
        }
    }

    /// The arena index, if this is an arena node.
    pub fn as_arena(&self) -> Option<TreeNodeId> {
        match self {
            VNode::Arena(i) => Some(*i),
            VNode::Stored(_) => None,
        }
    }
}

/// A read view over one in-memory tree plus the store behind its
/// references.
pub struct VTree<'a> {
    store: &'a DocumentStore,
    tree: &'a Tree,
}

impl<'a> VTree<'a> {
    /// Wrap a tree.
    pub fn new(store: &'a DocumentStore, tree: &'a Tree) -> Self {
        VTree { store, tree }
    }

    /// The underlying store.
    pub fn store(&self) -> &DocumentStore {
        self.store
    }

    /// The underlying tree.
    pub fn tree(&self) -> &Tree {
        self.tree
    }

    /// The virtual root.
    pub fn root(&self) -> VNode {
        VNode::Arena(self.tree.root())
    }

    /// Children of a stored node via the columnar label region: no page
    /// access, attributes filtered out.
    fn stored_children(&self, id: NodeId) -> Vec<VNode> {
        let cols = self.store.columns();
        cols.child_ids(id)
            .into_iter()
            .filter(|c| cols.kind[c.0 as usize] != NodeKind::Attribute)
            .map(|c| VNode::Stored(cols.entry(c)))
            .collect()
    }

    /// Children of a virtual node, in document order. Attribute nodes of
    /// stored elements are not surfaced as children (they are reached via
    /// attribute predicates), matching how pattern trees address data.
    /// Stored-node navigation runs over the columnar label region and
    /// touches no pages.
    pub fn children(&self, v: VNode) -> Result<Vec<VNode>> {
        match v {
            VNode::Arena(i) => match &self.tree.node(i).kind {
                TreeNodeKind::Ref { node, deep: true } => Ok(self.stored_children(node.id)),
                _ => Ok(self
                    .tree
                    .node(i)
                    .children
                    .iter()
                    .map(|&c| VNode::Arena(c))
                    .collect()),
            },
            VNode::Stored(e) => Ok(self.stored_children(e.id)),
        }
    }

    /// All descendants of `v` (excluding `v`), pre-order.
    pub fn descendants(&self, v: VNode) -> Result<Vec<VNode>> {
        let mut out = Vec::new();
        let mut stack = self.children(v)?;
        stack.reverse();
        while let Some(n) = stack.pop() {
            out.push(n);
            let mut kids = self.children(n)?;
            kids.reverse();
            stack.extend(kids);
        }
        Ok(out)
    }

    /// All virtual nodes of the tree, pre-order, root included.
    pub fn all_nodes(&self) -> Result<Vec<VNode>> {
        let mut out = vec![self.root()];
        out.extend(self.descendants(self.root())?);
        Ok(out)
    }

    /// Tag symbol of a virtual node (columnar for stored nodes — no page
    /// access).
    pub fn tag_sym(&self, v: VNode) -> Sym {
        match v {
            VNode::Arena(i) => self.tree.tag_sym_of(self.store, i),
            VNode::Stored(e) => Sym(self.store.columns().tag[e.id.0 as usize]),
        }
    }

    /// Tag of a virtual node.
    pub fn tag(&self, v: VNode) -> Result<String> {
        Ok(self.store.dict().resolve(self.tag_sym(v)).to_string())
    }

    /// Content of a virtual node (a data-value look-up for stored nodes).
    pub fn content(&self, v: VNode) -> Result<Option<String>> {
        match v {
            VNode::Arena(i) => self.tree.content_of(self.store, i),
            VNode::Stored(e) => Ok(self.store.content(e.id)?),
        }
    }

    /// Content *symbol* of a virtual node, from the columnar region — no
    /// page access. This is the grouping-key fast path: a key is a
    /// fixed-width sequence of these symbols.
    pub fn content_sym(&self, v: VNode) -> Option<Sym> {
        match v {
            VNode::Arena(i) => match &self.tree.node(i).kind {
                TreeNodeKind::Elem { content, .. } => *content,
                TreeNodeKind::Ref { node, .. } => self.store.content_sym(node.id),
            },
            VNode::Stored(e) => self.store.content_sym(e.id),
        }
    }

    /// Attribute value of a virtual node.
    pub fn attr(&self, v: VNode, name: &str) -> Result<Option<String>> {
        Ok(self
            .attr_sym(v, name)
            .map(|s| self.store.dict().resolve(s).to_string()))
    }

    /// Attribute value of a virtual node as a content symbol, from the
    /// columnar region — no page access.
    pub fn attr_sym(&self, v: VNode, name: &str) -> Option<Sym> {
        let stored_attr = |id: NodeId| -> Option<Sym> {
            let attr_tag = self.store.attr_tag_id(name)?;
            self.store.columns().attr_sym(id, attr_tag.0).map(Sym)
        };
        match v {
            VNode::Arena(i) => match &self.tree.node(i).kind {
                TreeNodeKind::Ref { node, .. } => stored_attr(node.id),
                TreeNodeKind::Elem { .. } => None,
            },
            VNode::Stored(e) => stored_attr(e.id),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlstore::StoreOptions;

    fn store() -> DocumentStore {
        DocumentStore::from_xml(
            "<bib><article year=\"1999\"><title>T1</title><author>Jack</author><author>Jill</author></article></bib>",
            &StoreOptions::in_memory(),
        )
        .unwrap()
    }

    #[test]
    fn arena_children_listed() {
        let s = store();
        let mut t = Tree::new_elem(s.dict(), "root");
        t.add_elem_with_content(s.dict(), t.root(), "a", "1");
        t.add_elem_with_content(s.dict(), t.root(), "b", "2");
        let vt = VTree::new(&s, &t);
        let kids = vt.children(vt.root()).unwrap();
        assert_eq!(kids.len(), 2);
        assert_eq!(vt.tag(kids[0]).unwrap(), "a");
        assert_eq!(vt.content(kids[1]).unwrap().as_deref(), Some("2"));
    }

    #[test]
    fn deep_ref_children_come_from_store() {
        let s = store();
        let article = s.tag_id("article").unwrap();
        let art = s.nodes_with_tag(article)[0];
        let t = Tree::new_ref(art, true);
        let vt = VTree::new(&s, &t);
        let kids = vt.children(vt.root()).unwrap();
        // title + 2 authors; the @year attribute node is filtered out.
        assert_eq!(kids.len(), 3);
        assert_eq!(vt.tag(kids[0]).unwrap(), "title");
    }

    #[test]
    fn shallow_ref_children_are_arena_only() {
        let s = store();
        let article = s.tag_id("article").unwrap();
        let art = s.nodes_with_tag(article)[0];
        let t = Tree::new_ref(art, false);
        let vt = VTree::new(&s, &t);
        assert!(vt.children(vt.root()).unwrap().is_empty());
    }

    #[test]
    fn descendants_cross_the_ref_boundary() {
        let s = store();
        let article = s.tag_id("article").unwrap();
        let art = s.nodes_with_tag(article)[0];
        let mut t = Tree::new_elem(s.dict(), "wrapper");
        t.add_ref(t.root(), art, true);
        let vt = VTree::new(&s, &t);
        let all = vt.all_nodes().unwrap();
        // wrapper + article-ref + title + 2 authors = 5
        assert_eq!(all.len(), 5);
    }

    #[test]
    fn attr_lookup_through_refs() {
        let s = store();
        let article = s.tag_id("article").unwrap();
        let art = s.nodes_with_tag(article)[0];
        let t = Tree::new_ref(art, true);
        let vt = VTree::new(&s, &t);
        assert_eq!(vt.attr(vt.root(), "year").unwrap().as_deref(), Some("1999"));
        assert_eq!(vt.attr(vt.root(), "month").unwrap(), None);
        let mut t2 = Tree::new_elem(s.dict(), "synthetic");
        let vt2 = VTree::new(&s, &t2);
        assert_eq!(vt2.attr(vt2.root(), "year").unwrap(), None);
        let _ = &mut t2;
    }

    #[test]
    fn stored_vnode_tag_and_content() {
        let s = store();
        let author = s.tag_id("author").unwrap();
        let a = s.nodes_with_tag(author)[1];
        let t = Tree::new_elem(s.dict(), "x");
        let vt = VTree::new(&s, &t);
        let v = VNode::Stored(a);
        assert_eq!(vt.tag(v).unwrap(), "author");
        assert_eq!(vt.content(v).unwrap().as_deref(), Some("Jill"));
    }
}
