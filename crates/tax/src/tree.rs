//! The in-memory data tree manipulated by TAX operators.
//!
//! A tree is an arena of nodes; each node is either a **constructed
//! element** (tag + optional content) or a **reference** to a stored node.
//! A *deep* reference stands for the entire stored subtree and is only
//! expanded when the tree is materialized — this is the "identifier
//! processing" of Sec. 5.3: witness trees and group trees circulate as
//! identifiers, and data pages are touched only for the values an operator
//! actually needs.
//!
//! Constructed nodes carry dictionary [`Sym`]s, not strings: tags like
//! `TAX_group_root` and computed values are interned once into the
//! store's unified dictionary and resolved back to text only at
//! serialization. Tree payloads are therefore fixed-width and `Clone` is
//! a flat memcpy of arena vectors — every clone is counted in a global
//! counter so the executor can surface tree-copy traffic per operator.

use crate::error::Result;
use std::sync::atomic::{AtomicU64, Ordering};
use xmlstore::{Dictionary, DocumentStore, NodeEntry, NodeKind, Sym};

/// A collection of data trees — what every TAX operator consumes and
/// produces.
pub type Collection = Vec<Tree>;

/// Arena index of a node within a [`Tree`].
pub type TreeNodeId = usize;

/// Global count of [`Tree`] clones since process start (or the last
/// [`reset_tree_clones`]) — the executor's clone-budget metric.
static TREE_CLONES: AtomicU64 = AtomicU64::new(0);

/// Number of tree clones performed so far.
pub fn tree_clones() -> u64 {
    TREE_CLONES.load(Ordering::Relaxed)
}

/// Reset the global tree-clone counter (tests and benchmarks).
pub fn reset_tree_clones() {
    TREE_CLONES.store(0, Ordering::Relaxed);
}

/// What a tree node is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeNodeKind {
    /// A constructed element, e.g. `TAX_group_root`.
    Elem {
        /// Interned tag name.
        tag: Sym,
        /// Optional interned character content.
        content: Option<Sym>,
    },
    /// A reference to a stored node. With `deep == true` the node stands
    /// for the whole stored subtree; otherwise just for the node itself
    /// (tag and content), with children given explicitly in the arena.
    /// The reference carries the full `(start, end, level)` label — in
    /// TIMBER the label *is* the node identifier — so structural work on
    /// references never reads the record.
    Ref {
        /// The stored node, with its containment label.
        node: NodeEntry,
        /// Whether the entire stored subtree is included.
        deep: bool,
    },
}

/// One arena node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeNode {
    /// Payload.
    pub kind: TreeNodeKind,
    /// Parent arena index (`None` for the root).
    pub parent: Option<TreeNodeId>,
    /// Children arena indices, in order.
    pub children: Vec<TreeNodeId>,
}

/// An ordered, labelled data tree.
#[derive(Debug, PartialEq, Eq)]
pub struct Tree {
    nodes: Vec<TreeNode>,
}

impl Clone for Tree {
    fn clone(&self) -> Self {
        TREE_CLONES.fetch_add(1, Ordering::Relaxed);
        Tree {
            nodes: self.nodes.clone(),
        }
    }
}

impl Tree {
    /// A tree whose root is a constructed element.
    pub fn new_elem(dict: &Dictionary, tag: impl AsRef<str>) -> Self {
        Self::new_elem_sym(dict.intern(tag.as_ref()))
    }

    /// A tree whose root is a constructed element with an already-interned
    /// tag.
    pub fn new_elem_sym(tag: Sym) -> Self {
        Tree {
            nodes: vec![TreeNode {
                kind: TreeNodeKind::Elem { tag, content: None },
                parent: None,
                children: Vec::new(),
            }],
        }
    }

    /// A tree that is a single (deep) reference to a stored subtree.
    pub fn new_ref(node: NodeEntry, deep: bool) -> Self {
        Tree {
            nodes: vec![TreeNode {
                kind: TreeNodeKind::Ref { node, deep },
                parent: None,
                children: Vec::new(),
            }],
        }
    }

    /// Build a fully materialized tree from a DOM element: text-only
    /// children become the node's content, mixed-content text becomes
    /// `#text` children, attributes are dropped (TAX trees address
    /// attributes through predicates, not as children).
    pub fn from_element(dict: &Dictionary, elem: &xmlparse::Element) -> Self {
        let mut t = Tree::new_elem(dict, &elem.name);
        Self::fill_from_element(dict, &mut t, 0, elem);
        t
    }

    fn fill_from_element(
        dict: &Dictionary,
        t: &mut Tree,
        node: TreeNodeId,
        elem: &xmlparse::Element,
    ) {
        let has_elem_children = elem.children.iter().any(|c| c.as_element().is_some());
        if !has_elem_children {
            let text = elem.text();
            if !text.is_empty() {
                if let TreeNodeKind::Elem { content, .. } = &mut t.node_mut(node).kind {
                    *content = Some(dict.intern(&text));
                }
            }
            return;
        }
        for child in &elem.children {
            match child {
                xmlparse::XmlNode::Element(e) => {
                    let id = t.add_elem(dict, node, &e.name);
                    Self::fill_from_element(dict, t, id, e);
                }
                xmlparse::XmlNode::Text(s) => {
                    if !s.trim().is_empty() {
                        t.add_elem_with_content(dict, node, "#text", s);
                    }
                }
                xmlparse::XmlNode::Comment(_) => {}
            }
        }
    }

    /// The root's arena index (always 0).
    pub fn root(&self) -> TreeNodeId {
        0
    }

    /// Number of arena nodes (deep references count as one).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the arena is empty (never true for a constructed tree).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Immutable access to a node.
    pub fn node(&self, id: TreeNodeId) -> &TreeNode {
        &self.nodes[id]
    }

    /// Mutable access to a node.
    pub fn node_mut(&mut self, id: TreeNodeId) -> &mut TreeNode {
        &mut self.nodes[id]
    }

    /// Append a new node under `parent`, returning its index.
    pub fn add_node(&mut self, parent: TreeNodeId, kind: TreeNodeKind) -> TreeNodeId {
        let id = self.nodes.len();
        self.nodes.push(TreeNode {
            kind,
            parent: Some(parent),
            children: Vec::new(),
        });
        self.nodes[parent].children.push(id);
        id
    }

    /// Append a constructed element under `parent`.
    pub fn add_elem(
        &mut self,
        dict: &Dictionary,
        parent: TreeNodeId,
        tag: impl AsRef<str>,
    ) -> TreeNodeId {
        self.add_elem_sym(parent, dict.intern(tag.as_ref()))
    }

    /// Append a constructed element with an already-interned tag.
    pub fn add_elem_sym(&mut self, parent: TreeNodeId, tag: Sym) -> TreeNodeId {
        self.add_node(parent, TreeNodeKind::Elem { tag, content: None })
    }

    /// Append a constructed element with content under `parent`.
    pub fn add_elem_with_content(
        &mut self,
        dict: &Dictionary,
        parent: TreeNodeId,
        tag: impl AsRef<str>,
        content: impl AsRef<str>,
    ) -> TreeNodeId {
        self.add_elem_with_content_sym(
            parent,
            dict.intern(tag.as_ref()),
            dict.intern(content.as_ref()),
        )
    }

    /// Append a constructed element with already-interned tag and content.
    pub fn add_elem_with_content_sym(
        &mut self,
        parent: TreeNodeId,
        tag: Sym,
        content: Sym,
    ) -> TreeNodeId {
        self.add_node(
            parent,
            TreeNodeKind::Elem {
                tag,
                content: Some(content),
            },
        )
    }

    /// Append a stored-node reference under `parent`.
    pub fn add_ref(&mut self, parent: TreeNodeId, node: NodeEntry, deep: bool) -> TreeNodeId {
        self.add_node(parent, TreeNodeKind::Ref { node, deep })
    }

    /// Insert a new node under `parent` at child position `pos`.
    pub fn insert_node(
        &mut self,
        parent: TreeNodeId,
        pos: usize,
        kind: TreeNodeKind,
    ) -> TreeNodeId {
        let id = self.nodes.len();
        self.nodes.push(TreeNode {
            kind,
            parent: Some(parent),
            children: Vec::new(),
        });
        let pos = pos.min(self.nodes[parent].children.len());
        self.nodes[parent].children.insert(pos, id);
        id
    }

    /// Deep-copy the subtree of `other` rooted at `src` as the last child
    /// of `parent` in `self`. Returns the copied root's index.
    pub fn append_subtree(
        &mut self,
        parent: TreeNodeId,
        other: &Tree,
        src: TreeNodeId,
    ) -> TreeNodeId {
        let new_id = self.add_node(parent, other.nodes[src].kind.clone());
        let src_children = other.nodes[src].children.clone();
        for c in src_children {
            self.append_subtree(new_id, other, c);
        }
        new_id
    }

    /// Pre-order traversal of arena node indices.
    pub fn preorder(&self) -> Vec<TreeNodeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![self.root()];
        while let Some(n) = stack.pop() {
            out.push(n);
            for &c in self.nodes[n].children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Whether arena node `a` is a (proper) ancestor of `d`.
    pub fn is_ancestor(&self, a: TreeNodeId, d: TreeNodeId) -> bool {
        let mut cur = self.nodes[d].parent;
        while let Some(p) = cur {
            if p == a {
                return true;
            }
            cur = self.nodes[p].parent;
        }
        false
    }

    /// The interned tag of an arena node. For references this reads the
    /// columnar label region — no page access.
    pub fn tag_sym_of(&self, store: &DocumentStore, id: TreeNodeId) -> Sym {
        match &self.nodes[id].kind {
            TreeNodeKind::Elem { tag, .. } => *tag,
            TreeNodeKind::Ref { node, .. } => Sym(store.columns().tag[node.id.0 as usize]),
        }
    }

    /// The tag of an arena node. For references this reads the stored
    /// record (one page access).
    pub fn tag_of(&self, store: &DocumentStore, id: TreeNodeId) -> Result<String> {
        match &self.nodes[id].kind {
            TreeNodeKind::Elem { tag, .. } => Ok(store.dict().resolve(*tag).to_string()),
            TreeNodeKind::Ref { node, .. } => {
                let rec = store.record(node.id)?;
                Ok(store.tag_name(rec.tag).to_string())
            }
        }
    }

    /// The content of an arena node (a data-value look-up for references).
    pub fn content_of(&self, store: &DocumentStore, id: TreeNodeId) -> Result<Option<String>> {
        match &self.nodes[id].kind {
            TreeNodeKind::Elem { content, .. } => {
                Ok(content.map(|c| store.dict().resolve(c).to_string()))
            }
            TreeNodeKind::Ref { node, .. } => Ok(store.content(node.id)?),
        }
    }

    /// Materialize ("data population", Sec. 5.3) into a DOM element,
    /// expanding deep references through the store.
    pub fn materialize(&self, store: &DocumentStore) -> Result<xmlparse::Element> {
        self.materialize_node(store, self.root())
    }

    /// Materialize the subtree rooted at arena node `id`.
    pub fn materialize_node(
        &self,
        store: &DocumentStore,
        id: TreeNodeId,
    ) -> Result<xmlparse::Element> {
        let node = &self.nodes[id];
        let mut elem = match &node.kind {
            TreeNodeKind::Elem { tag, content } => {
                let mut e = xmlparse::Element::new(&*store.dict().resolve(*tag));
                if let Some(c) = content {
                    e.children
                        .push(xmlparse::XmlNode::Text(store.dict().resolve(*c).to_string()));
                }
                e
            }
            TreeNodeKind::Ref { node: nid, deep } => {
                if *deep {
                    store.materialize(nid.id)?
                } else {
                    // Shallow: tag, attributes and content only; arena
                    // children are appended below.
                    let rec = store.record(nid.id)?;
                    let mut e = xmlparse::Element::new(&*store.tag_name(rec.tag));
                    for child in store.children(nid.id)? {
                        let crec = store.record(child)?;
                        if crec.kind == NodeKind::Attribute {
                            let name = store.tag_name(crec.tag).trim_start_matches('@').to_owned();
                            let value = store.content(child)?.unwrap_or_default();
                            e.attributes.push((name, value));
                        }
                    }
                    if let Some(c) = store.content(nid.id)? {
                        e.children.push(xmlparse::XmlNode::Text(c));
                    }
                    e
                }
            }
        };
        for &c in &node.children {
            elem.children
                .push(xmlparse::XmlNode::Element(self.materialize_node(store, c)?));
        }
        Ok(elem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlstore::StoreOptions;

    fn store() -> DocumentStore {
        DocumentStore::from_xml(
            "<bib><article year=\"1999\"><title>Querying XML</title><author>Jack</author></article></bib>",
            &StoreOptions::in_memory(),
        )
        .unwrap()
    }

    #[test]
    fn build_and_navigate() {
        let s = store();
        let d = s.dict();
        let mut t = Tree::new_elem(d, "root");
        let a = t.add_elem(d, t.root(), "a");
        let b = t.add_elem_with_content(d, a, "b", "text");
        assert_eq!(t.len(), 3);
        assert_eq!(t.node(a).parent, Some(t.root()));
        assert_eq!(t.node(t.root()).children, vec![a]);
        assert!(t.is_ancestor(t.root(), b));
        assert!(t.is_ancestor(a, b));
        assert!(!t.is_ancestor(b, a));
        assert!(!t.is_ancestor(a, a));
    }

    #[test]
    fn preorder_order() {
        let s = store();
        let d = s.dict();
        let mut t = Tree::new_elem(d, "r");
        let a = t.add_elem(d, t.root(), "a");
        let _a1 = t.add_elem(d, a, "a1");
        let _b = t.add_elem(d, t.root(), "b");
        let order: Vec<String> = t
            .preorder()
            .iter()
            .map(|&n| match &t.node(n).kind {
                TreeNodeKind::Elem { tag, .. } => d.resolve(*tag).to_string(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, ["r", "a", "a1", "b"]);
    }

    #[test]
    fn insert_node_at_position() {
        let s = store();
        let d = s.dict();
        let mut t = Tree::new_elem(d, "r");
        let a = t.add_elem(d, t.root(), "a");
        let c = t.add_elem(d, t.root(), "c");
        let b = t.insert_node(
            t.root(),
            1,
            TreeNodeKind::Elem {
                tag: d.intern("b"),
                content: None,
            },
        );
        assert_eq!(t.node(t.root()).children, vec![a, b, c]);
    }

    #[test]
    fn append_subtree_copies_deeply() {
        let s = store();
        let d = s.dict();
        let mut src = Tree::new_elem(d, "s");
        let x = src.add_elem(d, src.root(), "x");
        src.add_elem_with_content(d, x, "y", "v");

        let mut dst = Tree::new_elem(d, "d");
        let copied = dst.append_subtree(dst.root(), &src, x);
        assert_eq!(dst.len(), 3);
        let elem = dst.materialize_node(&s, copied).unwrap();
        assert_eq!(elem.name, "x");
        assert_eq!(elem.child("y").unwrap().text(), "v");
    }

    #[test]
    fn deep_ref_materializes_stored_subtree() {
        let s = store();
        let article = s.tag_id("article").unwrap();
        let node = s.nodes_with_tag(article)[0];
        let t = Tree::new_ref(node, true);
        let elem = t.materialize(&s).unwrap();
        assert_eq!(elem.name, "article");
        assert_eq!(elem.attr("year"), Some("1999"));
        assert_eq!(elem.children_named("author").count(), 1);
    }

    #[test]
    fn shallow_ref_keeps_only_node_and_arena_children() {
        let s = store();
        let article = s.tag_id("article").unwrap();
        let author = s.tag_id("author").unwrap();
        let art = s.nodes_with_tag(article)[0];
        let auth = s.nodes_with_tag(author)[0];
        // Witness-tree shape: article (shallow) with author (shallow) child.
        let mut t = Tree::new_ref(art, false);
        t.add_ref(t.root(), auth, false);
        let elem = t.materialize(&s).unwrap();
        assert_eq!(elem.name, "article");
        // Shallow article keeps attributes but not the title child.
        assert_eq!(elem.attr("year"), Some("1999"));
        assert!(elem.child("title").is_none());
        assert_eq!(elem.child("author").unwrap().text(), "Jack");
    }

    #[test]
    fn tag_and_content_of_refs() {
        let s = store();
        let title = s.tag_id("title").unwrap();
        let node = s.nodes_with_tag(title)[0];
        let t = Tree::new_ref(node, false);
        assert_eq!(t.tag_of(&s, t.root()).unwrap(), "title");
        assert_eq!(t.tag_sym_of(&s, t.root()), title);
        assert_eq!(
            t.content_of(&s, t.root()).unwrap().as_deref(),
            Some("Querying XML")
        );
    }

    #[test]
    fn elem_content_materializes_as_text() {
        let s = store();
        let mut t = Tree::new_elem(s.dict(), "authorpubs");
        t.add_elem_with_content(s.dict(), t.root(), "author", "Jack");
        let e = t.materialize(&s).unwrap();
        assert_eq!(e.child("author").unwrap().text(), "Jack");
    }

    #[test]
    fn clones_are_counted() {
        let s = store();
        let t = Tree::new_elem(s.dict(), "r");
        let before = tree_clones();
        let _c1 = t.clone();
        let _c2 = t.clone();
        assert_eq!(tree_clones() - before, 2);
    }
}
