//! Duplicate elimination (Sec. 4.1): keep the first tree per distinct
//! content of a bound pattern node.
//!
//! The naive parse of Query 1 applies this after the outer
//! selection/projection ("a duplicate elimination based on the content of
//! the bound variable", here `$2.content` — the author value). The value
//! comparison requires a data look-up for stored nodes, which is part of
//! the direct plan's cost (Sec. 6: "we eliminate duplicates … by looking
//! up the actual data values").

use crate::error::Result;
use crate::exec::{par_map, ExecOptions};
use crate::matching::match_tree;
use crate::matching::vnode::VTree;
use crate::pattern::{PatternNodeId, PatternTree};
use crate::tree::Collection;
use std::collections::HashSet;
use xmlstore::DocumentStore;

/// The duplicate key of one tree: `None` when the pattern did not match
/// (the tree is kept unconditionally), `Some(content)` otherwise.
pub type DupKey = Option<Option<String>>;

/// Keep the first tree for each distinct content of the node bound by
/// `by`. Trees in which the pattern does not match at all are kept
/// unconditionally (they carry no duplicate key).
pub fn dup_elim(
    store: &DocumentStore,
    input: Collection,
    pattern: &PatternTree,
    by: PatternNodeId,
) -> Result<Collection> {
    dup_elim_opts(store, input, pattern, by, &ExecOptions::default())
}

/// [`dup_elim`] with explicit execution options. Key extraction (the
/// pattern match and data value look-up) fans out per tree; the
/// first-occurrence scan itself stays sequential in input order, so the
/// survivors are the same trees a single-threaded run keeps.
pub fn dup_elim_opts(
    store: &DocumentStore,
    input: Collection,
    pattern: &PatternTree,
    by: PatternNodeId,
    opts: &ExecOptions,
) -> Result<Collection> {
    let keys = dup_keys(store, &input, pattern, by, opts)?;
    let mut seen: HashSet<Option<String>> = HashSet::new();
    let mut out = Vec::new();
    for (tree, key) in input.into_iter().zip(keys) {
        match key {
            None => out.push(tree),
            Some(value) => {
                if seen.insert(value) {
                    out.push(tree);
                }
            }
        }
    }
    Ok(out)
}

/// Per-tree duplicate keys, extracted in parallel. Exposed separately so
/// a streaming executor can run the first-occurrence scan itself,
/// carrying the seen-set across batches.
pub fn dup_keys(
    store: &DocumentStore,
    input: &[crate::tree::Tree],
    pattern: &PatternTree,
    by: PatternNodeId,
    opts: &ExecOptions,
) -> Result<Vec<DupKey>> {
    if by >= pattern.len() {
        return Err(crate::error::Error::UnknownLabel(format!("${}", by + 1)));
    }
    par_map(opts, input, |_, tree| {
        let bindings = match_tree(store, tree, pattern, false)?;
        match bindings.first() {
            None => Ok(None),
            Some(b) => Ok(Some(VTree::new(store, tree).content(b[by])?)),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::select::select_db;
    use crate::pattern::{Axis, Pred};
    use xmlstore::StoreOptions;

    const SAMPLE: &str = "<bib>\
        <article><title>T1</title><author>Jack</author><author>John</author></article>\
        <article><title>T2</title><author>Jill</author><author>Jack</author></article>\
        <article><title>T3</title><author>John</author></article>\
    </bib>";

    fn store() -> DocumentStore {
        DocumentStore::from_xml(SAMPLE, &StoreOptions::in_memory()).unwrap()
    }

    #[test]
    fn distinct_authors_query1_outer_step() {
        // The outer step of Query 1: select authors, project, dup-elim.
        let s = store();
        let mut p = PatternTree::with_root(Pred::tag("doc_root"));
        let author = p.add_child(p.root(), Axis::Descendant, Pred::tag("author"));
        let sel = select_db(&s, &p, &[author]).unwrap();
        assert_eq!(sel.len(), 5);
        let distinct = dup_elim(&s, sel, &p, author).unwrap();
        assert_eq!(distinct.len(), 3); // Jack, John, Jill
        let names: Vec<String> = distinct
            .iter()
            .map(|t| t.materialize(&s).unwrap().child("author").unwrap().text())
            .collect();
        assert_eq!(names, ["Jack", "John", "Jill"]); // first occurrence order
    }

    #[test]
    fn unmatched_trees_pass_through() {
        let s = store();
        let input = vec![
            crate::tree::Tree::new_elem(s.dict(), "odd"),
            crate::tree::Tree::new_elem(s.dict(), "odd"),
        ];
        let p = PatternTree::with_root(Pred::tag("author"));
        let out = dup_elim(&s, input, &p, p.root()).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn bad_label_rejected() {
        let s = store();
        let p = PatternTree::with_root(Pred::tag("author"));
        assert!(dup_elim(&s, Vec::new(), &p, 7).is_err());
    }

    #[test]
    fn io_cost_of_value_lookups() {
        let s = store();
        let mut p = PatternTree::with_root(Pred::tag("doc_root"));
        let author = p.add_child(p.root(), Axis::Descendant, Pred::tag("author"));
        let sel = select_db(&s, &p, &[author]).unwrap();
        s.reset_io_stats();
        let _ = dup_elim(&s, sel, &p, author).unwrap();
        assert!(
            s.io_stats().page_requests() > 0,
            "dup-elim must look up data values"
        );
    }
}
