//! The fused grouped-aggregate rollup (the streaming counterpart of
//! `GROUPBY` + aggregation).
//!
//! When grouped trees exist only to be counted/summed and immediately
//! discarded — the paper's E2 workload, and the XOLAP rollup formulation
//! of Hachicha & Darmont — materializing a `TAX_group_root` tree with a
//! full member list per group is pure overhead. `rollup` instead
//! hash-accumulates per-basis-key aggregate state directly from the
//! input scan:
//!
//! * witnesses are extracted per input tree exactly as in
//!   [`super::groupby::groupby_sharded`] (same multi-valued-basis
//!   semantics: a two-author article contributes to both authors'
//!   accumulators, and the same tree enters a given group only once);
//! * each tree's aggregate contribution (its member-pattern binding
//!   count and numeric values) is computed once, tree-locally, and
//!   folded into the group's **running** accumulators in member arrival
//!   order — Count/Sum/Min/Max as scalars, Avg as sum + count — so the
//!   folds replay the materialized kernel's `values.iter()` order bit
//!   for bit;
//! * each group emits one small output tree
//!   `TAX_group_root { TAX_grouping_basis {…}, <tag>value</tag> }` in
//!   first-witness order, with basis children built by the same routine
//!   as the group trees' — no member subtrees, ever.
//!
//! The member subroot is omitted, so the rollup output is byte-identical
//! to `GroupBy → Aggregate` only for consumers that never bind
//! `TAX_group_subroot`; the `rollup-fuse` optimizer rule (in `xquery`)
//! checks exactly that before substituting this kernel.
//!
//! With [`RollupShape::Flat`] the kernel additionally absorbs the
//! canonical downstream projection: it emits
//! `TAX_group_root { <key subtree>, <tag>value</tag> }` — no basis
//! wrapper — and **drops** groups whose aggregate is undefined, exactly
//! as the projection (whose pattern requires the value child) would.
//! The optimizer only selects this shape when the consuming projection
//! is precisely that extraction.

use crate::error::{Error, Result};
use crate::exec::{par_map, par_map_owned, ExecOptions, ShardStats};
use crate::matching::vnode::{VNode, VTree};
use crate::matching::{match_db, match_tree};
use crate::ops::aggregate::{format_value, AggFunc};
use crate::ops::groupby::{add_basis_children, validate, BasisItem, Key};
use crate::ops::keyenc::{self, component};
use crate::pattern::{PatternNodeId, PatternTree};
use crate::tree::{Collection, Tree, TreeNodeKind};
use std::collections::HashMap;
use xmlstore::{Dictionary, DocumentStore, NodeEntry};

/// The output tree shape of a rollup run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RollupShape {
    /// `TAX_group_root { TAX_grouping_basis {…}, <tag>v</tag> }` — the
    /// materialized group-tree shape minus the member subroot; groups
    /// with an undefined aggregate are emitted without the value child.
    Grouped,
    /// `TAX_group_root { <key subtree>, <tag>v</tag> }` — the downstream
    /// projection pre-applied; groups with an undefined aggregate are
    /// dropped (the projection's pattern requires the value child).
    Flat,
}

/// One grouping witness: key plus the nodes that become basis children.
/// Shared with the cube kernel ([`super::cube`]), which accumulates the
/// same witness stream at every basis-prefix level.
pub(crate) struct RollupWitness {
    pub(crate) key: Key,
    pub(crate) basis_nodes: Vec<VNode>,
}

/// One witness-stream entry: `(input tree index, arrival ordinal,
/// witness)` — the collection-major order the accumulators fold in.
pub(crate) type StreamEntry = (usize, usize, RollupWitness);

/// One input tree's aggregate contribution: what the materialized
/// `Aggregate` would see for this tree as a group member.
pub(crate) struct Contribution {
    /// Member-pattern bindings (what COUNT counts).
    pub(crate) bindings: usize,
    /// Numeric values at the aggregated label, in binding order (empty
    /// for COUNT, which never fetches values).
    pub(crate) values: Vec<f64>,
}

/// Running accumulator state of one group.
pub(crate) struct GroupAcc {
    pub(crate) key: Key,
    pub(crate) basis_nodes: Vec<VNode>,
    pub(crate) basis_tree: usize,
    /// Last input tree folded in (member dedup: same-key witnesses of
    /// one tree are consecutive, exactly as in group formation).
    pub(crate) last_member: Option<usize>,
    pub(crate) bindings: usize,
    pub(crate) values: usize,
    pub(crate) sum: f64,
    pub(crate) min: Option<f64>,
    pub(crate) max: Option<f64>,
}

impl GroupAcc {
    /// A fresh accumulator for a group first seen with this witness.
    pub(crate) fn new(key: Key, basis_nodes: Vec<VNode>, basis_tree: usize) -> GroupAcc {
        GroupAcc {
            key,
            basis_nodes,
            basis_tree,
            last_member: None,
            bindings: 0,
            values: 0,
            sum: 0.0,
            min: None,
            max: None,
        }
    }

    pub(crate) fn fold(&mut self, c: &Contribution) {
        self.bindings += c.bindings;
        for &v in &c.values {
            self.values += 1;
            self.sum += v;
            self.min = Some(self.min.map_or(v, |m| m.min(v)));
            self.max = Some(self.max.map_or(v, |m| m.max(v)));
        }
    }

    /// The finished aggregate value; `None` when undefined (Min/Max/Avg
    /// over no numeric values), mirroring `aggregate::compute` — every
    /// arm replays the same left fold the batch kernel runs over the
    /// gathered value slice.
    pub(crate) fn finish(&self, func: AggFunc) -> Option<f64> {
        match func {
            AggFunc::Count => Some(self.bindings as f64),
            AggFunc::Sum => Some(self.sum),
            AggFunc::Min => self.min,
            AggFunc::Max => self.max,
            AggFunc::Avg => {
                if self.values == 0 {
                    None
                } else {
                    Some(self.sum / self.values as f64)
                }
            }
        }
    }
}

/// Streaming grouped aggregation with default execution options.
#[allow(clippy::too_many_arguments)]
pub fn rollup(
    store: &DocumentStore,
    input: &Collection,
    pattern: &PatternTree,
    basis: &[BasisItem],
    member_pattern: &PatternTree,
    of: PatternNodeId,
    func: AggFunc,
    new_tag: &str,
    shape: RollupShape,
) -> Result<Collection> {
    rollup_opts(
        store,
        input,
        pattern,
        basis,
        member_pattern,
        of,
        func,
        new_tag,
        shape,
        &ExecOptions::default(),
    )
}

/// [`rollup`] with explicit execution options (serial accumulation).
#[allow(clippy::too_many_arguments)]
pub fn rollup_opts(
    store: &DocumentStore,
    input: &Collection,
    pattern: &PatternTree,
    basis: &[BasisItem],
    member_pattern: &PatternTree,
    of: PatternNodeId,
    func: AggFunc,
    new_tag: &str,
    shape: RollupShape,
    opts: &ExecOptions,
) -> Result<Collection> {
    Ok(rollup_sharded(
        store,
        input,
        pattern,
        basis,
        member_pattern,
        of,
        func,
        new_tag,
        shape,
        opts,
        1,
    )?
    .0)
}

/// Hash-partitioned rollup: the sharded-sink entry point.
///
/// Witness extraction and per-tree contributions fan out over
/// `opts.threads`; witnesses are then routed to `partitions` shards by
/// the same FNV-1a key hash as [`super::groupby::groupby_sharded`], each
/// shard accumulates its groups independently (in parallel via
/// [`par_map_owned`]), and the per-shard outputs merge ordered by each
/// group's global first-arrival position — byte-identical to
/// `partitions = 1`. Returns the collection plus the partition
/// statistics for the metrics tree.
#[allow(clippy::too_many_arguments)]
pub fn rollup_sharded(
    store: &DocumentStore,
    input: &Collection,
    pattern: &PatternTree,
    basis: &[BasisItem],
    member_pattern: &PatternTree,
    of: PatternNodeId,
    func: AggFunc,
    new_tag: &str,
    shape: RollupShape,
    opts: &ExecOptions,
    partitions: usize,
) -> Result<(Collection, ShardStats)> {
    validate(pattern, basis, &[])?;
    if of >= member_pattern.len() {
        return Err(Error::UnknownLabel(format!("${}", of + 1)));
    }

    // Extraction: grouping witnesses (as in groupby) plus each tree's
    // aggregate contribution. When the input is a collection of disjoint
    // stored subtrees (the post-selection scan the optimizer feeds the
    // rollup), both patterns are matched **once** against the whole
    // database through the tag index and the bindings routed back to
    // their input trees by region containment — two index joins instead
    // of 2·N scoped matches. Other inputs take the per-tree matcher.
    // Either way the witness stream is collection-major (all of tree 0's
    // witnesses, then tree 1's, …), which the member dedup relies on.
    let (contributions, stream): (Vec<Contribution>, Vec<StreamEntry>) = match stored_scopes(input)
    {
        Some(scopes) => extract_batched(
            store,
            input,
            &scopes,
            pattern,
            basis,
            member_pattern,
            of,
            func,
        )?,
        None => {
            let per_tree = par_map(opts, input, |_, tree| {
                extract_tree(store, tree, pattern, basis, member_pattern, of, func)
            })?;
            let mut contributions: Vec<Contribution> = Vec::with_capacity(per_tree.len());
            let mut stream: Vec<StreamEntry> = Vec::new();
            let mut seq = 0usize;
            for (tree_idx, (witnesses, contribution)) in per_tree.into_iter().enumerate() {
                contributions.push(contribution);
                for w in witnesses {
                    stream.push((tree_idx, seq, w));
                    seq += 1;
                }
            }
            (contributions, stream)
        }
    };

    let partitions = partitions.max(1).min(stream.len().max(1));
    if partitions <= 1 {
        let n = stream.len();
        let built = accumulate_shard(
            store.dict(),
            input,
            basis,
            &contributions,
            func,
            new_tag,
            shape,
            stream,
        )?;
        return Ok((
            built.into_iter().map(|(_, t)| t).collect(),
            ShardStats::serial(n),
        ));
    }

    let mut shards: Vec<Vec<StreamEntry>> = (0..partitions).map(|_| Vec::new()).collect();
    for entry in stream {
        let shard = keyenc::shard_of(&entry.2.key, partitions);
        shards[shard].push(entry);
    }
    let sizes: Vec<usize> = shards.iter().map(Vec::len).collect();
    let built = par_map_owned(opts, shards, |_, shard| {
        accumulate_shard(
            store.dict(),
            input,
            basis,
            &contributions,
            func,
            new_tag,
            shape,
            shard,
        )
    })?;
    let mut all: Vec<(usize, Tree)> = built.into_iter().flatten().collect();
    all.sort_by_key(|&(first_seq, _)| first_seq);
    Ok((
        all.into_iter().map(|(_, t)| t).collect(),
        ShardStats { partitions, sizes },
    ))
}

/// `(tree index, stored scope)` per input tree, ordered by pre-order
/// region start — the precondition for batched extraction. `None` when
/// any tree is arena-backed, a shallow reference, or the scopes overlap
/// (nested or duplicated inputs), in which case extraction falls back to
/// the per-tree matcher.
pub(crate) fn stored_scopes(input: &Collection) -> Option<Vec<(usize, NodeEntry)>> {
    let mut scopes = Vec::with_capacity(input.len());
    for (i, t) in input.iter().enumerate() {
        if t.len() != 1 {
            return None;
        }
        match t.node(t.root()).kind {
            TreeNodeKind::Ref { node, deep: true } => scopes.push((i, node)),
            _ => return None,
        }
    }
    scopes.sort_by_key(|&(_, s)| s.start);
    if scopes.windows(2).any(|w| w[1].1.start <= w[0].1.end) {
        return None;
    }
    Some(scopes)
}

/// Batched extraction over disjoint stored subtrees: one database-wide
/// index match per pattern, bindings assigned to input trees by region
/// containment of the pattern-root binding (witnesses anywhere inside
/// the tree; member bindings anchored at the tree root exactly, like the
/// per-tree matcher's `anchor_root`). Returns the per-tree contributions
/// and the collection-major witness stream directly — no per-tree
/// buffers, just one stable sort of the doc-ordered bindings by input
/// position (within a tree that keeps the document order the scoped
/// matcher produces).
#[allow(clippy::too_many_arguments)]
pub(crate) fn extract_batched(
    store: &DocumentStore,
    input: &Collection,
    scopes: &[(usize, NodeEntry)],
    pattern: &PatternTree,
    basis: &[BasisItem],
    member_pattern: &PatternTree,
    of: PatternNodeId,
    func: AggFunc,
) -> Result<(Vec<Contribution>, Vec<StreamEntry>)> {
    let mut contributions: Vec<Contribution> = input
        .iter()
        .map(|_| Contribution {
            bindings: 0,
            values: Vec::new(),
        })
        .collect();
    if scopes.is_empty() {
        return Ok((contributions, Vec::new()));
    }

    // The input tree whose region contains `e`, if any.
    let locate = |e: &NodeEntry| -> Option<(usize, NodeEntry)> {
        let i = scopes.partition_point(|&(_, s)| s.start <= e.start);
        let (ti, s) = scopes[i.checked_sub(1)?];
        (e.end <= s.end).then_some((ti, s))
    };

    let bindings = match_db(store, pattern)?;
    let mut flat: Vec<(usize, RollupWitness)> = Vec::with_capacity(bindings.len());
    for binding in bindings {
        let VNode::Stored(root) = binding[pattern.root()] else {
            continue;
        };
        let Some((ti, scope)) = locate(&root) else {
            continue;
        };
        let tree = &input[ti];
        let vt = VTree::new(store, tree);
        let mut key: Key = Vec::with_capacity(basis.len());
        for item in basis {
            let v = binding[item.label];
            key.push(component(match &item.attr {
                Some(name) => vt.attr_sym(v, name),
                None => vt.content_sym(v),
            }));
        }
        // Canonicalize a binding of the scope node itself to the tree's
        // arena root, exactly as the per-tree matcher does.
        let basis_nodes = basis
            .iter()
            .map(|b| match binding[b.label] {
                VNode::Stored(e) if e.id == scope.id => VNode::Arena(tree.root()),
                v => v,
            })
            .collect();
        flat.push((ti, RollupWitness { key, basis_nodes }));
    }
    // Stable by construction: sorting doc-ordered bindings by input
    // position yields the collection-major stream.
    flat.sort_by_key(|&(ti, _)| ti);
    let stream = flat
        .into_iter()
        .enumerate()
        .map(|(seq, (ti, w))| (ti, seq, w))
        .collect();

    for binding in match_db(store, member_pattern)? {
        let VNode::Stored(root) = binding[member_pattern.root()] else {
            continue;
        };
        // Member bindings anchor at the tree root (`anchor_root = true`
        // in the per-tree path).
        let Some((ti, scope)) = locate(&root) else {
            continue;
        };
        if root.id != scope.id {
            continue;
        }
        let c = &mut contributions[ti];
        c.bindings += 1;
        if func != AggFunc::Count {
            let vt = VTree::new(store, &input[ti]);
            if let Some(text) = vt.content(binding[of])? {
                if let Ok(v) = text.trim().parse::<f64>() {
                    c.values.push(v);
                }
            }
        }
    }
    Ok((contributions, stream))
}

/// Per-tree extraction (the general path): grouping witnesses and the
/// tree's aggregate contribution from two scoped matches.
pub(crate) fn extract_tree(
    store: &DocumentStore,
    tree: &Tree,
    pattern: &PatternTree,
    basis: &[BasisItem],
    member_pattern: &PatternTree,
    of: PatternNodeId,
    func: AggFunc,
) -> Result<(Vec<RollupWitness>, Contribution)> {
    let vt = VTree::new(store, tree);
    let mut witnesses = Vec::new();
    for binding in match_tree(store, tree, pattern, false)? {
        let mut key: Key = Vec::with_capacity(basis.len());
        for item in basis {
            let v = binding[item.label];
            key.push(component(match &item.attr {
                Some(name) => vt.attr_sym(v, name),
                None => vt.content_sym(v),
            }));
        }
        witnesses.push(RollupWitness {
            key,
            basis_nodes: basis.iter().map(|b| binding[b.label]).collect(),
        });
    }
    // Member bindings anchor at the tree root: inside a group tree the
    // member label binds exactly the subroot's member children, i.e.
    // this tree's root.
    let member_bindings = match_tree(store, tree, member_pattern, true)?;
    let mut values = Vec::new();
    if func != AggFunc::Count {
        for b in &member_bindings {
            if let Some(text) = vt.content(b[of])? {
                if let Ok(v) = text.trim().parse::<f64>() {
                    values.push(v);
                }
            }
        }
    }
    Ok((
        witnesses,
        Contribution {
            bindings: member_bindings.len(),
            values,
        },
    ))
}

/// Accumulation + output building over one witness shard, witnesses in
/// global arrival order — the rollup counterpart of the groupby's
/// `form_and_build`, and like it the single routine both the serial and
/// sharded paths run.
#[allow(clippy::too_many_arguments)]
fn accumulate_shard(
    dict: &Dictionary,
    input: &Collection,
    basis: &[BasisItem],
    contributions: &[Contribution],
    func: AggFunc,
    new_tag: &str,
    shape: RollupShape,
    shard: Vec<StreamEntry>,
) -> Result<Vec<(usize, Tree)>> {
    let mut index: HashMap<Key, usize> = HashMap::new();
    let mut groups: Vec<(usize, GroupAcc)> = Vec::new();
    for (tree_idx, seq, w) in shard {
        let gid = match index.get(&w.key) {
            Some(&g) => g,
            None => {
                let g = groups.len();
                index.insert(w.key.clone(), g);
                groups.push((seq, GroupAcc::new(w.key, w.basis_nodes, tree_idx)));
                g
            }
        };
        let acc = &mut groups[gid].1;
        if acc.last_member != Some(tree_idx) {
            acc.last_member = Some(tree_idx);
            acc.fold(&contributions[tree_idx]);
        }
    }

    let mut out = Vec::with_capacity(groups.len());
    for (first_seq, acc) in groups {
        // The materialized Aggregate leaves a group tree unchanged when
        // no binding exists or the aggregate is undefined; the grouped
        // shape emits the tree without the value child to match (the
        // downstream projection drops such groups), and the flat shape —
        // the projection pre-applied — drops the group outright.
        let value = if acc.bindings > 0 {
            acc.finish(func)
        } else {
            None
        };
        let mut tree = Tree::new_elem(dict, crate::tags::GROUP_ROOT);
        let basis_root = match shape {
            RollupShape::Grouped => tree.add_elem(dict, tree.root(), crate::tags::GROUPING_BASIS),
            RollupShape::Flat => {
                if value.is_none() {
                    continue;
                }
                tree.root()
            }
        };
        // The flat shape pre-applies the consumer's deep key projection,
        // so structured key nodes must materialize their whole subtree.
        add_basis_children(
            dict,
            &mut tree,
            basis_root,
            &input[acc.basis_tree],
            &acc.key,
            &acc.basis_nodes,
            basis,
            matches!(shape, RollupShape::Flat),
        );
        if let Some(v) = value {
            tree.add_elem_with_content(dict, tree.root(), new_tag, format_value(v));
        }
        out.push((first_seq, tree));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::aggregate::{aggregate, UpdateSpec};
    use crate::ops::groupby::groupby;
    use crate::ops::project::{project, ProjectItem};
    use crate::pattern::{Axis, Pred};
    use crate::tags;
    use xmlstore::StoreOptions;

    const SAMPLE: &str = "<bib>\
        <article><title>Querying XML</title><author>Jack</author><author>John</author><year>1999</year></article>\
        <article><title>XML and the Web</title><author>Jill</author><author>Jack</author><year>2001</year></article>\
        <article><title>Hack HTML</title><author>John</author><year>2002</year></article>\
    </bib>";

    fn store() -> DocumentStore {
        DocumentStore::from_xml(SAMPLE, &StoreOptions::in_memory()).unwrap()
    }

    fn articles(s: &DocumentStore) -> Collection {
        let article = s.tag_id("article").unwrap();
        s.nodes_with_tag(article)
            .iter()
            .map(|e| Tree::new_ref(*e, true))
            .collect()
    }

    /// article -pc-> author, grouped on the author content.
    fn grouping() -> (PatternTree, Vec<BasisItem>) {
        let mut p = PatternTree::with_root(Pred::tag("article"));
        let author = p.add_child(p.root(), Axis::Child, Pred::tag("author"));
        (p, vec![BasisItem::content(author)])
    }

    /// article -pc-> <leaf>, the member-side aggregate pattern.
    fn member(leaf: &str) -> (PatternTree, PatternNodeId) {
        let mut p = PatternTree::with_root(Pred::tag("article"));
        let l = p.add_child(p.root(), Axis::Child, Pred::tag(leaf));
        (p, l)
    }

    /// The materialized reference: GroupBy, then Aggregate over the
    /// group trees with the canonical root→subroot→member pattern.
    fn materialized(
        s: &DocumentStore,
        input: &Collection,
        leaf: &str,
        func: AggFunc,
        new_tag: &str,
    ) -> Collection {
        let (gp, basis) = grouping();
        let groups = groupby(s, input, &gp, &basis, &[]).unwrap();
        let mut ap = PatternTree::with_root(Pred::tag(tags::GROUP_ROOT));
        let subroot = ap.add_child(ap.root(), Axis::Child, Pred::tag(tags::GROUP_SUBROOT));
        let m = ap.add_child(subroot, Axis::Child, Pred::tag("article"));
        let of = ap.add_child(m, Axis::Child, Pred::tag(leaf));
        aggregate(
            s,
            groups,
            &ap,
            func,
            of,
            new_tag,
            UpdateSpec::AfterLastChild(0),
        )
        .unwrap()
    }

    /// Project both sides down to root/basis/value — the only consumer
    /// shape the fusion admits — and serialize.
    fn projected_xml(s: &DocumentStore, c: &Collection, new_tag: &str) -> Vec<String> {
        let mut fp = PatternTree::with_root(Pred::tag(tags::GROUP_ROOT));
        let b = fp.add_child(fp.root(), Axis::Child, Pred::tag(tags::GROUPING_BASIS));
        let key = fp.add_child(b, Axis::Child, Pred::tag("author"));
        let agg = fp.add_child(fp.root(), Axis::Child, Pred::tag(new_tag));
        let pl = vec![
            ProjectItem::shallow(fp.root()),
            ProjectItem::deep(key),
            ProjectItem::deep(agg),
        ];
        project(s, c, &fp, &pl, true)
            .unwrap()
            .iter()
            .map(|t| xmlparse::serialize::element_to_string(&t.materialize(s).unwrap()))
            .collect()
    }

    #[test]
    fn rollup_matches_materialized_pipeline_for_every_func() {
        let s = store();
        let arts = articles(&s);
        let (gp, basis) = grouping();
        for (leaf, func, tag) in [
            ("title", AggFunc::Count, "count"),
            ("year", AggFunc::Sum, "sum"),
            ("year", AggFunc::Min, "min"),
            ("year", AggFunc::Max, "max"),
            ("year", AggFunc::Avg, "avg"),
        ] {
            let (mp, of) = member(leaf);
            let fused = rollup(
                &s,
                &arts,
                &gp,
                &basis,
                &mp,
                of,
                func,
                tag,
                RollupShape::Grouped,
            )
            .unwrap();
            let reference = materialized(&s, &arts, leaf, func, tag);
            assert_eq!(fused.len(), reference.len(), "{func:?}");
            assert_eq!(
                projected_xml(&s, &fused, tag),
                projected_xml(&s, &reference, tag),
                "{func:?}"
            );
        }
    }

    #[test]
    fn multi_valued_basis_contributes_to_every_group() {
        // The two-author articles must count for both authors.
        let s = store();
        let arts = articles(&s);
        let (gp, basis) = grouping();
        let (mp, of) = member("title");
        let out = rollup(
            &s,
            &arts,
            &gp,
            &basis,
            &mp,
            of,
            AggFunc::Count,
            "count",
            RollupShape::Grouped,
        )
        .unwrap();
        // First-witness order: Jack, John, Jill.
        let counts: Vec<(String, String)> = out
            .iter()
            .map(|t| {
                let e = t.materialize(&s).unwrap();
                (
                    e.child(tags::GROUPING_BASIS)
                        .unwrap()
                        .child("author")
                        .unwrap()
                        .text(),
                    e.child("count").unwrap().text(),
                )
            })
            .collect();
        assert_eq!(
            counts,
            [
                ("Jack".into(), "2".into()),
                ("John".into(), "2".into()),
                ("Jill".into(), "1".into()),
            ]
        );
        // No member subroot is ever built.
        for t in &out {
            assert!(t
                .materialize(&s)
                .unwrap()
                .child(tags::GROUP_SUBROOT)
                .is_none());
        }
    }

    #[test]
    fn undefined_aggregate_omits_the_value_child() {
        // Min over a label with no numeric content: the materialized
        // path passes the group tree through unchanged; the rollup tree
        // must omit the value child.
        let s = store();
        let arts = articles(&s);
        let (gp, basis) = grouping();
        let (mp, of) = member("title");
        let out = rollup(
            &s,
            &arts,
            &gp,
            &basis,
            &mp,
            of,
            AggFunc::Min,
            "min",
            RollupShape::Grouped,
        )
        .unwrap();
        assert_eq!(out.len(), 3);
        for t in &out {
            assert!(t.materialize(&s).unwrap().child("min").is_none());
        }
    }

    #[test]
    fn flat_shape_equals_the_projected_grouped_output() {
        // Flat absorbs the downstream projection: its trees must be
        // byte-identical to Project over the grouped rollup output.
        let s = store();
        let arts = articles(&s);
        let (gp, basis) = grouping();
        for (leaf, func, tag) in [
            ("title", AggFunc::Count, "count"),
            ("year", AggFunc::Sum, "sum"),
            ("year", AggFunc::Avg, "avg"),
        ] {
            let (mp, of) = member(leaf);
            let grouped = rollup(
                &s,
                &arts,
                &gp,
                &basis,
                &mp,
                of,
                func,
                tag,
                RollupShape::Grouped,
            )
            .unwrap();
            let flat = rollup(
                &s,
                &arts,
                &gp,
                &basis,
                &mp,
                of,
                func,
                tag,
                RollupShape::Flat,
            )
            .unwrap();
            let flat_xml: Vec<String> = flat
                .iter()
                .map(|t| xmlparse::serialize::element_to_string(&t.materialize(&s).unwrap()))
                .collect();
            assert_eq!(flat_xml, projected_xml(&s, &grouped, tag), "{func:?}");
            // No basis wrapper survives in the flat shape.
            for x in &flat_xml {
                assert!(!x.contains(tags::GROUPING_BASIS), "{x}");
            }
        }
    }

    #[test]
    fn flat_shape_deep_copies_structured_basis_keys() {
        // Ragged hierarchy: one author's name is nested below <author>.
        // The flat shape pre-applies the consumer's deep key projection,
        // so the key child must carry the whole subtree — a shallow copy
        // would emit a childless <author/> and silently diverge from the
        // materialized pipeline (the parity bug this pins).
        let s = DocumentStore::from_xml(
            "<bib>\
                <article><title>A</title><author><name>Jack</name></author><year>1999</year></article>\
                <article><title>B</title><author>Jill</author><year>2001</year></article>\
            </bib>",
            &StoreOptions::in_memory(),
        )
        .unwrap();
        let arts = articles(&s);
        let (gp, basis) = grouping();
        let (mp, of) = member("year");
        let grouped = rollup(
            &s,
            &arts,
            &gp,
            &basis,
            &mp,
            of,
            AggFunc::Sum,
            "sum",
            RollupShape::Grouped,
        )
        .unwrap();
        let flat = rollup(
            &s,
            &arts,
            &gp,
            &basis,
            &mp,
            of,
            AggFunc::Sum,
            "sum",
            RollupShape::Flat,
        )
        .unwrap();
        let flat_xml: Vec<String> = flat
            .iter()
            .map(|t| xmlparse::serialize::element_to_string(&t.materialize(&s).unwrap()))
            .collect();
        assert_eq!(flat_xml, projected_xml(&s, &grouped, "sum"));
        assert!(
            flat_xml
                .iter()
                .any(|x| x.contains("<author><name>Jack</name></author>")),
            "structured key must keep its subtree: {flat_xml:?}"
        );
        assert!(
            flat_xml.iter().all(|x| !x.contains("<author/>")),
            "no key child may collapse to an empty element: {flat_xml:?}"
        );
    }

    #[test]
    fn flat_shape_drops_groups_with_an_undefined_aggregate() {
        // Min over non-numeric content is undefined for every group; the
        // projection the flat shape absorbs would drop each such tree
        // (no bound aggregate child), so the flat rollup emits nothing.
        let s = store();
        let arts = articles(&s);
        let (gp, basis) = grouping();
        let (mp, of) = member("title");
        let out = rollup(
            &s,
            &arts,
            &gp,
            &basis,
            &mp,
            of,
            AggFunc::Min,
            "min",
            RollupShape::Flat,
        )
        .unwrap();
        assert!(out.is_empty(), "{} trees", out.len());
    }

    #[test]
    fn sharded_rollup_matches_serial_kernel() {
        let s = store();
        let arts = articles(&s);
        let (gp, basis) = grouping();
        for (leaf, func, tag) in [
            ("title", AggFunc::Count, "count"),
            ("year", AggFunc::Avg, "avg"),
        ] {
            let (mp, of) = member(leaf);
            let serial = rollup(
                &s,
                &arts,
                &gp,
                &basis,
                &mp,
                of,
                func,
                tag,
                RollupShape::Grouped,
            )
            .unwrap();
            for partitions in [1usize, 2, 3, 8] {
                for threads in [1usize, 4] {
                    let opts = ExecOptions::with_threads(threads);
                    let (sharded, stats) = rollup_sharded(
                        &s,
                        &arts,
                        &gp,
                        &basis,
                        &mp,
                        of,
                        func,
                        tag,
                        RollupShape::Grouped,
                        &opts,
                        partitions,
                    )
                    .unwrap();
                    assert_eq!(serial.len(), sharded.len());
                    for (a, b) in serial.iter().zip(sharded.iter()) {
                        assert_eq!(
                            xmlparse::serialize::element_to_string(&a.materialize(&s).unwrap()),
                            xmlparse::serialize::element_to_string(&b.materialize(&s).unwrap()),
                            "partitions={partitions} threads={threads}"
                        );
                    }
                    // 5 witnesses: Jack ×2, John ×2, Jill.
                    assert_eq!(stats.total(), 5);
                    assert_eq!(stats.partitions, partitions.min(5));
                }
            }
        }
    }

    #[test]
    fn arena_trees_take_the_per_tree_path_with_identical_results() {
        // In-memory (arena) article trees cannot be located in the tag
        // index, so extraction falls back to the per-tree matcher; the
        // results must be what the batched path produces for the same
        // logical content.
        let s = store();
        let stored = articles(&s);
        let mut arena: Collection = Vec::new();
        for (authors, title) in [
            (vec!["Jack", "John"], "Querying XML"),
            (vec!["Jill", "Jack"], "XML and the Web"),
            (vec!["John"], "Hack HTML"),
        ] {
            let mut t = Tree::new_elem(s.dict(), "article");
            t.add_elem_with_content(s.dict(), t.root(), "title", title);
            for a in authors {
                t.add_elem_with_content(s.dict(), t.root(), "author", a);
            }
            arena.push(t);
        }
        assert!(stored_scopes(&arena).is_none());
        assert!(stored_scopes(&stored).is_some());
        let (gp, basis) = grouping();
        let (mp, of) = member("title");
        let from_arena = rollup(
            &s,
            &arena,
            &gp,
            &basis,
            &mp,
            of,
            AggFunc::Count,
            "count",
            RollupShape::Grouped,
        )
        .unwrap();
        let from_stored = rollup(
            &s,
            &stored,
            &gp,
            &basis,
            &mp,
            of,
            AggFunc::Count,
            "count",
            RollupShape::Grouped,
        )
        .unwrap();
        let counts = |c: &Collection| -> Vec<(String, String)> {
            c.iter()
                .map(|t| {
                    let e = t.materialize(&s).unwrap();
                    (
                        e.child(tags::GROUPING_BASIS)
                            .unwrap()
                            .child("author")
                            .unwrap()
                            .text(),
                        e.child("count").unwrap().text(),
                    )
                })
                .collect()
        };
        assert_eq!(counts(&from_arena), counts(&from_stored));
    }

    #[test]
    fn duplicated_stored_inputs_fall_back_and_count_twice() {
        // The same article appearing twice in the input overlaps in the
        // region index, so the batched path refuses; the per-tree path
        // folds its contribution once per occurrence, exactly like the
        // materialized pipeline, which lists the member twice.
        let s = store();
        let mut arts = articles(&s);
        arts.push(arts[0].clone());
        assert!(stored_scopes(&arts).is_none());
        let (gp, basis) = grouping();
        let (mp, of) = member("title");
        let fused = rollup(
            &s,
            &arts,
            &gp,
            &basis,
            &mp,
            of,
            AggFunc::Count,
            "count",
            RollupShape::Grouped,
        )
        .unwrap();
        let reference = materialized(&s, &arts, "title", AggFunc::Count, "count");
        assert_eq!(
            projected_xml(&s, &fused, "count"),
            projected_xml(&s, &reference, "count")
        );
    }

    #[test]
    fn empty_input_and_bad_labels() {
        let s = store();
        let (gp, basis) = grouping();
        let (mp, of) = member("title");
        let (out, stats) = rollup_sharded(
            &s,
            &Vec::new(),
            &gp,
            &basis,
            &mp,
            of,
            AggFunc::Count,
            "count",
            RollupShape::Grouped,
            &ExecOptions::with_threads(4),
            4,
        )
        .unwrap();
        assert!(out.is_empty());
        assert_eq!(stats.partitions, 1);
        // Aggregated label outside the member pattern.
        assert!(rollup(
            &s,
            &Vec::new(),
            &gp,
            &basis,
            &mp,
            9,
            AggFunc::Count,
            "count",
            RollupShape::Grouped,
        )
        .is_err());
    }
}
