//! The grouping lattice: a one-scan cube over the rollup kernel.
//!
//! A cube query declares an *ordered* list of grouping dimensions
//! (e.g. journal → year → author). For a basis of `L` dimensions the
//! lattice has `L` prefix levels: level `k` groups on the first `k`
//! basis items. The XOLAP formulations of Hachicha & Darmont (arXiv
//! 1102.0952, 0809.2691) express exactly this over TAX pattern trees;
//! here it shares the streaming rollup's machinery end to end:
//!
//! * witnesses are extracted **once** with the full `L`-dimension
//!   pattern (a tree participates only when every dimension is present —
//!   standard cube semantics, see DESIGN.md), via the same batched /
//!   per-tree paths as [`super::rollup`];
//! * one pass over the shared witness stream folds every level at once:
//!   the level-`k` accumulator for a witness is addressed by the key
//!   prefix `key[..k]`, so level `k−1` state grows from the same
//!   contributions as level `k` without rescanning the store. Each level
//!   keeps its own per-group member dedup, because a multi-valued basis
//!   (a two-author article) must contribute once per `(journal, author)`
//!   group but also only once to the coarser `journal` group;
//! * output trees use the rollup's *flat* shape —
//!   `TAX_group_root { key…, <tag>value</tag> }`, groups with an
//!   undefined aggregate dropped — plus a leading
//!   [`crate::tags::CUBE_LEVEL`] marker child carrying the level, so the
//!   per-level output is byte-identical to the composed per-level flat
//!   rollups once the marker is stripped;
//! * levels emit coarsest-first (1 … `L`), groups in first-witness order
//!   within each level — the order the composed `Union` of per-level
//!   rollup plans produces.
//!
//! Sharding routes every witness by the **level-1** key component
//! (`shard_of(&key[..1])`): all witnesses of any prefix group share
//! their first component, so every group at every level is wholly inside
//! one shard and the per-shard accumulators never need cross-shard
//! merging of partial state.

use crate::error::{Error, Result};
use crate::exec::{par_map, par_map_owned, ExecOptions, ShardStats};
use crate::ops::aggregate::{format_value, AggFunc};
use crate::ops::groupby::{add_basis_children, validate, BasisItem, Key};
use crate::ops::keyenc;
use crate::ops::rollup::{
    extract_batched, extract_tree, stored_scopes, Contribution, GroupAcc, StreamEntry,
};
use crate::pattern::{PatternNodeId, PatternTree};
use crate::tree::{Collection, Tree};
use std::collections::HashMap;
use xmlstore::{Dictionary, DocumentStore};

/// One-scan grouping lattice with default execution options.
#[allow(clippy::too_many_arguments)]
pub fn cube(
    store: &DocumentStore,
    input: &Collection,
    pattern: &PatternTree,
    basis: &[BasisItem],
    member_pattern: &PatternTree,
    of: PatternNodeId,
    func: AggFunc,
    new_tag: &str,
) -> Result<Collection> {
    cube_opts(
        store,
        input,
        pattern,
        basis,
        member_pattern,
        of,
        func,
        new_tag,
        &ExecOptions::default(),
    )
}

/// [`cube`] with explicit execution options (serial accumulation).
#[allow(clippy::too_many_arguments)]
pub fn cube_opts(
    store: &DocumentStore,
    input: &Collection,
    pattern: &PatternTree,
    basis: &[BasisItem],
    member_pattern: &PatternTree,
    of: PatternNodeId,
    func: AggFunc,
    new_tag: &str,
    opts: &ExecOptions,
) -> Result<Collection> {
    Ok(cube_sharded(
        store,
        input,
        pattern,
        basis,
        member_pattern,
        of,
        func,
        new_tag,
        opts,
        1,
    )?
    .0)
}

/// Hash-partitioned cube: the sharded-sink entry point.
///
/// Extraction fans out over `opts.threads` exactly as in
/// [`super::rollup::rollup_sharded`]; witnesses are then routed to
/// `partitions` shards by the FNV-1a hash of their **level-1 key
/// component**, each shard accumulates all `L` levels of its groups
/// independently (in parallel via [`par_map_owned`]), and the per-shard
/// outputs merge ordered by `(level, global first-arrival position)` —
/// byte-identical to `partitions = 1`. Returns the collection plus the
/// partition statistics for the metrics tree.
#[allow(clippy::too_many_arguments)]
pub fn cube_sharded(
    store: &DocumentStore,
    input: &Collection,
    pattern: &PatternTree,
    basis: &[BasisItem],
    member_pattern: &PatternTree,
    of: PatternNodeId,
    func: AggFunc,
    new_tag: &str,
    opts: &ExecOptions,
    partitions: usize,
) -> Result<(Collection, ShardStats)> {
    validate(pattern, basis, &[])?;
    if basis.is_empty() {
        return Err(Error::Unsupported(
            "cube requires at least one grouping dimension".into(),
        ));
    }
    if of >= member_pattern.len() {
        return Err(Error::UnknownLabel(format!("${}", of + 1)));
    }

    // One extraction with the full pattern; the stream is shared by
    // every level (see the module docs for why this is sound).
    let (contributions, stream): (Vec<Contribution>, Vec<StreamEntry>) = match stored_scopes(input)
    {
        Some(scopes) => extract_batched(
            store,
            input,
            &scopes,
            pattern,
            basis,
            member_pattern,
            of,
            func,
        )?,
        None => {
            let per_tree = par_map(opts, input, |_, tree| {
                extract_tree(store, tree, pattern, basis, member_pattern, of, func)
            })?;
            let mut contributions: Vec<Contribution> = Vec::with_capacity(per_tree.len());
            let mut stream: Vec<StreamEntry> = Vec::new();
            let mut seq = 0usize;
            for (tree_idx, (witnesses, contribution)) in per_tree.into_iter().enumerate() {
                contributions.push(contribution);
                for w in witnesses {
                    stream.push((tree_idx, seq, w));
                    seq += 1;
                }
            }
            (contributions, stream)
        }
    };

    let levels = basis.len();
    let partitions = partitions.max(1).min(stream.len().max(1));
    if partitions <= 1 {
        let n = stream.len();
        let built = accumulate_cube_shard(
            store.dict(),
            input,
            basis,
            &contributions,
            func,
            new_tag,
            levels,
            stream,
        )?;
        return Ok((order_levels(built), ShardStats::serial(n)));
    }

    let mut shards: Vec<Vec<StreamEntry>> = (0..partitions).map(|_| Vec::new()).collect();
    for entry in stream {
        // Level-1 routing keeps every prefix group in one shard.
        let shard = keyenc::shard_of(&entry.2.key[..1], partitions);
        shards[shard].push(entry);
    }
    let sizes: Vec<usize> = shards.iter().map(Vec::len).collect();
    let built = par_map_owned(opts, shards, |_, shard| {
        accumulate_cube_shard(
            store.dict(),
            input,
            basis,
            &contributions,
            func,
            new_tag,
            levels,
            shard,
        )
    })?;
    let all: Vec<(usize, usize, Tree)> = built.into_iter().flatten().collect();
    Ok((order_levels(all), ShardStats { partitions, sizes }))
}

/// Remove every serialized [`crate::tags::CUBE_LEVEL`] marker element
/// from `xml`. The cube's per-level output is byte-identical to the
/// composed per-level flat rollups *after* this strip — the helper the
/// differential suites (and any consumer that wants the plain flat
/// shape) share.
pub fn strip_level_markers(xml: &str) -> String {
    let open = format!("<{}>", crate::tags::CUBE_LEVEL);
    let close = format!("</{}>", crate::tags::CUBE_LEVEL);
    let mut out = String::with_capacity(xml.len());
    let mut rest = xml;
    while let Some(start) = rest.find(&open) {
        out.push_str(&rest[..start]);
        let after = &rest[start..];
        match after.find(&close) {
            Some(end) => rest = &after[end + close.len()..],
            None => {
                // Unterminated marker: keep the text as-is.
                out.push_str(after);
                return out;
            }
        }
    }
    out.push_str(rest);
    out
}

/// Merge `(level, first_seq, tree)` triples into the canonical output
/// order: levels ascending (coarsest first), first-witness order within
/// each level.
fn order_levels(mut built: Vec<(usize, usize, Tree)>) -> Collection {
    built.sort_by_key(|&(level, first_seq, _)| (level, first_seq));
    built.into_iter().map(|(_, _, t)| t).collect()
}

/// Accumulation + output building over one witness shard: the lattice
/// counterpart of the rollup's `accumulate_shard`, folding **all**
/// prefix levels in the single pass over the shard's witnesses. Returns
/// `(level, global first_seq, tree)` triples.
#[allow(clippy::too_many_arguments)]
fn accumulate_cube_shard(
    dict: &Dictionary,
    input: &Collection,
    basis: &[BasisItem],
    contributions: &[Contribution],
    func: AggFunc,
    new_tag: &str,
    levels: usize,
    shard: Vec<StreamEntry>,
) -> Result<Vec<(usize, usize, Tree)>> {
    // Per level: key-prefix → group index, and the groups in
    // first-witness order. Level `k` lives at slot `k - 1`.
    let mut index: Vec<HashMap<Key, usize>> = (0..levels).map(|_| HashMap::new()).collect();
    let mut groups: Vec<Vec<(usize, GroupAcc)>> = (0..levels).map(|_| Vec::new()).collect();
    for (tree_idx, seq, w) in shard {
        for k in 1..=levels {
            let prefix = &w.key[..k];
            let gid = match index[k - 1].get(prefix) {
                Some(&g) => g,
                None => {
                    let g = groups[k - 1].len();
                    index[k - 1].insert(prefix.to_vec(), g);
                    groups[k - 1].push((
                        seq,
                        GroupAcc::new(prefix.to_vec(), w.basis_nodes[..k].to_vec(), tree_idx),
                    ));
                    g
                }
            };
            // Member dedup is per level: a tree reaching one journal
            // group through two authors still folds once at the journal
            // level (the stream is collection-major, so a group's
            // same-tree witnesses arrive before any later tree's).
            let acc = &mut groups[k - 1][gid].1;
            if acc.last_member != Some(tree_idx) {
                acc.last_member = Some(tree_idx);
                acc.fold(&contributions[tree_idx]);
            }
        }
    }

    let mut out = Vec::with_capacity(groups.iter().map(Vec::len).sum());
    for (slot, level_groups) in groups.into_iter().enumerate() {
        let level = slot + 1;
        for (first_seq, acc) in level_groups {
            // Flat-shape semantics: groups whose aggregate is undefined
            // at this level are dropped, exactly as the composed
            // per-level flat rollup drops them.
            let value = if acc.bindings > 0 {
                acc.finish(func)
            } else {
                None
            };
            let Some(v) = value else { continue };
            let mut tree = Tree::new_elem(dict, crate::tags::GROUP_ROOT);
            let root = tree.root();
            tree.add_elem_with_content(dict, root, crate::tags::CUBE_LEVEL, level.to_string());
            // Cube output is always flat: the composed per-level plans
            // project their keys deep, so structured key nodes must
            // materialize their whole subtree here too.
            add_basis_children(
                dict,
                &mut tree,
                root,
                &input[acc.basis_tree],
                &acc.key,
                &acc.basis_nodes,
                &basis[..level],
                true,
            );
            tree.add_elem_with_content(dict, tree.root(), new_tag, format_value(v));
            out.push((level, first_seq, tree));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::rollup::{rollup, RollupShape};
    use crate::pattern::{Axis, Pred};
    use crate::tags;
    use xmlstore::StoreOptions;

    const SAMPLE: &str = "<bib>\
        <article><title>Querying XML</title><journal>TODS</journal><year>1999</year>\
            <author>Jack</author><author>John</author><pages>30</pages></article>\
        <article><title>XML and the Web</title><journal>TODS</journal><year>2001</year>\
            <author>Jill</author><author>Jack</author><pages>12</pages></article>\
        <article><title>Hack HTML</title><journal>WebDB</journal><year>2001</year>\
            <author>John</author><pages>7</pages></article>\
        <article><title>Typing XML</title><journal>TODS</journal><year>1999</year>\
            <author>Jack</author><pages>21</pages></article>\
    </bib>";

    fn store() -> DocumentStore {
        DocumentStore::from_xml(SAMPLE, &StoreOptions::in_memory()).unwrap()
    }

    fn articles(s: &DocumentStore) -> Collection {
        let article = s.tag_id("article").unwrap();
        s.nodes_with_tag(article)
            .iter()
            .map(|e| Tree::new_ref(*e, true))
            .collect()
    }

    /// article -pc-> {journal, year, author}: the full 3-dim pattern.
    fn lattice() -> (PatternTree, Vec<BasisItem>) {
        let mut p = PatternTree::with_root(Pred::tag("article"));
        let j = p.add_child(p.root(), Axis::Child, Pred::tag("journal"));
        let y = p.add_child(p.root(), Axis::Child, Pred::tag("year"));
        let a = p.add_child(p.root(), Axis::Child, Pred::tag("author"));
        (
            p,
            vec![
                BasisItem::content(j),
                BasisItem::content(y),
                BasisItem::content(a),
            ],
        )
    }

    /// article -pc-> <leaf>, the member-side aggregate pattern.
    fn member(leaf: &str) -> (PatternTree, PatternNodeId) {
        let mut p = PatternTree::with_root(Pred::tag("article"));
        let l = p.add_child(p.root(), Axis::Child, Pred::tag(leaf));
        (p, l)
    }

    fn to_xml(s: &DocumentStore, c: &Collection) -> Vec<String> {
        c.iter()
            .map(|t| xmlparse::serialize::element_to_string(&t.materialize(s).unwrap()))
            .collect()
    }

    #[test]
    fn strip_level_markers_removes_only_markers() {
        let m = tags::CUBE_LEVEL;
        assert_eq!(
            strip_level_markers(&format!("<g><{m}>2</{m}><k>v</k></g>")),
            "<g><k>v</k></g>"
        );
        assert_eq!(strip_level_markers("<g><k>v</k></g>"), "<g><k>v</k></g>");
        // An unterminated marker is left alone rather than eaten.
        let broken = format!("<g><{m}>2");
        assert_eq!(strip_level_markers(&broken), broken);
    }

    /// The composed reference: one flat rollup per prefix level, run
    /// with the same full pattern (so the witness stream is identical).
    #[allow(clippy::too_many_arguments)]
    fn composed(
        s: &DocumentStore,
        input: &Collection,
        pattern: &PatternTree,
        basis: &[BasisItem],
        mp: &PatternTree,
        of: PatternNodeId,
        func: AggFunc,
        tag: &str,
    ) -> Vec<Vec<String>> {
        (1..=basis.len())
            .map(|k| {
                let out = rollup(
                    s,
                    input,
                    pattern,
                    &basis[..k],
                    mp,
                    of,
                    func,
                    tag,
                    RollupShape::Flat,
                )
                .unwrap();
                to_xml(s, &out)
            })
            .collect()
    }

    #[test]
    fn cube_matches_composed_per_level_rollups_for_every_func() {
        let s = store();
        let arts = articles(&s);
        let (p, basis) = lattice();
        for (leaf, func, tag) in [
            ("title", AggFunc::Count, "count"),
            ("pages", AggFunc::Sum, "sum"),
            ("pages", AggFunc::Min, "min"),
            ("pages", AggFunc::Max, "max"),
            ("pages", AggFunc::Avg, "avg"),
        ] {
            let (mp, of) = member(leaf);
            let out = cube(&s, &arts, &p, &basis, &mp, of, func, tag).unwrap();
            let reference = composed(&s, &arts, &p, &basis, &mp, of, func, tag);
            // Partition the cube output by its level markers and
            // compare each level byte-for-byte after stripping them.
            let mut by_level: Vec<Vec<String>> = vec![Vec::new(); basis.len()];
            for t in &out {
                let xml = xmlparse::serialize::element_to_string(&t.materialize(&s).unwrap());
                let level = (1..=basis.len())
                    .find(|k| xml.contains(&format!("<{m}>{k}</{m}>", m = tags::CUBE_LEVEL)))
                    .expect("level marker");
                by_level[level - 1].push(strip_level_markers(&xml));
            }
            assert_eq!(by_level, reference, "{func:?}");
        }
    }

    #[test]
    fn levels_emit_ascending_with_leading_markers() {
        let s = store();
        let arts = articles(&s);
        let (p, basis) = lattice();
        let (mp, of) = member("title");
        let out = cube(&s, &arts, &p, &basis, &mp, of, AggFunc::Count, "count").unwrap();
        let mut last_level = 0usize;
        for t in &out {
            let e = t.materialize(&s).unwrap();
            // The marker is the first child.
            let first = e.child_elements().next().expect("children");
            assert_eq!(first.name, tags::CUBE_LEVEL);
            let level: usize = first.text().parse().unwrap();
            assert!(level >= last_level, "levels must ascend");
            last_level = level;
        }
        assert_eq!(last_level, 3);
        // Level 1 groups TODS/WebDB, level 2 adds years, level 3 authors.
        let markers = |k: usize| {
            out.iter()
                .filter(|t| {
                    xmlparse::serialize::element_to_string(&t.materialize(&s).unwrap())
                        .contains(&format!("<{m}>{k}</{m}>", m = tags::CUBE_LEVEL))
                })
                .count()
        };
        assert_eq!(markers(1), 2); // TODS, WebDB
        assert_eq!(markers(2), 3); // (TODS,1999), (TODS,2001), (WebDB,2001)
        assert_eq!(markers(3), 5); // +Jack/John; Jill/Jack; John
    }

    #[test]
    fn coarse_levels_dedup_multi_valued_bases() {
        // The two-author 1999 TODS article reaches (TODS) through two
        // (journal, year, author) witnesses but must count once there.
        let s = store();
        let arts = articles(&s);
        let (p, basis) = lattice();
        let (mp, of) = member("title");
        let out = cube(&s, &arts, &p, &basis, &mp, of, AggFunc::Count, "count").unwrap();
        let tods = out
            .iter()
            .map(|t| t.materialize(&s).unwrap())
            .find(|e| {
                e.child_elements().next().map(|c| c.text()) == Some("1".into())
                    && e.child("journal").map(|j| j.text()) == Some("TODS".into())
            })
            .expect("level-1 TODS group");
        assert_eq!(tods.child("count").unwrap().text(), "3");
    }

    #[test]
    fn structured_key_nodes_keep_their_subtrees() {
        // Ragged hierarchy: the author key node has children instead of
        // text. The cube's flat output pre-applies the deep key
        // projection, so every level-3 group must carry the author's
        // whole subtree — and still match the composed per-level
        // rollups byte for byte.
        let xml = "<bib>\
            <article><title>A</title><journal>TODS</journal><year>1999</year>\
                <author><name><full>Jack</full></name></author></article>\
            <article><title>B</title><journal>TODS</journal><year>1999</year>\
                <author>Jill</author></article>\
        </bib>";
        let s = DocumentStore::from_xml(xml, &StoreOptions::in_memory()).unwrap();
        let arts = articles(&s);
        let (p, basis) = lattice();
        let (mp, of) = member("title");
        let out = cube(&s, &arts, &p, &basis, &mp, of, AggFunc::Count, "count").unwrap();
        let rendered = to_xml(&s, &out).join("\n");
        assert!(
            rendered.contains("<author><name><full>Jack</full></name></author>"),
            "{rendered}"
        );
        assert!(!rendered.contains("<author/>"), "{rendered}");
        let reference = composed(&s, &arts, &p, &basis, &mp, of, AggFunc::Count, "count");
        let mut by_level: Vec<Vec<String>> = vec![Vec::new(); basis.len()];
        for t in &out {
            let x = xmlparse::serialize::element_to_string(&t.materialize(&s).unwrap());
            let level = (1..=basis.len())
                .find(|k| x.contains(&format!("<{m}>{k}</{m}>", m = tags::CUBE_LEVEL)))
                .expect("level marker");
            by_level[level - 1].push(strip_level_markers(&x));
        }
        assert_eq!(by_level, reference);
    }

    #[test]
    fn undefined_levels_drop_while_parents_stay_defined() {
        // (TODS, 2001) holds only a pages-less article: every aggregate
        // over pages is undefined there and the level-2 group is
        // dropped — while its level-1 parent (TODS) stays defined
        // through the 1999 articles. The composed per-level rollups
        // behave identically (parity audit), and Avg's fractional
        // rendering is pinned byte-for-byte.
        let xml = "<bib>\
            <article><title>A</title><journal>TODS</journal><year>1999</year>\
                <author>Jack</author><pages>30</pages></article>\
            <article><title>B</title><journal>TODS</journal><year>2001</year>\
                <author>Jill</author></article>\
            <article><title>C</title><journal>WebDB</journal><year>2001</year>\
                <author>John</author><pages>7</pages></article>\
            <article><title>D</title><journal>TODS</journal><year>1999</year>\
                <author>John</author><pages>19</pages></article>\
        </bib>";
        let s = DocumentStore::from_xml(xml, &StoreOptions::in_memory()).unwrap();
        let arts = articles(&s);
        let (p, basis) = lattice();
        let (mp, of) = member("pages");
        for func in [
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Avg,
        ] {
            let out = cube(&s, &arts, &p, &basis, &mp, of, func, "v").unwrap();
            let reference = composed(&s, &arts, &p, &basis, &mp, of, func, "v");
            let mut by_level: Vec<Vec<String>> = vec![Vec::new(); basis.len()];
            for t in &out {
                let xml = xmlparse::serialize::element_to_string(&t.materialize(&s).unwrap());
                let level = (1..=basis.len())
                    .find(|k| xml.contains(&format!("<{m}>{k}</{m}>", m = tags::CUBE_LEVEL)))
                    .unwrap();
                by_level[level - 1].push(strip_level_markers(&xml));
            }
            assert_eq!(by_level, reference, "{func:?}");
            let all = by_level.concat().join("\n");
            assert!(
                !all.contains("<journal>TODS</journal><year>2001</year>"),
                "{func:?}: the (TODS, 2001) groups must be dropped: {all}"
            );
            assert!(
                all.contains("<journal>TODS</journal><v>"),
                "{func:?}: the TODS parent must stay defined: {all}"
            );
        }
        // The fractional average renders through the shared
        // format_value on both paths: (30 + 19) / 2 at (TODS, 1999).
        let out = cube(&s, &arts, &p, &basis, &mp, of, AggFunc::Avg, "avg").unwrap();
        let rendered = to_xml(&s, &out).join("\n");
        assert!(rendered.contains("<avg>24.5</avg>"), "{rendered}");
        assert!(
            rendered.contains(&format!(
                "<journal>TODS</journal><avg>{}</avg>",
                crate::ops::aggregate::format_value((30.0 + 19.0) / 2.0)
            )),
            "{rendered}"
        );
    }

    #[test]
    fn sharded_cube_matches_serial_kernel() {
        let s = store();
        let arts = articles(&s);
        let (p, basis) = lattice();
        for (leaf, func, tag) in [
            ("title", AggFunc::Count, "count"),
            ("pages", AggFunc::Avg, "avg"),
        ] {
            let (mp, of) = member(leaf);
            let serial = cube(&s, &arts, &p, &basis, &mp, of, func, tag).unwrap();
            for partitions in [1usize, 2, 3, 8] {
                for threads in [1usize, 4] {
                    let opts = ExecOptions::with_threads(threads);
                    let (sharded, stats) =
                        cube_sharded(&s, &arts, &p, &basis, &mp, of, func, tag, &opts, partitions)
                            .unwrap();
                    assert_eq!(
                        to_xml(&s, &serial),
                        to_xml(&s, &sharded),
                        "partitions={partitions} threads={threads}"
                    );
                    // 6 witnesses: 2 + 2 + 1 + 1 (one per author per article).
                    assert_eq!(stats.total(), 6);
                    assert_eq!(stats.partitions, partitions.min(6));
                }
            }
        }
    }

    #[test]
    fn arena_inputs_take_the_per_tree_path_with_identical_results() {
        let s = store();
        let stored = articles(&s);
        let mut arena: Collection = Vec::new();
        for (journal, year, authors, title, pages) in [
            ("TODS", "1999", vec!["Jack", "John"], "Querying XML", "30"),
            (
                "TODS",
                "2001",
                vec!["Jill", "Jack"],
                "XML and the Web",
                "12",
            ),
            ("WebDB", "2001", vec!["John"], "Hack HTML", "7"),
            ("TODS", "1999", vec!["Jack"], "Typing XML", "21"),
        ] {
            let mut t = Tree::new_elem(s.dict(), "article");
            t.add_elem_with_content(s.dict(), t.root(), "title", title);
            t.add_elem_with_content(s.dict(), t.root(), "journal", journal);
            t.add_elem_with_content(s.dict(), t.root(), "year", year);
            for a in authors {
                t.add_elem_with_content(s.dict(), t.root(), "author", a);
            }
            t.add_elem_with_content(s.dict(), t.root(), "pages", pages);
            arena.push(t);
        }
        let (p, basis) = lattice();
        let (mp, of) = member("pages");
        let from_arena = cube(&s, &arena, &p, &basis, &mp, of, AggFunc::Sum, "sum").unwrap();
        let from_stored = cube(&s, &stored, &p, &basis, &mp, of, AggFunc::Sum, "sum").unwrap();
        // Same logical content → same keys, levels, and values (subtree
        // storage differs, so compare the text projections).
        let digest = |c: &Collection| -> Vec<Vec<String>> {
            c.iter()
                .map(|t| {
                    t.materialize(&s)
                        .unwrap()
                        .child_elements()
                        .map(|ch| format!("{}={}", ch.name, ch.text()))
                        .collect()
                })
                .collect()
        };
        assert_eq!(digest(&from_arena), digest(&from_stored));
    }

    #[test]
    fn empty_input_and_bad_arguments() {
        let s = store();
        let (p, basis) = lattice();
        let (mp, of) = member("title");
        let (out, stats) = cube_sharded(
            &s,
            &Vec::new(),
            &p,
            &basis,
            &mp,
            of,
            AggFunc::Count,
            "count",
            &ExecOptions::with_threads(4),
            4,
        )
        .unwrap();
        assert!(out.is_empty());
        assert_eq!(stats.partitions, 1);
        // No dimensions.
        assert!(cube(&s, &Vec::new(), &p, &[], &mp, of, AggFunc::Count, "count").is_err());
        // Aggregated label outside the member pattern.
        assert!(cube(&s, &Vec::new(), &p, &basis, &mp, 9, AggFunc::Count, "count").is_err());
    }
}
