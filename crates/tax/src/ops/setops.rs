//! Set operations on collections.
//!
//! TAX is "a 'proper' algebra, with composability and closure" (Sec. 2);
//! the full operator suite the paper defers to [8] (Jagadish et al.,
//! *TAX: A Tree Algebra for XML*, DBPL 2001) includes the set operations
//! over collections. Two trees are *the same* when their materialized
//! forms are equal: reference trees compare by stored identity and
//! constructed trees structurally, so a witness tree equals itself
//! regardless of how it was produced.

use crate::error::Result;
use crate::tree::{Collection, Tree, TreeNodeKind};
use std::collections::HashSet;

/// A cheap structural fingerprint of a tree: the pre-order sequence of
/// node descriptors. Reference nodes use stored identity (id + deep
/// flag); constructed nodes compare by their interned tag/content words
/// ([`xmlstore::NO_SYM`] for absent content) — symbol equality is value
/// equality, so no text is materialized.
fn fingerprint(tree: &Tree) -> Vec<(u8, u32, u32, u32)> {
    tree.preorder()
        .into_iter()
        .map(|n| match &tree.node(n).kind {
            TreeNodeKind::Ref { node, deep } => (u8::from(*deep), node.id.0, 0, 0),
            TreeNodeKind::Elem { tag, content } => (
                2,
                tree.node(n).children.len() as u32,
                tag.0,
                content.map_or(xmlstore::NO_SYM, |c| c.0),
            ),
        })
        .collect()
}

/// `left ∪ right`, preserving order of first occurrence and removing
/// duplicates (set semantics).
pub fn union(left: Collection, right: Collection) -> Result<Collection> {
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for tree in left.into_iter().chain(right) {
        if seen.insert(fingerprint(&tree)) {
            out.push(tree);
        }
    }
    Ok(out)
}

/// `left ∩ right`, in `left` order, de-duplicated.
pub fn intersection(left: Collection, right: &Collection) -> Result<Collection> {
    let right_set: HashSet<_> = right.iter().map(fingerprint).collect();
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for tree in left {
        let fp = fingerprint(&tree);
        if right_set.contains(&fp) && seen.insert(fp) {
            out.push(tree);
        }
    }
    Ok(out)
}

/// `left ∖ right`, in `left` order, de-duplicated.
pub fn difference(left: Collection, right: &Collection) -> Result<Collection> {
    let right_set: HashSet<_> = right.iter().map(fingerprint).collect();
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for tree in left {
        let fp = fingerprint(&tree);
        if !right_set.contains(&fp) && seen.insert(fp) {
            out.push(tree);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{Axis, PatternTree, Pred};
    use xmlstore::{DocumentStore, StoreOptions};

    const SAMPLE: &str = "<bib>\
        <article><title>A</title><author>Jack</author><year>1999</year></article>\
        <article><title>B</title><author>Jill</author><year>2002</year></article>\
        <article><title>C</title><author>Jack</author><year>2002</year></article>\
    </bib>";

    fn store() -> DocumentStore {
        DocumentStore::from_xml(SAMPLE, &StoreOptions::in_memory()).unwrap()
    }

    /// Articles matching a child predicate, each as one deep reference.
    fn articles_with(s: &DocumentStore, child: &str, value: &str) -> Collection {
        let mut p = PatternTree::with_root(Pred::tag("article"));
        p.add_child(
            p.root(),
            Axis::Child,
            Pred::tag(child).and(Pred::content_eq(value)),
        );
        crate::matching::match_db(s, &p)
            .unwrap()
            .into_iter()
            .map(|b| Tree::new_ref(b[0].as_stored().unwrap(), true))
            .collect()
    }

    #[test]
    fn union_dedups_shared_trees() {
        let s = store();
        let by_jack = articles_with(&s, "author", "Jack"); // A, C
        let of_2002 = articles_with(&s, "year", "2002"); // B, C
        let u = union(by_jack, of_2002).unwrap();
        assert_eq!(u.len(), 3); // A, C, B
    }

    #[test]
    fn intersection_keeps_common_trees() {
        let s = store();
        let by_jack = articles_with(&s, "author", "Jack");
        let of_2002 = articles_with(&s, "year", "2002");
        let i = intersection(by_jack, &of_2002).unwrap();
        assert_eq!(i.len(), 1); // C
        let e = i[0].materialize(&s).unwrap();
        assert_eq!(e.child("title").unwrap().text(), "C");
    }

    #[test]
    fn difference_removes_right_trees() {
        let s = store();
        let by_jack = articles_with(&s, "author", "Jack");
        let of_2002 = articles_with(&s, "year", "2002");
        let d = difference(by_jack, &of_2002).unwrap();
        assert_eq!(d.len(), 1); // A
        let e = d[0].materialize(&s).unwrap();
        assert_eq!(e.child("title").unwrap().text(), "A");
    }

    #[test]
    fn constructed_trees_compare_structurally() {
        let s = store();
        let mk = |v: &str| -> Tree {
            let mut t = Tree::new_elem(s.dict(), "row");
            t.add_elem_with_content(s.dict(), t.root(), "x", v);
            t
        };
        let left = vec![mk("1"), mk("2")];
        let right = vec![mk("2"), mk("3")];
        assert_eq!(union(left.clone(), right.clone()).unwrap().len(), 3);
        assert_eq!(intersection(left.clone(), &right).unwrap().len(), 1);
        assert_eq!(difference(left, &right).unwrap().len(), 1);
    }

    #[test]
    fn empty_operands() {
        let s = store();
        let by_jack = articles_with(&s, "author", "Jack");
        let empty: Collection = Vec::new();
        assert_eq!(union(by_jack.clone(), empty.clone()).unwrap().len(), 2);
        assert_eq!(intersection(by_jack.clone(), &empty).unwrap().len(), 0);
        assert_eq!(difference(by_jack.clone(), &empty).unwrap().len(), 2);
        assert_eq!(difference(empty, &by_jack).unwrap().len(), 0);
    }

    #[test]
    fn shallow_and_deep_refs_are_distinct() {
        let s = store();
        let article = s.tag_id("article").unwrap();
        let e = s.nodes_with_tag(article)[0];
        let deep = vec![Tree::new_ref(e, true)];
        let shallow = vec![Tree::new_ref(e, false)];
        assert_eq!(intersection(deep.clone(), &shallow).unwrap().len(), 0);
        assert_eq!(union(deep, shallow).unwrap().len(), 2);
    }
}
