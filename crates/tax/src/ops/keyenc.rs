//! Key encoding and shard routing — the one FNV-1a module shared by the
//! grouping sinks (groupby / rollup / cube, symbol keys) and the
//! value-join sinks (join operator, executor join — optional-string
//! keys).
//!
//! A grouping [`Key`] is a fixed-width sequence of dictionary symbols:
//! one `u32` word per basis item, [`ABSENT`] when the value is missing
//! (e.g. an absent attribute). Fixed width makes the encoding
//! self-delimiting, so a key hashes in a single FNV-1a pass over the
//! little-endian bytes of its words, and key equality is a flat word
//! compare — no per-value length prefixes or presence tags.
//!
//! Optional-string join keys keep the older self-delimiting byte
//! encoding: a one-byte presence tag keeps an absent value distinct from
//! an empty string.

use crate::exec::{fnv1a, FNV_SEED};
use xmlstore::Sym;

/// The key word standing for a missing value.
pub use xmlstore::NO_SYM as ABSENT;

/// A grouping key: one symbol word per basis item, [`ABSENT`] when the
/// value is missing.
pub type Key = Vec<u32>;

/// The key word for an optional symbol.
#[inline]
pub fn component(s: Option<Sym>) -> u32 {
    s.map_or(ABSENT, |s| s.0)
}

/// FNV-1a over a symbol key: one pass over the words' LE bytes.
#[inline]
pub fn hash_syms(key: &[u32]) -> u64 {
    let mut h = FNV_SEED;
    for w in key {
        h = fnv1a(h, &w.to_le_bytes());
    }
    h
}

/// Fold one optional string into an FNV-1a state. The presence tag keeps
/// `None` distinct from `Some("")`, and the encoding self-delimiting
/// across multi-value keys.
#[inline]
pub fn fold_opt_str(h: u64, value: Option<&str>) -> u64 {
    match value {
        None => fnv1a(h, &[0]),
        Some(v) => fnv1a(fnv1a(h, &[1]), v.as_bytes()),
    }
}

/// FNV-1a of a single optional string value (the join-key hash).
#[inline]
pub fn hash_opt_str(value: Option<&str>) -> u64 {
    fold_opt_str(FNV_SEED, value)
}

/// Map a hash to a shard index.
#[inline]
pub fn shard(h: u64, partitions: usize) -> usize {
    (h % partitions as u64) as usize
}

/// The shard a symbol key routes to. Shared by the groupby, rollup, and
/// cube sinks so all three route a given key identically.
#[inline]
pub fn shard_of(key: &[u32], partitions: usize) -> usize {
    shard(hash_syms(key), partitions)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sym_keys_hash_by_value_not_identity() {
        assert_eq!(hash_syms(&[1, 2, 3]), hash_syms(&[1, 2, 3]));
        assert_ne!(hash_syms(&[1, 2, 3]), hash_syms(&[1, 2, 4]));
        // Fixed width keeps adjacent words from bleeding into each other.
        assert_ne!(hash_syms(&[0x0101, 0x01]), hash_syms(&[0x01, 0x0101]));
    }

    #[test]
    fn absent_is_a_distinct_key_word() {
        assert_ne!(hash_syms(&[ABSENT]), hash_syms(&[0]));
        assert_eq!(component(None), ABSENT);
        assert_eq!(component(Some(Sym(7))), 7);
    }

    #[test]
    fn opt_str_encoding_is_self_delimiting() {
        // None vs Some("") differ by the presence tag.
        assert_ne!(hash_opt_str(None), hash_opt_str(Some("")));
        // Folding two values cannot collide with one concatenated value.
        let two = fold_opt_str(fold_opt_str(FNV_SEED, Some("ab")), Some("c"));
        let one = fold_opt_str(FNV_SEED, Some("abc"));
        assert_ne!(two, one);
    }

    #[test]
    fn shards_cover_the_partition_range() {
        for p in 1..8usize {
            for k in 0..32u32 {
                assert!(shard_of(&[k], p) < p);
            }
        }
        // One partition is the identity sink.
        assert_eq!(shard_of(&[42, ABSENT], 1), 0);
    }
}
