//! Projection (Sec. 2): pattern + projection list → node elimination.
//!
//! All nodes named in the projection list `PL` are kept (a `*`-adorned
//! label keeps the whole data subtree); partial hierarchical
//! relationships between surviving nodes are preserved; relative order is
//! preserved. One input tree contributes zero output trees (no witness),
//! one, or several (when the retained nodes have no ancestor-descendant
//! relationship among them).

use crate::error::Result;
use crate::matching::match_tree;
use crate::matching::vnode::VNode;
use crate::pattern::{PatternNodeId, PatternTree};
use crate::tree::{Collection, Tree, TreeNodeKind};
use std::collections::HashMap;
use xmlstore::DocumentStore;

/// Composite rank used to order and nest mixed arena/stored nodes.
type VKey = (u32, u32);

/// One entry of a projection list: a pattern node, optionally `*`-adorned
/// (keep the whole subtree).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProjectItem {
    /// The pattern node label.
    pub label: PatternNodeId,
    /// `true` for `$i*`.
    pub deep: bool,
}

impl ProjectItem {
    /// `$i` — keep just the node.
    pub fn shallow(label: PatternNodeId) -> Self {
        ProjectItem { label, deep: false }
    }

    /// `$i*` — keep the node and all its descendants.
    pub fn deep(label: PatternNodeId) -> Self {
        ProjectItem { label, deep: true }
    }
}

/// Project each tree of `input` through `pattern`/`pl`.
///
/// With `anchor_root == true` the pattern root binds only to each tree's
/// root, which (together with putting the pattern root in `PL`) gives the
/// at-most-one-output-per-input behaviour the paper describes.
pub fn project(
    store: &DocumentStore,
    input: &Collection,
    pattern: &PatternTree,
    pl: &[ProjectItem],
    anchor_root: bool,
) -> Result<Collection> {
    let mut out = Vec::new();
    for tree in input {
        project_one(store, tree, pattern, pl, anchor_root, &mut out)?;
    }
    Ok(out)
}

/// Project a single tree, appending its output trees (possibly none) to
/// `out`. Trees are independent under projection, so [`project`] is just
/// this in a loop — exposed for the fused select→project kernel and the
/// streaming executor, which batch over trees.
pub fn project_one(
    store: &DocumentStore,
    tree: &Tree,
    pattern: &PatternTree,
    pl: &[ProjectItem],
    anchor_root: bool,
    out: &mut Vec<Tree>,
) -> Result<()> {
    let bindings = match_tree(store, tree, pattern, anchor_root)?;
    if bindings.is_empty() {
        return Ok(());
    }
    // Union of selected nodes over all embeddings; deep wins.
    let mut selected: HashMap<VNode, bool> = HashMap::new();
    for b in &bindings {
        for item in pl {
            let v = b[item.label];
            let e = selected.entry(v).or_insert(false);
            *e = *e || item.deep;
        }
    }

    // Compute enter/exit ranks for the selected nodes so mixed
    // arena/stored containment can be decided uniformly — entirely from
    // labels, touching no data pages (identifier processing, Sec. 5.3):
    // arena nodes get DFS counters; a stored node inside a deep reference
    // inherits the reference's rank as its first key component and its
    // own (start, end) label as the second.

    // Normalize: a selected stored node that *is* some reference's target
    // aliases that arena node.
    let mut ref_of: HashMap<u32, usize> = HashMap::new();
    for i in tree.preorder() {
        if let TreeNodeKind::Ref { node, .. } = &tree.node(i).kind {
            ref_of.insert(node.id.0, i);
        }
    }
    let mut norm: HashMap<VNode, bool> = HashMap::new();
    for (v, deep) in selected {
        let v = match v {
            VNode::Stored(e) => match ref_of.get(&e.id.0) {
                Some(&i) => VNode::Arena(i),
                None => VNode::Stored(e),
            },
            other => other,
        };
        let slot = norm.entry(v).or_insert(false);
        *slot = *slot || deep;
    }
    let selected = norm;

    let selected_stored: Vec<xmlstore::NodeEntry> = {
        let mut v: Vec<xmlstore::NodeEntry> =
            selected.keys().filter_map(|n| n.as_stored()).collect();
        v.sort_by_key(|e| e.start);
        v
    };

    let mut intervals: HashMap<VNode, (VKey, VKey)> = HashMap::new();
    // Innermost-owner width for stored nodes claimed by several refs.
    let mut owner_width: HashMap<VNode, u32> = HashMap::new();
    let mut counter = 0u32;
    arena_intervals(
        tree,
        tree.root(),
        &selected_stored,
        &mut intervals,
        &mut owner_width,
        &mut counter,
    );

    // Selected nodes in document order.
    let mut nodes: Vec<(VNode, bool)> = selected
        .into_iter()
        .filter(|(v, _)| intervals.contains_key(v))
        .collect();
    nodes.sort_by_key(|(v, _)| intervals[v].0);

    // Build the forest with a containment stack. Each maximal node roots
    // its own output tree; a selected node nested under a *deep* selected
    // node is already part of that subtree and is skipped.
    let mut stack: Vec<(VNode, usize, usize, bool)> = Vec::new(); // (vnode, tree idx in out, arena id, deep)
    let mut roots: Vec<usize> = Vec::new(); // indices into out
    let base = out.len();
    for (v, deep) in nodes {
        let (enter, _) = intervals[&v];
        while let Some(&(top, _, _, _)) = stack.last() {
            if intervals[&top].1 < enter {
                stack.pop();
            } else {
                break;
            }
        }
        match stack.last() {
            None => {
                let t = new_tree_for(store, tree, v, deep)?;
                out.push(t);
                let idx = out.len() - 1;
                roots.push(idx);
                stack.push((v, idx, 0, deep));
            }
            Some(&(_, tidx, parent_arena, parent_deep)) => {
                if parent_deep {
                    // Already inside a kept subtree.
                    continue;
                }
                let kind = kind_for(tree, v, deep);
                let arena = out[tidx].add_node(parent_arena, kind);
                stack.push((v, tidx, arena, deep));
            }
        }
    }
    let _ = base;
    let _ = roots;
    Ok(())
}

/// Arena DFS assigning composite ranks: arena node `i` gets
/// `((enter, 0), (exit, 0))`; every selected stored node inside a deep
/// reference gets `((ref_enter, start), (ref_enter, end))`, which nests
/// correctly between the reference's enter and exit. When two references
/// could both claim a stored node (nested targets), the narrower —
/// innermost — reference wins.
fn arena_intervals(
    tree: &Tree,
    i: usize,
    selected_stored: &[xmlstore::NodeEntry],
    intervals: &mut HashMap<VNode, (VKey, VKey)>,
    owner_width: &mut HashMap<VNode, u32>,
    counter: &mut u32,
) {
    let enter = *counter;
    *counter += 1;
    for &c in &tree.node(i).children {
        arena_intervals(tree, c, selected_stored, intervals, owner_width, counter);
    }
    if let TreeNodeKind::Ref {
        node: entry,
        deep: true,
    } = &tree.node(i).kind
    {
        if !selected_stored.is_empty() {
            let width = entry.end - entry.start;
            let lo = selected_stored.partition_point(|s| s.start <= entry.start);
            for s in &selected_stored[lo..] {
                if s.start >= entry.end {
                    break;
                }
                let key = VNode::Stored(*s);
                let better = owner_width.get(&key).map(|&w| width < w).unwrap_or(true);
                if better {
                    owner_width.insert(key, width);
                    intervals.insert(key, ((enter, s.start), (enter, s.end)));
                }
            }
        }
    }
    let exit = *counter;
    *counter += 1;
    intervals.insert(VNode::Arena(i), ((enter, 0), (exit, 0)));
}

fn kind_for(tree: &Tree, v: VNode, deep: bool) -> TreeNodeKind {
    match v {
        VNode::Stored(e) => TreeNodeKind::Ref { node: e, deep },
        VNode::Arena(i) => match &tree.node(i).kind {
            TreeNodeKind::Ref { node, .. } => TreeNodeKind::Ref { node: *node, deep },
            k @ TreeNodeKind::Elem { .. } => k.clone(),
        },
    }
}

fn new_tree_for(store: &DocumentStore, tree: &Tree, v: VNode, deep: bool) -> Result<Tree> {
    let _ = store;
    Ok(match kind_for(tree, v, deep) {
        TreeNodeKind::Ref { node, deep } => Tree::new_ref(node, deep),
        TreeNodeKind::Elem { tag, content } => {
            let mut t = Tree::new_elem_sym(tag);
            if let Some(c) = content {
                if let TreeNodeKind::Elem { content, .. } = &mut t.node_mut(0).kind {
                    *content = Some(c);
                }
            }
            // Arena deep: copy the arena subtree's children.
            if deep {
                if let VNode::Arena(i) = v {
                    for &c in &tree.node(i).children {
                        let root = t.root();
                        t.append_subtree(root, tree, c);
                    }
                }
            }
            t
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::select::select_db;
    use crate::pattern::{Axis, Pred};
    use xmlstore::StoreOptions;

    const SAMPLE: &str = "<bib>\
        <article><title>T1</title><author>Jack</author><author>John</author><year>1999</year></article>\
        <article><title>T2</title><author>Jill</author><year>2002</year></article>\
    </bib>";

    fn store() -> DocumentStore {
        DocumentStore::from_xml(SAMPLE, &StoreOptions::in_memory()).unwrap()
    }

    /// doc_root-ad->article selection with deep article, i.e. a
    /// collection of whole article trees.
    fn articles(s: &DocumentStore) -> Collection {
        let mut p = PatternTree::with_root(Pred::tag("doc_root"));
        let art = p.add_child(p.root(), Axis::Descendant, Pred::tag("article"));
        let sel = select_db(s, &p, &[art]).unwrap();
        // Keep only the article part as the tree root via projection.
        let pl = [ProjectItem::deep(art)];
        project(s, &sel, &p, &pl, true).unwrap()
    }

    #[test]
    fn project_extracts_article_roots() {
        let s = store();
        let arts = articles(&s);
        assert_eq!(arts.len(), 2);
        let e = arts[0].materialize(&s).unwrap();
        assert_eq!(e.name, "article");
        assert_eq!(e.children_named("author").count(), 2);
    }

    #[test]
    fn projection_keeps_hierarchy() {
        let s = store();
        let arts = articles(&s);
        // From article trees, keep article (shallow) and its authors.
        let mut p = PatternTree::with_root(Pred::tag("article"));
        let auth = p.add_child(p.root(), Axis::Child, Pred::tag("author"));
        let pl = [ProjectItem::shallow(p.root()), ProjectItem::deep(auth)];
        let projected = project(&s, &arts, &p, &pl, false).unwrap();
        assert_eq!(projected.len(), 2);
        let e = projected[0].materialize(&s).unwrap();
        assert_eq!(e.name, "article");
        assert_eq!(e.children_named("author").count(), 2);
        assert!(e.child("title").is_none());
        assert!(e.child("year").is_none());
    }

    #[test]
    fn zero_witness_trees_contribute_nothing() {
        let s = store();
        let arts = articles(&s);
        let mut p = PatternTree::with_root(Pred::tag("article"));
        let pub_ = p.add_child(p.root(), Axis::Child, Pred::tag("publisher"));
        let pl = [ProjectItem::shallow(p.root()), ProjectItem::shallow(pub_)];
        let projected = project(&s, &arts, &p, &pl, false).unwrap();
        assert!(projected.is_empty());
    }

    #[test]
    fn unrelated_nodes_make_multiple_output_trees() {
        let s = store();
        let arts = articles(&s);
        // Keep only authors (no common selected ancestor): each author of
        // an article becomes its own output tree.
        let mut p = PatternTree::with_root(Pred::tag("article"));
        let auth = p.add_child(p.root(), Axis::Child, Pred::tag("author"));
        let pl = [ProjectItem::shallow(auth)];
        let projected = project(&s, &arts, &p, &pl, false).unwrap();
        assert_eq!(projected.len(), 3); // Jack, John from tree 1; Jill from tree 2
        let names: Vec<String> = projected
            .iter()
            .map(|t| t.materialize(&s).unwrap().text())
            .collect();
        assert_eq!(names, ["Jack", "John", "Jill"]);
    }

    #[test]
    fn deep_projection_subsumes_nested_selection() {
        let s = store();
        let arts = articles(&s);
        // article* plus author: author nodes are inside the kept article
        // subtree, so only one output tree per article results.
        let mut p = PatternTree::with_root(Pred::tag("article"));
        let auth = p.add_child(p.root(), Axis::Child, Pred::tag("author"));
        let pl = [ProjectItem::deep(p.root()), ProjectItem::shallow(auth)];
        let projected = project(&s, &arts, &p, &pl, false).unwrap();
        assert_eq!(projected.len(), 2);
        let e = projected[0].materialize(&s).unwrap();
        assert_eq!(e.children_named("author").count(), 2);
        assert!(e.child("title").is_some()); // deep keeps everything
    }

    #[test]
    fn relative_order_preserved() {
        let s = store();
        let arts = articles(&s);
        let mut p = PatternTree::with_root(Pred::tag("article"));
        let title = p.add_child(p.root(), Axis::Child, Pred::tag("title"));
        let year = p.add_child(p.root(), Axis::Child, Pred::tag("year"));
        let pl = [
            ProjectItem::shallow(p.root()),
            ProjectItem::deep(year),
            ProjectItem::deep(title),
        ];
        let projected = project(&s, &arts, &p, &pl, false).unwrap();
        let e = projected[0].materialize(&s).unwrap();
        let kid_names: Vec<&str> = e.child_elements().map(|c| c.name.as_str()).collect();
        assert_eq!(kid_names, ["title", "year"]); // document order, not PL order
    }

    #[test]
    fn projection_over_synthetic_trees() {
        let s = store();
        let mut t = Tree::new_elem(s.dict(), "wrapper");
        let a = t.add_elem_with_content(s.dict(), t.root(), "keep", "yes");
        let _ = t.add_elem_with_content(s.dict(), t.root(), "drop", "no");
        t.add_elem_with_content(s.dict(), a, "inner", "deep");
        let mut p = PatternTree::with_root(Pred::tag("wrapper"));
        let keep = p.add_child(p.root(), Axis::Child, Pred::tag("keep"));
        let pl = [ProjectItem::deep(keep)];
        let projected = project(&s, &vec![t], &p, &pl, true).unwrap();
        assert_eq!(projected.len(), 1);
        let e = projected[0].materialize(&s).unwrap();
        assert_eq!(e.name, "keep");
        assert_eq!(e.child("inner").unwrap().text(), "deep");
    }
}
