//! Reordering (from the TAX operator suite of [8]): sort a collection of
//! trees by the contents of pattern-bound nodes.
//!
//! The grouping operator's *ordering list* (Sec. 3) orders members
//! *within* a group; this operator orders a whole collection — e.g. the
//! grouped output itself, "by the alphabetical order of the titles or by
//! the year of publication, and so forth".

use crate::error::{Error, Result};
use crate::matching::match_tree;
use crate::matching::vnode::VTree;
use crate::ops::groupby::{Direction, GroupOrder};
use crate::pattern::PatternTree;
use crate::tree::Collection;
use crate::value::compare_opt_values;
use std::cmp::Ordering;
use xmlstore::DocumentStore;

/// Sort `input` by the contents of the nodes bound by `ordering`'s labels
/// under `pattern` (first binding per tree). Trees where the pattern does
/// not match sort first (missing keys), preserving their relative order;
/// the sort is stable throughout.
pub fn reorder(
    store: &DocumentStore,
    input: Collection,
    pattern: &PatternTree,
    ordering: &[GroupOrder],
) -> Result<Collection> {
    for o in ordering {
        if o.label >= pattern.len() {
            return Err(Error::UnknownLabel(format!("${}", o.label + 1)));
        }
    }
    // Populate only the sort keys (identifier processing).
    let mut keyed: Vec<(Vec<Option<String>>, usize)> = Vec::with_capacity(input.len());
    for (idx, tree) in input.iter().enumerate() {
        let bindings = match_tree(store, tree, pattern, false)?;
        let keys = match bindings.first() {
            None => vec![None; ordering.len()],
            Some(b) => {
                let vt = VTree::new(store, tree);
                ordering
                    .iter()
                    .map(|o| vt.content(b[o.label]))
                    .collect::<Result<_>>()?
            }
        };
        keyed.push((keys, idx));
    }
    keyed.sort_by(|a, b| {
        for (i, o) in ordering.iter().enumerate() {
            let ord = compare_opt_values(a.0[i].as_deref(), b.0[i].as_deref());
            let ord = match o.direction {
                Direction::Ascending => ord,
                Direction::Descending => ord.reverse(),
            };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        a.1.cmp(&b.1)
    });
    // Emit in sorted order by moving each tree out of its input slot.
    let mut slots: Vec<Option<crate::tree::Tree>> = input.into_iter().map(Some).collect();
    Ok(keyed
        .into_iter()
        .map(|(_, idx)| slots[idx].take().expect("each index emitted once"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::select_db;
    use crate::pattern::{Axis, Pred};
    use xmlstore::{DocumentStore, StoreOptions};

    const SAMPLE: &str = "<bib>\
        <article><title>Beta</title><year>2001</year></article>\
        <article><title>Alpha</title><year>1999</year></article>\
        <article><title>Gamma</title><year>1999</year></article>\
    </bib>";

    fn setup() -> (DocumentStore, Collection, PatternTree, usize, usize) {
        let s = DocumentStore::from_xml(SAMPLE, &StoreOptions::in_memory()).unwrap();
        let p0 = PatternTree::with_root(Pred::tag("article"));
        let arts = select_db(&s, &p0, &[p0.root()]).unwrap();
        let mut p = PatternTree::with_root(Pred::tag("article"));
        let title = p.add_child(p.root(), Axis::Child, Pred::tag("title"));
        let year = p.add_child(p.root(), Axis::Child, Pred::tag("year"));
        (s, arts, p, title, year)
    }

    fn titles(s: &DocumentStore, c: &Collection) -> Vec<String> {
        c.iter()
            .map(|t| t.materialize(s).unwrap().child("title").unwrap().text())
            .collect()
    }

    #[test]
    fn sort_by_title_ascending() {
        let (s, arts, p, title, _) = setup();
        let sorted = reorder(
            &s,
            arts,
            &p,
            &[GroupOrder {
                label: title,
                direction: Direction::Ascending,
            }],
        )
        .unwrap();
        assert_eq!(titles(&s, &sorted), ["Alpha", "Beta", "Gamma"]);
    }

    #[test]
    fn sort_by_year_then_title_descending() {
        let (s, arts, p, title, year) = setup();
        let sorted = reorder(
            &s,
            arts,
            &p,
            &[
                GroupOrder {
                    label: year,
                    direction: Direction::Ascending,
                },
                GroupOrder {
                    label: title,
                    direction: Direction::Descending,
                },
            ],
        )
        .unwrap();
        // 1999: Gamma, Alpha (descending title); then 2001: Beta.
        assert_eq!(titles(&s, &sorted), ["Gamma", "Alpha", "Beta"]);
    }

    #[test]
    fn numeric_aware_year_order() {
        let (s, arts, p, _, year) = setup();
        let sorted = reorder(
            &s,
            arts,
            &p,
            &[GroupOrder {
                label: year,
                direction: Direction::Descending,
            }],
        )
        .unwrap();
        assert_eq!(titles(&s, &sorted)[0], "Beta"); // 2001 first
    }

    #[test]
    fn unmatched_trees_sort_first_stably() {
        let (s, mut arts, p, title, _) = setup();
        arts.push(crate::tree::Tree::new_elem(s.dict(), "odd"));
        arts.push(crate::tree::Tree::new_elem(s.dict(), "odd2"));
        let sorted = reorder(
            &s,
            arts,
            &p,
            &[GroupOrder {
                label: title,
                direction: Direction::Ascending,
            }],
        )
        .unwrap();
        // Two unmatched trees first, in input order.
        assert_eq!(sorted.len(), 5);
        let tags: Vec<String> = sorted
            .iter()
            .take(2)
            .map(|t| t.materialize(&s).unwrap().name)
            .collect();
        assert_eq!(tags, ["odd", "odd2"]);
    }

    #[test]
    fn empty_ordering_is_identity() {
        let (s, arts, p, _, _) = setup();
        let sorted = reorder(&s, arts.clone(), &p, &[]).unwrap();
        assert_eq!(titles(&s, &sorted), titles(&s, &arts));
    }

    #[test]
    fn unknown_label_rejected() {
        let (s, arts, p, _, _) = setup();
        assert!(reorder(
            &s,
            arts,
            &p,
            &[GroupOrder {
                label: 9,
                direction: Direction::Ascending
            }]
        )
        .is_err());
    }
}
