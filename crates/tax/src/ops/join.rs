//! Value-based joins (Sec. 4.1).
//!
//! The naive parse of a nested FLWR generates a **left outer join**
//! between the outer bindings and the database (the "join-plan" pattern
//! tree of Fig. 4b), producing `TAX_prod_root` trees that pair each outer
//! tree with one matching witness from the database (Fig. 8); unmatched
//! outer trees survive alone. A **full outer join** stitches RETURN
//! arguments back together on a shared key.

use crate::error::Result;
use crate::exec::{par_map, par_map_owned, ExecOptions, ShardStats};
use crate::matching::vnode::VTree;
use crate::matching::{match_db, match_tree, Binding};
use crate::ops::keyenc;
use crate::ops::select::witness_tree;
use crate::pattern::{PatternNodeId, PatternTree};
use crate::tree::{Collection, Tree};
use std::collections::HashMap;
use xmlstore::DocumentStore;

/// Left outer join of `left` against the stored database.
///
/// For each left tree, its join value is the content of the node bound by
/// `left_label` under `left_pattern`. The right side is matched once
/// against the database with `right_pattern`; a right binding joins when
/// the content of its `right_label` node equals the left value. Each
/// matching pair yields one `TAX_prod_root` tree holding the left tree
/// followed by the right witness tree (adorned by `right_sl`); a left
/// tree with no match yields a `TAX_prod_root` with the left part only.
#[allow(clippy::too_many_arguments)]
pub fn left_outer_join_db(
    store: &DocumentStore,
    left: &Collection,
    left_pattern: &PatternTree,
    left_label: PatternNodeId,
    right_pattern: &PatternTree,
    right_label: PatternNodeId,
    right_sl: &[PatternNodeId],
) -> Result<Collection> {
    Ok(left_outer_join_db_sharded(
        store,
        left,
        left_pattern,
        left_label,
        right_pattern,
        right_label,
        right_sl,
        &ExecOptions::sequential(),
        1,
    )?
    .0)
}

/// The join key of one left tree: the content of the node its first
/// `left_pattern` binding assigns to `left_label` (`None` when the tree
/// does not match or the node has no content). This is the value the
/// sharded sink partitions on.
pub fn left_join_key(
    store: &DocumentStore,
    tree: &Tree,
    left_pattern: &PatternTree,
    left_label: PatternNodeId,
) -> Result<Option<String>> {
    let bindings = match_tree(store, tree, left_pattern, false)?;
    match bindings.first() {
        Some(b) => VTree::new(store, tree).content(b[left_label]),
        None => Ok(None),
    }
}

/// Hash-partitioned [`left_outer_join_db`]: the sharded-sink entry
/// point.
///
/// The right side is matched against the database **once** and bucketed
/// by join value, shared read-only across workers. Each left tree's join
/// key is extracted in parallel (a per-tree pattern match, fanned out
/// over `opts.threads`); left trees are then routed to `partitions`
/// shards by an FNV-1a hash of that key, every shard probes the shared
/// buckets and builds its `TAX_prod_root` trees independently, and the
/// merge re-emits the per-tree outputs ordered by **left input
/// position** — byte-identical to the serial kernel, which walks the
/// left collection in order.
///
/// Returns the joined collection plus partition statistics (left trees
/// per shard) for the metrics tree.
#[allow(clippy::too_many_arguments)]
pub fn left_outer_join_db_sharded(
    store: &DocumentStore,
    left: &Collection,
    left_pattern: &PatternTree,
    left_label: PatternNodeId,
    right_pattern: &PatternTree,
    right_label: PatternNodeId,
    right_sl: &[PatternNodeId],
    opts: &ExecOptions,
    partitions: usize,
) -> Result<(Collection, ShardStats)> {
    if left_label >= left_pattern.len() {
        return Err(crate::error::Error::UnknownLabel(format!(
            "${}",
            left_label + 1
        )));
    }
    if right_label >= right_pattern.len() {
        return Err(crate::error::Error::UnknownLabel(format!(
            "${}",
            right_label + 1
        )));
    }

    // Match the right side once; bucket bindings by join value
    // (a data look-up per binding — part of the direct plan's cost).
    let right_bindings = match_db(store, right_pattern)?;
    let mut buckets: HashMap<String, Vec<usize>> = HashMap::new();
    let probe_tree = Tree::new_elem(store.dict(), "probe");
    let vt_probe = VTree::new(store, &probe_tree);
    for (i, b) in right_bindings.iter().enumerate() {
        if let Some(v) = vt_probe.content(b[right_label])? {
            buckets.entry(v).or_default().push(i);
        }
    }

    // Parallel key extraction, in left order.
    let keys: Vec<Option<String>> = par_map(opts, left, |_, ltree| {
        left_join_key(store, ltree, left_pattern, left_label)
    })?;

    let join_left = |li: usize| -> Result<Vec<Tree>> {
        join_one(
            store,
            &left[li],
            keys[li].as_deref(),
            &buckets,
            &right_bindings,
            right_pattern,
            right_sl,
        )
    };

    let partitions = partitions.max(1).min(left.len().max(1));
    if partitions <= 1 {
        let mut out = Vec::new();
        for li in 0..left.len() {
            out.extend(join_left(li)?);
        }
        return Ok((out, ShardStats::serial(left.len())));
    }

    let mut shards: Vec<Vec<usize>> = (0..partitions).map(|_| Vec::new()).collect();
    for (li, key) in keys.iter().enumerate() {
        let h = keyenc::hash_opt_str(key.as_deref());
        shards[keyenc::shard(h, partitions)].push(li);
    }
    let sizes: Vec<usize> = shards.iter().map(Vec::len).collect();
    let per_shard: Vec<Vec<(usize, Vec<Tree>)>> = par_map_owned(opts, shards, |_, shard| {
        shard
            .into_iter()
            .map(|li| Ok((li, join_left(li)?)))
            .collect::<Result<Vec<_>>>()
    })?;

    // Order-restoring merge: scatter per-left outputs back to left
    // position, then emit in left order.
    let mut slots: Vec<Option<Vec<Tree>>> = (0..left.len()).map(|_| None).collect();
    for shard in per_shard {
        for (li, trees) in shard {
            slots[li] = Some(trees);
        }
    }
    let mut out = Vec::new();
    for slot in slots {
        out.extend(slot.unwrap_or_default());
    }
    Ok((out, ShardStats { partitions, sizes }))
}

/// The per-left-tree join kernel: probe the right buckets with the
/// tree's join key and emit its `TAX_prod_root` trees (the unmatched
/// tree survives alone). Shared verbatim between the serial and sharded
/// paths.
fn join_one(
    store: &DocumentStore,
    ltree: &Tree,
    key: Option<&str>,
    buckets: &HashMap<String, Vec<usize>>,
    right_bindings: &[Binding],
    right_pattern: &PatternTree,
    right_sl: &[PatternNodeId],
) -> Result<Vec<Tree>> {
    let matches: &[usize] = key
        .and_then(|v| buckets.get(v))
        .map(Vec::as_slice)
        .unwrap_or(&[]);
    if matches.is_empty() {
        let mut prod = Tree::new_elem(store.dict(), crate::tags::PROD_ROOT);
        prod.append_subtree(prod.root(), ltree, ltree.root());
        return Ok(vec![prod]);
    }
    let mut out = Vec::with_capacity(matches.len());
    for &ri in matches {
        let mut prod = Tree::new_elem(store.dict(), crate::tags::PROD_ROOT);
        prod.append_subtree(prod.root(), ltree, ltree.root());
        let w = witness_tree(store, None, right_pattern, &right_bindings[ri], right_sl)?;
        prod.append_subtree(prod.root(), &w, w.root());
        out.push(prod);
    }
    Ok(out)
}

/// Full outer join of two in-memory collections on the contents of
/// pattern-bound nodes — the "stitching" of RETURN arguments.
///
/// Trees pair when their key contents are equal; unmatched trees from
/// either side survive alone under their own `TAX_prod_root`.
pub fn full_outer_join(
    store: &DocumentStore,
    left: &Collection,
    left_pattern: &PatternTree,
    left_label: PatternNodeId,
    right: &Collection,
    right_pattern: &PatternTree,
    right_label: PatternNodeId,
) -> Result<Collection> {
    let key_of =
        |tree: &Tree, pattern: &PatternTree, label: PatternNodeId| -> Result<Option<String>> {
            let bindings = match_tree(store, tree, pattern, false)?;
            match bindings.first() {
                Some(b) => VTree::new(store, tree).content(b[label]),
                None => Ok(None),
            }
        };

    let mut right_keys: Vec<Option<String>> = Vec::with_capacity(right.len());
    for r in right {
        right_keys.push(key_of(r, right_pattern, right_label)?);
    }
    let mut right_used = vec![false; right.len()];

    let mut out = Vec::new();
    for l in left {
        let lk = key_of(l, left_pattern, left_label)?;
        let mut matched = false;
        if lk.is_some() {
            for (i, rk) in right_keys.iter().enumerate() {
                if *rk == lk {
                    right_used[i] = true;
                    matched = true;
                    let mut prod = Tree::new_elem(store.dict(), crate::tags::PROD_ROOT);
                    prod.append_subtree(prod.root(), l, l.root());
                    prod.append_subtree(prod.root(), &right[i], right[i].root());
                    out.push(prod);
                }
            }
        }
        if !matched {
            let mut prod = Tree::new_elem(store.dict(), crate::tags::PROD_ROOT);
            prod.append_subtree(prod.root(), l, l.root());
            out.push(prod);
        }
    }
    for (i, used) in right_used.iter().enumerate() {
        if !used {
            let mut prod = Tree::new_elem(store.dict(), crate::tags::PROD_ROOT);
            prod.append_subtree(prod.root(), &right[i], right[i].root());
            out.push(prod);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::dupelim::dup_elim;
    use crate::ops::select::select_db;
    use crate::pattern::{Axis, Pred};
    use crate::tags;
    use xmlstore::StoreOptions;

    /// The Figure 6 sample database.
    const FIG6: &str = "<doc_root_inner>\
        <article><author>Jack</author><author>John</author><title>Querying XML</title></article>\
        <article><author>Jill</author><author>Jack</author><title>XML and the Web</title></article>\
        <article><author>John</author><title>Hack HTML</title></article>\
    </doc_root_inner>";

    fn store() -> DocumentStore {
        DocumentStore::from_xml(FIG6, &StoreOptions::in_memory()).unwrap()
    }

    fn outer_pattern() -> PatternTree {
        let mut p = PatternTree::with_root(Pred::tag("doc_root"));
        p.add_child(p.root(), Axis::Descendant, Pred::tag("author"));
        p
    }

    fn join_right_pattern() -> (PatternTree, PatternNodeId, PatternNodeId) {
        let mut p = PatternTree::with_root(Pred::tag("doc_root"));
        let art = p.add_child(p.root(), Axis::Descendant, Pred::tag("article"));
        let auth = p.add_child(art, Axis::Child, Pred::tag("author"));
        (p, art, auth)
    }

    /// Distinct-author trees (Fig. 7).
    fn distinct_authors(s: &DocumentStore) -> Collection {
        let p = outer_pattern();
        let sel = select_db(s, &p, &[1]).unwrap();
        dup_elim(s, sel, &p, 1).unwrap()
    }

    #[test]
    fn figure8_left_outer_join() {
        let s = store();
        let authors = distinct_authors(&s);
        assert_eq!(authors.len(), 3); // Jack, John, Jill
        let (right, art, auth) = join_right_pattern();
        let joined =
            left_outer_join_db(&s, &authors, &outer_pattern(), 1, &right, auth, &[art]).unwrap();
        // Jack: 2 articles; John: 2; Jill: 1 → 5 prod trees (Fig. 8).
        assert_eq!(joined.len(), 5);
        let e = joined[0].materialize(&s).unwrap();
        assert_eq!(e.name, tags::PROD_ROOT);
        // Left part (doc_root/author) + right witness (doc_root/article/author).
        assert_eq!(e.child_elements().count(), 2);
    }

    #[test]
    fn left_outer_preserves_unmatched() {
        let xml = "<bib><author>Orphan</author>\
            <article><author>Jack</author><title>T</title></article></bib>";
        let s = DocumentStore::from_xml(xml, &StoreOptions::in_memory()).unwrap();
        let authors = distinct_authors(&s);
        assert_eq!(authors.len(), 2);
        let (right, art, auth) = join_right_pattern();
        let joined =
            left_outer_join_db(&s, &authors, &outer_pattern(), 1, &right, auth, &[art]).unwrap();
        // Orphan joins nothing but survives; Jack joins one article.
        assert_eq!(joined.len(), 2);
        let solo: Vec<_> = joined
            .iter()
            .map(|t| t.materialize(&s).unwrap().child_elements().count())
            .collect();
        assert!(solo.contains(&1), "unmatched left tree must survive alone");
        assert!(solo.contains(&2));
    }

    #[test]
    fn right_adornment_controls_depth() {
        let s = store();
        let authors = distinct_authors(&s);
        let (right, art, auth) = join_right_pattern();
        // With SL = [article], titles are reachable in the prod trees.
        let joined =
            left_outer_join_db(&s, &authors, &outer_pattern(), 1, &right, auth, &[art]).unwrap();
        let any_title = joined.iter().any(|t| {
            t.materialize(&s)
                .unwrap()
                .descendants()
                .any(|e| e.name == "title")
        });
        assert!(any_title);
        // Without adornment, articles are shallow: no titles anywhere.
        let joined2 =
            left_outer_join_db(&s, &authors, &outer_pattern(), 1, &right, auth, &[]).unwrap();
        let any_title2 = joined2.iter().any(|t| {
            t.materialize(&s)
                .unwrap()
                .descendants()
                .any(|e| e.name == "title")
        });
        assert!(!any_title2);
    }

    #[test]
    fn full_outer_join_pairs_and_leftovers() {
        let s = store();
        // Left: author name trees; right: one tree sharing a key plus one
        // unmatched.
        let mk = |tag: &str, content: &str| -> Tree {
            let mut t = Tree::new_elem(s.dict(), "wrap");
            t.add_elem_with_content(s.dict(), t.root(), tag, content);
            t
        };
        let left = vec![mk("author", "Jack"), mk("author", "Ghost")];
        let right = vec![mk("author", "Jack"), mk("author", "Jill")];
        let mut lp = PatternTree::with_root(Pred::tag("wrap"));
        let ll = lp.add_child(lp.root(), Axis::Child, Pred::tag("author"));
        let joined = full_outer_join(&s, &left, &lp, ll, &right, &lp, ll).unwrap();
        // Jack×Jack pair + Ghost alone + Jill alone = 3.
        assert_eq!(joined.len(), 3);
        let sizes: Vec<usize> = joined
            .iter()
            .map(|t| t.materialize(&s).unwrap().child_elements().count())
            .collect();
        assert_eq!(sizes.iter().filter(|&&n| n == 2).count(), 1);
        assert_eq!(sizes.iter().filter(|&&n| n == 1).count(), 2);
    }

    #[test]
    fn unknown_labels_rejected() {
        let s = store();
        let (right, _, _) = join_right_pattern();
        assert!(left_outer_join_db(&s, &Vec::new(), &outer_pattern(), 9, &right, 2, &[]).is_err());
        assert!(left_outer_join_db(&s, &Vec::new(), &outer_pattern(), 1, &right, 9, &[]).is_err());
    }
}
