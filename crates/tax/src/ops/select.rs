//! Selection (Sec. 2): pattern + adornment list → witness trees.
//!
//! Each data tree in the output is the witness tree induced by one
//! embedding of the pattern; the adornment list `SL` names pattern nodes
//! whose *entire data subtrees* (not just the nodes) are kept. Selection
//! is one-many: a pattern can match many times in one input tree.

use crate::error::Result;
use crate::exec::{par_map, ExecOptions};
use crate::matching::vnode::VNode;
use crate::matching::{match_db, match_tree, Binding};
use crate::pattern::{PatternNodeId, PatternTree};
use crate::tree::{Collection, Tree, TreeNodeKind};
use xmlstore::DocumentStore;

/// Selection over the stored database.
pub fn select_db(
    store: &DocumentStore,
    pattern: &PatternTree,
    sl: &[PatternNodeId],
) -> Result<Collection> {
    select_db_opts(store, pattern, sl, &ExecOptions::default())
}

/// [`select_db`] with explicit execution options: the pattern match runs
/// single-threaded over the indexes, then witness-tree construction fans
/// out per binding.
pub fn select_db_opts(
    store: &DocumentStore,
    pattern: &PatternTree,
    sl: &[PatternNodeId],
    opts: &ExecOptions,
) -> Result<Collection> {
    let bindings = match_db(store, pattern)?;
    par_map(opts, &bindings, |_, b| {
        witness_tree(store, None, pattern, b, sl)
    })
}

/// Fused selection + projection over the stored database (the
/// optimizer's select→project fusion): the pattern is matched once, and
/// each binding's witness tree is projected immediately instead of
/// materializing the whole selected collection. Because projection
/// treats input trees independently and appends outputs in order, this
/// is byte-identical to `project(select_db(pattern, sl), pattern, pl,
/// anchor_root = true)`.
pub fn select_project_db_opts(
    store: &DocumentStore,
    pattern: &PatternTree,
    sl: &[PatternNodeId],
    pl: &[crate::ops::project::ProjectItem],
    opts: &ExecOptions,
) -> Result<Collection> {
    let bindings = match_db(store, pattern)?;
    select_project_bindings(store, pattern, &bindings, sl, pl, opts)
}

/// The per-binding kernel of [`select_project_db_opts`], callable over a
/// binding slice — the streaming executor pulls bounded batches of
/// bindings through this.
pub fn select_project_bindings(
    store: &DocumentStore,
    pattern: &PatternTree,
    bindings: &[Binding],
    sl: &[PatternNodeId],
    pl: &[crate::ops::project::ProjectItem],
    opts: &ExecOptions,
) -> Result<Collection> {
    let per_binding = par_map(opts, bindings, |_, b| {
        let witness = witness_tree(store, None, pattern, b, sl)?;
        let mut out = Vec::new();
        crate::ops::project::project_one(store, &witness, pattern, pl, true, &mut out)?;
        Ok(out)
    })?;
    Ok(per_binding.into_iter().flatten().collect())
}

/// Selection over an in-memory collection. Witness trees are produced per
/// embedding, as over the database.
pub fn select(
    store: &DocumentStore,
    input: &Collection,
    pattern: &PatternTree,
    sl: &[PatternNodeId],
) -> Result<Collection> {
    select_opts(store, input, pattern, sl, &ExecOptions::default())
}

/// [`select`] with explicit execution options: matching and witness
/// construction fan out per input tree.
pub fn select_opts(
    store: &DocumentStore,
    input: &Collection,
    pattern: &PatternTree,
    sl: &[PatternNodeId],
    opts: &ExecOptions,
) -> Result<Collection> {
    let per_tree = par_map(opts, input, |_, tree| {
        let mut witnesses = Vec::new();
        for b in match_tree(store, tree, pattern, false)? {
            witnesses.push(witness_tree(store, Some(tree), pattern, &b, sl)?);
        }
        Ok(witnesses)
    })?;
    Ok(per_tree.into_iter().flatten().collect())
}

/// Build the witness tree for one binding: it mirrors the pattern's
/// shape; each node is the bound data node, deep iff its pattern node is
/// adorned. Node identifiers only — no data pages are touched here
/// (Sec. 5.3).
pub fn witness_tree(
    store: &DocumentStore,
    source: Option<&Tree>,
    pattern: &PatternTree,
    binding: &Binding,
    sl: &[PatternNodeId],
) -> Result<Tree> {
    let order = pattern.preorder();
    let root_kind = bound_kind(store, source, binding[order[0]], sl.contains(&order[0]))?;
    let mut tree = match root_kind {
        BoundKind::Node(kind) => new_tree_with(kind),
        BoundKind::Copy(sub) => sub,
    };
    let mut map: Vec<usize> = vec![usize::MAX; pattern.len()];
    map[order[0]] = tree.root();
    for &pid in order.iter().skip(1) {
        let parent = pattern.node(pid).parent.expect("non-root");
        let parent_arena = map[parent];
        match bound_kind(store, source, binding[pid], sl.contains(&pid))? {
            BoundKind::Node(kind) => {
                map[pid] = tree.add_node(parent_arena, kind);
            }
            BoundKind::Copy(sub) => {
                map[pid] = tree.append_subtree(parent_arena, &sub, sub.root());
            }
        }
    }
    Ok(tree)
}

enum BoundKind {
    Node(TreeNodeKind),
    Copy(Tree),
}

fn new_tree_with(kind: TreeNodeKind) -> Tree {
    match kind {
        TreeNodeKind::Elem { tag, content } => {
            let mut t = Tree::new_elem_sym(tag);
            if let Some(c) = content {
                if let TreeNodeKind::Elem { content, .. } = &mut t.node_mut(0).kind {
                    *content = Some(c);
                }
            }
            t
        }
        TreeNodeKind::Ref { node, deep } => Tree::new_ref(node, deep),
    }
}

fn bound_kind(
    _store: &DocumentStore,
    source: Option<&Tree>,
    v: VNode,
    deep: bool,
) -> Result<BoundKind> {
    Ok(match v {
        VNode::Stored(e) => BoundKind::Node(TreeNodeKind::Ref { node: e, deep }),
        VNode::Arena(i) => {
            let src = source.expect("arena binding implies a source tree");
            if deep {
                BoundKind::Copy(extract(src, i))
            } else {
                BoundKind::Node(src.node(i).kind.clone())
            }
        }
    })
}

/// Copy the subtree of `t` rooted at `n` into a standalone tree.
fn extract(t: &Tree, n: usize) -> Tree {
    let mut out = new_tree_with(t.node(n).kind.clone());
    for &c in &t.node(n).children {
        let root = out.root();
        out.append_subtree(root, t, c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{Axis, Pred};
    use xmlstore::StoreOptions;

    const SAMPLE: &str = "<bib>\
        <article><title>Transaction Mng</title><author>Silberschatz</author></article>\
        <article><title>Overview of Transaction Mng</title><author>Silberschatz</author><author>Garcia-Molina</author></article>\
        <article><title>Web</title><author>Thompson</author></article>\
    </bib>";

    fn store() -> DocumentStore {
        DocumentStore::from_xml(SAMPLE, &StoreOptions::in_memory()).unwrap()
    }

    fn fig1() -> PatternTree {
        let mut p = PatternTree::with_root(Pred::tag("article"));
        p.add_child(
            p.root(),
            Axis::Child,
            Pred::tag("title").and(Pred::content_contains("Transaction")),
        );
        p.add_child(p.root(), Axis::Child, Pred::tag("author"));
        p
    }

    #[test]
    fn witness_trees_mirror_pattern_shape() {
        let s = store();
        let w = select_db(&s, &fig1(), &[]).unwrap();
        assert_eq!(w.len(), 3); // (a1,s) (a2,s) (a2,gm)
        for t in &w {
            assert_eq!(t.len(), 3);
            let e = t.materialize(&s).unwrap();
            assert_eq!(e.name, "article");
            assert!(e.child("title").is_some());
            assert!(e.child("author").is_some());
        }
    }

    #[test]
    fn selection_is_one_many() {
        let s = store();
        let w = select_db(&s, &fig1(), &[]).unwrap();
        // The two-author article yields two witness trees.
        let authors: Vec<String> = w
            .iter()
            .map(|t| t.materialize(&s).unwrap().child("author").unwrap().text())
            .collect();
        assert!(authors.contains(&"Garcia-Molina".to_owned()));
        assert_eq!(authors.iter().filter(|a| *a == "Silberschatz").count(), 2);
    }

    #[test]
    fn adornment_returns_full_subtrees() {
        let s = store();
        let mut p = PatternTree::with_root(Pred::tag("doc_root"));
        let art = p.add_child(p.root(), Axis::Descendant, Pred::tag("article"));
        // SL = [article]: the whole article subtree comes back.
        let w = select_db(&s, &p, &[art]).unwrap();
        assert_eq!(w.len(), 3);
        let e = w[1].materialize(&s).unwrap();
        assert_eq!(e.name, "doc_root");
        let article = e.child("article").unwrap();
        assert_eq!(article.children_named("author").count(), 2);
        assert!(article.child("title").is_some());
    }

    #[test]
    fn unadorned_nodes_are_shallow() {
        let s = store();
        let mut p = PatternTree::with_root(Pred::tag("doc_root"));
        let _art = p.add_child(p.root(), Axis::Descendant, Pred::tag("article"));
        let w = select_db(&s, &p, &[]).unwrap();
        let e = w[0].materialize(&s).unwrap();
        // Shallow article: no title/author children.
        let article = e.child("article").unwrap();
        assert!(article.child("title").is_none());
    }

    #[test]
    fn select_over_collection() {
        let s = store();
        // First select articles deeply, then select authors within them.
        let p1 = PatternTree::with_root(Pred::tag("article"));
        let c1 = select_db(&s, &p1, &[p1.root()]).unwrap();
        assert_eq!(c1.len(), 3);
        let p2 = PatternTree::with_root(Pred::tag("author"));
        let c2 = select(&s, &c1, &p2, &[p2.root()]).unwrap();
        assert_eq!(c2.len(), 4); // 1 + 2 + 1 authors
        let names: Vec<String> = c2
            .iter()
            .map(|t| t.materialize(&s).unwrap().text())
            .collect();
        assert!(names.contains(&"Thompson".to_owned()));
    }

    #[test]
    fn selection_preserves_document_order() {
        let s = store();
        let p = PatternTree::with_root(Pred::tag("title"));
        let w = select_db(&s, &p, &[p.root()]).unwrap();
        let titles: Vec<String> = w
            .iter()
            .map(|t| t.materialize(&s).unwrap().text())
            .collect();
        assert_eq!(
            titles,
            ["Transaction Mng", "Overview of Transaction Mng", "Web"]
        );
    }

    #[test]
    fn no_data_io_for_identifier_only_selection() {
        let s = store();
        s.reset_io_stats();
        let mut p = PatternTree::with_root(Pred::tag("article"));
        p.add_child(p.root(), Axis::Child, Pred::tag("author"));
        let w = select_db(&s, &p, &[]).unwrap();
        assert_eq!(w.len(), 4);
        assert_eq!(
            s.io_stats().page_requests(),
            0,
            "witness trees must be identifier-only"
        );
    }
}
