//! Aggregation (Sec. 4.3): map matched value collections to a summary
//! value and *insert it into the tree* at a specified position.
//!
//! `A⟨aggAttr = f($j), spec⟩(C)` outputs one tree per input tree,
//! identical to the input except for a new element carrying the computed
//! value, placed according to the update specification — e.g.
//! `afterLastChild($i)` or `precedes($i)`/`follows($i)`. Grouping and
//! aggregation are *separate* logical operators in TAX (unlike SQL),
//! which is what lets grouping restructure trees without any aggregation.

use crate::error::{Error, Result};
use crate::exec::{par_map, ExecOptions};
use crate::matching::match_tree;
use crate::matching::vnode::{VNode, VTree};
use crate::pattern::{PatternNodeId, PatternTree};
use crate::tree::{Collection, TreeNodeKind};
use xmlstore::DocumentStore;

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Number of witnesses (for `count($t)` the values need not be
    /// numeric, nor even fetched).
    Count,
    /// Sum of numeric values (non-numeric values are ignored).
    Sum,
    /// Minimum numeric value.
    Min,
    /// Maximum numeric value.
    Max,
    /// Arithmetic mean.
    Avg,
}

/// Where the computed value is inserted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateSpec {
    /// `after lastChild($i)`: as the new last child of the node bound by
    /// `$i`.
    AfterLastChild(PatternNodeId),
    /// `precedes($i)`: as the immediately preceding sibling.
    Precedes(PatternNodeId),
    /// `follows($i)`: as the immediately following sibling.
    Follows(PatternNodeId),
}

/// Apply the aggregation operator.
///
/// * `of`: the pattern node whose matched contents are aggregated; for
///   [`AggFunc::Count`] it may be any bound node (witnesses are counted).
/// * `new_tag`: the element name carrying the computed value (`aggAttr`).
///
/// Anchors must bind to arena nodes of the input trees (constructed nodes
/// or reference roots) — inserting inside an unexpanded stored subtree is
/// not supported, matching how TIMBER computes aggregates over witness
/// structures rather than rewriting stored documents.
pub fn aggregate(
    store: &DocumentStore,
    input: Collection,
    pattern: &PatternTree,
    func: AggFunc,
    of: PatternNodeId,
    new_tag: &str,
    spec: UpdateSpec,
) -> Result<Collection> {
    aggregate_opts(
        store,
        input,
        pattern,
        func,
        of,
        new_tag,
        spec,
        &ExecOptions::default(),
    )
}

/// A computed insertion: the new element's kind and where it goes.
/// `pos == None` appends as the parent's last child.
struct Edit {
    parent: usize,
    pos: Option<usize>,
    kind: TreeNodeKind,
}

/// [`aggregate`] with explicit execution options. Each input tree's
/// aggregate is independent of every other tree's, so value gathering
/// fans out per tree; the computed insertions are then applied to the
/// moved input trees without copying them.
#[allow(clippy::too_many_arguments)]
pub fn aggregate_opts(
    store: &DocumentStore,
    input: Collection,
    pattern: &PatternTree,
    func: AggFunc,
    of: PatternNodeId,
    new_tag: &str,
    spec: UpdateSpec,
    opts: &ExecOptions,
) -> Result<Collection> {
    let anchor_label = match spec {
        UpdateSpec::AfterLastChild(l) | UpdateSpec::Precedes(l) | UpdateSpec::Follows(l) => l,
    };
    if of >= pattern.len() {
        return Err(Error::UnknownLabel(format!("${}", of + 1)));
    }
    if anchor_label >= pattern.len() {
        return Err(Error::UnknownLabel(format!("${}", anchor_label + 1)));
    }

    let edits: Vec<Option<Edit>> = par_map(opts, &input, |_, tree| {
        let bindings = match_tree(store, tree, pattern, false)?;
        if bindings.is_empty() {
            return Ok(None);
        }
        // Gather values.
        let vt = VTree::new(store, tree);
        let mut values: Vec<f64> = Vec::new();
        if func != AggFunc::Count {
            for b in &bindings {
                if let Some(text) = vt.content(b[of])? {
                    if let Ok(v) = text.trim().parse::<f64>() {
                        values.push(v);
                    }
                }
            }
        }
        let Some(value) = compute(func, bindings.len(), &values) else {
            return Ok(None);
        };

        // Insert at the anchor of the first witness.
        let anchor = bindings[0][anchor_label];
        let VNode::Arena(anchor_id) = anchor else {
            return Err(Error::Unsupported(
                "aggregation anchor must be a constructed or reference node of the input tree, \
                 not a node inside an unexpanded stored subtree"
                    .into(),
            ));
        };
        let kind = TreeNodeKind::Elem {
            tag: store.dict().intern(new_tag),
            content: Some(store.dict().intern(&format_value(value))),
        };
        match spec {
            UpdateSpec::AfterLastChild(_) => Ok(Some(Edit {
                parent: anchor_id,
                pos: None,
                kind,
            })),
            UpdateSpec::Precedes(_) | UpdateSpec::Follows(_) => {
                let parent = tree.node(anchor_id).parent.ok_or_else(|| {
                    Error::Unsupported("cannot insert a sibling of the root".into())
                })?;
                let pos = tree
                    .node(parent)
                    .children
                    .iter()
                    .position(|&c| c == anchor_id)
                    .expect("anchor is a child of its parent");
                let pos = if matches!(spec, UpdateSpec::Follows(_)) {
                    pos + 1
                } else {
                    pos
                };
                Ok(Some(Edit {
                    parent,
                    pos: Some(pos),
                    kind,
                }))
            }
        }
    })?;

    let mut out = input;
    for (tree, edit) in out.iter_mut().zip(edits) {
        if let Some(e) = edit {
            match e.pos {
                None => {
                    tree.add_node(e.parent, e.kind);
                }
                Some(pos) => {
                    tree.insert_node(e.parent, pos, e.kind);
                }
            }
        }
    }
    Ok(out)
}

/// Apply an aggregate function to the gathered numeric values;
/// `witnesses` is the match count (what COUNT reports). `None` means the
/// aggregate is undefined (e.g. MIN over no numeric values).
pub fn compute(func: AggFunc, witnesses: usize, values: &[f64]) -> Option<f64> {
    match func {
        AggFunc::Count => Some(witnesses as f64),
        AggFunc::Sum => Some(values.iter().sum()),
        AggFunc::Min => values.iter().copied().reduce(f64::min),
        AggFunc::Max => values.iter().copied().reduce(f64::max),
        AggFunc::Avg => {
            if values.is_empty() {
                None
            } else {
                Some(values.iter().sum::<f64>() / values.len() as f64)
            }
        }
    }
}

/// Render a computed aggregate value: integers without a trailing `.0`.
pub fn format_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{Axis, Pred};
    use crate::tree::Tree;
    use xmlstore::StoreOptions;

    fn store() -> DocumentStore {
        DocumentStore::from_xml("<bib/>", &StoreOptions::in_memory()).unwrap()
    }

    /// authorpubs tree with three title children and a price-ish value.
    fn sample_tree(s: &DocumentStore) -> Tree {
        let mut t = Tree::new_elem(s.dict(), "authorpubs");
        t.add_elem_with_content(s.dict(), t.root(), "author", "Jack");
        t.add_elem_with_content(s.dict(), t.root(), "title", "A");
        t.add_elem_with_content(s.dict(), t.root(), "title", "B");
        t.add_elem_with_content(s.dict(), t.root(), "title", "C");
        t
    }

    fn title_pattern() -> (PatternTree, PatternNodeId, PatternNodeId) {
        let mut p = PatternTree::with_root(Pred::tag("authorpubs"));
        let title = p.add_child(p.root(), Axis::Child, Pred::tag("title"));
        (p, 0, title)
    }

    #[test]
    fn count_after_last_child() {
        let s = store();
        let (p, root, title) = title_pattern();
        let out = aggregate(
            &s,
            vec![sample_tree(&s)],
            &p,
            AggFunc::Count,
            title,
            "pubcount",
            UpdateSpec::AfterLastChild(root),
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        let e = out[0].materialize(&s).unwrap();
        let kids: Vec<&str> = e.child_elements().map(|c| c.name.as_str()).collect();
        assert_eq!(kids, ["author", "title", "title", "title", "pubcount"]);
        assert_eq!(e.child("pubcount").unwrap().text(), "3");
    }

    fn years_tree(s: &DocumentStore) -> Tree {
        let mut t = Tree::new_elem(s.dict(), "pubs");
        t.add_elem_with_content(s.dict(), t.root(), "year", "1999");
        t.add_elem_with_content(s.dict(), t.root(), "year", "2001");
        t.add_elem_with_content(s.dict(), t.root(), "year", "2002");
        t
    }

    fn year_pattern() -> (PatternTree, PatternNodeId) {
        let mut p = PatternTree::with_root(Pred::tag("pubs"));
        let y = p.add_child(p.root(), Axis::Child, Pred::tag("year"));
        (p, y)
    }

    #[test]
    fn numeric_aggregates() {
        let s = store();
        let (p, y) = year_pattern();
        for (func, expect) in [
            (AggFunc::Sum, "6002"),
            (AggFunc::Min, "1999"),
            (AggFunc::Max, "2002"),
        ] {
            let out = aggregate(
                &s,
                vec![years_tree(&s)],
                &p,
                func,
                y,
                "agg",
                UpdateSpec::AfterLastChild(0),
            )
            .unwrap();
            let e = out[0].materialize(&s).unwrap();
            assert_eq!(e.child("agg").unwrap().text(), expect, "{func:?}");
        }
    }

    #[test]
    fn avg_formats_fraction() {
        let s = store();
        let (p, y) = year_pattern();
        let out = aggregate(
            &s,
            vec![years_tree(&s)],
            &p,
            AggFunc::Avg,
            y,
            "avg",
            UpdateSpec::AfterLastChild(0),
        )
        .unwrap();
        let e = out[0].materialize(&s).unwrap();
        let v: f64 = e.child("avg").unwrap().text().parse().unwrap();
        assert!((v - 2000.666).abs() < 0.01);
    }

    #[test]
    fn precedes_and_follows_position() {
        let s = store();
        let (p, _root, title) = title_pattern();
        let before = aggregate(
            &s,
            vec![sample_tree(&s)],
            &p,
            AggFunc::Count,
            title,
            "n",
            UpdateSpec::Precedes(title),
        )
        .unwrap();
        let e = before[0].materialize(&s).unwrap();
        let kids: Vec<&str> = e.child_elements().map(|c| c.name.as_str()).collect();
        // Inserted before the first matched title.
        assert_eq!(kids, ["author", "n", "title", "title", "title"]);

        let after = aggregate(
            &s,
            vec![sample_tree(&s)],
            &p,
            AggFunc::Count,
            title,
            "n",
            UpdateSpec::Follows(title),
        )
        .unwrap();
        let e = after[0].materialize(&s).unwrap();
        let kids: Vec<&str> = e.child_elements().map(|c| c.name.as_str()).collect();
        assert_eq!(kids, ["author", "title", "n", "title", "title"]);
    }

    #[test]
    fn unmatched_trees_pass_through_unchanged() {
        let s = store();
        let (p, _root, title) = title_pattern();
        let mut t = Tree::new_elem(s.dict(), "other");
        t.add_elem_with_content(s.dict(), t.root(), "x", "1");
        let out = aggregate(
            &s,
            vec![t.clone()],
            &p,
            AggFunc::Count,
            title,
            "n",
            UpdateSpec::AfterLastChild(0),
        )
        .unwrap();
        assert_eq!(out[0], t);
    }

    #[test]
    fn non_numeric_values_ignored_for_sum() {
        let s = store();
        let mut t = Tree::new_elem(s.dict(), "pubs");
        t.add_elem_with_content(s.dict(), t.root(), "year", "1999");
        t.add_elem_with_content(s.dict(), t.root(), "year", "unknown");
        let (p, y) = year_pattern();
        let out = aggregate(
            &s,
            vec![t],
            &p,
            AggFunc::Sum,
            y,
            "sum",
            UpdateSpec::AfterLastChild(0),
        )
        .unwrap();
        let e = out[0].materialize(&s).unwrap();
        assert_eq!(e.child("sum").unwrap().text(), "1999");
    }

    #[test]
    fn min_of_no_numeric_values_passes_through() {
        let s = store();
        let mut t = Tree::new_elem(s.dict(), "pubs");
        t.add_elem_with_content(s.dict(), t.root(), "year", "n/a");
        let (p, y) = year_pattern();
        let out = aggregate(
            &s,
            vec![t.clone()],
            &p,
            AggFunc::Min,
            y,
            "min",
            UpdateSpec::AfterLastChild(0),
        )
        .unwrap();
        assert_eq!(out[0], t);
    }

    #[test]
    fn sibling_of_root_rejected() {
        let s = store();
        let p = PatternTree::with_root(Pred::tag("pubs"));
        let t = Tree::new_elem(s.dict(), "pubs");
        let err = aggregate(
            &s,
            vec![t],
            &p,
            AggFunc::Count,
            0,
            "n",
            UpdateSpec::Precedes(0),
        );
        assert!(err.is_err());
    }

    #[test]
    fn unknown_labels_rejected() {
        let s = store();
        let p = PatternTree::with_root(Pred::tag("pubs"));
        assert!(aggregate(
            &s,
            Vec::new(),
            &p,
            AggFunc::Count,
            4,
            "n",
            UpdateSpec::AfterLastChild(0)
        )
        .is_err());
        assert!(aggregate(
            &s,
            Vec::new(),
            &p,
            AggFunc::Count,
            0,
            "n",
            UpdateSpec::AfterLastChild(4)
        )
        .is_err());
    }

    #[test]
    fn format_value_integers_and_fractions() {
        assert_eq!(format_value(3.0), "3");
        assert_eq!(format_value(-2.0), "-2");
        assert_eq!(format_value(2.5), "2.5");
    }
}
