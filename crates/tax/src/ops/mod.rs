//! The TAX operators.
//!
//! Every operator takes a collection of data trees (and the store behind
//! their references) and produces a collection of data trees, so
//! expressions compose (Sec. 2). The operators implemented here are the
//! ones the paper defines or uses:
//!
//! | module | operator | paper section |
//! |---|---|---|
//! | [`mod@select`] | selection with adornment list `SL` | Sec. 2 |
//! | [`mod@project`] | projection with projection list `PL` | Sec. 2 |
//! | [`mod@dupelim`] | duplicate elimination on a bound node's content | Sec. 4.1 |
//! | [`mod@join`] | left / full outer join ("join-plan" trees, stitching) | Sec. 4.1 |
//! | [`mod@groupby`] | grouping with basis + ordering list | Sec. 3 |
//! | [`mod@aggregate`] | aggregation with update specification | Sec. 4.3 |
//! | [`mod@rollup`] | fused grouped aggregation (no group materialization) | Sec. 3 + 4.3 |
//! | [`mod@cube`] | grouping lattice: all basis-prefix levels in one scan | XOLAP [Hachicha & Darmont] |
//! | [`mod@rename`] | root renaming (final tag of RETURN) | Sec. 4.1 |
//! | [`mod@reorder`] | collection reordering by bound contents | TAX [8] |
//! | [`mod@setops`] | union / intersection / difference | TAX [8] |

pub mod aggregate;
pub mod cube;
pub mod dupelim;
pub mod groupby;
pub mod join;
pub mod keyenc;
pub mod project;
pub mod rename;
pub mod reorder;
pub mod rollup;
pub mod select;
pub mod setops;

pub use aggregate::{aggregate, AggFunc, UpdateSpec};
pub use cube::cube;
pub use dupelim::dup_elim;
pub use groupby::{groupby, groupby_replicated, groupby_with, BasisItem, Direction, GroupOrder};
pub use join::{full_outer_join, left_outer_join_db};
pub use project::{project, ProjectItem};
pub use rename::rename_root;
pub use reorder::reorder;
pub use rollup::{rollup, RollupShape};
pub use select::{select, select_db};
pub use setops::{difference, intersection, union};
