//! Renaming (Sec. 4.1): change the tag of each tree's root.
//!
//! The naive parse and the rewritten plan both end with "a rename
//! operator … to change the dummy root to the tag specified in the return
//! clause" — e.g. `TAX_prod_root` → `authorpubs`.

use crate::error::Result;
use crate::tree::{Collection, Tree, TreeNodeKind};
use xmlstore::Dictionary;

/// Rename the root of every tree to `new_tag`, in place. The tag is
/// interned once, whatever the collection size.
///
/// A constructed root keeps its content; a reference root is replaced by
/// a constructed element whose children are the reference's arena
/// children (for a deep reference the stored subtree's children are
/// *not* pulled up — rename is meant for the dummy roots produced by
/// joins, groupings, and constructors, which are always constructed).
pub fn rename_root(dict: &Dictionary, mut input: Collection, new_tag: &str) -> Result<Collection> {
    let tag = dict.intern(new_tag);
    for t in &mut input {
        let root = t.root();
        let new_kind = match &t.node(root).kind {
            TreeNodeKind::Elem { content, .. } => TreeNodeKind::Elem {
                tag,
                content: *content,
            },
            TreeNodeKind::Ref { .. } => TreeNodeKind::Elem { tag, content: None },
        };
        t.node_mut(root).kind = new_kind;
    }
    Ok(input)
}

/// Wrap each tree under a fresh constructed root named `tag` — the
/// element-constructor step of a RETURN clause.
pub fn wrap_root(dict: &Dictionary, input: Collection, tag: &str) -> Result<Collection> {
    let tag = dict.intern(tag);
    let mut out = Vec::with_capacity(input.len());
    for tree in input {
        let mut t = Tree::new_elem_sym(tag);
        t.append_subtree(t.root(), &tree, tree.root());
        out.push(t);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlstore::{DocumentStore, StoreOptions};

    fn store() -> DocumentStore {
        DocumentStore::from_xml("<bib><a>x</a></bib>", &StoreOptions::in_memory()).unwrap()
    }

    #[test]
    fn rename_constructed_root_keeps_children_and_content() {
        let s = store();
        let mut t = Tree::new_elem(s.dict(), crate::tags::PROD_ROOT);
        t.add_elem_with_content(s.dict(), t.root(), "author", "Jack");
        let out = rename_root(s.dict(), vec![t], "authorpubs").unwrap();
        let e = out[0].materialize(&s).unwrap();
        assert_eq!(e.name, "authorpubs");
        assert_eq!(e.child("author").unwrap().text(), "Jack");
    }

    #[test]
    fn rename_ref_root_becomes_elem() {
        let s = store();
        let a = s.tag_id("a").unwrap();
        let node = s.nodes_with_tag(a)[0];
        let t = Tree::new_ref(node, false);
        let out = rename_root(s.dict(), vec![t], "renamed").unwrap();
        let e = out[0].materialize(&s).unwrap();
        assert_eq!(e.name, "renamed");
    }

    #[test]
    fn wrap_root_nests() {
        let s = store();
        let mut t = Tree::new_elem(s.dict(), "inner");
        t.add_elem_with_content(s.dict(), t.root(), "x", "1");
        let out = wrap_root(s.dict(), vec![t], "outer").unwrap();
        let e = out[0].materialize(&s).unwrap();
        assert_eq!(e.name, "outer");
        assert_eq!(e.child("inner").unwrap().child("x").unwrap().text(), "1");
    }

    #[test]
    fn empty_collection_passthrough() {
        let s = store();
        assert!(rename_root(s.dict(), Vec::new(), "t").unwrap().is_empty());
        assert!(wrap_root(s.dict(), Vec::new(), "t").unwrap().is_empty());
    }
}
