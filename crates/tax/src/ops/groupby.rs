//! The grouping operator (Sec. 3) — the paper's contribution.
//!
//! `groupby` takes a collection, a pattern tree `P`, a *grouping basis*
//! (pattern labels, `$i*`-adorned labels, or `$i.attr` attributes whose
//! values partition the witness trees), and an *ordering list*
//! (ASCENDING/DESCENDING on labels). For each group `Wᵢ` the output tree
//! `Sᵢ` is:
//!
//! ```text
//! TAX_group_root
//! ├── TAX_grouping_basis     (one child per basis item, in basis order)
//! └── TAX_group_subroot      (the source trees of the group's witness
//!                             trees, ordered by the ordering list)
//! ```
//!
//! Grouping does **not** partition: a source tree with several witness
//! trees (a two-author article grouped by author) appears in several
//! groups — exactly Figure 3.
//!
//! Two implementations are provided:
//!
//! * [`groupby`] — the identifier-processing implementation of Sec. 5.3:
//!   witness trees stay as node identifiers; only grouping-basis and
//!   ordering values are populated (value look-ups), and members are
//!   cloned as references, not data.
//! * [`groupby_replicated`] — the strawman Sec. 5.3 warns about: each
//!   witness eagerly replicates and fully materializes its source tree
//!   before sorting. Kept as the ablation baseline (experiment X4).

use crate::error::Result;
use crate::exec::{par_map, par_map_owned, ExecOptions, ShardStats};
use crate::matching::match_tree;
use crate::matching::vnode::{VNode, VTree};
use crate::ops::keyenc::{self, component};
use crate::pattern::{PatternNodeId, PatternTree};
use crate::tree::{Collection, Tree, TreeNodeKind};
use crate::value::compare_opt_values;
use std::cmp::Ordering;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use xmlstore::{Dictionary, DocumentStore, Sym, NO_SYM};

/// One item of the grouping basis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasisItem {
    /// The pattern node whose match supplies the value.
    pub label: PatternNodeId,
    /// `$i*`: include the matched node's whole subtree in the basis
    /// child.
    pub deep: bool,
    /// `$i.attr`: group on this attribute of the matched node instead of
    /// its content.
    pub attr: Option<String>,
}

impl BasisItem {
    /// Group on `$i.content`.
    pub fn content(label: PatternNodeId) -> Self {
        BasisItem {
            label,
            deep: false,
            attr: None,
        }
    }

    /// Group on `$i.content`, keeping the whole matched subtree in the
    /// basis child (`$i*`).
    pub fn subtree(label: PatternNodeId) -> Self {
        BasisItem {
            label,
            deep: true,
            attr: None,
        }
    }

    /// Group on `$i.attr`.
    pub fn attr(label: PatternNodeId, name: impl Into<String>) -> Self {
        BasisItem {
            label,
            deep: false,
            attr: Some(name.into()),
        }
    }
}

/// Sort direction of one ordering-list component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Smallest first.
    Ascending,
    /// Largest first.
    Descending,
}

/// One component of the ordering list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupOrder {
    /// The pattern node whose matched content supplies the sort key.
    pub label: PatternNodeId,
    /// Sort direction.
    pub direction: Direction,
}

/// The grouping key: one dictionary symbol per basis item
/// ([`keyenc::ABSENT`] when the value is missing, e.g. an absent
/// attribute). Fixed-width words, so hashing is a single FNV pass and
/// equality is a flat word compare — see [`crate::ops::keyenc`].
pub use crate::ops::keyenc::Key;

struct Group {
    /// Basis values (for the basis children).
    basis_nodes: Vec<VNode>,
    /// Which input tree each basis node came from.
    basis_tree: usize,
    /// Group members: `(input tree index, ordering values, arrival rank)`.
    members: Vec<(usize, Vec<Option<String>>, usize)>,
}

/// Grouping/ordering values of one witness, extracted tree-locally (and
/// so in parallel) before the sequential merge.
struct Witness {
    key: Key,
    sort_key: Vec<Option<String>>,
    basis_nodes: Vec<VNode>,
}

/// Identifier-processing grouping (Sec. 5.3).
pub fn groupby(
    store: &DocumentStore,
    input: &Collection,
    pattern: &PatternTree,
    basis: &[BasisItem],
    ordering: &[GroupOrder],
) -> Result<Collection> {
    groupby_opts(
        store,
        input,
        pattern,
        basis,
        ordering,
        &ExecOptions::default(),
    )
}

/// [`groupby`] with explicit execution options. Key extraction (pattern
/// matching + value look-ups) fans out per input tree; group formation
/// then merges the per-tree witnesses sequentially in input order, so
/// group order (first arrival) and member order are identical to a
/// single-threaded run.
pub fn groupby_opts(
    store: &DocumentStore,
    input: &Collection,
    pattern: &PatternTree,
    basis: &[BasisItem],
    ordering: &[GroupOrder],
    opts: &ExecOptions,
) -> Result<Collection> {
    Ok(groupby_sharded(store, input, pattern, basis, ordering, opts, 1)?.0)
}

/// Hash-partitioned [`groupby`]: the sharded-sink entry point.
///
/// Witness extraction fans out per input tree exactly as in
/// [`groupby_opts`]; the extracted witnesses are then routed to
/// `partitions` shards by an FNV-1a hash of their grouping key, each
/// shard forms and builds its groups independently (in parallel over
/// `opts.threads` via [`par_map_owned`]), and the per-shard outputs are
/// merged ordered by each group's **global first-arrival position** —
/// the witness ordinal that created the group. Every witness of one key
/// hashes to the same shard, so member sets, member order, and basis
/// children are shard-local decisions identical to the serial kernel's;
/// the order-restoring merge makes the whole output byte-identical to
/// `partitions = 1`. The paper's non-partitioning semantics survive
/// unchanged: a two-author article's witnesses carry different keys, land
/// in (possibly) different shards, and the article appears in both
/// groups.
///
/// Returns the grouped collection plus the partition statistics
/// (`partitions`, per-shard witness counts) for the metrics tree.
pub fn groupby_sharded(
    store: &DocumentStore,
    input: &Collection,
    pattern: &PatternTree,
    basis: &[BasisItem],
    ordering: &[GroupOrder],
    opts: &ExecOptions,
    partitions: usize,
) -> Result<(Collection, ShardStats)> {
    validate(pattern, basis, ordering)?;

    // Per-tree extraction: populate only the grouping and ordering
    // values — the "minimum information" sort of Sec. 5.3.
    let per_tree: Vec<Vec<Witness>> = par_map(opts, input, |_, tree| {
        let vt = VTree::new(store, tree);
        let mut witnesses = Vec::new();
        let dict = store.dict();
        for binding in match_tree(store, tree, pattern, false)? {
            // Key values come from the columnar symbol region — no page
            // access; the symbols *are* the key words.
            let mut key: Key = Vec::with_capacity(basis.len());
            for item in basis {
                let v = binding[item.label];
                key.push(component(match &item.attr {
                    Some(name) => vt.attr_sym(v, name),
                    None => vt.content_sym(v),
                }));
            }
            // Ordering values resolve to text for the numeric-aware sort.
            let sort_key: Vec<Option<String>> = ordering
                .iter()
                .map(|o| {
                    vt.content_sym(binding[o.label])
                        .map(|s| dict.resolve(s).to_string())
                })
                .collect();
            witnesses.push(Witness {
                key,
                sort_key,
                basis_nodes: basis.iter().map(|b| binding[b.label]).collect(),
            });
        }
        Ok(witnesses)
    })?;

    // Flatten to the global witness stream; the ordinal `seq` is the
    // arrival position a sequential merge would see.
    let stream: Vec<(usize, usize, Witness)> = {
        let mut stream = Vec::new();
        let mut seq = 0usize;
        for (tree_idx, witnesses) in per_tree.into_iter().enumerate() {
            for w in witnesses {
                stream.push((tree_idx, seq, w));
                seq += 1;
            }
        }
        stream
    };

    let partitions = partitions.max(1).min(stream.len().max(1));
    if partitions <= 1 {
        let n = stream.len();
        let built = form_and_build(store, input, basis, ordering, stream)?;
        // A single shard creates groups in first-arrival order already.
        return Ok((
            built.into_iter().map(|(_, t)| t).collect(),
            ShardStats::serial(n),
        ));
    }

    let mut shards: Vec<Vec<(usize, usize, Witness)>> =
        (0..partitions).map(|_| Vec::new()).collect();
    for entry in stream {
        let shard = keyenc::shard_of(&entry.2.key, partitions);
        shards[shard].push(entry);
    }
    let sizes: Vec<usize> = shards.iter().map(Vec::len).collect();
    let built = par_map_owned(opts, shards, |_, shard| {
        form_and_build(store, input, basis, ordering, shard)
    })?;
    let mut all: Vec<(usize, Tree)> = built.into_iter().flatten().collect();
    all.sort_by_key(|&(first_seq, _)| first_seq);
    Ok((
        all.into_iter().map(|(_, t)| t).collect(),
        ShardStats { partitions, sizes },
    ))
}

/// Group formation + tree building over one witness shard, witnesses in
/// global arrival order. Returns `(first-arrival ordinal, group tree)`
/// per group, in shard-local first-arrival order.
///
/// This is the one group-formation routine: the serial kernel runs it
/// over the whole stream, the sharded kernel per partition, so the two
/// paths cannot drift. Member dedup checks only the group's last member:
/// same-tree witnesses of one key are consecutive within a shard exactly
/// as they are in the global stream.
fn form_and_build(
    store: &DocumentStore,
    input: &Collection,
    basis: &[BasisItem],
    ordering: &[GroupOrder],
    shard: Vec<(usize, usize, Witness)>,
) -> Result<Vec<(usize, Tree)>> {
    let mut index: HashMap<Key, usize> = HashMap::new();
    let mut groups: Vec<(Group, usize)> = Vec::new();
    for (tree_idx, seq, w) in shard {
        let next = groups.len();
        // The index is the key's only owner — no per-group key clone; the
        // keys are scattered back out by group id once formation is done.
        let gid = match index.entry(w.key) {
            Entry::Occupied(e) => *e.get(),
            Entry::Vacant(e) => {
                e.insert(next);
                groups.push((
                    Group {
                        basis_nodes: w.basis_nodes,
                        basis_tree: tree_idx,
                        members: Vec::new(),
                    },
                    seq,
                ));
                next
            }
        };
        // A source tree joins each of its witnesses' groups (Fig. 3's
        // non-partitioning), but enters a given group only once —
        // several witnesses with the *same* key (e.g. two authors
        // sharing an institution) do not replicate the member. The
        // global witness ordinal serves as the member's arrival rank:
        // it orders members exactly as a per-arrival counter would.
        if groups[gid].0.members.last().map(|m| m.0) != Some(tree_idx) {
            groups[gid].0.members.push((tree_idx, w.sort_key, seq));
        }
    }

    let mut keys: Vec<Key> = vec![Vec::new(); groups.len()];
    for (key, gid) in index {
        keys[gid] = key;
    }
    let mut out = Vec::with_capacity(groups.len());
    for ((mut group, first_seq), key) in groups.into_iter().zip(keys) {
        sort_members(&mut group.members, ordering);
        out.push((
            first_seq,
            build_group_tree(
                store, input, &key, &group, basis, /* replicate */ false,
            )?,
        ));
    }
    Ok(out)
}

/// Replication-based grouping: the Sec. 5.3 strawman that materializes
/// every member eagerly. Produces the same logical output as [`groupby`]
/// but populates all data up front.
pub fn groupby_replicated(
    store: &DocumentStore,
    input: &Collection,
    pattern: &PatternTree,
    basis: &[BasisItem],
    ordering: &[GroupOrder],
) -> Result<Collection> {
    validate(pattern, basis, ordering)?;
    // Replicate: one fully materialized copy of the source tree per
    // witness, tagged with its grouping values.
    struct Replica {
        key: Key,
        sort_key: Vec<Option<String>>,
        tree: Tree,
        /// The tag of each basis node's match (for the basis children).
        basis_tags: Vec<String>,
        arrival: usize,
    }
    let mut replicas: Vec<Replica> = Vec::new();
    // Last source tree replicated under each key. Checking only the
    // globally last replica would miss same-tree witnesses whose keys
    // interleave (e.g. authors from institutions X, Y, X), duplicating
    // the tree in group X — the per-key map matches the identifier
    // implementation's per-group member dedup exactly.
    let mut last_source: HashMap<Key, usize> = HashMap::new();
    for (tree_idx, tree) in input.iter().enumerate() {
        let vt = VTree::new(store, tree);
        for binding in match_tree(store, tree, pattern, false)? {
            let mut key: Key = Vec::with_capacity(basis.len());
            let mut basis_tags: Vec<String> = Vec::with_capacity(basis.len());
            for item in basis {
                let v = binding[item.label];
                key.push(component(match &item.attr {
                    Some(name) => vt.attr_sym(v, name),
                    None => vt.content_sym(v),
                }));
                basis_tags.push(match &item.attr {
                    Some(name) => name.clone(),
                    None => vt.tag(v)?,
                });
            }
            let sort_key = ordering
                .iter()
                .map(|o| vt.content(binding[o.label]))
                .collect::<Result<Vec<_>>>()?;
            // Same-key witnesses of one source tree collapse, matching
            // the identifier implementation's member semantics.
            if last_source.get(&key) == Some(&tree_idx) {
                continue;
            }
            last_source.insert(key.clone(), tree_idx);
            // Eager full materialization — the expensive step.
            let materialized = Tree::from_element(store.dict(), &tree.materialize(store)?);
            let arrival = replicas.len();
            replicas.push(Replica {
                key,
                sort_key,
                tree: materialized,
                basis_tags,
                arrival,
            });
        }
    }

    // Group the replicas by key (first-arrival group order).
    let mut index: HashMap<Key, usize> = HashMap::new();
    let mut grouped: Vec<(Key, Vec<usize>)> = Vec::new();
    for (i, r) in replicas.iter().enumerate() {
        match index.get(&r.key) {
            Some(&g) => grouped[g].1.push(i),
            None => {
                index.insert(r.key.clone(), grouped.len());
                grouped.push((r.key.clone(), vec![i]));
            }
        }
    }

    let mut out = Vec::with_capacity(grouped.len());
    for (_key, mut member_ids) in grouped {
        member_ids.sort_by(|&a, &b| {
            let ra = &replicas[a];
            let rb = &replicas[b];
            compare_sort_keys(&ra.sort_key, &rb.sort_key, ordering)
                .then(ra.arrival.cmp(&rb.arrival))
        });
        let dict = store.dict();
        let mut tree = Tree::new_elem(dict, crate::tags::GROUP_ROOT);
        let basis_root = tree.add_elem(dict, tree.root(), crate::tags::GROUPING_BASIS);
        let first = &replicas[member_ids[0]];
        for ((item, value), tag) in basis
            .iter()
            .zip(first.key.iter())
            .zip(first.basis_tags.iter())
        {
            let _ = item;
            let node = tree.add_elem(dict, basis_root, tag);
            if *value != NO_SYM {
                if let TreeNodeKind::Elem { content, .. } = &mut tree.node_mut(node).kind {
                    *content = Some(Sym(*value));
                }
            }
        }
        let subroot = tree.add_elem(dict, tree.root(), crate::tags::GROUP_SUBROOT);
        for &mid in &member_ids {
            tree.append_subtree(subroot, &replicas[mid].tree, replicas[mid].tree.root());
        }
        out.push(tree);
    }
    Ok(out)
}

/// Grouping with a **generic key function** — the Sec. 3 enhancement the
/// paper mentions but does not elaborate ("one could use a generic
/// function mapping trees to values rather than an attribute list …").
///
/// `key_of` maps each input tree to the (possibly several) group keys it
/// belongs to; `order_value` supplies the member sort value. Groups are
/// emitted in first-appearance order, with the same
/// `TAX_group_root / TAX_grouping_basis / TAX_group_subroot` shape; the
/// basis child is a constructed element named `basis_tag` carrying the
/// key.
pub fn groupby_with<K, O>(
    store: &DocumentStore,
    input: &Collection,
    key_of: K,
    order_value: O,
    ordering: Option<Direction>,
    basis_tag: &str,
) -> Result<Collection>
where
    K: Fn(&DocumentStore, &Tree) -> Result<Vec<String>>,
    O: Fn(&DocumentStore, &Tree) -> Result<Option<String>>,
{
    // (tree index, ordering value, arrival rank)
    type FnMember = (usize, Option<String>, usize);
    let mut index: HashMap<String, usize> = HashMap::new();
    let mut groups: Vec<(String, Vec<FnMember>)> = Vec::new();
    let mut arrivals = 0usize;
    for (tree_idx, tree) in input.iter().enumerate() {
        let sort_key = if ordering.is_some() {
            order_value(store, tree)?
        } else {
            None
        };
        let mut keys = key_of(store, tree)?;
        keys.dedup();
        for key in keys {
            let gid = match index.get(&key) {
                Some(&g) => g,
                None => {
                    let g = groups.len();
                    index.insert(key.clone(), g);
                    groups.push((key, Vec::new()));
                    g
                }
            };
            if groups[gid].1.last().map(|m| m.0) != Some(tree_idx) {
                groups[gid].1.push((tree_idx, sort_key.clone(), arrivals));
                arrivals += 1;
            }
        }
    }

    let mut out = Vec::with_capacity(groups.len());
    for (key, mut members) in groups {
        if let Some(dir) = ordering {
            members.sort_by(|a, b| {
                let ord = compare_opt_values(a.1.as_deref(), b.1.as_deref());
                let ord = match dir {
                    Direction::Ascending => ord,
                    Direction::Descending => ord.reverse(),
                };
                ord.then(a.2.cmp(&b.2))
            });
        }
        let dict = store.dict();
        let mut tree = Tree::new_elem(dict, crate::tags::GROUP_ROOT);
        let basis_root = tree.add_elem(dict, tree.root(), crate::tags::GROUPING_BASIS);
        tree.add_elem_with_content(dict, basis_root, basis_tag, key);
        let subroot = tree.add_elem(dict, tree.root(), crate::tags::GROUP_SUBROOT);
        for (tree_idx, _, _) in &members {
            tree.append_subtree(subroot, &input[*tree_idx], input[*tree_idx].root());
        }
        out.push(tree);
    }
    Ok(out)
}

pub(crate) fn validate(
    pattern: &PatternTree,
    basis: &[BasisItem],
    ordering: &[GroupOrder],
) -> Result<()> {
    for b in basis {
        if b.label >= pattern.len() {
            return Err(crate::error::Error::UnknownLabel(format!(
                "${}",
                b.label + 1
            )));
        }
    }
    for o in ordering {
        if o.label >= pattern.len() {
            return Err(crate::error::Error::UnknownLabel(format!(
                "${}",
                o.label + 1
            )));
        }
    }
    Ok(())
}

fn sort_members(members: &mut [(usize, Vec<Option<String>>, usize)], ordering: &[GroupOrder]) {
    members.sort_by(|a, b| compare_sort_keys(&a.1, &b.1, ordering).then(a.2.cmp(&b.2)));
}

fn compare_sort_keys(
    a: &[Option<String>],
    b: &[Option<String>],
    ordering: &[GroupOrder],
) -> Ordering {
    for (i, o) in ordering.iter().enumerate() {
        let ord = compare_opt_values(a[i].as_deref(), b[i].as_deref());
        let ord = match o.direction {
            Direction::Ascending => ord,
            Direction::Descending => ord.reverse(),
        };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

fn basis_child_tag(item: &BasisItem) -> String {
    match &item.attr {
        Some(name) => name.clone(),
        None => format!("basis_{}", item.label + 1),
    }
}

/// Append the grouping-basis children under `basis_root`, one per basis
/// item, exactly as the serial kernel builds them. Shared with the
/// rollup and cube kernels so their basis children are byte-identical to
/// the materialized group trees'.
///
/// `deep_keys` is set by the *flat* shapes (fused rollup, cube): they
/// pre-apply the consumer's `Project deep(key)` step, which expands each
/// key node's whole subtree — a shallow copy would drop the children of
/// a structured key node (an `<author><name>…</name></author>` in a
/// ragged hierarchy) and diverge from the materialized pipeline. The
/// grouped shape keeps the shallow copy; its downstream projection does
/// the deep expansion itself.
pub(crate) fn add_basis_children(
    dict: &Dictionary,
    tree: &mut Tree,
    basis_root: usize,
    src_tree: &Tree,
    key: &Key,
    basis_nodes: &[VNode],
    basis: &[BasisItem],
    deep_keys: bool,
) {
    for (item, (v, value)) in basis.iter().zip(basis_nodes.iter().zip(key.iter())) {
        let deep = item.deep || deep_keys;
        match item.attr {
            Some(_) => {
                // $i.attr: a constructed child named after the attribute.
                // The key word is already the value's symbol — it becomes
                // the child's content without a dictionary round-trip.
                let node = tree.add_elem(dict, basis_root, basis_child_tag(item));
                if *value != NO_SYM {
                    if let TreeNodeKind::Elem { content, .. } = &mut tree.node_mut(node).kind {
                        *content = Some(Sym(*value));
                    }
                }
            }
            None => match v {
                // $i / $i*: a match of the node (subtree when deep).
                VNode::Stored(e) => {
                    tree.add_ref(basis_root, *e, deep);
                }
                VNode::Arena(i) => {
                    if deep {
                        tree.append_subtree(basis_root, src_tree, *i);
                    } else {
                        let kind = src_tree.node(*i).kind.clone();
                        tree.add_node(basis_root, kind);
                    }
                }
            },
        }
    }
}

/// The grouping key of every witness in `input`, in global arrival
/// order — the planner's distinct-key sampling hook: a distinct/total
/// ratio near one means grouping would emit ≈ one group per witness.
pub fn witness_keys(
    store: &DocumentStore,
    input: &Collection,
    pattern: &PatternTree,
    basis: &[BasisItem],
    opts: &ExecOptions,
) -> Result<Vec<Key>> {
    validate(pattern, basis, &[])?;
    let per_tree: Vec<Vec<Key>> = par_map(opts, input, |_, tree| {
        let vt = VTree::new(store, tree);
        let mut keys = Vec::new();
        for binding in match_tree(store, tree, pattern, false)? {
            let mut key: Key = Vec::with_capacity(basis.len());
            for item in basis {
                let v = binding[item.label];
                key.push(component(match &item.attr {
                    Some(name) => vt.attr_sym(v, name),
                    None => vt.content_sym(v),
                }));
            }
            keys.push(key);
        }
        Ok(keys)
    })?;
    Ok(per_tree.into_iter().flatten().collect())
}

fn build_group_tree(
    store: &DocumentStore,
    input: &Collection,
    key: &Key,
    group: &Group,
    basis: &[BasisItem],
    _replicate: bool,
) -> Result<Tree> {
    let dict = store.dict();
    let mut tree = Tree::new_elem(dict, crate::tags::GROUP_ROOT);
    let basis_root = tree.add_elem(dict, tree.root(), crate::tags::GROUPING_BASIS);
    let src_tree = &input[group.basis_tree];
    add_basis_children(
        dict,
        &mut tree,
        basis_root,
        src_tree,
        key,
        &group.basis_nodes,
        basis,
        false,
    );
    let subroot = tree.add_elem(dict, tree.root(), crate::tags::GROUP_SUBROOT);
    for (tree_idx, _, _) in &group.members {
        tree.append_subtree(subroot, &input[*tree_idx], input[*tree_idx].root());
    }
    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::select::select_db;
    use crate::pattern::{Axis, Pred};
    use crate::tags;
    use xmlstore::StoreOptions;

    /// The Figures 1–3 data: articles with Transaction titles.
    const FIG_SAMPLE: &str = "<bib>\
        <article><title>Transaction Mng</title><author>Silberschatz</author></article>\
        <article><title>Overview of Transaction Mng</title><author>Silberschatz</author><author>Garcia-Molina</author></article>\
        <article><title>Transaction Mng for the Web</title><author>Thompson</author></article>\
    </bib>";

    fn store() -> DocumentStore {
        DocumentStore::from_xml(FIG_SAMPLE, &StoreOptions::in_memory()).unwrap()
    }

    fn fig1_pattern() -> PatternTree {
        let mut p = PatternTree::with_root(Pred::tag("article"));
        p.add_child(
            p.root(),
            Axis::Child,
            Pred::tag("title").and(Pred::content_contains("Transaction")),
        );
        p.add_child(p.root(), Axis::Child, Pred::tag("author"));
        p
    }

    /// Witness collection = article trees (deep) from Fig. 1's pattern.
    fn articles(s: &DocumentStore) -> Collection {
        let p = fig1_pattern();
        // Select whole articles (deep root), one witness per embedding;
        // grouping below re-matches per tree.
        let mut seen = std::collections::HashSet::new();
        select_db(s, &p, &[p.root()])
            .unwrap()
            .into_iter()
            .filter(|t| {
                // Dedup witness trees to unique articles for a clean
                // "collection of article elements" input.
                let root = match &t.node(0).kind {
                    TreeNodeKind::Ref { node, .. } => node.id.0,
                    _ => u32::MAX,
                };
                seen.insert(root)
            })
            .map(|t| {
                // Keep only the deep article root.
                let root_kind = t.node(0).kind.clone();
                match root_kind {
                    TreeNodeKind::Ref { node, .. } => Tree::new_ref(node, true),
                    _ => t,
                }
            })
            .collect()
    }

    fn author_groupby(
        s: &DocumentStore,
        input: &Collection,
        ordering: &[GroupOrder],
    ) -> Collection {
        let mut p = PatternTree::with_root(Pred::tag("article"));
        let title = p.add_child(p.root(), Axis::Child, Pred::tag("title"));
        let author = p.add_child(p.root(), Axis::Child, Pred::tag("author"));
        let basis = [BasisItem::content(author)];
        let ordering: Vec<GroupOrder> = ordering
            .iter()
            .map(|o| GroupOrder {
                label: if o.label == usize::MAX {
                    title
                } else {
                    o.label
                },
                direction: o.direction,
            })
            .collect();
        groupby(s, input, &p, &basis, &ordering).unwrap()
    }

    #[test]
    fn figure3_grouping_by_author() {
        let s = store();
        let arts = articles(&s);
        assert_eq!(arts.len(), 3);
        let groups = author_groupby(&s, &arts, &[]);
        // Three groups: Silberschatz, Garcia-Molina, Thompson.
        assert_eq!(groups.len(), 3);

        let g0 = groups[0].materialize(&s).unwrap();
        assert_eq!(g0.name, tags::GROUP_ROOT);
        let kids: Vec<&str> = g0.child_elements().map(|c| c.name.as_str()).collect();
        assert_eq!(kids, [tags::GROUPING_BASIS, tags::GROUP_SUBROOT]);

        // Silberschatz has two articles; the two-author article also
        // appears in Garcia-Molina's group (non-partitioning).
        let sil = g0.child(tags::GROUP_SUBROOT).unwrap();
        assert_eq!(sil.children_named("article").count(), 2);
        let gm = groups[1].materialize(&s).unwrap();
        assert_eq!(
            gm.child(tags::GROUP_SUBROOT)
                .unwrap()
                .children_named("article")
                .count(),
            1
        );
    }

    #[test]
    fn figure3_ordering_descending_title() {
        let s = store();
        let arts = articles(&s);
        let groups = author_groupby(
            &s,
            &arts,
            &[GroupOrder {
                label: usize::MAX, // replaced by the title label
                direction: Direction::Descending,
            }],
        );
        let g0 = groups[0].materialize(&s).unwrap();
        let titles: Vec<String> = g0
            .child(tags::GROUP_SUBROOT)
            .unwrap()
            .children_named("article")
            .map(|a| a.child("title").unwrap().text())
            .collect();
        // Descending: "Transaction Mng" > "Overview of Transaction Mng".
        assert_eq!(titles, ["Transaction Mng", "Overview of Transaction Mng"]);
    }

    #[test]
    fn ascending_ordering() {
        let s = store();
        let arts = articles(&s);
        let groups = author_groupby(
            &s,
            &arts,
            &[GroupOrder {
                label: usize::MAX,
                direction: Direction::Ascending,
            }],
        );
        let g0 = groups[0].materialize(&s).unwrap();
        let titles: Vec<String> = g0
            .child(tags::GROUP_SUBROOT)
            .unwrap()
            .children_named("article")
            .map(|a| a.child("title").unwrap().text())
            .collect();
        assert_eq!(titles, ["Overview of Transaction Mng", "Transaction Mng"]);
    }

    #[test]
    fn basis_child_carries_the_grouping_node() {
        let s = store();
        let arts = articles(&s);
        let groups = author_groupby(&s, &arts, &[]);
        let g0 = groups[0].materialize(&s).unwrap();
        let basis = g0.child(tags::GROUPING_BASIS).unwrap();
        assert_eq!(basis.child("author").unwrap().text(), "Silberschatz");
    }

    #[test]
    fn deep_basis_includes_subtree() {
        let s = store();
        let arts = articles(&s);
        let mut p = PatternTree::with_root(Pred::tag("article"));
        let author = p.add_child(p.root(), Axis::Child, Pred::tag("author"));
        let groups = groupby(&s, &arts, &p, &[BasisItem::subtree(author)], &[]).unwrap();
        let g0 = groups[0].materialize(&s).unwrap();
        // Author nodes are leaves, so deep == shallow here, but the call
        // path exercises $i*.
        assert!(g0
            .child(tags::GROUPING_BASIS)
            .unwrap()
            .child("author")
            .is_some());
        assert_eq!(groups.len(), 3);
    }

    #[test]
    fn attribute_basis() {
        let xml = r#"<bib>
            <article year="1999"><title>A</title></article>
            <article year="2002"><title>B</title></article>
            <article year="1999"><title>C</title></article>
        </bib>"#;
        let s = DocumentStore::from_xml(xml, &StoreOptions::in_memory()).unwrap();
        let article = s.tag_id("article").unwrap();
        let arts: Collection = s
            .nodes_with_tag(article)
            .iter()
            .map(|e| Tree::new_ref(*e, true))
            .collect();
        let p = PatternTree::with_root(Pred::tag("article"));
        let groups = groupby(&s, &arts, &p, &[BasisItem::attr(p.root(), "year")], &[]).unwrap();
        assert_eq!(groups.len(), 2);
        let g0 = groups[0].materialize(&s).unwrap();
        assert_eq!(
            g0.child(tags::GROUPING_BASIS)
                .unwrap()
                .child("year")
                .unwrap()
                .text(),
            "1999"
        );
        assert_eq!(
            g0.child(tags::GROUP_SUBROOT)
                .unwrap()
                .children_named("article")
                .count(),
            2
        );
    }

    #[test]
    fn multi_item_basis() {
        let xml = "<bib>\
            <article><author>Jack</author><journal>TODS</journal><title>X</title></article>\
            <article><author>Jack</author><journal>VLDBJ</journal><title>Y</title></article>\
            <article><author>Jack</author><journal>TODS</journal><title>Z</title></article>\
        </bib>";
        let s = DocumentStore::from_xml(xml, &StoreOptions::in_memory()).unwrap();
        let article = s.tag_id("article").unwrap();
        let arts: Collection = s
            .nodes_with_tag(article)
            .iter()
            .map(|e| Tree::new_ref(*e, true))
            .collect();
        let mut p = PatternTree::with_root(Pred::tag("article"));
        let author = p.add_child(p.root(), Axis::Child, Pred::tag("author"));
        let journal = p.add_child(p.root(), Axis::Child, Pred::tag("journal"));
        let groups = groupby(
            &s,
            &arts,
            &p,
            &[BasisItem::content(author), BasisItem::content(journal)],
            &[],
        )
        .unwrap();
        assert_eq!(groups.len(), 2); // (Jack,TODS) ×2 and (Jack,VLDBJ) ×1
    }

    #[test]
    fn replicated_groupby_same_logical_output() {
        let s = store();
        let arts = articles(&s);
        let mut p = PatternTree::with_root(Pred::tag("article"));
        let title = p.add_child(p.root(), Axis::Child, Pred::tag("title"));
        let author = p.add_child(p.root(), Axis::Child, Pred::tag("author"));
        let basis = [BasisItem::content(author)];
        let ordering = [GroupOrder {
            label: title,
            direction: Direction::Descending,
        }];
        let fast = groupby(&s, &arts, &p, &basis, &ordering).unwrap();
        let slow = groupby_replicated(&s, &arts, &p, &basis, &ordering).unwrap();
        assert_eq!(fast.len(), slow.len());
        for (f, sl) in fast.iter().zip(slow.iter()) {
            let fe = f.materialize(&s).unwrap();
            let se = sl.materialize(&s).unwrap();
            // Same member articles in the same order (titles agree).
            let titles = |e: &xmlparse::Element| -> Vec<String> {
                e.child(tags::GROUP_SUBROOT)
                    .unwrap()
                    .children_named("article")
                    .map(|a| a.child("title").unwrap().text())
                    .collect()
            };
            assert_eq!(titles(&fe), titles(&se));
        }
    }

    #[test]
    fn replication_costs_more_io() {
        let s = store();
        let arts = articles(&s);
        let mut p = PatternTree::with_root(Pred::tag("article"));
        let author = p.add_child(p.root(), Axis::Child, Pred::tag("author"));
        let basis = [BasisItem::content(author)];

        s.reset_io_stats();
        let _ = groupby(&s, &arts, &p, &basis, &[]).unwrap();
        let fast_io = s.io_stats().page_requests();

        s.reset_io_stats();
        let _ = groupby_replicated(&s, &arts, &p, &basis, &[]).unwrap();
        let slow_io = s.io_stats().page_requests();
        assert!(
            slow_io > fast_io,
            "replication ({slow_io}) must touch more pages than identifier processing ({fast_io})"
        );
    }

    #[test]
    fn empty_input_gives_no_groups() {
        let s = store();
        let p = PatternTree::with_root(Pred::tag("article"));
        let groups = groupby(&s, &Vec::new(), &p, &[BasisItem::content(0)], &[]).unwrap();
        assert!(groups.is_empty());
    }

    #[test]
    fn unknown_basis_label_rejected() {
        let s = store();
        let p = PatternTree::with_root(Pred::tag("article"));
        assert!(groupby(&s, &Vec::new(), &p, &[BasisItem::content(5)], &[]).is_err());
        assert!(groupby(
            &s,
            &Vec::new(),
            &p,
            &[BasisItem::content(0)],
            &[GroupOrder {
                label: 9,
                direction: Direction::Ascending
            }]
        )
        .is_err());
    }

    #[test]
    fn groupby_with_generic_key_function_decades() {
        // Group articles by publication decade — impossible with a plain
        // attribute list, easy with the generic-function enhancement.
        let xml = "<bib>\
            <article><title>A</title><year>1994</year></article>\
            <article><title>B</title><year>1997</year></article>\
            <article><title>C</title><year>2001</year></article>\
        </bib>";
        let s = DocumentStore::from_xml(xml, &StoreOptions::in_memory()).unwrap();
        let article = s.tag_id("article").unwrap();
        let arts: Collection = s
            .nodes_with_tag(article)
            .iter()
            .map(|e| Tree::new_ref(*e, true))
            .collect();
        let year_of = |store: &DocumentStore, t: &Tree| -> crate::Result<Option<String>> {
            let mut p = PatternTree::with_root(Pred::tag("article"));
            let y = p.add_child(p.root(), crate::pattern::Axis::Child, Pred::tag("year"));
            let b = match_tree(store, t, &p, true)?;
            match b.first() {
                Some(b) => VTree::new(store, t).content(b[y]),
                None => Ok(None),
            }
        };
        let groups = groupby_with(
            &s,
            &arts,
            |store, t| {
                Ok(match year_of(store, t)? {
                    Some(y) => {
                        let decade = y[..3].to_owned() + "0s";
                        vec![decade]
                    }
                    None => vec![],
                })
            },
            |store, t| year_of(store, t),
            Some(Direction::Ascending),
            "decade",
        )
        .unwrap();
        assert_eq!(groups.len(), 2);
        let g0 = groups[0].materialize(&s).unwrap();
        assert_eq!(
            g0.child(crate::tags::GROUPING_BASIS)
                .unwrap()
                .child("decade")
                .unwrap()
                .text(),
            "1990s"
        );
        assert_eq!(
            g0.child(crate::tags::GROUP_SUBROOT)
                .unwrap()
                .children_named("article")
                .count(),
            2
        );
        // Ascending year order within the decade group.
        let years: Vec<String> = g0
            .child(crate::tags::GROUP_SUBROOT)
            .unwrap()
            .children_named("article")
            .map(|a| a.child("year").unwrap().text())
            .collect();
        assert_eq!(years, ["1994", "1997"]);
    }

    #[test]
    fn groupby_with_multi_key_membership() {
        // A tree may belong to several groups (e.g. keyword grouping).
        let s = DocumentStore::from_xml("<bib/>", &StoreOptions::in_memory()).unwrap();
        let mk = |kws: &[&str]| -> Tree {
            let mut t = Tree::new_elem(s.dict(), "article");
            for k in kws {
                t.add_elem_with_content(s.dict(), t.root(), "kw", *k);
            }
            t
        };
        let input = vec![mk(&["xml", "db"]), mk(&["db"]), mk(&["xml"])];
        let groups = groupby_with(
            &s,
            &input,
            |store, t| {
                let mut p = PatternTree::with_root(Pred::tag("article"));
                let k = p.add_child(p.root(), crate::pattern::Axis::Child, Pred::tag("kw"));
                let vt = VTree::new(store, t);
                match_tree(store, t, &p, true)?
                    .into_iter()
                    .map(|b| Ok(vt.content(b[k])?.unwrap_or_default()))
                    .collect()
            },
            |_, _| Ok(None),
            None,
            "keyword",
        )
        .unwrap();
        assert_eq!(groups.len(), 2); // xml, db
        let sizes: Vec<usize> = groups
            .iter()
            .map(|g| {
                g.materialize(&s)
                    .unwrap()
                    .child(crate::tags::GROUP_SUBROOT)
                    .unwrap()
                    .children_named("article")
                    .count()
            })
            .collect();
        assert_eq!(sizes, [2, 2]);
    }

    #[test]
    fn sharded_groupby_matches_serial_kernel() {
        // Multi-valued basis (authors) → a two-author article's witnesses
        // can hash to different shards; the order-restoring merge must
        // still reproduce the serial output byte for byte.
        let s = store();
        let arts = articles(&s);
        let mut p = PatternTree::with_root(Pred::tag("article"));
        let title = p.add_child(p.root(), Axis::Child, Pred::tag("title"));
        let author = p.add_child(p.root(), Axis::Child, Pred::tag("author"));
        let basis = [BasisItem::content(author)];
        for ordering in [
            Vec::new(),
            vec![GroupOrder {
                label: title,
                direction: Direction::Descending,
            }],
        ] {
            let serial = groupby(&s, &arts, &p, &basis, &ordering).unwrap();
            for partitions in [1usize, 2, 3, 8] {
                for threads in [1usize, 4] {
                    let opts = ExecOptions::with_threads(threads);
                    let (sharded, stats) =
                        groupby_sharded(&s, &arts, &p, &basis, &ordering, &opts, partitions)
                            .unwrap();
                    assert_eq!(serial.len(), sharded.len());
                    for (a, b) in serial.iter().zip(sharded.iter()) {
                        let xa =
                            xmlparse::serialize::element_to_string(&a.materialize(&s).unwrap());
                        let xb =
                            xmlparse::serialize::element_to_string(&b.materialize(&s).unwrap());
                        assert_eq!(xa, xb, "partitions={partitions} threads={threads}");
                    }
                    // 4 witnesses (Silberschatz ×2, Garcia-Molina, Thompson).
                    assert_eq!(stats.total(), 4);
                    assert_eq!(stats.partitions, partitions.min(4));
                    assert_eq!(stats.sizes.len(), stats.partitions);
                }
            }
        }
    }

    #[test]
    fn sharded_groupby_empty_input() {
        let s = store();
        let p = PatternTree::with_root(Pred::tag("article"));
        let (groups, stats) = groupby_sharded(
            &s,
            &Vec::new(),
            &p,
            &[BasisItem::content(0)],
            &[],
            &ExecOptions::with_threads(4),
            4,
        )
        .unwrap();
        assert!(groups.is_empty());
        assert_eq!(stats.partitions, 1);
        assert_eq!(stats.total(), 0);
    }

    #[test]
    fn missing_attribute_groups_under_none_key() {
        let xml = r#"<bib><article year="1999"><title>A</title></article><article><title>B</title></article></bib>"#;
        let s = DocumentStore::from_xml(xml, &StoreOptions::in_memory()).unwrap();
        let article = s.tag_id("article").unwrap();
        let arts: Collection = s
            .nodes_with_tag(article)
            .iter()
            .map(|e| Tree::new_ref(*e, true))
            .collect();
        let p = PatternTree::with_root(Pred::tag("article"));
        let groups = groupby(&s, &arts, &p, &[BasisItem::attr(p.root(), "year")], &[]).unwrap();
        assert_eq!(groups.len(), 2); // "1999" and missing
    }

    #[test]
    fn interleaved_keys_agree_across_implementations() {
        // One article whose author institutions interleave (X, Y, X):
        // the article must appear exactly once in group X under both
        // implementations. The replicated path once deduped only
        // *adjacent* same-key witnesses and emitted it twice.
        let xml = "<bib>\
            <article><title>P1</title>\
              <author><name>A</name><institution>X</institution></author>\
              <author><name>B</name><institution>Y</institution></author>\
              <author><name>C</name><institution>X</institution></author>\
            </article>\
            <article><title>P2</title>\
              <author><name>D</name><institution>Y</institution></author>\
            </article>\
        </bib>";
        let s = DocumentStore::from_xml(xml, &StoreOptions::in_memory()).unwrap();
        let article = s.tag_id("article").unwrap();
        let arts: Collection = s
            .nodes_with_tag(article)
            .iter()
            .map(|e| Tree::new_ref(*e, true))
            .collect();
        let mut p = PatternTree::with_root(Pred::tag("article"));
        let author = p.add_child(p.root(), Axis::Child, Pred::tag("author"));
        let inst = p.add_child(author, Axis::Child, Pred::tag("institution"));
        let basis = [BasisItem::content(inst)];

        let fast = groupby(&s, &arts, &p, &basis, &[]).unwrap();
        let slow = groupby_replicated(&s, &arts, &p, &basis, &[]).unwrap();
        assert_eq!(fast.len(), 2); // X, Y
        assert_eq!(fast.len(), slow.len());
        for (f, sl) in fast.iter().zip(slow.iter()) {
            let fe = xmlparse::serialize::element_to_string(&f.materialize(&s).unwrap());
            let se = xmlparse::serialize::element_to_string(&sl.materialize(&s).unwrap());
            assert_eq!(fe, se);
        }
        // Group X holds the first article exactly once.
        let x = fast[0].materialize(&s).unwrap();
        assert_eq!(
            x.child(tags::GROUP_SUBROOT)
                .unwrap()
                .children_named("article")
                .count(),
            1
        );
    }
}
