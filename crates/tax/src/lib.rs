//! TAX — a Tree Algebra for XML — with the grouping operator of
//! *Grouping in XML* (Paparizos et al., EDBT 2002).
//!
//! TAX is a bulk algebra: every operator takes collections of data trees
//! and produces a collection of data trees, so the algebra is closed and
//! composable (Sec. 2 of the paper). Heterogeneity — missing and repeated
//! sub-elements — is tamed by *pattern trees*: a pattern binds one
//! variable per pattern node, and the *witness trees* produced by a match
//! are perfectly homogeneous, so downstream operators can address bound
//! nodes by label.
//!
//! # Crate layout
//!
//! * [`value`] — content values and the numeric-aware comparisons used by
//!   predicates and ordering lists;
//! * [`tree`] — the in-memory data tree. A tree node is either a
//!   constructed element or a *reference* to a stored node, optionally
//!   `deep` (the whole stored subtree). References are how the
//!   identifier-only processing of Sec. 5.3 is realized: operators pass
//!   node ids around and fetch data values only when a value is actually
//!   needed;
//! * [`pattern`] — pattern trees: nodes with predicates, `pc`
//!   (parent-child) and `ad` (ancestor-descendant) edges, plus the
//!   *subset* test used by the rewrite rules of Sec. 4.1;
//! * [`matching`] — pattern-tree matching. Against the stored database it
//!   uses the tag index and sort-merge/stack structural joins (Sec. 5.2,
//!   citing Al-Khalifa et al. ICDE'02) and touches **no data pages**
//!   unless a predicate needs content; a naive full-scan matcher is kept
//!   as the ablation baseline;
//! * [`exec`] — execution options ([`ExecOptions`]) and the
//!   deterministic parallel per-tree driver used by the bulk operators;
//! * [`ops`] — the operators: selection (with adornment list), projection
//!   (with projection list), duplicate elimination, left/full outer join
//!   ("stitching"), **groupby** (pattern + grouping basis + ordering
//!   list, Sec. 3), aggregation (pattern + function + update
//!   specification, Sec. 4.3), and rename.
//!
//! # Example: the paper's Figure 1–3 pipeline
//!
//! ```
//! use xmlstore::{DocumentStore, StoreOptions};
//! use tax::pattern::{Axis, PatternTree, Pred};
//! use tax::ops::groupby::{groupby, BasisItem, GroupOrder, Direction};
//! use tax::ops::select::select_db;
//!
//! let xml = "<bib>\
//!   <article><title>Transaction Mng</title><author>Silberschatz</author></article>\
//!   <article><title>Overview of Transaction Mng</title>\
//!     <author>Silberschatz</author><author>Garcia-Molina</author></article>\
//! </bib>";
//! let store = DocumentStore::from_xml(xml, &StoreOptions::in_memory()).unwrap();
//!
//! // Figure 1: article with a title containing "Transaction" and an author.
//! let mut p = PatternTree::with_root(Pred::tag("article"));
//! let _t = p.add_child(p.root(), Axis::Child, Pred::tag("title").and(Pred::content_contains("Transaction")));
//! let a = p.add_child(p.root(), Axis::Child, Pred::tag("author"));
//!
//! // Figure 2: the witness trees (one per article/author pair).
//! let witnesses = select_db(&store, &p, &[]).unwrap();
//! assert_eq!(witnesses.len(), 3);
//!
//! // Figure 3: group by author content, order by descending title.
//! let grouped = groupby(
//!     &store,
//!     &witnesses,
//!     &p,
//!     &[BasisItem::content(a)],
//!     &[GroupOrder { label: _t, direction: Direction::Descending }],
//! ).unwrap();
//! assert_eq!(grouped.len(), 2); // Silberschatz, Garcia-Molina
//! ```

pub mod error;
pub mod exec;
pub mod matching;
pub mod ops;
pub mod pattern;
pub mod tree;
pub mod value;

pub use error::{Error, Result};
pub use exec::ExecOptions;
pub use pattern::{Axis, PatternNodeId, PatternTree, Pred};
pub use tree::{Collection, Tree, TreeNode, TreeNodeKind};
pub use value::{compare_values, CmpOp};

/// Reserved output tags of the grouping operator (Sec. 3).
pub mod tags {
    /// Root of each group tree.
    pub const GROUP_ROOT: &str = "TAX_group_root";
    /// Left child: the grouping-basis values.
    pub const GROUPING_BASIS: &str = "TAX_grouping_basis";
    /// Right child: the ordered group members.
    pub const GROUP_SUBROOT: &str = "TAX_group_subroot";
    /// Root produced by joins/products (Fig. 8).
    pub const PROD_ROOT: &str = "TAX_prod_root";
    /// Per-tree level marker emitted by the grouping lattice (cube):
    /// its text content is the 1-based prefix level of the tree's key.
    pub const CUBE_LEVEL: &str = "TAX_cube_level";
}
