//! Execution options and the parallel per-tree driver.
//!
//! TAX operators are bulk operators: most of their work is an
//! independent computation per input tree (match the pattern, build
//! witnesses, extract grouping values). With the store's sharded buffer
//! pool those per-tree computations are safe to run concurrently, so
//! the operators fan them out over [`ExecOptions::threads`] worker
//! threads via [`par_map`].
//!
//! Determinism: `par_map` splits the input into *contiguous* chunks,
//! one per worker, and concatenates the chunk results in input order.
//! Whatever an operator computes from the mapped results is therefore
//! byte-identical to a sequential run; parallelism only changes I/O
//! interleaving (hit/miss counts may differ), never output.

use crate::error::{Error, Result};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Run one per-item computation with panic containment: a panicking
/// closure becomes [`Error::Panic`] carrying the item's index and the
/// panic message, instead of unwinding through the operator (and, in the
/// parallel path, poisoning whatever the worker held).
fn contained<R>(index: usize, f: impl FnOnce() -> Result<R>) -> Result<R> {
    // AssertUnwindSafe: on Err the result of `f` is discarded entirely
    // and the error path reads no state `f` may have left inconsistent.
    catch_unwind(AssertUnwindSafe(f)).unwrap_or_else(|payload| {
        let message = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_owned()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_owned()
        };
        Err(Error::Panic { index, message })
    })
}

/// Knobs controlling operator evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOptions {
    /// Worker threads for per-tree fan-out. `1` (the default) evaluates
    /// inline with no thread spawns; `0` is treated as `1`.
    pub threads: usize,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions { threads: 1 }
    }
}

impl ExecOptions {
    /// Inline, single-threaded evaluation (the default).
    pub fn sequential() -> Self {
        ExecOptions::default()
    }

    /// Evaluate with up to `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        ExecOptions {
            threads: threads.max(1),
        }
    }
}

/// Apply `f` to every item, in parallel over contiguous chunks, and
/// return the results in input order.
///
/// `f` receives the item's index alongside the item. On error, the
/// reported error is the one a sequential run would hit first: workers
/// stop their chunk at its first failure and chunks are concatenated in
/// order, so the lowest failing index wins.
pub fn par_map<T, R, F>(opts: &ExecOptions, items: &[T], f: F) -> Result<Vec<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> Result<R> + Sync,
{
    let threads = opts.threads.max(1).min(items.len());
    if threads <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| contained(i, || f(i, t)))
            .collect();
    }
    let chunk = items.len().div_ceil(threads);
    let chunk_results: Vec<Result<Vec<R>>> = std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(ci, slice)| {
                scope.spawn(move || {
                    let base = ci * chunk;
                    let mut out = Vec::with_capacity(slice.len());
                    for (j, item) in slice.iter().enumerate() {
                        // Containment is per item, so one poisoned tree
                        // fails only itself; first-error-by-index
                        // semantics treat the panic like any error.
                        out.push(contained(base + j, || f(base + j, item))?);
                    }
                    Ok(out)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                // Unreachable for panics in `f` (contained above); only
                // a panic in the bookkeeping itself still unwinds.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let mut out = Vec::with_capacity(items.len());
    for r in chunk_results {
        out.extend(r?);
    }
    Ok(out)
}

/// Sink-shaped [`par_map`]: consumes the items instead of borrowing
/// them, so blocking sinks can hand each worker *ownership* of one hash
/// partition of their drained input. Results come back in input order
/// with the same panic containment and first-error-by-index semantics as
/// `par_map`.
pub fn par_map_owned<T, R, F>(opts: &ExecOptions, items: Vec<T>, f: F) -> Result<Vec<R>>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> Result<R> + Sync,
{
    let threads = opts.threads.max(1).min(items.len());
    if threads <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| contained(i, || f(i, t)))
            .collect();
    }
    let total = items.len();
    let chunk = total.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut iter = items.into_iter();
    loop {
        let c: Vec<T> = iter.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    let chunk_results: Vec<Result<Vec<R>>> = std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = chunks
            .into_iter()
            .enumerate()
            .map(|(ci, owned)| {
                scope.spawn(move || {
                    let base = ci * chunk;
                    let mut out = Vec::with_capacity(owned.len());
                    for (j, item) in owned.into_iter().enumerate() {
                        out.push(contained(base + j, || f(base + j, item))?);
                    }
                    Ok(out)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                // Unreachable for panics in `f` (contained above); only
                // a panic in the bookkeeping itself still unwinds.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let mut out = Vec::with_capacity(total);
    for r in chunk_results {
        out.extend(r?);
    }
    Ok(out)
}

/// 64-bit FNV-1a over `bytes`, folded into `seed` (start from
/// [`FNV_SEED`]). Partition assignment must not depend on process- or
/// platform-random state: the same key lands in the same shard on every
/// run, so the partition-size/skew metrics of a sharded sink are
/// reproducible.
pub fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// The FNV-1a offset basis — the starting seed for [`fnv1a`].
pub const FNV_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// Partition statistics of one sharded blocking-sink evaluation, as
/// surfaced in the physical executor's metrics tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStats {
    /// Number of hash partitions the sink's drained input was split
    /// into (1 = the serial kernel).
    pub partitions: usize,
    /// Keyed items (witnesses / keyed trees) routed to each partition.
    pub sizes: Vec<usize>,
}

impl ShardStats {
    /// The single-partition (serial-kernel) statistics over `n` items.
    pub fn serial(n: usize) -> ShardStats {
        ShardStats {
            partitions: 1,
            sizes: vec![n],
        }
    }

    /// Total keyed items across partitions.
    pub fn total(&self) -> usize {
        self.sizes.iter().sum()
    }

    /// Load skew: largest partition relative to the balanced-share size
    /// (`1.0` = perfectly balanced, `partitions` = everything in one
    /// shard). Empty inputs report `1.0`.
    pub fn skew(&self) -> f64 {
        let total = self.total();
        if total == 0 || self.partitions <= 1 {
            return 1.0;
        }
        let max = self.sizes.iter().copied().max().unwrap_or(0);
        (max * self.partitions) as f64 / total as f64
    }

    /// The skew factor when it was actually measured: `None` for the
    /// serial kernel and for empty inputs, where [`ShardStats::skew`]'s
    /// placeholder `1.0` would read as a measured, perfectly balanced
    /// split that never happened.
    pub fn measured_skew(&self) -> Option<f64> {
        if self.total() == 0 || self.partitions <= 1 {
            None
        } else {
            Some(self.skew())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Error;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..103).collect();
        for threads in [1, 2, 4, 7] {
            let opts = ExecOptions::with_threads(threads);
            let out = par_map(&opts, &items, |i, &x| {
                assert_eq!(i, x);
                Ok(x * 2)
            })
            .unwrap();
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_threads_behaves_as_one() {
        let opts = ExecOptions { threads: 0 };
        let out = par_map(&opts, &[1, 2, 3], |_, &x| Ok(x)).unwrap();
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn empty_input_spawns_nothing() {
        let opts = ExecOptions::with_threads(4);
        let out: Vec<i32> = par_map(&opts, &[] as &[i32], |_, &x| Ok(x)).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn first_error_by_index_wins() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 3, 8] {
            let opts = ExecOptions::with_threads(threads);
            let err = par_map(&opts, &items, |_, &x| {
                if x >= 17 {
                    Err(Error::UnknownLabel(format!("${x}")))
                } else {
                    Ok(x)
                }
            })
            .unwrap_err();
            match err {
                Error::UnknownLabel(l) => assert_eq!(l, "$17"),
                other => panic!("unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let opts = ExecOptions::with_threads(64);
        let out = par_map(&opts, &[10, 20], |_, &x| Ok(x + 1)).unwrap();
        assert_eq!(out, vec![11, 21]);
    }

    #[test]
    fn panic_becomes_typed_error() {
        let items: Vec<usize> = (0..40).collect();
        for threads in [1, 2, 8] {
            let opts = ExecOptions::with_threads(threads);
            let err = par_map(&opts, &items, |_, &x| {
                if x == 23 {
                    panic!("poisoned tree {x}");
                }
                Ok(x)
            })
            .unwrap_err();
            match err {
                Error::Panic { index, message } => {
                    assert_eq!(index, 23);
                    assert_eq!(message, "poisoned tree 23");
                }
                other => panic!("expected Error::Panic, got {other:?}"),
            }
        }
    }

    #[test]
    fn first_failure_wins_across_panics_and_errors() {
        // A panic at index 30 must lose to an error at index 11: the
        // reported failure is the one a sequential run hits first.
        let items: Vec<usize> = (0..50).collect();
        for threads in [1, 4] {
            let opts = ExecOptions::with_threads(threads);
            let err = par_map(&opts, &items, |_, &x| {
                if x == 30 {
                    panic!("late panic");
                }
                if x == 11 {
                    return Err(Error::Unsupported("early error".into()));
                }
                Ok(x)
            })
            .unwrap_err();
            assert!(
                matches!(err, Error::Unsupported(ref m) if m == "early error"),
                "got {err:?}"
            );
        }
    }

    #[test]
    fn par_map_owned_preserves_order_and_moves_items() {
        // Non-Clone payloads prove ownership transfer.
        struct Owned(usize);
        for threads in [1, 2, 4, 7] {
            let opts = ExecOptions::with_threads(threads);
            let items: Vec<Owned> = (0..53).map(Owned).collect();
            let out = par_map_owned(&opts, items, |i, item| {
                assert_eq!(i, item.0);
                Ok(item.0 * 3)
            })
            .unwrap();
            assert_eq!(out, (0..53).map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_owned_contains_panics_and_orders_errors() {
        let items: Vec<usize> = (0..40).collect();
        for threads in [1, 4] {
            let opts = ExecOptions::with_threads(threads);
            let err = par_map_owned(&opts, items.clone(), |_, x| {
                if x == 31 {
                    panic!("late panic");
                }
                if x == 9 {
                    return Err(Error::Unsupported("early".into()));
                }
                Ok(x)
            })
            .unwrap_err();
            assert!(matches!(err, Error::Unsupported(ref m) if m == "early"));
        }
    }

    #[test]
    fn par_map_owned_empty_input() {
        let opts = ExecOptions::with_threads(4);
        let out: Vec<i32> = par_map_owned(&opts, Vec::<i32>::new(), |_, x| Ok(x)).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn fnv1a_is_deterministic_and_spreads() {
        // Pinned value: the hash feeds partition assignment, which the
        // skew metrics expose — it must never drift between runs.
        assert_eq!(fnv1a(FNV_SEED, b""), FNV_SEED);
        let h1 = fnv1a(FNV_SEED, b"Silberschatz");
        assert_eq!(h1, fnv1a(FNV_SEED, b"Silberschatz"));
        assert_ne!(h1, fnv1a(FNV_SEED, b"Garcia-Molina"));
        // Folding continues a previous state.
        let folded = fnv1a(fnv1a(FNV_SEED, b"Silber"), b"schatz");
        assert_eq!(folded, h1);
    }

    #[test]
    fn shard_stats_skew() {
        assert_eq!(ShardStats::serial(7).skew(), 1.0);
        let balanced = ShardStats {
            partitions: 4,
            sizes: vec![5, 5, 5, 5],
        };
        assert_eq!(balanced.skew(), 1.0);
        assert_eq!(balanced.total(), 20);
        let lopsided = ShardStats {
            partitions: 4,
            sizes: vec![20, 0, 0, 0],
        };
        assert_eq!(lopsided.skew(), 4.0);
        let empty = ShardStats {
            partitions: 4,
            sizes: vec![0; 4],
        };
        assert_eq!(empty.skew(), 1.0);
        // measured_skew distinguishes "balanced" from "never measured":
        // serial kernels and empty inputs report None.
        assert_eq!(ShardStats::serial(7).measured_skew(), None);
        assert_eq!(empty.measured_skew(), None);
        assert_eq!(balanced.measured_skew(), Some(1.0));
        assert_eq!(lopsided.measured_skew(), Some(4.0));
    }

    #[test]
    fn run_survives_a_contained_panic() {
        // After a panic is contained, the same par_map machinery keeps
        // working — nothing is poisoned.
        let opts = ExecOptions::with_threads(4);
        let items: Vec<usize> = (0..16).collect();
        let _ = par_map(&opts, &items, |_, &x| -> Result<usize> {
            if x % 5 == 0 {
                panic!("boom");
            }
            Ok(x)
        });
        let out = par_map(&opts, &items, |_, &x| Ok(x)).unwrap();
        assert_eq!(out, items);
    }
}
