//! Execution options and the parallel per-tree driver.
//!
//! TAX operators are bulk operators: most of their work is an
//! independent computation per input tree (match the pattern, build
//! witnesses, extract grouping values). With the store's sharded buffer
//! pool those per-tree computations are safe to run concurrently, so
//! the operators fan them out over [`ExecOptions::threads`] worker
//! threads via [`par_map`].
//!
//! Determinism: `par_map` splits the input into *contiguous* chunks,
//! one per worker, and concatenates the chunk results in input order.
//! Whatever an operator computes from the mapped results is therefore
//! byte-identical to a sequential run; parallelism only changes I/O
//! interleaving (hit/miss counts may differ), never output.

use crate::error::{Error, Result};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Run one per-item computation with panic containment: a panicking
/// closure becomes [`Error::Panic`] carrying the item's index and the
/// panic message, instead of unwinding through the operator (and, in the
/// parallel path, poisoning whatever the worker held).
fn contained<R>(index: usize, f: impl FnOnce() -> Result<R>) -> Result<R> {
    // AssertUnwindSafe: on Err the result of `f` is discarded entirely
    // and the error path reads no state `f` may have left inconsistent.
    catch_unwind(AssertUnwindSafe(f)).unwrap_or_else(|payload| {
        let message = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_owned()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_owned()
        };
        Err(Error::Panic { index, message })
    })
}

/// Knobs controlling operator evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOptions {
    /// Worker threads for per-tree fan-out. `1` (the default) evaluates
    /// inline with no thread spawns; `0` is treated as `1`.
    pub threads: usize,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions { threads: 1 }
    }
}

impl ExecOptions {
    /// Inline, single-threaded evaluation (the default).
    pub fn sequential() -> Self {
        ExecOptions::default()
    }

    /// Evaluate with up to `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        ExecOptions {
            threads: threads.max(1),
        }
    }
}

/// Apply `f` to every item, in parallel over contiguous chunks, and
/// return the results in input order.
///
/// `f` receives the item's index alongside the item. On error, the
/// reported error is the one a sequential run would hit first: workers
/// stop their chunk at its first failure and chunks are concatenated in
/// order, so the lowest failing index wins.
pub fn par_map<T, R, F>(opts: &ExecOptions, items: &[T], f: F) -> Result<Vec<R>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> Result<R> + Sync,
{
    let threads = opts.threads.max(1).min(items.len());
    if threads <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| contained(i, || f(i, t)))
            .collect();
    }
    let chunk = items.len().div_ceil(threads);
    let chunk_results: Vec<Result<Vec<R>>> = std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(ci, slice)| {
                scope.spawn(move || {
                    let base = ci * chunk;
                    let mut out = Vec::with_capacity(slice.len());
                    for (j, item) in slice.iter().enumerate() {
                        // Containment is per item, so one poisoned tree
                        // fails only itself; first-error-by-index
                        // semantics treat the panic like any error.
                        out.push(contained(base + j, || f(base + j, item))?);
                    }
                    Ok(out)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                // Unreachable for panics in `f` (contained above); only
                // a panic in the bookkeeping itself still unwinds.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let mut out = Vec::with_capacity(items.len());
    for r in chunk_results {
        out.extend(r?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Error;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..103).collect();
        for threads in [1, 2, 4, 7] {
            let opts = ExecOptions::with_threads(threads);
            let out = par_map(&opts, &items, |i, &x| {
                assert_eq!(i, x);
                Ok(x * 2)
            })
            .unwrap();
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_threads_behaves_as_one() {
        let opts = ExecOptions { threads: 0 };
        let out = par_map(&opts, &[1, 2, 3], |_, &x| Ok(x)).unwrap();
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn empty_input_spawns_nothing() {
        let opts = ExecOptions::with_threads(4);
        let out: Vec<i32> = par_map(&opts, &[] as &[i32], |_, &x| Ok(x)).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn first_error_by_index_wins() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 3, 8] {
            let opts = ExecOptions::with_threads(threads);
            let err = par_map(&opts, &items, |_, &x| {
                if x >= 17 {
                    Err(Error::UnknownLabel(format!("${x}")))
                } else {
                    Ok(x)
                }
            })
            .unwrap_err();
            match err {
                Error::UnknownLabel(l) => assert_eq!(l, "$17"),
                other => panic!("unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let opts = ExecOptions::with_threads(64);
        let out = par_map(&opts, &[10, 20], |_, &x| Ok(x + 1)).unwrap();
        assert_eq!(out, vec![11, 21]);
    }

    #[test]
    fn panic_becomes_typed_error() {
        let items: Vec<usize> = (0..40).collect();
        for threads in [1, 2, 8] {
            let opts = ExecOptions::with_threads(threads);
            let err = par_map(&opts, &items, |_, &x| {
                if x == 23 {
                    panic!("poisoned tree {x}");
                }
                Ok(x)
            })
            .unwrap_err();
            match err {
                Error::Panic { index, message } => {
                    assert_eq!(index, 23);
                    assert_eq!(message, "poisoned tree 23");
                }
                other => panic!("expected Error::Panic, got {other:?}"),
            }
        }
    }

    #[test]
    fn first_failure_wins_across_panics_and_errors() {
        // A panic at index 30 must lose to an error at index 11: the
        // reported failure is the one a sequential run hits first.
        let items: Vec<usize> = (0..50).collect();
        for threads in [1, 4] {
            let opts = ExecOptions::with_threads(threads);
            let err = par_map(&opts, &items, |_, &x| {
                if x == 30 {
                    panic!("late panic");
                }
                if x == 11 {
                    return Err(Error::Unsupported("early error".into()));
                }
                Ok(x)
            })
            .unwrap_err();
            assert!(
                matches!(err, Error::Unsupported(ref m) if m == "early error"),
                "got {err:?}"
            );
        }
    }

    #[test]
    fn run_survives_a_contained_panic() {
        // After a panic is contained, the same par_map machinery keeps
        // working — nothing is poisoned.
        let opts = ExecOptions::with_threads(4);
        let items: Vec<usize> = (0..16).collect();
        let _ = par_map(&opts, &items, |_, &x| -> Result<usize> {
            if x % 5 == 0 {
                panic!("boom");
            }
            Ok(x)
        });
        let out = par_map(&opts, &items, |_, &x| Ok(x)).unwrap();
        assert_eq!(out, items);
    }
}
