//! Pattern trees (Sec. 2): the selection predicates of TAX.
//!
//! A pattern tree is a tree of predicate-labelled nodes connected by `pc`
//! (parent-child) or `ad` (ancestor-descendant) edges. Matching a pattern
//! against data yields *witness trees*: homogeneous tuples of node
//! bindings, one per pattern node. Unlike an XPath expression, which binds
//! a single variable, one pattern tree binds as many variables as it has
//! nodes, so an entire sequence of XQuery FOR clauses folds into one
//! pattern.
//!
//! This module also implements the **tree-subset test** of the rewrite
//! rules (Sec. 4.1, Phase 1): `V1,E1 ⊆ V2,E2*` where `E2*` is the
//! transitive closure of `E2` with the paper's edge-mark rule — an edge
//! composed of two or more base edges is marked `ad`, and `pc ⊆ ad` but
//! not `ad ⊆ pc`. Concretely, an `ad` edge of the candidate subset is
//! satisfied by *any* path in the superset, while a `pc` edge requires a
//! direct `pc` edge.

use crate::value::{compare_values, CmpOp};

/// Index of a node within a [`PatternTree`]; the paper writes these as
/// `$1`, `$2`, … in pattern-tree figures.
pub type PatternNodeId = usize;

/// Edge kind between a pattern node and its parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// `pc`: immediate containment.
    Child,
    /// `ad`: containment at any depth.
    Descendant,
}

/// A predicate on one pattern node.
#[derive(Debug, Clone, PartialEq)]
pub enum Pred {
    /// Always true.
    True,
    /// `$i.tag = name`.
    Tag(String),
    /// `$i.content op value` (numeric-aware comparison).
    Content(CmpOp, String),
    /// `$i.content` contains the substring (the paper's
    /// `"*Transaction*"`).
    ContentContains(String),
    /// `$i.@name op value`: a predicate on an attribute of the node.
    Attr(String, CmpOp, String),
    /// Join predicate `$i.content = $j.content` (Fig. 4b); evaluated as a
    /// post-filter over complete bindings.
    ContentEqNode(PatternNodeId),
    /// Conjunction.
    And(Box<Pred>, Box<Pred>),
    /// Disjunction.
    Or(Box<Pred>, Box<Pred>),
    /// Negation.
    Not(Box<Pred>),
}

impl Pred {
    /// `$i.tag = name`.
    pub fn tag(name: impl Into<String>) -> Pred {
        Pred::Tag(name.into())
    }

    /// `$i.content = value`.
    pub fn content_eq(value: impl Into<String>) -> Pred {
        Pred::Content(CmpOp::Eq, value.into())
    }

    /// `$i.content` compared with `value`.
    pub fn content_cmp(op: CmpOp, value: impl Into<String>) -> Pred {
        Pred::Content(op, value.into())
    }

    /// Substring containment on content.
    pub fn content_contains(sub: impl Into<String>) -> Pred {
        Pred::ContentContains(sub.into())
    }

    /// Conjunction, builder style.
    pub fn and(self, other: Pred) -> Pred {
        Pred::And(Box::new(self), Box::new(other))
    }

    /// Disjunction, builder style.
    pub fn or(self, other: Pred) -> Pred {
        Pred::Or(Box::new(self), Box::new(other))
    }

    /// Negation, builder style.
    pub fn negate(self) -> Pred {
        Pred::Not(Box::new(self))
    }

    /// The tag this predicate requires, if it pins one down (i.e. a
    /// top-level conjunct `Tag(t)`). Used to pick the index list for
    /// candidate generation.
    pub fn required_tag(&self) -> Option<&str> {
        match self {
            Pred::Tag(t) => Some(t),
            Pred::And(a, b) => a.required_tag().or_else(|| b.required_tag()),
            _ => None,
        }
    }

    /// Flatten the top-level conjunction into a list of conjuncts.
    pub fn conjuncts(&self) -> Vec<&Pred> {
        match self {
            Pred::And(a, b) => {
                let mut v = a.conjuncts();
                v.extend(b.conjuncts());
                v
            }
            Pred::True => Vec::new(),
            other => vec![other],
        }
    }

    /// Whether the predicate mentions a cross-node (join) condition.
    pub fn has_join(&self) -> bool {
        match self {
            Pred::ContentEqNode(_) => true,
            Pred::And(a, b) | Pred::Or(a, b) => a.has_join() || b.has_join(),
            Pred::Not(a) => a.has_join(),
            _ => false,
        }
    }

    /// Evaluate the *local* (non-join) part against a node's tag, content
    /// and attribute lookup. Join conjuncts evaluate to `true` here and
    /// are checked later over complete bindings.
    pub fn eval_local(
        &self,
        tag: &str,
        content: Option<&str>,
        attr: &dyn Fn(&str) -> Option<String>,
    ) -> bool {
        match self {
            Pred::True => true,
            Pred::Tag(t) => t == tag,
            Pred::Content(op, v) => match content {
                Some(c) => op.matches(compare_values(c, v)),
                None => false,
            },
            Pred::ContentContains(sub) => {
                content.map(|c| c.contains(sub.as_str())).unwrap_or(false)
            }
            Pred::Attr(name, op, v) => match attr(name) {
                Some(a) => op.matches(compare_values(&a, v)),
                None => false,
            },
            Pred::ContentEqNode(_) => true,
            Pred::And(a, b) => a.eval_local(tag, content, attr) && b.eval_local(tag, content, attr),
            Pred::Or(a, b) => a.eval_local(tag, content, attr) || b.eval_local(tag, content, attr),
            Pred::Not(a) => !a.eval_local(tag, content, attr),
        }
    }

    /// Whether evaluating the local part needs the node's content or
    /// attributes (i.e. a data-value look-up).
    pub fn needs_data(&self) -> bool {
        match self {
            Pred::True | Pred::Tag(_) | Pred::ContentEqNode(_) => false,
            Pred::Content(..) | Pred::ContentContains(_) | Pred::Attr(..) => true,
            Pred::And(a, b) | Pred::Or(a, b) => a.needs_data() || b.needs_data(),
            Pred::Not(a) => a.needs_data(),
        }
    }

    /// The value a top-level `content = "v"` conjunct pins, if any —
    /// the case a content value index can answer directly.
    pub fn eq_content_value(&self) -> Option<&str> {
        match self {
            Pred::Content(CmpOp::Eq, v) => Some(v),
            Pred::And(a, b) => a.eq_content_value().or_else(|| b.eq_content_value()),
            _ => None,
        }
    }

    /// Whether the predicate is fully decided by the tag and a
    /// `content = "v"` equality (plus join conjuncts): if so, candidates
    /// from a value index need no further data look-ups.
    pub fn is_tag_eq_only(&self) -> bool {
        self.conjuncts().iter().all(|c| {
            matches!(
                c,
                Pred::Tag(_) | Pred::Content(CmpOp::Eq, _) | Pred::ContentEqNode(_)
            )
        })
    }

    /// Collect join conditions `(this_node_content == other_node_content)`.
    pub fn join_targets(&self) -> Vec<PatternNodeId> {
        match self {
            Pred::ContentEqNode(j) => vec![*j],
            Pred::And(a, b) => {
                let mut v = a.join_targets();
                v.extend(b.join_targets());
                v
            }
            _ => Vec::new(),
        }
    }
}

/// One pattern node.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternNode {
    /// Predicate on the bound data node.
    pub pred: Pred,
    /// Parent pattern node (`None` for the pattern root).
    pub parent: Option<PatternNodeId>,
    /// Edge to the parent (meaningless for the root).
    pub axis: Axis,
    /// Children, in insertion order.
    pub children: Vec<PatternNodeId>,
}

/// A pattern tree.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternTree {
    nodes: Vec<PatternNode>,
}

impl PatternTree {
    /// A pattern with a single root node carrying `pred`.
    pub fn with_root(pred: Pred) -> Self {
        PatternTree {
            nodes: vec![PatternNode {
                pred,
                parent: None,
                axis: Axis::Child,
                children: Vec::new(),
            }],
        }
    }

    /// The root id (always 0).
    pub fn root(&self) -> PatternNodeId {
        0
    }

    /// Add a node under `parent` via `axis`, returning its id.
    pub fn add_child(&mut self, parent: PatternNodeId, axis: Axis, pred: Pred) -> PatternNodeId {
        assert!(parent < self.nodes.len(), "parent must already exist");
        let id = self.nodes.len();
        self.nodes.push(PatternNode {
            pred,
            parent: Some(parent),
            axis,
            children: Vec::new(),
        });
        self.nodes[parent].children.push(id);
        id
    }

    /// Number of pattern nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the pattern is empty (never: there is always a root).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Access one node.
    pub fn node(&self, id: PatternNodeId) -> &PatternNode {
        &self.nodes[id]
    }

    /// All nodes with ids.
    pub fn iter(&self) -> impl Iterator<Item = (PatternNodeId, &PatternNode)> {
        self.nodes.iter().enumerate()
    }

    /// The `$n` display label of a node (1-based like the paper).
    pub fn label(&self, id: PatternNodeId) -> String {
        format!("${}", id + 1)
    }

    /// Pre-order node ids (parents before children).
    pub fn preorder(&self) -> Vec<PatternNodeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![self.root()];
        while let Some(n) = stack.pop() {
            out.push(n);
            for &c in self.nodes[n].children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// First node whose predicate requires the given tag.
    pub fn find_by_tag(&self, tag: &str) -> Option<PatternNodeId> {
        self.preorder()
            .into_iter()
            .find(|&id| self.nodes[id].pred.required_tag() == Some(tag))
    }

    /// Is `a` a (proper) ancestor of `d` within the pattern?
    pub fn is_ancestor(&self, a: PatternNodeId, d: PatternNodeId) -> bool {
        let mut cur = self.nodes[d].parent;
        while let Some(p) = cur {
            if p == a {
                return true;
            }
            cur = self.nodes[p].parent;
        }
        false
    }

    /// Extract the subtree rooted at `new_root` as a fresh pattern.
    /// Returns the pattern and the mapping `old id → new id`.
    pub fn subtree_pattern(
        &self,
        new_root: PatternNodeId,
    ) -> (PatternTree, Vec<Option<PatternNodeId>>) {
        let mut mapping = vec![None; self.nodes.len()];
        let mut out = PatternTree::with_root(self.nodes[new_root].pred.clone());
        mapping[new_root] = Some(out.root());
        // Walk pre-order below new_root.
        let mut stack: Vec<PatternNodeId> = self.nodes[new_root]
            .children
            .iter()
            .rev()
            .copied()
            .collect();
        while let Some(n) = stack.pop() {
            let parent_old = self.nodes[n].parent.expect("non-root");
            let parent_new = mapping[parent_old].expect("parent visited first");
            let new_id = out.add_child(parent_new, self.nodes[n].axis, self.nodes[n].pred.clone());
            mapping[n] = Some(new_id);
            for &c in self.nodes[n].children.iter().rev() {
                stack.push(c);
            }
        }
        (out, mapping)
    }

    /// Graft a whole pattern under `parent` of `self`: `other`'s root is
    /// attached via `axis`, and `other`'s structure is copied. Returns the
    /// mapping `other id → new id in self`. Used by the rewriter to build
    /// the final projection pattern over group trees.
    pub fn graft(
        &mut self,
        parent: PatternNodeId,
        axis: Axis,
        other: &PatternTree,
    ) -> Vec<PatternNodeId> {
        let mut mapping = vec![usize::MAX; other.len()];
        let new_root = self.add_child(parent, axis, other.nodes[other.root()].pred.clone());
        mapping[other.root()] = new_root;
        for pid in other.preorder().into_iter().skip(1) {
            let old_parent = other.nodes[pid].parent.expect("non-root");
            let new_id = self.add_child(
                mapping[old_parent],
                other.nodes[pid].axis,
                other.nodes[pid].pred.clone(),
            );
            mapping[pid] = new_id;
        }
        mapping
    }

    /// The subset test of the rewrite rules (Phase 1, step 2): find an
    /// embedding of `self` into `other` such that
    ///
    /// * every node of `self` maps to a node of `other` whose predicate
    ///   implies it (conjunct containment over non-join conjuncts), and
    /// * every `pc` edge maps to a direct `pc` edge of `other`, while an
    ///   `ad` edge maps to any non-empty path (the closure-mark rule:
    ///   `pc ⊆ ad` but not `ad ⊆ pc`).
    ///
    /// Returns the node mapping `self id → other id` if one exists.
    pub fn subset_embedding(&self, other: &PatternTree) -> Option<Vec<PatternNodeId>> {
        let mut mapping: Vec<Option<PatternNodeId>> = vec![None; self.nodes.len()];
        let order = self.preorder();
        if self.embed_from(&order, 0, other, &mut mapping) {
            Some(mapping.into_iter().map(|m| m.expect("complete")).collect())
        } else {
            None
        }
    }

    fn embed_from(
        &self,
        order: &[PatternNodeId],
        idx: usize,
        other: &PatternTree,
        mapping: &mut Vec<Option<PatternNodeId>>,
    ) -> bool {
        if idx == order.len() {
            return true;
        }
        let n = order[idx];
        for cand in 0..other.len() {
            if mapping.contains(&Some(cand)) {
                continue; // injective
            }
            if !node_implies(&other.nodes[cand].pred, &self.nodes[n].pred) {
                continue;
            }
            // Edge condition w.r.t. the (already mapped) parent.
            if let Some(parent) = self.nodes[n].parent {
                let pimg = mapping[parent].expect("parent mapped first");
                match self.nodes[n].axis {
                    Axis::Child => {
                        if other.nodes[cand].parent != Some(pimg)
                            || other.nodes[cand].axis != Axis::Child
                        {
                            continue;
                        }
                    }
                    Axis::Descendant => {
                        if !other.is_ancestor(pimg, cand) {
                            continue;
                        }
                    }
                }
            }
            mapping[n] = Some(cand);
            if self.embed_from(order, idx + 1, other, mapping) {
                return true;
            }
            mapping[n] = None;
        }
        false
    }
}

/// Does predicate `strong` imply predicate `weak`? Best-effort syntactic
/// test: every non-join conjunct of `weak` appears among the conjuncts of
/// `strong` (join conjuncts in either are ignored — the join value is what
/// the rewrite turns into the grouping basis).
fn node_implies(strong: &Pred, weak: &Pred) -> bool {
    let strong_set = strong.conjuncts();
    weak.conjuncts()
        .iter()
        .filter(|c| !matches!(c, Pred::ContentEqNode(_)))
        .all(|c| strong_set.iter().any(|s| s == c))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Figure 1 pattern: article with title containing "Transaction"
    /// and an author.
    fn fig1() -> PatternTree {
        let mut p = PatternTree::with_root(Pred::tag("article"));
        p.add_child(
            p.root(),
            Axis::Child,
            Pred::tag("title").and(Pred::content_contains("Transaction")),
        );
        p.add_child(p.root(), Axis::Child, Pred::tag("author"));
        p
    }

    #[test]
    fn build_and_label() {
        let p = fig1();
        assert_eq!(p.len(), 3);
        assert_eq!(p.label(0), "$1");
        assert_eq!(p.label(2), "$3");
        assert_eq!(p.node(1).axis, Axis::Child);
        assert_eq!(p.node(1).parent, Some(0));
        assert_eq!(p.node(0).children, vec![1, 2]);
    }

    #[test]
    fn required_tag_extraction() {
        let p = fig1();
        assert_eq!(p.node(0).pred.required_tag(), Some("article"));
        assert_eq!(p.node(1).pred.required_tag(), Some("title"));
        assert_eq!(Pred::True.required_tag(), None);
        assert_eq!(p.find_by_tag("author"), Some(2));
        assert_eq!(p.find_by_tag("publisher"), None);
    }

    #[test]
    fn eval_local_predicates() {
        let no_attr = |_: &str| None;
        assert!(Pred::tag("a").eval_local("a", None, &no_attr));
        assert!(!Pred::tag("a").eval_local("b", None, &no_attr));
        assert!(Pred::content_eq("x").eval_local("a", Some("x"), &no_attr));
        assert!(!Pred::content_eq("x").eval_local("a", None, &no_attr));
        assert!(Pred::content_contains("rans").eval_local("t", Some("Transaction Mng"), &no_attr));
        assert!(Pred::content_cmp(CmpOp::Lt, "2000").eval_local("y", Some("1999"), &no_attr));
        let attrs = |name: &str| {
            if name == "year" {
                Some("1999".to_owned())
            } else {
                None
            }
        };
        assert!(Pred::Attr("year".into(), CmpOp::Eq, "1999".into()).eval_local("a", None, &attrs));
        assert!(!Pred::Attr("month".into(), CmpOp::Eq, "1".into()).eval_local("a", None, &attrs));
        assert!(Pred::tag("a")
            .and(Pred::content_eq("x"))
            .eval_local("a", Some("x"), &no_attr));
        assert!(Pred::tag("a")
            .or(Pred::tag("b"))
            .eval_local("b", None, &no_attr));
        assert!(Pred::tag("a").negate().eval_local("b", None, &no_attr));
    }

    #[test]
    fn join_predicates_are_locally_true() {
        let no_attr = |_: &str| None;
        let p = Pred::tag("author").and(Pred::ContentEqNode(2));
        assert!(p.eval_local("author", None, &no_attr));
        assert!(p.has_join());
        assert_eq!(p.join_targets(), vec![2]);
        assert!(!Pred::tag("a").has_join());
    }

    #[test]
    fn needs_data_detection() {
        assert!(!Pred::tag("a").needs_data());
        assert!(Pred::content_eq("x").needs_data());
        assert!(Pred::tag("a").and(Pred::content_contains("y")).needs_data());
        assert!(!Pred::tag("a").and(Pred::ContentEqNode(1)).needs_data());
    }

    #[test]
    fn preorder_parents_first() {
        let p = fig1();
        let order = p.preorder();
        assert_eq!(order[0], 0);
        assert_eq!(order.len(), 3);
    }

    #[test]
    fn subtree_extraction() {
        // doc_root -ad-> article -pc-> author
        let mut p = PatternTree::with_root(Pred::tag("doc_root"));
        let art = p.add_child(p.root(), Axis::Descendant, Pred::tag("article"));
        let auth = p.add_child(art, Axis::Child, Pred::tag("author"));
        let (sub, mapping) = p.subtree_pattern(art);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.node(0).pred.required_tag(), Some("article"));
        assert_eq!(mapping[art], Some(0));
        assert_eq!(mapping[auth], Some(1));
        assert_eq!(mapping[0], None);
    }

    // ---- the Phase-1 subset test --------------------------------------

    /// Outer pattern of Query 1 (Fig. 4a): doc_root -ad-> author.
    fn outer_q1() -> PatternTree {
        let mut p = PatternTree::with_root(Pred::tag("doc_root"));
        p.add_child(p.root(), Axis::Descendant, Pred::tag("author"));
        p
    }

    /// Inner part of the join-plan pattern (Fig. 4b right):
    /// doc_root -ad-> article -pc-> author (with a join pred).
    fn inner_q1() -> PatternTree {
        let mut p = PatternTree::with_root(Pred::tag("doc_root"));
        let art = p.add_child(p.root(), Axis::Descendant, Pred::tag("article"));
        p.add_child(
            art,
            Axis::Child,
            Pred::tag("author").and(Pred::ContentEqNode(99)),
        );
        p
    }

    #[test]
    fn query1_outer_is_subset_of_inner() {
        let outer = outer_q1();
        let inner = inner_q1();
        let mapping = outer.subset_embedding(&inner).expect("subset must hold");
        assert_eq!(mapping[0], 0); // doc_root → doc_root
        assert_eq!(mapping[1], 2); // author → author (via closure ad edge)
    }

    #[test]
    fn pc_edge_not_satisfied_by_composed_path() {
        // outer: doc_root -pc-> author; inner only offers a 2-edge path,
        // whose closure edge is marked ad — pc ⊄ composed edge.
        let mut outer = PatternTree::with_root(Pred::tag("doc_root"));
        outer.add_child(outer.root(), Axis::Child, Pred::tag("author"));
        let inner = inner_q1();
        assert!(outer.subset_embedding(&inner).is_none());
    }

    #[test]
    fn pc_edge_satisfied_by_direct_pc_edge() {
        let mut outer = PatternTree::with_root(Pred::tag("article"));
        outer.add_child(outer.root(), Axis::Child, Pred::tag("author"));
        let mut inner = PatternTree::with_root(Pred::tag("article"));
        inner.add_child(inner.root(), Axis::Child, Pred::tag("author"));
        inner.add_child(inner.root(), Axis::Child, Pred::tag("title"));
        assert!(outer.subset_embedding(&inner).is_some());
    }

    #[test]
    fn ad_edge_satisfied_by_pc_edge() {
        // pc ⊆ ad: an ad requirement is satisfied by a direct pc edge.
        let mut outer = PatternTree::with_root(Pred::tag("article"));
        outer.add_child(outer.root(), Axis::Descendant, Pred::tag("author"));
        let mut inner = PatternTree::with_root(Pred::tag("article"));
        inner.add_child(inner.root(), Axis::Child, Pred::tag("author"));
        assert!(outer.subset_embedding(&inner).is_some());
    }

    #[test]
    fn missing_node_fails_subset() {
        let mut outer = PatternTree::with_root(Pred::tag("doc_root"));
        outer.add_child(outer.root(), Axis::Descendant, Pred::tag("publisher"));
        assert!(outer.subset_embedding(&inner_q1()).is_none());
    }

    #[test]
    fn stronger_predicate_satisfies_weaker() {
        // weak: tag(author); strong: tag(author) ∧ content="Jack".
        let outer = PatternTree::with_root(Pred::tag("author"));
        let _ = outer;
        let weak = PatternTree::with_root(Pred::tag("author"));
        let strong = PatternTree::with_root(Pred::tag("author").and(Pred::content_eq("Jack")));
        assert!(weak.subset_embedding(&strong).is_some());
        assert!(strong.subset_embedding(&weak).is_none());
    }

    #[test]
    fn embedding_is_injective() {
        // outer needs two distinct author nodes; inner has only one.
        let mut outer = PatternTree::with_root(Pred::tag("article"));
        outer.add_child(outer.root(), Axis::Child, Pred::tag("author"));
        outer.add_child(outer.root(), Axis::Child, Pred::tag("author"));
        let mut inner = PatternTree::with_root(Pred::tag("article"));
        inner.add_child(inner.root(), Axis::Child, Pred::tag("author"));
        assert!(outer.subset_embedding(&inner).is_none());
    }
}
