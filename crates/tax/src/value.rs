//! Content values and numeric-aware comparison.
//!
//! XML content is untyped text; grouping keys, ordering lists, and
//! predicates compare it. Following common XQuery practice the comparison
//! is numeric when *both* operands parse as numbers, and lexicographic
//! otherwise, so `year` values order correctly without a schema.

use std::cmp::Ordering;

/// Comparison operators usable in content predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Apply the operator to an ordering.
    pub fn matches(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }
}

/// Compare two content strings: numerically when both parse as `f64`,
/// lexicographically otherwise.
pub fn compare_values(a: &str, b: &str) -> Ordering {
    match (a.trim().parse::<f64>(), b.trim().parse::<f64>()) {
        (Ok(x), Ok(y)) => x.partial_cmp(&y).unwrap_or(Ordering::Equal),
        _ => a.cmp(b),
    }
}

/// Compare optional values; `None` (missing content) sorts first, which
/// keeps groups with absent ordering keys deterministic.
pub fn compare_opt_values(a: Option<&str>, b: Option<&str>) -> Ordering {
    match (a, b) {
        (None, None) => Ordering::Equal,
        (None, Some(_)) => Ordering::Less,
        (Some(_), None) => Ordering::Greater,
        (Some(x), Some(y)) => compare_values(x, y),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_comparison_when_both_numeric() {
        assert_eq!(compare_values("9", "10"), Ordering::Less);
        assert_eq!(compare_values("2.5", "2.50"), Ordering::Equal);
        assert_eq!(compare_values(" 1999 ", "2002"), Ordering::Less);
    }

    #[test]
    fn string_comparison_otherwise() {
        assert_eq!(compare_values("9", "abc"), Ordering::Less); // '9' < 'a'
        assert_eq!(compare_values("Jack", "John"), Ordering::Less);
        assert_eq!(compare_values("XML", "XML"), Ordering::Equal);
    }

    #[test]
    fn cmp_op_semantics() {
        assert!(CmpOp::Eq.matches(Ordering::Equal));
        assert!(!CmpOp::Eq.matches(Ordering::Less));
        assert!(CmpOp::Ne.matches(Ordering::Greater));
        assert!(CmpOp::Lt.matches(Ordering::Less));
        assert!(CmpOp::Le.matches(Ordering::Equal));
        assert!(CmpOp::Gt.matches(Ordering::Greater));
        assert!(CmpOp::Ge.matches(Ordering::Equal));
        assert!(!CmpOp::Ge.matches(Ordering::Less));
    }

    #[test]
    fn missing_values_sort_first() {
        assert_eq!(compare_opt_values(None, Some("a")), Ordering::Less);
        assert_eq!(compare_opt_values(Some("a"), None), Ordering::Greater);
        assert_eq!(compare_opt_values(None, None), Ordering::Equal);
        assert_eq!(compare_opt_values(Some("a"), Some("a")), Ordering::Equal);
    }
}
