//! Property-based tests for the grouping operator's invariants (Sec. 3).

use proptest::prelude::*;
use tax::ops::groupby::{groupby, groupby_replicated, BasisItem, Direction, GroupOrder};
use tax::pattern::{Axis, PatternTree, Pred};
use tax::value::compare_opt_values;
use tax::{tags, Collection, Tree};
use xmlstore::{DocumentStore, StoreOptions};

/// Random bibliography: each article has 1–3 authors drawn from a pool
/// of 4 names and a distinct title, so keys repeat and overlap.
fn bibliography() -> impl Strategy<Value = String> {
    let article = (
        prop::collection::vec(0usize..4, 1..=3),
        0u32..10_000,
    )
        .prop_map(|(authors, n)| {
            const NAMES: [&str; 4] = ["Jack", "Jill", "John", "Jane"];
            let mut s = String::from("<article>");
            let mut seen = Vec::new();
            for a in authors {
                if !seen.contains(&a) {
                    seen.push(a);
                    s.push_str(&format!("<author>{}</author>", NAMES[a]));
                }
            }
            s.push_str(&format!("<title>T{n:05}</title></article>"));
            s
        });
    prop::collection::vec(article, 0..10).prop_map(|arts| {
        format!("<bib>{}</bib>", arts.concat())
    })
}

fn setup(xml: &str) -> (DocumentStore, Collection, PatternTree, usize, usize) {
    let s = DocumentStore::from_xml(xml, &StoreOptions::in_memory()).unwrap();
    let arts: Collection = match s.tag_id("article") {
        Some(article) => s
            .nodes_with_tag(article)
            .iter()
            .map(|e| Tree::new_ref(*e, true))
            .collect(),
        None => Vec::new(),
    };
    let mut p = PatternTree::with_root(Pred::tag("article"));
    let title = p.add_child(p.root(), Axis::Child, Pred::tag("title"));
    let author = p.add_child(p.root(), Axis::Child, Pred::tag("author"));
    (s, arts, p, title, author)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn group_count_equals_distinct_authors(xml in bibliography()) {
        let (s, arts, p, _title, author) = setup(&xml);
        let groups = groupby(&s, &arts, &p, &[BasisItem::content(author)], &[]).unwrap();
        let distinct = xml
            .split("<author>")
            .skip(1)
            .map(|rest| rest.split('<').next().unwrap().to_owned())
            .collect::<std::collections::HashSet<_>>();
        prop_assert_eq!(groups.len(), distinct.len());
    }

    #[test]
    fn memberships_equal_author_occurrences(xml in bibliography()) {
        // Non-partitioning: total group members = total (article, author)
        // pairs (authors are distinct within an article by construction).
        let (s, arts, p, _title, author) = setup(&xml);
        let groups = groupby(&s, &arts, &p, &[BasisItem::content(author)], &[]).unwrap();
        let total_members: usize = groups
            .iter()
            .map(|g| {
                let e = g.materialize(&s).unwrap();
                e.child(tags::GROUP_SUBROOT).unwrap().children_named("article").count()
            })
            .sum();
        prop_assert_eq!(total_members, xml.matches("<author>").count());
    }

    #[test]
    fn members_sorted_by_ordering_list(xml in bibliography(), descending in any::<bool>()) {
        let (s, arts, p, title, author) = setup(&xml);
        let dir = if descending { Direction::Descending } else { Direction::Ascending };
        let groups = groupby(
            &s,
            &arts,
            &p,
            &[BasisItem::content(author)],
            &[GroupOrder { label: title, direction: dir }],
        )
        .unwrap();
        for g in &groups {
            let e = g.materialize(&s).unwrap();
            let titles: Vec<String> = e
                .child(tags::GROUP_SUBROOT)
                .unwrap()
                .children_named("article")
                .map(|a| a.child("title").unwrap().text())
                .collect();
            for w in titles.windows(2) {
                let ord = compare_opt_values(Some(&w[0]), Some(&w[1]));
                if descending {
                    prop_assert_ne!(ord, std::cmp::Ordering::Less, "{:?}", titles);
                } else {
                    prop_assert_ne!(ord, std::cmp::Ordering::Greater, "{:?}", titles);
                }
            }
        }
    }

    #[test]
    fn identifier_and_replicated_agree(xml in bibliography()) {
        let (s, arts, p, title, author) = setup(&xml);
        let ordering = [GroupOrder { label: title, direction: Direction::Ascending }];
        let fast = groupby(&s, &arts, &p, &[BasisItem::content(author)], &ordering).unwrap();
        let slow = groupby_replicated(&s, &arts, &p, &[BasisItem::content(author)], &ordering).unwrap();
        prop_assert_eq!(fast.len(), slow.len());
        for (f, sl) in fast.iter().zip(slow.iter()) {
            let fe = xmlparse::serialize::element_to_string(&f.materialize(&s).unwrap());
            let se = xmlparse::serialize::element_to_string(&sl.materialize(&s).unwrap());
            prop_assert_eq!(fe, se);
        }
    }

    #[test]
    fn groups_in_first_appearance_order(xml in bibliography()) {
        let (s, arts, p, _title, author) = setup(&xml);
        let groups = groupby(&s, &arts, &p, &[BasisItem::content(author)], &[]).unwrap();
        let keys: Vec<String> = groups
            .iter()
            .map(|g| {
                g.materialize(&s)
                    .unwrap()
                    .child(tags::GROUPING_BASIS)
                    .unwrap()
                    .child("author")
                    .unwrap()
                    .text()
            })
            .collect();
        // Expected order: first document occurrence of each distinct name.
        let mut expected = Vec::new();
        for rest in xml.split("<author>").skip(1) {
            let name = rest.split('<').next().unwrap().to_owned();
            if !expected.contains(&name) {
                expected.push(name);
            }
        }
        prop_assert_eq!(keys, expected);
    }
}
