//! Property-based tests for the grouping operator's invariants (Sec. 3).
//!
//! Ported from proptest to the in-tree `smallrand::prop` harness. The
//! former proptest regression corpus survives as [`REGRESSION`], which
//! every property checks explicitly before its random cases.

use smallrand::prop::{check, Gen};
use tax::ops::groupby::{groupby, groupby_replicated, BasisItem, Direction, GroupOrder};
use tax::pattern::{Axis, PatternTree, Pred};
use tax::value::compare_opt_values;
use tax::{tags, Collection, Tree};
use xmlstore::{DocumentStore, StoreOptions};

/// The shrunken counterexample preserved from the retired proptest
/// regression file: a single article whose `author` precedes `title`.
const REGRESSION: &str = "<bib><article><author>Jack</author><title>T00000</title></article></bib>";

/// Random bibliography: each article has 1–3 authors drawn from a pool
/// of 4 names and a distinct title, so keys repeat and overlap. Authors
/// come before the title, matching the regression shape.
fn bibliography(g: &mut Gen) -> String {
    const NAMES: [&str; 4] = ["Jack", "Jill", "John", "Jane"];
    let articles = g.usize_in(0, 9);
    let mut s = String::from("<bib>");
    for _ in 0..articles {
        s.push_str("<article>");
        let mut seen = Vec::new();
        for _ in 0..g.usize_in(1, 3) {
            let a = g.usize_in(0, 3);
            if !seen.contains(&a) {
                seen.push(a);
                s.push_str(&format!("<author>{}</author>", NAMES[a]));
            }
        }
        s.push_str(&format!(
            "<title>T{:05}</title></article>",
            g.usize_in(0, 9999)
        ));
    }
    s.push_str("</bib>");
    s
}

fn setup(xml: &str) -> (DocumentStore, Collection, PatternTree, usize, usize) {
    let s = DocumentStore::from_xml(xml, &StoreOptions::in_memory()).unwrap();
    let arts: Collection = match s.tag_id("article") {
        Some(article) => s
            .nodes_with_tag(article)
            .iter()
            .map(|e| Tree::new_ref(*e, true))
            .collect(),
        None => Vec::new(),
    };
    let mut p = PatternTree::with_root(Pred::tag("article"));
    let title = p.add_child(p.root(), Axis::Child, Pred::tag("title"));
    let author = p.add_child(p.root(), Axis::Child, Pred::tag("author"));
    (s, arts, p, title, author)
}

fn check_group_count(xml: &str) {
    let (s, arts, p, _title, author) = setup(xml);
    let groups = groupby(&s, &arts, &p, &[BasisItem::content(author)], &[]).unwrap();
    let distinct = xml
        .split("<author>")
        .skip(1)
        .map(|rest| rest.split('<').next().unwrap().to_owned())
        .collect::<std::collections::HashSet<_>>();
    assert_eq!(groups.len(), distinct.len(), "on {xml}");
}

#[test]
fn group_count_equals_distinct_authors() {
    check_group_count(REGRESSION);
    check("group_count_equals_distinct_authors", 64, |g| {
        check_group_count(&bibliography(g))
    });
}

fn check_memberships(xml: &str) {
    // Non-partitioning: total group members = total (article, author)
    // pairs (authors are distinct within an article by construction).
    let (s, arts, p, _title, author) = setup(xml);
    let groups = groupby(&s, &arts, &p, &[BasisItem::content(author)], &[]).unwrap();
    let total_members: usize = groups
        .iter()
        .map(|g| {
            let e = g.materialize(&s).unwrap();
            e.child(tags::GROUP_SUBROOT)
                .unwrap()
                .children_named("article")
                .count()
        })
        .sum();
    assert_eq!(total_members, xml.matches("<author>").count(), "on {xml}");
}

#[test]
fn memberships_equal_author_occurrences() {
    check_memberships(REGRESSION);
    check("memberships_equal_author_occurrences", 64, |g| {
        check_memberships(&bibliography(g))
    });
}

fn check_sorted(xml: &str, descending: bool) {
    let (s, arts, p, title, author) = setup(xml);
    let dir = if descending {
        Direction::Descending
    } else {
        Direction::Ascending
    };
    let groups = groupby(
        &s,
        &arts,
        &p,
        &[BasisItem::content(author)],
        &[GroupOrder {
            label: title,
            direction: dir,
        }],
    )
    .unwrap();
    for g in &groups {
        let e = g.materialize(&s).unwrap();
        let titles: Vec<String> = e
            .child(tags::GROUP_SUBROOT)
            .unwrap()
            .children_named("article")
            .map(|a| a.child("title").unwrap().text())
            .collect();
        for w in titles.windows(2) {
            let ord = compare_opt_values(Some(&w[0]), Some(&w[1]));
            if descending {
                assert_ne!(ord, std::cmp::Ordering::Less, "{titles:?} on {xml}");
            } else {
                assert_ne!(ord, std::cmp::Ordering::Greater, "{titles:?} on {xml}");
            }
        }
    }
}

#[test]
fn members_sorted_by_ordering_list() {
    check_sorted(REGRESSION, false);
    check_sorted(REGRESSION, true);
    check("members_sorted_by_ordering_list", 64, |g| {
        let descending = g.bool();
        check_sorted(&bibliography(g), descending)
    });
}

fn check_impls_agree(xml: &str) {
    let (s, arts, p, title, author) = setup(xml);
    let ordering = [GroupOrder {
        label: title,
        direction: Direction::Ascending,
    }];
    let fast = groupby(&s, &arts, &p, &[BasisItem::content(author)], &ordering).unwrap();
    let slow = groupby_replicated(&s, &arts, &p, &[BasisItem::content(author)], &ordering).unwrap();
    assert_eq!(fast.len(), slow.len(), "on {xml}");
    for (f, sl) in fast.iter().zip(slow.iter()) {
        let fe = xmlparse::serialize::element_to_string(&f.materialize(&s).unwrap());
        let se = xmlparse::serialize::element_to_string(&sl.materialize(&s).unwrap());
        assert_eq!(fe, se, "on {xml}");
    }
}

#[test]
fn identifier_and_replicated_agree() {
    check_impls_agree(REGRESSION);
    check("identifier_and_replicated_agree", 64, |g| {
        check_impls_agree(&bibliography(g))
    });
}

fn check_first_appearance_order(xml: &str) {
    let (s, arts, p, _title, author) = setup(xml);
    let groups = groupby(&s, &arts, &p, &[BasisItem::content(author)], &[]).unwrap();
    let keys: Vec<String> = groups
        .iter()
        .map(|g| {
            g.materialize(&s)
                .unwrap()
                .child(tags::GROUPING_BASIS)
                .unwrap()
                .child("author")
                .unwrap()
                .text()
        })
        .collect();
    // Expected order: first document occurrence of each distinct name.
    let mut expected = Vec::new();
    for rest in xml.split("<author>").skip(1) {
        let name = rest.split('<').next().unwrap().to_owned();
        if !expected.contains(&name) {
            expected.push(name);
        }
    }
    assert_eq!(keys, expected, "on {xml}");
}

#[test]
fn groups_in_first_appearance_order() {
    check_first_appearance_order(REGRESSION);
    check("groups_in_first_appearance_order", 64, |g| {
        check_first_appearance_order(&bibliography(g))
    });
}
