//! A small Zipf sampler (implemented locally; `rand_distr` is not among
//! the sanctioned dependencies).
//!
//! Author productivity in bibliographic data is heavily skewed — a few
//! authors write many papers, most write one or two — so the synthetic
//! DBLP draws authors from a Zipf distribution, giving the grouping
//! workload realistic group-size skew.

use smallrand::RngExt;

/// Samples ranks `0..n` with probability proportional to
/// `1 / (rank + 1)^s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` ranks with exponent `s` (`s = 0` is
    /// uniform; `s ≈ 1` is the classic Zipf skew).
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative/not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(
            s.is_finite() && s >= 0.0,
            "exponent must be finite and non-negative"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(total);
        }
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler has no ranks (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draw one rank.
    pub fn sample<R: RngExt>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smallrand::rngs::StdRng;
    use smallrand::SeedableRng;

    #[test]
    fn skew_puts_mass_on_low_ranks() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 1000];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > 1000, "rank 0 should be very popular");
        // Rough Zipf shape: rank 0 about twice rank 1.
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!((1.5..3.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn zero_exponent_is_roughly_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = vec![0usize; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(5, 2.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 5);
        }
    }

    #[test]
    fn single_rank() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(z.sample(&mut rng), 0);
    }

    #[test]
    #[should_panic]
    fn zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
